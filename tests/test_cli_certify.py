"""The ``repro certify`` and ``repro managerha`` subcommands."""

import json

import pytest

from repro.cli import main


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_certify_runs_and_passes():
    lines, out = collect()
    assert main(["certify", "--budget", "2", "--window", "5"], out=out) == 0
    text = "\n".join(lines)
    assert "Chaos certification" in text
    assert "certify-0" in text and "certify-1" in text
    assert "all invariants held" in text
    assert "certify completed in" in text


def test_certify_writes_json(tmp_path):
    path = tmp_path / "certify.json"
    lines, out = collect()
    code = main(["certify", "--budget", "1", "--window", "5",
                 "--json", str(path)], out=out)
    assert code == 0
    payload = json.loads(path.read_text())
    assert payload["ok"] is True
    assert payload["budget"] == 1
    assert len(payload["rows"]) == 1
    assert payload["violations"] == []


def test_certify_rejects_a_nonpositive_budget():
    with pytest.raises(SystemExit):
        main(["certify", "--budget", "0"], out=lambda s: None)


def test_certify_zero_standbys_still_certifies():
    """k=0 loses work; it does not violate invariants — loss is honest."""
    lines, out = collect()
    assert main(["certify", "--budget", "1", "--standbys", "0",
                 "--window", "5"], out=out) == 0


def test_managerha_sweep_runs():
    lines, out = collect()
    code = main(["managerha", "--standbys", "0,1", "--window", "8"], out=out)
    assert code == 0
    text = "\n".join(lines)
    assert "Manager failover" in text
    assert "k=0" in text and "k=1" in text
    assert "manager_failover completed in" in text


def test_managerha_rejects_malformed_standbys():
    with pytest.raises(SystemExit):
        main(["managerha", "--standbys", "some,none"], out=lambda s: None)


def test_manager_failover_listed_as_experiment():
    lines, out = collect()
    assert main(["list"], out=out) == 0
    assert any("manager_failover" in line for line in lines)
