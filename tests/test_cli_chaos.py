"""The ``repro chaos`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_chaos_rate_sweep_runs():
    lines, out = collect()
    assert main(["chaos", "--rates", "0,8", "--window", "5"], out=out) == 0
    text = "\n".join(lines)
    assert "Chaos sweep" in text
    assert "rate-0" in text and "rate-8" in text
    assert "chaos completed in" in text


def test_chaos_replays_a_plan_file(tmp_path):
    plan_path = tmp_path / "plan.json"
    FaultPlan(name="file-plan").lease_storm(at_s=1.0, count=2).save(str(plan_path))
    lines, out = collect()
    assert main(["chaos", "--plan", str(plan_path), "--window", "5"], out=out) == 0
    assert "file-plan" in "\n".join(lines)


def test_chaos_rates_and_plan_are_mutually_exclusive(tmp_path):
    plan_path = tmp_path / "plan.json"
    FaultPlan().lease_storm(at_s=1.0).save(str(plan_path))
    with pytest.raises(SystemExit):
        main(["chaos", "--plan", str(plan_path), "--rates", "8"], out=lambda s: None)


def test_chaos_rejects_unreadable_plan(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        main(["chaos", "--plan", str(bad)], out=lambda s: None)
    with pytest.raises(SystemExit):
        main(["chaos", "--plan", str(tmp_path / "missing.json")], out=lambda s: None)


def test_chaos_rejects_malformed_rates():
    with pytest.raises(SystemExit):
        main(["chaos", "--rates", "fast,faster"], out=lambda s: None)


def test_chaos_span_export(tmp_path):
    spans = tmp_path / "spans.jsonl"
    lines, out = collect()
    code = main(["chaos", "--rates", "8", "--window", "5", "--spans", str(spans)],
                out=out)
    assert code == 0
    dumped = spans.read_text().strip().splitlines()
    assert len(dumped) > 0
    record = json.loads(dumped[0])
    assert "name" in record
    # The fault-injection spans made it into the export.
    assert any('"fault.' in line for line in dumped)
