"""GPU device and GPU-function tests."""

import pytest

from repro.cluster.specs import P100
from repro.gpu import (
    GpuDevice,
    GpuFunctionSpec,
    GpuMemoryError,
    inference_latency,
    remote_gpu_overhead,
    run_gpu_function,
)
from repro.network import UGNI
from repro.sim import Environment

MiB = 1024**2
GiB = 1024**3


def make_device():
    env = Environment()
    return env, GpuDevice(env, P100)


def spec(kernels=10, kernel_time=1e-3, occupancy=0.5, input_mb=64, warm=True):
    return GpuFunctionSpec(
        name="fn", kernel_count=kernels, kernel_time_s=kernel_time,
        occupancy=occupancy, input_bytes=input_mb * MiB,
        device_memory_bytes=256 * MiB, keep_data_warm=warm,
    )


def test_memory_allocation_and_free():
    env, dev = make_device()
    dev.allocate_memory("a", 4 * GiB)
    assert dev.free_memory == P100.memory_bytes - 4 * GiB
    assert dev.free_memory_of("a") == 4 * GiB
    assert dev.free_memory == P100.memory_bytes


def test_memory_exhaustion():
    env, dev = make_device()
    dev.allocate_memory("a", 15 * GiB)
    with pytest.raises(GpuMemoryError):
        dev.allocate_memory("b", 2 * GiB)
    with pytest.raises(ValueError):
        dev.allocate_memory("c", 0)


def test_warm_data_evicted_under_pressure():
    env, dev = make_device()
    dev.keep_warm("model-a", 10 * GiB)
    assert dev.has_warm("model-a")
    # A hard allocation forces warm eviction.
    dev.allocate_memory("job", 12 * GiB)
    assert not dev.has_warm("model-a")
    assert dev.warm_evictions == 1


def test_warm_lru_eviction_order():
    env, dev = make_device()

    def scenario():
        dev.keep_warm("old", 6 * GiB)
        yield env.timeout(1)
        dev.keep_warm("new", 6 * GiB)
        yield env.timeout(1)
        dev.has_warm("old")  # refresh "old" -> "new" becomes LRU
        dev.keep_warm("third", 6 * GiB)

    env.process(scenario())
    env.run()
    assert dev.has_warm("old")
    assert not dev.has_warm("new")


def test_single_kernel_runtime():
    env, dev = make_device()
    p = dev.launch("a", runtime_s=0.5, occupancy=0.5)
    env.run()
    assert env.now == pytest.approx(0.5)
    assert p.value == pytest.approx(0.5)


def test_concurrent_kernels_dilate_when_oversubscribed():
    env, dev = make_device()
    done = []

    def proc(tag):
        yield dev.launch(tag, runtime_s=0.5, occupancy=0.8)
        done.append((tag, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Total occupancy 1.6: the later launch sees the full mix and dilates
    # (dilation is sampled at launch time, a documented approximation).
    assert max(t for _, t in done) == pytest.approx(0.5 * 1.6)
    assert dev.kernels_launched == 2


def test_concurrent_small_kernels_share_without_dilation():
    env, dev = make_device()
    done = []

    def proc(tag):
        yield dev.launch(tag, runtime_s=0.5, occupancy=0.3)
        done.append(env.now)

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert all(t == pytest.approx(0.5) for t in done)


def test_kernel_validation():
    env, dev = make_device()
    with pytest.raises(ValueError):
        dev.launch("a", runtime_s=-1, occupancy=0.5)
    with pytest.raises(ValueError):
        dev.launch("a", runtime_s=1, occupancy=0)
    with pytest.raises(ValueError):
        spec(kernels=0)


def test_gpu_function_pays_transfer_once_when_warm():
    env, dev = make_device()
    times = []

    def proc():
        t = yield run_gpu_function(env, dev, spec())
        times.append(t)
        t = yield run_gpu_function(env, dev, spec())
        times.append(t)

    env.process(proc())
    env.run()
    # Second call: data warm, no PCIe transfer.
    assert times[1] < times[0]
    assert times[1] == pytest.approx(10 * 1e-3, rel=0.01)


def test_remote_gpu_adds_per_kernel_latency():
    s = spec(kernels=200)
    local = inference_latency(s, UGNI.params, remote=False, data_warm=True)
    remote = inference_latency(s, UGNI.params, remote=True, data_warm=True)
    assert remote > local
    overhead = remote_gpu_overhead(s, UGNI.params)
    assert remote == pytest.approx(local + overhead)
    # Hundreds of kernels -> overhead scales linearly with kernel count.
    assert remote_gpu_overhead(spec(kernels=400), UGNI.params) == pytest.approx(2 * overhead)


# -- warm-data eviction edge cases (regression tests) -------------------------

def test_exact_fit_allocation_after_lru_eviction():
    env, dev = make_device()
    dev.keep_warm("old", 4 * GiB)
    dev.keep_warm("new", 4 * GiB)
    # Exactly free + all warm data: must succeed by evicting both.
    dev.allocate_memory("job", P100.memory_bytes)
    assert dev.free_memory == 0
    assert not dev.has_warm("old") and not dev.has_warm("new")
    assert dev.warm_evictions == 2


def test_eviction_tie_break_is_deterministic_on_owner_name():
    # Equal last-used stamps (same sim time): eviction order must not
    # depend on insertion order, only on the owner name.
    for order in (("b", "a", "c"), ("c", "b", "a"), ("a", "c", "b")):
        env, dev = make_device()
        for owner in order:
            dev.keep_warm(owner, 4 * GiB)
        dev.allocate_memory("job", P100.memory_bytes - 8 * GiB)
        # One eviction was needed; the name tie-break picks "a".
        assert dev.warm_evictions == 1
        assert not dev.has_warm("a")
        assert dev.has_warm("b") and dev.has_warm("c")


def test_failed_allocation_leaves_warm_data_untouched():
    env, dev = make_device()
    dev.keep_warm("cache", 4 * GiB)
    with pytest.raises(GpuMemoryError):
        dev.allocate_memory("job", P100.memory_bytes + 1)
    # All-or-nothing: the doomed allocation must not have evicted the
    # warm dataset (or drained free memory) on its way to the error.
    assert dev.has_warm("cache")
    assert dev.warm_evictions == 0
    assert dev.free_memory == P100.memory_bytes - 4 * GiB


def test_failed_keep_warm_preserves_the_owners_old_dataset():
    env, dev = make_device()
    dev.allocate_memory("pin", P100.memory_bytes - 4 * GiB)
    dev.keep_warm("cache", 2 * GiB)
    with pytest.raises(GpuMemoryError):
        dev.keep_warm("cache", 8 * GiB)  # cannot fit even after evictions
    # Re-warming is fit-checked *before* dropping the old entry: a
    # failed re-warm keeps the previous dataset resident.
    assert dev.has_warm("cache")
    assert dev.free_memory == 2 * GiB
