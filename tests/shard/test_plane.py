"""Sharded control plane: placement, batching, conservation, migration."""

import pytest

from repro.controlplane import HAConfig
from repro.rfaas.errors import ManagerUnavailableError, NoCapacityError
from repro.rfaas.lease import LeaseState

from .conftest import build_plane, drive


def test_tenants_stick_to_their_home_shard():
    env, plane = build_plane(shards=4, nodes=8)
    tenants = [f"t{i:07d}" for i in range(100)]
    homes = {t: plane.shard_of(t) for t in tenants}
    assert set(homes.values()) <= set(range(4))
    assert homes == {t: plane.shard_of(t) for t in tenants}
    plane.stop()
    env.run()


def test_grant_and_release_flow_through_the_batcher():
    env, plane = build_plane(shards=2, nodes=4)
    done = []
    env.process(drive(env, plane.request_grant("tenant-a", cores=1), done))
    env.run()
    assert done and done[0][0] == "ok"
    lease, executor = done[0][1]
    assert lease.active
    assert executor is not None
    assert plane.active_leases() == [(lease, lease.node_name)]

    env.process(drive(env, plane.request_release(lease), done))
    env.run()
    assert done[-1][0] == "ok"
    assert lease.state is LeaseState.RELEASED
    assert plane.active_leases() == []
    plane.stop()
    env.run()
    assert plane.conservation_ok(drained=True)


def test_no_capacity_fails_the_grant_event_honestly():
    env, plane = build_plane(shards=1, nodes=1, cores=2)
    done = []
    for _ in range(3):  # 2 cores, 3 single-core asks: the third must fail
        env.process(drive(env, plane.request_grant("t", cores=1), done))
    env.run()
    outcomes = [kind for kind, _ in done]
    assert outcomes.count("ok") == 2
    assert outcomes.count("fail") == 1
    failure = next(value for kind, value in done if kind == "fail")
    assert isinstance(failure, NoCapacityError)
    assert plane.conservation_ok(drained=False)
    plane.stop()
    env.run()


def test_nodes_spread_across_shards_least_cores_first():
    env, plane = build_plane(shards=2, nodes=4, cores=4)
    per_shard = {}
    for name in plane.registered_nodes():
        per_shard.setdefault(plane._node_shard[name], []).append(name)
    assert sorted(per_shard) == [0, 1]
    assert all(len(nodes) == 2 for nodes in per_shard.values())
    plane.stop()
    env.run()


def test_bare_shard_crash_fences_leases_and_rejects_ops():
    env, plane = build_plane(shards=2, nodes=4)
    tenant = next(f"t{i}" for i in range(100) if plane.shard_of(f"t{i}") == 0)
    done = []
    env.process(drive(env, plane.request_grant(tenant, cores=1), done))
    env.run()
    lease, _ = done[0][1]

    assert plane.crash_shard(0) == "shard-0"
    assert lease.state is LeaseState.CANCELLED  # lease-expiry fencing
    assert not plane.shards[0].available

    env.process(drive(env, plane.request_grant(tenant, cores=1), done))
    env.run()
    assert done[-1][0] == "fail"
    assert isinstance(done[-1][1], ManagerUnavailableError)
    plane.stop()
    env.run()
    assert plane.conservation_ok(drained=True)


def test_bare_shard_restarts_after_outage():
    env, plane = build_plane(shards=2, nodes=4)
    plane.crash_shard(1, outage_s=0.5)
    assert not plane.shards[1].available
    env.run(until=1.0)
    assert plane.shards[1].available
    plane.stop()
    env.run()


def test_ha_shard_crash_fails_over_instead_of_fencing():
    env, plane = build_plane(shards=2, nodes=4,
                             ha=HAConfig(standbys=1, heartbeat_interval_s=0.1,
                                         suspect_after=3))
    name = plane.crash_shard(0)
    assert name is not None and name.startswith("shard-0/")
    env.run(until=2.0)  # detector timeout + takeover
    assert plane.shards[0].available  # a standby leads a new epoch
    plane.stop()
    env.run()


def test_crash_primary_aliases_shard_zero_for_the_injector():
    env, plane = build_plane(shards=3, nodes=6)
    assert plane.crash_primary() == "shard-0"
    assert not plane.shards[0].available
    assert plane.shards[1].available and plane.shards[2].available
    plane.stop()
    env.run()


def test_migration_moves_only_idle_nodes():
    env, plane = build_plane(shards=2, nodes=4)
    done = []
    env.process(drive(env, plane.request_grant("tenant-b", cores=1), done))
    env.run()
    lease, _ = done[0][1]
    busy = lease.node_name
    busy_shard = plane._node_shard[busy]
    other = 1 - busy_shard

    assert not plane.migrate_node(busy, other)  # leased: must not move
    idle = next(n for n in plane.registered_nodes() if n != busy
                and plane._node_shard[n] == busy_shard)
    assert plane.migrate_node(idle, other)
    assert plane._node_shard[idle] == other
    assert plane.migrations == 1
    plane.stop()
    env.run()


def test_drain_rebalances_toward_the_starved_shard():
    env, plane = build_plane(shards=2, nodes=4, cores=2)
    # Saturate every core shard 0 owns, then drain nothing — instead
    # exhaust it so rebalance() sees zero free cores.
    shard0_nodes = [n for n, s in plane._node_shard.items() if s == 0]
    done = []
    tenant = next(f"t{i}" for i in range(200) if plane.shard_of(f"t{i}") == 0)
    for _ in range(len(shard0_nodes) * 2):
        env.process(drive(env, plane.request_grant(tenant, cores=1), done))
    env.run()
    assert plane.shards[0].manager.total_free_cores() == 0
    moved = plane.rebalance()
    assert moved >= 1  # an idle shard-1 node crossed over
    assert plane.shards[0].manager.total_free_cores() > 0
    plane.stop()
    env.run()


def test_conservation_ledger_accounts_for_every_op_and_lease():
    env, plane = build_plane(shards=2, nodes=4)
    done = []
    for i in range(6):
        env.process(drive(env, plane.request_grant(f"t{i}", cores=1), done))
    env.run()
    leases = [value[0] for kind, value in done if kind == "ok"]
    for lease in leases[:2]:
        env.process(drive(env, plane.request_release(lease), done))
    env.run()
    plane.revoke_lease(leases[2], reason="test")
    ledger = plane.conservation()
    assert ledger["ops_submitted"] == ledger["ops_applied"] + ledger["ops_failed"]
    assert ledger["granted"] == (
        ledger["active"] + ledger["released"] + ledger["revoked"]
    )
    assert ledger["released"] == 2
    assert ledger["revoked"] == 1
    assert plane.conservation_ok(drained=False)
    assert not plane.conservation_ok(drained=True)  # leases still active
    plane.stop()
    env.run()


def test_config_validation():
    with pytest.raises(ValueError):
        from repro.shard import ShardConfig
        ShardConfig(shards=0)
