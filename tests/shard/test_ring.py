"""Consistent-hash ring: determinism, spread, and minimal remapping."""

import pytest

from repro.shard import HashRing


def test_placement_is_deterministic_across_instances():
    a = HashRing(range(4))
    b = HashRing(range(4))
    keys = [f"t{i:07d}" for i in range(1000)]
    assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]


def test_every_key_lands_on_a_registered_shard():
    ring = HashRing(range(5))
    for i in range(2000):
        assert ring.shard_for(f"tenant-{i}") in range(5)


def test_spread_touches_every_shard():
    ring = HashRing(range(8))
    counts = ring.spread(f"t{i:07d}" for i in range(10_000))
    assert set(counts) == set(range(8))
    # Zipf-free uniform keys: no shard should be empty or hog the ring.
    assert min(counts.values()) > 0
    assert max(counts.values()) < 10_000 / 2


def test_adding_a_shard_remaps_roughly_one_nth_of_keys():
    keys = [f"t{i:07d}" for i in range(10_000)]
    ring = HashRing(range(4))
    before = {k: ring.shard_for(k) for k in keys}
    ring.add(4)
    moved = sum(1 for k in keys if ring.shard_for(k) != before[k])
    # Consistent hashing's defining property: ~1/N of keys move, not all.
    assert 0.10 < moved / len(keys) < 0.35
    # Every key that moved, moved TO the new shard.
    for k in keys:
        after = ring.shard_for(k)
        if after != before[k]:
            assert after == 4


def test_removing_a_shard_only_moves_its_keys():
    keys = [f"t{i:07d}" for i in range(5_000)]
    ring = HashRing(range(4))
    before = {k: ring.shard_for(k) for k in keys}
    ring.remove(2)
    for k in keys:
        if before[k] != 2:
            assert ring.shard_for(k) == before[k]
        else:
            assert ring.shard_for(k) != 2


def test_container_protocol():
    ring = HashRing(range(3))
    assert len(ring) == 3
    assert 2 in ring
    assert 7 not in ring
    assert sorted(ring) == [0, 1, 2]
    assert ring.shards() == [0, 1, 2]


def test_empty_ring_rejects_lookups():
    ring = HashRing(())
    with pytest.raises(LookupError):
        ring.shard_for("tenant")


def test_duplicate_shard_rejected():
    ring = HashRing(range(2))
    with pytest.raises(ValueError):
        ring.add(1)
