"""Shard-targeted fault injection through the declarative fault layer."""

import numpy as np
import pytest

from repro.faults import FaultPlan, Injector

from .conftest import build_plane


def test_plan_encodes_shard_target_as_node():
    plan = FaultPlan(name="p").manager_crash(at_s=1.0, duration_s=2.0, shard=3)
    event = plan.events[0]
    assert event.node == "shard-3"
    # The encoding must survive the JSON round-trip the chaos CLI uses.
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.events[0].node == "shard-3"


def test_injector_crashes_the_targeted_shard_only():
    env, plane = build_plane(shards=3, nodes=6)
    plan = FaultPlan(name="p").manager_crash(at_s=0.5, duration_s=0.0, shard=2)
    injector = Injector(env, plan, manager=plane,
                        rng=np.random.default_rng(0))
    injector.start()
    env.run(until=1.0)
    assert not plane.shards[2].available
    assert plane.shards[0].available and plane.shards[1].available
    assert len(injector.injected) == 1
    plane.stop()
    env.run()


def test_injector_restarts_the_shard_after_the_outage():
    env, plane = build_plane(shards=2, nodes=4)
    plan = FaultPlan(name="p").manager_crash(at_s=0.5, duration_s=1.0, shard=1)
    injector = Injector(env, plan, manager=plane,
                        rng=np.random.default_rng(0))
    injector.start()
    env.run(until=1.0)
    assert not plane.shards[1].available
    env.run(until=2.0)
    assert plane.shards[1].available
    plane.stop()
    env.run()


def test_untargeted_manager_crash_lands_on_shard_zero():
    env, plane = build_plane(shards=2, nodes=4)
    plan = FaultPlan(name="p").manager_crash(at_s=0.5)
    injector = Injector(env, plan, manager=plane,
                        rng=np.random.default_rng(0))
    injector.start()
    env.run(until=1.0)
    assert not plane.shards[0].available
    assert plane.shards[1].available
    plane.stop()
    env.run()


def test_out_of_range_shard_target_is_skipped_not_fatal():
    env, plane = build_plane(shards=2, nodes=4)
    plan = FaultPlan(name="p").manager_crash(at_s=0.5, shard=9)
    injector = Injector(env, plan, manager=plane,
                        rng=np.random.default_rng(0))
    injector.start()
    env.run(until=1.0)
    assert all(s.available for s in plane.shards)
    assert injector.skipped  # recorded, not silently dropped
    plane.stop()
    env.run()
