"""Batcher mechanics: FIFO batching, cost model, failure accounting."""

import pytest

from repro.shard import ShardBatcher
from repro.sim.engine import Environment


def _drive(env, event, sink):
    """Await one submit event and record its outcome."""
    try:
        value = yield event
    except Exception as exc:  # noqa: BLE001 - the test records any failure
        sink.append(("fail", type(exc).__name__))
    else:
        sink.append(("ok", value))


def test_ops_apply_in_fifo_order_and_batch_up():
    env = Environment()
    applied = []
    batcher = ShardBatcher(env, 0, apply=lambda op: applied.append(op.kind) or op.kind,
                           max_batch=4, batch_overhead_s=0.01, per_op_s=0.001)
    for i in range(6):
        batcher.submit(f"op{i}", {})
    env.run()
    # 6 ops at max_batch=4 -> one flush of 4 then one of 2, FIFO order.
    assert applied == [f"op{i}" for i in range(6)]
    assert batcher.batches == 2
    assert batcher.ops_applied == 6
    batcher.stop()
    env.run()


def test_flush_charges_overhead_plus_per_op_cost():
    env = Environment()
    batcher = ShardBatcher(env, 0, apply=lambda op: None,
                           max_batch=8, batch_overhead_s=0.01, per_op_s=0.002)
    done = []
    for _ in range(3):
        event = batcher.submit("grant", {})
        env.process(_drive(env, event, done))
    env.run()
    # One flush of 3 ops: 0.01 + 3 * 0.002 sim seconds.
    assert env.now == pytest.approx(0.016)
    assert len(done) == 3
    batcher.stop()
    env.run()


def test_apply_failure_fails_the_submit_event_and_counts():
    env = Environment()

    def apply(op):
        if op.kind == "bad":
            raise ValueError("no")
        return "fine"

    batcher = ShardBatcher(env, 0, apply=apply, max_batch=4)
    outcomes = []
    for kind in ("good", "bad", "good"):
        env.process(_drive(env, batcher.submit(kind, {}), outcomes))
    env.run()
    assert outcomes == [("ok", "fine"), ("fail", "ValueError"), ("ok", "fine")]
    assert batcher.ops_applied == 2
    assert batcher.ops_failed == 1
    assert batcher.ops_submitted == 3
    batcher.stop()
    env.run()


def test_stop_drains_queued_ops_then_rejects_new_ones():
    env = Environment()
    applied = []
    batcher = ShardBatcher(env, 0, apply=lambda op: applied.append(op.kind),
                           max_batch=2)
    for i in range(5):
        batcher.submit(f"op{i}", {})
    batcher.stop()
    env.run()
    assert len(applied) == 5  # nothing queued was dropped
    with pytest.raises(RuntimeError):
        batcher.submit("late", {})


def test_conservation_holds_at_every_instant():
    env = Environment()
    batcher = ShardBatcher(env, 0, apply=lambda op: None, max_batch=3)

    def submitter(env):
        for i in range(10):
            batcher.submit("op", {})
            # Ops are submitted, queued, in-flight (popped into the
            # batch being flushed), applied, or failed — never lost.
            in_flight = batcher.ops_submitted - (
                batcher.ops_applied + batcher.ops_failed + batcher.depth()
            )
            assert 0 <= in_flight <= batcher.max_batch
            yield env.timeout(0.0003)

    env.process(submitter(env))
    env.run()
    assert batcher.ops_submitted == batcher.ops_applied == 10
    assert batcher.depth() == 0
    batcher.stop()
    env.run()


def test_rejects_invalid_shape():
    env = Environment()
    with pytest.raises(ValueError):
        ShardBatcher(env, 0, apply=lambda op: None, max_batch=0)
    with pytest.raises(ValueError):
        ShardBatcher(env, 0, apply=lambda op: None, per_op_s=-1.0)
