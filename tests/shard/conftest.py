"""Shared builder for sharded-control-plane tests."""

from repro.cluster.machine import Cluster
from repro.cluster.specs import DAINT_MC
from repro.cluster.topology import DragonflyTopology
from repro.shard import ShardConfig, ShardedControlPlane
from repro.sim.engine import Environment
from repro.telemetry import Telemetry

GiB = 1024**3


def build_plane(shards=2, nodes=4, cores=4, ha=None, max_batch=8,
                rebalance_interval_s=0.0, vnodes=64):
    """(env, plane) with ``nodes`` registered nodes spread over ``shards``."""
    env = Environment()
    Telemetry(env=env).install(env)
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", max(nodes, 1), DAINT_MC)
    plane = ShardedControlPlane(
        env, cluster,
        ShardConfig(shards=shards, vnodes=vnodes, max_batch=max_batch,
                    batch_overhead_s=1e-4, per_op_s=1e-4, ha=ha,
                    rebalance_interval_s=rebalance_interval_s),
    )
    for i in range(nodes):
        plane.register_node(f"n{i:04d}", cores=cores, memory_bytes=4 * GiB)
    return env, plane


def drive(env, event, sink):
    """Await one front-door event and record its outcome in ``sink``."""
    try:
        value = yield event
    except Exception as exc:  # noqa: BLE001 - tests inspect any failure
        sink.append(("fail", exc))
    else:
        sink.append(("ok", value))
