"""MPI-functions communicator: point-to-point and collectives."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.mpifn import Communicator
from repro.network import IBVERBS, NetworkFabric
from repro.sim import Environment


def make_comm(ranks=4, nodes=None):
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    n_nodes = nodes or ranks
    cluster.add_nodes("n", n_nodes, DAINT_MC)
    provider = replace(IBVERBS, params=IBVERBS.params.with_jitter(0.0))
    fabric = NetworkFabric(env, cluster, provider, rng=np.random.default_rng(0))
    rank_nodes = [f"n{(i % n_nodes):04d}" for i in range(ranks)]
    comm = Communicator(env, fabric, rank_nodes)
    return env, comm


def test_send_recv_roundtrip():
    env, comm = make_comm(2)
    got = {}

    def sender():
        yield comm.send(0, 1, 1024, tag=7, payload="hello")

    def receiver():
        msg = yield comm.recv(1, source=0, tag=7)
        got["msg"] = msg
        got["t"] = env.now

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got["msg"].payload == "hello"
    assert got["msg"].size_bytes == 1024
    assert got["t"] > 0  # network time elapsed


def test_recv_matches_source_and_tag():
    env, comm = make_comm(3)
    received = []

    def sender(src, tag, payload):
        yield comm.send(src, 2, 64, tag=tag, payload=payload)

    def receiver():
        # Posted for rank 1/tag 5 even though rank 0's message lands first.
        msg = yield comm.recv(2, source=1, tag=5)
        received.append(msg.payload)
        msg = yield comm.recv(2)  # wildcard picks up the remaining one
        received.append(msg.payload)

    env.process(sender(0, 9, "wrong"))

    def delayed():
        yield env.timeout(1.0)
        yield comm.send(1, 2, 64, tag=5, payload="right")

    env.process(delayed())
    env.process(receiver())
    env.run()
    assert received == ["right", "wrong"]


def test_self_send_is_instant():
    env, comm = make_comm(2)
    done = {}

    def proc():
        yield comm.send(0, 0, 10**9, payload="self")
        msg = yield comm.recv(0, source=0)
        done["t"] = env.now
        done["payload"] = msg.payload

    env.process(proc())
    env.run()
    assert done["payload"] == "self"
    assert done["t"] == 0.0  # no fabric involved


def test_rank_validation():
    env, comm = make_comm(2)
    with pytest.raises(ValueError):
        comm.send(0, 5, 10)
    with pytest.raises(ValueError):
        comm.recv(9)
    with pytest.raises(ValueError):
        comm.send(0, 1, -1)
    with pytest.raises(ValueError):
        Communicator(env, comm.fabric, [])


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8])
def test_binomial_tree_consistent(size):
    env, comm = make_comm(size)
    # Every non-root rank's parent lists it as a child.
    for root in range(size):
        for rank in range(size):
            parent, children = comm._binomial_peers(rank, root)
            if rank == root:
                assert parent is None
            else:
                assert parent is not None
                _, parent_children = comm._binomial_peers(parent, root)
                assert rank in parent_children


@pytest.mark.parametrize("size,root", [(1, 0), (2, 0), (4, 1), (5, 3), (8, 0)])
def test_bcast_delivers_to_all(size, root):
    env, comm = make_comm(size)
    results = {}

    def rank_prog(rank):
        value = yield comm.bcast(rank, root, 4096, value="data" if rank == root else None)
        results[rank] = value

    for rank in range(size):
        env.process(rank_prog(rank))
    env.run()
    assert results == {rank: "data" for rank in range(size)}


@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 8])
def test_allreduce_sums_everywhere(size):
    env, comm = make_comm(size)
    results = {}

    def rank_prog(rank):
        total = yield comm.allreduce(rank, 8, value=rank + 1)
        results[rank] = total

    for rank in range(size):
        env.process(rank_prog(rank))
    env.run()
    expected = sum(range(1, size + 1))
    assert results == {rank: expected for rank in range(size)}


def test_reduce_root_only_gets_result():
    env, comm = make_comm(4)
    results = {}

    def rank_prog(rank):
        out = yield comm.reduce(rank, 2, 8, value=10 * (rank + 1))
        results[rank] = out

    for rank in range(4):
        env.process(rank_prog(rank))
    env.run()
    assert results[2] == 100
    assert all(results[r] is None for r in (0, 1, 3))


def test_barrier_synchronizes():
    env, comm = make_comm(4)
    after = {}

    def rank_prog(rank):
        # Stagger arrival; nobody leaves before the last arrives.
        yield env.timeout(rank * 1.0)
        yield comm.barrier(rank)
        after[rank] = env.now

    for rank in range(4):
        env.process(rank_prog(rank))
    env.run()
    assert min(after.values()) >= 3.0


def test_message_accounting():
    env, comm = make_comm(2)

    def prog():
        yield comm.send(0, 1, 500)
        yield comm.send(0, 1, 700)

    env.process(prog())
    env.run()
    assert comm.messages_sent == 2
    assert comm.bytes_sent == 1200


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=9),
    root=st.integers(min_value=0, max_value=8),
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=9, max_size=9),
)
def test_allreduce_matches_serial_sum(size, root, values):
    root = root % size
    env, comm = make_comm(size)
    results = {}

    def rank_prog(rank):
        out = yield comm.allreduce(rank, 8, value=values[rank])
        results[rank] = out

    for rank in range(size):
        env.process(rank_prog(rank))
    env.run()
    expected = sum(values[:size])
    assert all(v == expected for v in results.values())
