"""Elastic MPI group: leasing, growing, shrinking, BSP execution."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.mpifn import ElasticMpiGroup
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import NodeLoadRegistry, ResourceManager
from repro.sim import Environment

GiB = 1024**3


def make_rig(nodes=4, cores_per_node=4):
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", nodes, DAINT_MC)
    provider = replace(IBVERBS, params=IBVERBS.params.with_jitter(0.0))
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, provider, rng=np.random.default_rng(0), drc=drc)
    manager = ResourceManager(env, cluster, loads=NodeLoadRegistry(cluster), drc=drc,
                              rng=np.random.default_rng(1))
    for i in range(nodes):
        manager.register_node(f"n{i:04d}", cores=cores_per_node, memory_bytes=8 * GiB)
    return env, cluster, manager, fabric


def test_spawn_builds_communicator():
    env, cluster, manager, fabric = make_rig()
    group = ElasticMpiGroup(env, manager, fabric)
    done = {}

    def prog():
        comm = yield group.spawn(4)
        done["size"] = comm.size

    env.process(prog())
    env.run()
    assert done["size"] == 4
    assert group.size == 4
    # Ranks really hold leases: node core accounting reflects them.
    leased = sum(36 - cluster.node(f"n{i:04d}").free_cores for i in range(4))
    assert leased == 4


def test_double_spawn_rejected():
    env, _, manager, fabric = make_rig()
    group = ElasticMpiGroup(env, manager, fabric)

    def prog():
        yield group.spawn(2)
        with pytest.raises(RuntimeError):
            group.spawn(2)

    env.process(prog())
    env.run()


def test_grow_and_shrink():
    env, _, manager, fabric = make_rig(nodes=4, cores_per_node=4)
    group = ElasticMpiGroup(env, manager, fabric)
    sizes = []

    def prog():
        yield group.spawn(2)
        sizes.append(group.size)
        new_size, latency = yield group.grow(3)
        sizes.append(new_size)
        assert latency >= 0
        group.shrink(4)
        sizes.append(group.size)

    env.process(prog())
    env.run()
    assert sizes == [2, 5, 1]


def test_grow_partial_on_capacity_exhaustion():
    env, _, manager, fabric = make_rig(nodes=1, cores_per_node=2)
    group = ElasticMpiGroup(env, manager, fabric)
    result = {}

    def prog():
        yield group.spawn(1)
        size, _ = yield group.grow(5)  # only 1 more core exists
        result["size"] = size

    env.process(prog())
    env.run()
    assert result["size"] == 2


def test_shrink_validation_and_shutdown():
    env, _, manager, fabric = make_rig()
    group = ElasticMpiGroup(env, manager, fabric)

    def prog():
        yield group.spawn(2)
        with pytest.raises(ValueError):
            group.shrink(2)  # must leave >= 1
        group.shutdown()
        assert group.size == 0

    env.process(prog())
    env.run()
    assert manager.total_free_cores() == manager.total_registered_cores()


def test_bsp_epochs_with_allreduce():
    env, _, manager, fabric = make_rig()
    group = ElasticMpiGroup(env, manager, fabric)
    outcome = {}

    def epoch_fn(comm, rank, epoch, state):
        state.setdefault("sum", 0)
        total = yield comm.allreduce(rank, 8, value=rank)
        state["sum"] += total

    def prog():
        yield group.spawn(4)
        report = yield group.run_bsp(epoch_fn, epochs=3)
        outcome["report"] = report

    env.process(prog())
    env.run()
    report = outcome["report"]
    assert report.epochs == 3
    assert report.sizes == [4, 4, 4]
    assert all(t > 0 for t in report.epoch_times)


def test_bsp_with_dynamic_resize():
    env, _, manager, fabric = make_rig(nodes=4, cores_per_node=4)
    group = ElasticMpiGroup(env, manager, fabric)
    outcome = {}

    def epoch_fn(comm, rank, epoch, state):
        yield comm.barrier(rank)

    def resize(epoch, grp):
        return {1: 6, 2: 3}.get(epoch)

    def prog():
        yield group.spawn(2)
        report = yield group.run_bsp(epoch_fn, epochs=3, resize=resize)
        outcome["report"] = report

    env.process(prog())
    env.run()
    report = outcome["report"]
    assert report.sizes == [2, 6, 3]
    assert len(report.grow_latencies) == 1


def test_bsp_requires_spawn():
    env, _, manager, fabric = make_rig()
    group = ElasticMpiGroup(env, manager, fabric)
    with pytest.raises(RuntimeError):
        group.run_bsp(lambda *a: None, epochs=1)
    with pytest.raises(ValueError):
        ElasticMpiGroup(env, manager, fabric, cores_per_rank=0)
