"""Everything that crosses the process-pool boundary must pickle.

The sweep fabric ships :class:`~repro.experiments.base.ScenarioSpec`
objects to workers, and specs embed the experiment configuration
objects — so both the specs of every registered sweep's plan and the
public config types must survive a pickle round-trip unchanged.
"""

import pickle

import pytest

from repro.api import ClusterSpec
from repro.capacity import CapacityConfig
from repro.experiments import (autoscale_sweep, chaos_sweep,
                               gpu_scaling_sweep, memdurability_sweep)
from repro.faults import FaultPlan
from repro.memservice import DurableMemoryConfig


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_fault_plan_roundtrips_with_events():
    plan = (FaultPlan(name="storm")
            .node_crash(at_s=5.0, duration_s=20.0)
            .lease_storm(at_s=8.0, count=4)
            .network_degrade(at_s=12.0, duration_s=3.0, latency_factor=10.0))
    clone = _roundtrip(plan)
    assert clone.name == "storm"
    assert len(clone) == len(plan)
    assert [ev.to_dict() for ev in clone] == [ev.to_dict() for ev in plan]


def test_capacity_config_roundtrips():
    config = CapacityConfig(burst_enabled=False)
    clone = _roundtrip(config)
    assert clone == config


def test_durable_memory_config_roundtrips():
    config = DurableMemoryConfig(replication=3, strict_quorum=True)
    clone = _roundtrip(config)
    assert clone == config


def test_cluster_spec_roundtrips():
    spec = ClusterSpec(nodes=4, jitter=0.0)
    clone = _roundtrip(spec)
    assert clone == spec


@pytest.mark.parametrize("module", [chaos_sweep, autoscale_sweep,
                                    gpu_scaling_sweep, memdurability_sweep])
def test_every_planned_scenario_spec_roundtrips(module):
    for spec in module.plan_scenarios().scenarios:
        clone = _roundtrip(spec)
        assert clone.label == spec.label
        assert clone.seed == spec.seed
        assert clone.fn is spec.fn  # pickled by reference: module-level
        assert pickle.dumps(clone.params) == pickle.dumps(spec.params)
