"""The ``repro sweep`` umbrella command and the shared ``--jobs`` flags."""

import json

import pytest

from repro.cli import main
from repro.sweep import sweep_names


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_sweep_list_enumerates_the_registry():
    lines, out = collect()
    assert main(["sweep", "list"], out=out) == 0
    text = "\n".join(lines)
    for name in sweep_names():
        assert name in text


def test_sweep_runs_a_registered_sweep_with_overrides(tmp_path):
    blob = tmp_path / "result.json"
    lines, out = collect()
    code = main(["sweep", "chaos", "--set", "rates=(0.0, 8.0)",
                 "--set", "window_s=4.0", "--json", str(blob)], out=out)
    assert code == 0
    text = "\n".join(lines)
    assert "rate-0" in text and "rate-8" in text
    assert "chaos completed in" in text
    data = json.loads(blob.read_text())
    assert [p["label"] for p in data["points"]] == ["rate-0", "rate-8"]


def test_sweep_rejects_unknown_names():
    with pytest.raises(SystemExit):
        main(["sweep", "no-such-sweep"], out=lambda s: None)


def test_sweep_rejects_bad_overrides():
    with pytest.raises(SystemExit):
        main(["sweep", "chaos", "--set", "not-a-pair"], out=lambda s: None)


def test_jobs_flag_reports_the_fan_out():
    lines, out = collect()
    code = main(["chaos", "--rates", "0,8", "--window", "4", "--jobs", "2"],
                out=out)
    assert code == 0
    assert "with 2 jobs" in "\n".join(lines)


def test_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        main(["chaos", "--rates", "0", "--window", "4", "--jobs", "0"],
             out=lambda s: None)


@pytest.mark.parametrize("export_flag", ["--trace", "--spans", "--metrics-out"])
def test_batch_exporters_require_serial_execution(tmp_path, export_flag):
    with pytest.raises(SystemExit):
        main(["chaos", "--rates", "0,8", "--window", "4", "--jobs", "2",
              export_flag, str(tmp_path / "export.out")], out=lambda s: None)


def test_stream_spans_works_with_parallel_jobs(tmp_path):
    stream = tmp_path / "spans.jsonl"
    lines, out = collect()
    code = main(["chaos", "--rates", "0,8", "--window", "4", "--jobs", "2",
                 "--stream-spans", str(stream)], out=out)
    assert code == 0
    text = "\n".join(lines)
    assert "[stream:" in text and "peak retained" in text
    assert str(stream) in text
    assert stream.read_text().strip()


def test_parallel_json_matches_serial_json(tmp_path):
    blobs = {}
    for jobs in ("1", "3"):
        path = tmp_path / f"mem-{jobs}.json"
        code = main(["memdurability", "--factors", "1,2", "--accesses", "40",
                     "--window", "5", "--jobs", jobs, "--json", str(path)],
                    out=lambda s: None)
        assert code == 0
        blobs[jobs] = path.read_bytes()
    assert blobs["1"] == blobs["3"]
