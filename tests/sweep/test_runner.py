"""The parallel runner: merge order, telemetry parts, failure surfacing.

Everything here runs in-process (``jobs=1`` vs a real 2-worker pool in
the same interpreter); the cross-interpreter byte-identity contract is
covered by ``test_parallel_determinism.py``.
"""

import os

import pytest

from repro.experiments.base import ScenarioSpec, Sweep, SweepPlan
from repro.sweep import (
    SweepScenarioError,
    run_sweep,
    stream_part_path,
    sweep_names,
)

CHAOS_KWARGS = dict(rates=(0.0, 8.0), window_s=4.0, seed=7)


def test_run_sweep_rejects_bad_jobs_and_unknown_names():
    with pytest.raises(ValueError):
        run_sweep("chaos", jobs=0, **CHAOS_KWARGS)
    with pytest.raises(KeyError):
        run_sweep("no-such-sweep")


def test_parallel_result_matches_serial_in_process():
    serial = run_sweep("chaos", jobs=1, **CHAOS_KWARGS)
    fanned = run_sweep("chaos", jobs=2, **CHAOS_KWARGS)
    assert fanned.to_json() == serial.to_json()


def test_excess_jobs_are_clamped_to_the_scenario_count():
    # 2 scenarios, 8 requested workers: still correct, still merged in order.
    result = run_sweep("chaos", jobs=8, **CHAOS_KWARGS)
    assert [p["label"] for p in result.to_dict()["points"]] == \
           ["rate-0", "rate-8"]


def test_stream_spans_merges_parts_in_plan_order(tmp_path):
    stream = tmp_path / "spans.jsonl"
    stats = {}
    run_sweep("chaos", jobs=2, stream_spans=str(stream), stream_stats=stats,
              **CHAOS_KWARGS)
    assert stream.exists()
    # Part files are consumed by the merge, never left behind.
    for index in range(4):
        assert not os.path.exists(stream_part_path(str(stream), index))
    lines = stream.read_text().strip().splitlines()
    assert stats["seen"] == len(lines) > 0
    assert stats["parts"] == 2
    assert stats["peak_retained"] > 0


def test_stream_bytes_identical_at_every_jobs_count(tmp_path):
    streams = {}
    for jobs in (1, 2):
        path = tmp_path / f"spans-{jobs}.jsonl"
        run_sweep("chaos", jobs=jobs, stream_spans=str(path), **CHAOS_KWARGS)
        streams[jobs] = path.read_bytes()
    assert streams[1] == streams[2]


# -- failure contract --------------------------------------------------------

def _boom(params, seed):
    raise RuntimeError(f"kaboom-{params['rate']}")


def _ok(params, seed):
    return {"rate": params["rate"]}


def _failing_plan(**kwargs):
    return SweepPlan(scenarios=(
        ScenarioSpec(fn=_ok, params={"rate": 0.0}, seed=0, label="rate-0"),
        ScenarioSpec(fn=_boom, params={"rate": 8.0}, seed=1, label="rate-8"),
    ))


class _ListResult:
    def __init__(self, points):
        self.points = points


def _assemble(points, meta):
    return _ListResult(points)


FAILING = Sweep(name="failing-test-sweep", description="always fails",
                plan=_failing_plan, assemble=_assemble, result_type=_ListResult)


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_failure_surfaces_the_original_traceback(jobs):
    with pytest.raises(SweepScenarioError) as excinfo:
        run_sweep(FAILING, jobs=jobs)
    message = str(excinfo.value)
    # The failing scenario is named and the worker's real stack — down to
    # the raising frame — crossed the pool boundary.
    assert excinfo.value.label == "rate-8"
    assert "kaboom-8.0" in message
    assert "RuntimeError" in message and "_boom" in message


def test_failing_sweeps_are_not_registered():
    assert FAILING.name not in sweep_names()
