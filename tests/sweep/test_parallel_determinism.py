"""The headline contract, across fresh interpreters: byte-identical JSON.

Each CLI invocation below is its own subprocess, so nothing — module
counters, rng state, import order — can leak between the serial and
parallel runs.  If ``--jobs 4`` and ``--jobs 1`` produce even one
differing byte in the merged result (or in the merged span stream),
the fan-out is not deterministic and these tests fail.
"""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

SWEEP_ARGS = {
    "chaos": ["chaos", "--rates", "0,8", "--window", "4"],
    "autoscale": ["autoscale", "--loads", "1.0", "--window", "6"],
    "memdurability": ["memdurability", "--factors", "1,2",
                      "--accesses", "40", "--window", "5"],
    "gpu_scaling": ["sweep", "gpu_scaling", "--set", "batch_sizes=(1, 4, 16)",
                    "--set", "requests=512"],
    "manager_failover": ["managerha", "--standbys", "0,1", "--window", "8"],
    "loadstorm": ["loadstorm", "--shards", "1,2", "--window", "2",
                  "--rate", "600", "--population", "50000"],
}


def _run_cli(args, cwd):
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr or proc.stdout
    return proc


@pytest.mark.parametrize("name", sorted(SWEEP_ARGS))
def test_merged_json_is_byte_identical_serial_vs_parallel(name, tmp_path):
    blobs = {}
    for jobs in (1, 4):
        out = tmp_path / f"{name}-{jobs}.json"
        _run_cli([*SWEEP_ARGS[name], "--jobs", str(jobs), "--json", str(out)],
                 cwd=tmp_path)
        blobs[jobs] = out.read_bytes()
    assert blobs[1] == blobs[4], (
        f"{name}: --jobs 4 produced different JSON than --jobs 1"
    )
    assert blobs[1]  # non-vacuous: the sweep actually wrote something


def test_merged_span_stream_is_byte_identical_serial_vs_parallel(tmp_path):
    streams = {}
    for jobs in (1, 3):
        path = tmp_path / f"spans-{jobs}.jsonl"
        _run_cli([*SWEEP_ARGS["chaos"], "--jobs", str(jobs),
                  "--stream-spans", str(path)], cwd=tmp_path)
        streams[jobs] = path.read_bytes()
    assert streams[1] == streams[3]
    assert streams[1]


def test_generic_sweep_subcommand_matches_the_dedicated_one(tmp_path):
    dedicated = tmp_path / "dedicated.json"
    generic = tmp_path / "generic.json"
    _run_cli([*SWEEP_ARGS["chaos"], "--jobs", "1", "--json", str(dedicated)],
             cwd=tmp_path)
    _run_cli(["sweep", "chaos", "--set", "rates=(0.0, 8.0)",
              "--set", "window_s=4.0", "--jobs", "2", "--json", str(generic)],
             cwd=tmp_path)
    assert dedicated.read_bytes() == generic.read_bytes()
