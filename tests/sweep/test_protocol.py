"""The experiment protocol: specs, plans, the registry, result contract."""

import pytest

from repro.experiments import (autoscale_sweep, chaos_sweep,
                               gpu_scaling_sweep, memdurability_sweep)
from repro.experiments.base import (
    ScenarioSpec,
    Sweep,
    SweepPlan,
    SweepResult,
    get_sweep,
    register_sweep,
    registered_sweeps,
    result_to_json,
)
from repro.sweep import sweep_names


def _echo(params, seed):
    return {"params": dict(params), "seed": seed}


def test_scenario_spec_executes_fn_with_params_and_seed():
    spec = ScenarioSpec(fn=_echo, params={"rate": 8.0}, seed=41, label="rate-8")
    assert spec.execute() == {"params": {"rate": 8.0}, "seed": 41}


def test_builtin_sweeps_are_registered():
    assert {"chaos", "autoscale", "gpu_scaling", "memdurability"} <= set(registered_sweeps())
    assert sweep_names() == list(registered_sweeps())


def test_get_sweep_unknown_name_lists_the_registry():
    with pytest.raises(KeyError) as excinfo:
        get_sweep("no-such-sweep")
    message = excinfo.value.args[0]
    assert "no-such-sweep" in message and "chaos" in message


def test_register_sweep_rejects_a_second_sweep_under_the_same_name():
    sweep = get_sweep("chaos")
    # Re-registering the identical object is idempotent...
    assert register_sweep(sweep) is sweep
    # ...but a different object under a taken name is a wiring bug.
    clone = Sweep(name="chaos", description="imposter", plan=sweep.plan,
                  assemble=sweep.assemble, result_type=sweep.result_type)
    with pytest.raises(ValueError):
        register_sweep(clone)


@pytest.mark.parametrize("module", [chaos_sweep, autoscale_sweep,
                                    gpu_scaling_sweep, memdurability_sweep])
def test_default_plans_fix_order_seeds_and_labels(module):
    plan = module.plan_scenarios()
    assert isinstance(plan, SweepPlan)
    assert len(plan) == len(plan.scenarios) > 0
    labels = [spec.label for spec in plan.scenarios]
    assert len(labels) == len(set(labels))
    assert all(isinstance(spec.seed, int) for spec in plan.scenarios)
    # The plan is deterministic: same arguments, same specs.
    again = module.plan_scenarios()
    assert [(s.params, s.seed, s.label) for s in plan.scenarios] == \
           [(s.params, s.seed, s.label) for s in again.scenarios]


def test_plan_seed_fans_out_per_scenario():
    one = chaos_sweep.plan_scenarios(rates=(0.0, 8.0), window_s=4.0, seed=1)
    two = chaos_sweep.plan_scenarios(rates=(0.0, 8.0), window_s=4.0, seed=2)
    assert [s.seed for s in one.scenarios] != [s.seed for s in two.scenarios]


def test_run_serial_result_satisfies_the_sweep_result_protocol():
    result = chaos_sweep.SWEEP.run_serial(rates=(0.0,), window_s=4.0)
    assert isinstance(result, SweepResult)
    assert hasattr(result, "points")
    assert result.to_json() == result_to_json(result)
    assert result.format_report()


def test_legacy_run_shim_matches_run_serial():
    via_shim = chaos_sweep.run(rates=(0.0, 8.0), window_s=4.0, seed=3)
    via_sweep = chaos_sweep.SWEEP.run_serial(rates=(0.0, 8.0), window_s=4.0,
                                             seed=3)
    assert via_shim.to_json() == via_sweep.to_json()
