"""The chaos_sweep experiment: recovery keeps completion high under faults."""

import pytest

from repro.experiments import chaos_sweep
from repro.faults import FaultPlan


def test_default_plan_scales_with_rate():
    assert chaos_sweep.default_plan(0.0, 30.0).empty
    plan = chaos_sweep.default_plan(8.0, 30.0)
    assert len(plan) == 4  # 8 per minute over a 30 s window
    times = [ev.at_s for ev in plan.sorted_events()]
    assert times == sorted(times)
    assert all(0.0 < t < 30.0 for t in times)


def test_sweep_faultless_baseline_and_faulted_point():
    # Rate 24/min over a 10 s window = 4 events, including an immediate
    # node crash — enough to force the client through actual retries.
    result = chaos_sweep.run(rates=(0.0, 24.0), window_s=10.0, seed=0)
    baseline, faulted = result.points
    assert baseline.faults_injected == 0
    assert baseline.invocations > 0
    assert baseline.completion_ratio == 1.0
    assert baseline.retries == 0
    assert faulted.faults_injected > 0
    # The paper's point: reclamation is routine, not fatal — retries keep
    # completion high even under injected faults.
    assert faulted.completion_ratio >= 0.95
    assert faulted.retries >= 1


def test_explicit_plan_runs_one_scenario():
    plan = FaultPlan(name="one-storm").lease_storm(at_s=1.0, count=2)
    result = chaos_sweep.run(plan=plan, window_s=5.0, seed=1)
    (point,) = result.points
    assert point.label == "one-storm"
    assert point.faults_injected == 1
    assert point.completion_ratio >= 0.95


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        chaos_sweep.run(window_s=0.0)


def test_format_report_mentions_the_sweep():
    result = chaos_sweep.run(rates=(0.0,), window_s=5.0, seed=0)
    report = chaos_sweep.format_report(result)
    assert "Chaos sweep" in report
    assert "p95 (ms)" in report
