"""The fault subsystem's determinism contract (ISSUE tentpole requirement).

Same seed + same plan ⇒ the same faults hit the same victims at the same
instants, and the whole chaos run replays *byte-identically* through the
span exporter.
"""

import os
import pathlib
import subprocess
import sys

from repro.faults import FaultPlan

from .conftest import build_platform

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

# Entity ids (spans, containers, invocations, leases) are process-global
# counters, so the byte-identical claim holds per interpreter run — the
# same claim the CLI makes.  Each run therefore gets a fresh process.
_CHAOS_EXPORT = """
import sys
from repro.experiments import chaos_sweep
from repro.telemetry import TelemetryCollector, write_spans_jsonl
collector = TelemetryCollector()
with collector:
    chaos_sweep.run(rates=(8.0,), window_s=8.0, seed=3)
write_spans_jsonl(collector.spans, sys.argv[1])
"""


def _chaos_span_bytes(path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _CHAOS_EXPORT, str(path)],
        check=True, env=env, timeout=120,
    )
    return path.read_bytes()


def test_same_seed_chaos_run_exports_byte_identical_spans(tmp_path):
    first = _chaos_span_bytes(tmp_path / "a.jsonl")
    second = _chaos_span_bytes(tmp_path / "b.jsonl")
    assert len(first) > 0
    assert first == second


def test_injector_schedule_replays_exactly():
    plan = (FaultPlan(name="mix")
            .lease_storm(at_s=0.5, count=2)
            .node_crash(at_s=1.0, duration_s=1.0, immediate=True)
            .straggler(at_s=2.0, duration_s=0.5, multiplier=10.0))

    def one_run():
        platform = build_platform(plan=FaultPlan.from_json(plan.to_json()),
                                  seed=11, runtime_s=0.02)
        client = platform.client("n0000")
        latencies = []

        def driver():
            while platform.env.now < 4.0:
                result = yield client.invoke("noop", payload_bytes=64)
                latencies.append((result.ok, platform.env.now))

        platform.process(driver())
        platform.run()
        return platform.injector.injected, latencies

    assert one_run() == one_run()
