"""RetryPolicy and DegradedResult behave as documented."""

import numpy as np
import pytest

from repro.faults import DegradedResult, RecoveryOutcome, RetryPolicy
from repro.rfaas import InvocationStatus
from repro.rfaas.messages import InvocationRequest, InvocationResult


def test_default_policy_matches_legacy_redirect_knob():
    assert RetryPolicy() == RetryPolicy.from_redirects(3)
    assert RetryPolicy().max_redirects == 3
    assert RetryPolicy.from_redirects(0).max_attempts == 1
    assert RetryPolicy().backoff(1) == 0.0  # legacy: retry immediately


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"backoff_base_s": -1.0},
    {"backoff_max_s": -1.0},
    {"backoff_multiplier": 0.5},
    {"jitter_frac": 1.5},
    {"timeout_s": 0.0},
])
def test_policy_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_from_redirects_rejects_negative():
    with pytest.raises(ValueError):
        RetryPolicy.from_redirects(-1)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.5)
    assert [policy.backoff(i) for i in (1, 2, 3, 4, 5)] == [
        pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4), 0.5, 0.5,
    ]
    with pytest.raises(ValueError):
        policy.backoff(0)


def test_jittered_backoff_is_seeded_and_bounded():
    policy = RetryPolicy(backoff_base_s=0.1, jitter_frac=0.5)
    with pytest.raises(ValueError):
        policy.backoff(1)  # jitter without an rng is an error, not silent
    a = policy.backoff(1, np.random.default_rng(7))
    b = policy.backoff(1, np.random.default_rng(7))
    assert a == b  # same seed, same delay
    assert 0.05 <= a <= 0.15


def _result(status=InvocationStatus.OK):
    return InvocationResult(
        request=InvocationRequest(function="noop", payload_bytes=0), status=status,
    )


def test_degraded_result_story():
    clean = DegradedResult(result=_result(), outcome=RecoveryOutcome.OK,
                           attempts=1, retries=0, elapsed_s=0.01)
    assert clean.ok and not clean.degraded
    assert "ok after 1 attempt(s)" in clean.describe()

    recovered = DegradedResult(
        result=_result(), outcome=RecoveryOutcome.RECOVERED,
        attempts=3, retries=2, elapsed_s=0.5, recovery_s=0.4,
        error=TimeoutError("boom"),
    )
    assert recovered.ok and recovered.degraded
    text = recovered.describe()
    assert "recovered after 3 attempt(s)" in text
    assert "2 retries" in text and "TimeoutError" in text

    failed = DegradedResult(
        result=_result(InvocationStatus.TERMINATED),
        outcome=RecoveryOutcome.GAVE_UP, attempts=4, retries=3, elapsed_s=1.0,
    )
    assert not failed.ok and failed.degraded
