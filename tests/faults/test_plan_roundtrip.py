"""FaultPlan JSON round-trips: every builder, every kind, exact fields.

The ``repro chaos --plan`` / ``repro certify`` workflows ship plans
through JSON files; a field silently dropped (or defaulted differently)
on the way back would replay a *different* storm than the one reviewed.
Round-tripping every fluent builder pins the serialization contract.
"""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan


def full_plan() -> FaultPlan:
    """One event per builder, every non-default knob set."""
    return (FaultPlan(name="everything")
            .node_crash(at_s=1.0, node="n0001", duration_s=4.0, immediate=False)
            .lease_storm(at_s=2.0, count=5)
            .network_degrade(at_s=3.0, duration_s=2.0, latency_factor=7.5,
                             bandwidth_factor=0.4, drop_rate=0.03)
            .network_partition(at_s=4.0, duration_s=1.5, node="n0002")
            .straggler(at_s=5.0, duration_s=2.5, multiplier=12.0, node="n0003")
            .warmpool_pressure(at_s=6.0, fraction=0.75, node="n0001", swap=False)
            .memservice_kill(at_s=7.0, node="n0002")
            .gpu_device_loss(at_s=8.0, node="n0003", duration_s=3.0)
            .manager_crash(at_s=9.0, duration_s=2.0)
            .manager_partition(at_s=10.0, duration_s=1.0))


def test_every_builder_covers_a_distinct_taxonomy_kind():
    plan = full_plan()
    assert [ev.kind for ev in plan] == list(FaultKind.ALL)


def test_json_round_trip_is_lossless():
    plan = full_plan()
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.name == plan.name
    assert len(clone) == len(plan)
    for original, restored in zip(plan, clone):
        assert restored == original  # frozen dataclass: field-exact


def test_dict_round_trip_is_lossless():
    plan = full_plan()
    assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()


def test_file_round_trip(tmp_path):
    path = tmp_path / "plan.json"
    plan = full_plan()
    plan.save(str(path))
    loaded = FaultPlan.load(str(path))
    assert loaded.to_json() == plan.to_json()


def test_manager_events_round_trip_their_duration():
    plan = (FaultPlan(name="mgr")
            .manager_crash(at_s=1.0, duration_s=2.5)
            .manager_partition(at_s=3.0, duration_s=0.5))
    clone = FaultPlan.from_json(plan.to_json())
    crash, partition = list(clone)
    assert crash.kind == FaultKind.MANAGER_CRASH
    assert crash.duration_s == 2.5 and crash.node is None
    assert partition.kind == FaultKind.MANAGER_PARTITION
    assert partition.duration_s == 0.5


def test_unknown_kind_raises_and_names_the_taxonomy():
    with pytest.raises(ValueError) as exc:
        FaultEvent(kind="power_outage", at_s=1.0)
    message = str(exc.value)
    assert "power_outage" in message
    for kind in FaultKind.ALL:
        assert kind in message  # the error teaches the valid vocabulary


def test_unknown_kind_rejected_on_deserialization_too():
    data = {"name": "bad", "events": [{"kind": "power_outage", "at_s": 1.0}]}
    with pytest.raises(ValueError):
        FaultPlan.from_dict(data)


def test_shifted_preserves_round_trip_equality():
    shifted = full_plan().shifted(2.5)
    assert FaultPlan.from_json(shifted.to_json()).to_dict() == shifted.to_dict()
    assert [ev.at_s for ev in shifted] == [
        at + 2.5 for at in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]]
