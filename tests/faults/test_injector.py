"""The injector applies every fault kind through public platform hooks."""

import pytest

from repro.faults import FaultPlan, Injector, RecoveryOutcome, RetryPolicy

from .conftest import build_platform


def test_empty_plan_is_a_guaranteed_noop():
    platform = build_platform(plan=FaultPlan())
    assert platform.injector is None  # Platform does not even build one
    injector = Injector(platform.env, FaultPlan(), platform.manager,
                        fabric=platform.fabric)
    assert injector.start() is None
    assert not injector.started
    platform.run()
    assert injector.injected == [] and injector.skipped == []


def test_injector_cannot_start_twice():
    platform = build_platform(plan=FaultPlan().lease_storm(at_s=1.0))
    with pytest.raises(RuntimeError):
        platform.injector.start()


def test_network_faults_require_a_fabric():
    platform = build_platform()
    plan = FaultPlan().network_degrade(at_s=1.0, duration_s=1.0, latency_factor=2.0)
    with pytest.raises(ValueError):
        Injector(platform.env, plan, platform.manager, fabric=None)


def test_node_crash_then_timed_recovery():
    plan = FaultPlan(name="crash").node_crash(at_s=1.0, node="n0001", duration_s=2.0)
    platform = build_platform(plan=plan)
    seen = {}

    def probe():
        yield platform.env.timeout(1.5)
        seen["down"] = platform.manager.is_registered("n0001")
        yield platform.env.timeout(2.0)
        seen["up"] = platform.manager.is_registered("n0001")

    platform.process(probe())
    platform.run()
    assert seen == {"down": False, "up": True}
    assert platform.injector.injected == [(1.0, "node_crash", "n0001")]
    registry = platform.telemetry.metrics
    assert registry.get("repro_faults_node_recoveries_total").value == 1
    assert registry.get("repro_faults_injected_total", {"kind": "node_crash"}).value == 1
    # The node comes back with its original capacity.
    assert platform.manager.node_info("n0001").cores_total == 4


def test_crash_of_unknown_node_is_skipped_not_fatal():
    plan = FaultPlan().node_crash(at_s=0.5, node="n9999")
    platform = build_platform(plan=plan)
    platform.run()
    assert platform.injector.injected == []
    assert [ev.node for ev in platform.injector.skipped] == ["n9999"]


def test_lease_storm_revokes_and_client_releases():
    plan = FaultPlan(name="storm").lease_storm(at_s=0.05, count=2)
    platform = build_platform(plan=plan, runtime_s=0.02)
    client = platform.client("n0000")
    results = []

    def driver():
        for _ in range(5):
            result = yield client.invoke("noop", payload_bytes=64)
            results.append(result)

    platform.process(driver())
    platform.run()
    assert len(results) == 5 and all(r.ok for r in results)
    assert (0.05, "lease_storm", None) in platform.injector.injected
    registry = platform.telemetry.metrics
    assert registry.get("repro_manager_revoked_leases_total").value >= 1


def test_straggler_sets_and_restores_dispatch_multiplier():
    plan = FaultPlan().straggler(at_s=1.0, duration_s=1.0, multiplier=8.0, node="n0001")
    platform = build_platform(plan=plan)
    executor = platform.manager.node_info("n0001").executor
    seen = {}

    def probe():
        yield platform.env.timeout(1.5)
        seen["during"] = executor.dispatch_multiplier
        yield platform.env.timeout(1.0)
        seen["after"] = executor.dispatch_multiplier

    platform.process(probe())
    platform.run()
    assert seen == {"during": 8.0, "after": 1.0}


def test_warmpool_pressure_evicts_parked_containers():
    plan = FaultPlan().warmpool_pressure(at_s=1.0, fraction=1.0, node="n0001")
    platform = build_platform(plan=plan)
    info = platform.manager.node_info("n0001")
    info.executor.prewarm(platform.image)
    assert info.warm_pool.resident_bytes() > 0
    platform.run()
    assert info.warm_pool.resident_bytes() == 0
    assert platform.injector.injected == [(1.0, "warmpool_pressure", "n0001")]


def test_network_degrade_conditions_the_fabric_then_restores():
    plan = FaultPlan().network_degrade(at_s=0.5, duration_s=1.0, latency_factor=4.0,
                                       bandwidth_factor=0.5, drop_rate=0.1)
    platform = build_platform(plan=plan)
    conditioner = platform.fabric.conditioner
    seen = {}

    def probe():
        yield platform.env.timeout(1.0)
        seen["during"] = (conditioner.latency_factor, conditioner.bandwidth_factor,
                          conditioner.drop_rate)
        yield platform.env.timeout(1.0)
        seen["pristine"] = conditioner.pristine

    platform.process(probe())
    platform.run()
    assert seen == {"during": (4.0, 0.5, 0.1), "pristine": True}


def test_partition_mid_flight_forces_redirect_to_healthy_node():
    # The client leases n0001 (first fit) and starts a 1 s function; the
    # partition lands mid-execution, so the response transfer is dropped
    # and the retry loop re-runs the invocation on an unpartitioned node.
    plan = FaultPlan().network_partition(at_s=0.5, duration_s=2.0, node="n0001")
    platform = build_platform(plan=plan)
    platform.functions.register("slow", platform.image, runtime_s=1.0, output_bytes=1)
    client = platform.client("n0000", retry_policy=RetryPolicy(max_attempts=4))
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("slow", payload_bytes=64)

    platform.process(driver())
    platform.run()
    detailed = out["d"]
    assert detailed.ok
    assert detailed.outcome is RecoveryOutcome.RECOVERED
    assert detailed.result.node_name != "n0001"
    assert detailed.retries >= 1


def test_same_seed_picks_identical_victims():
    def injected_for(seed):
        plan = (FaultPlan()
                .straggler(at_s=0.5, duration_s=0.1)
                .node_crash(at_s=1.0, duration_s=0.5)
                .warmpool_pressure(at_s=2.0, fraction=0.5))
        platform = build_platform(plan=plan, seed=seed)
        platform.run()
        return platform.injector.injected

    assert injected_for(3) == injected_for(3)
