"""Shared fixture for fault-injection tests: a small deterministic platform."""

from repro.api import ClusterSpec, Platform
from repro.containers import Image
from repro.interference import ResourceDemand
from repro.network import IBVERBS

MiB = 1024**2
GiB = 1024**3


def build_platform(nodes=5, executors=("n0001", "n0002", "n0003"), plan=None,
                   seed=0, runtime_s=0.0):
    """A jitterless platform with hot executor nodes and a ``noop`` function.

    The image is exposed as ``platform.image`` so tests can prewarm or
    register further functions against it.
    """
    platform = Platform.build(
        ClusterSpec(nodes=nodes, provider=IBVERBS, jitter=0.0),
        seed=seed, telemetry=True, faults=plan,
    )
    for name in executors:
        platform.register_node(name, cores=4, memory_bytes=8 * GiB)
    image = Image("fn-image", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=runtime_s,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    platform.image = image
    return platform
