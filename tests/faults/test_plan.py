"""FaultPlan / FaultEvent: plain data, validated, JSON round-trippable."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan


def sample_plan():
    return (
        FaultPlan(name="sample")
        .node_crash(at_s=5.0, node="n0001", duration_s=20.0, immediate=False)
        .lease_storm(at_s=8.0, count=4)
        .network_degrade(at_s=12.0, duration_s=3.0, latency_factor=10.0,
                         bandwidth_factor=0.25, drop_rate=0.05)
        .network_partition(at_s=13.0, duration_s=2.0, node="n0002")
        .straggler(at_s=14.0, duration_s=1.0, multiplier=30.0)
        .warmpool_pressure(at_s=15.0, fraction=0.5, swap=False)
        .memservice_kill(at_s=16.0, node="n0003")
        .gpu_device_loss(at_s=17.0, node="n0004", duration_s=5.0)
        .manager_crash(at_s=18.0, duration_s=4.0)
        .manager_partition(at_s=19.0, duration_s=2.0)
    )


def test_fluent_builders_cover_the_taxonomy():
    plan = sample_plan()
    assert len(plan) == 10
    assert [ev.kind for ev in plan] == list(FaultKind.ALL)
    assert not plan.empty
    assert FaultPlan().empty


def test_sorted_events_is_stable_on_ties():
    plan = (FaultPlan()
            .lease_storm(at_s=2.0, count=1)
            .lease_storm(at_s=1.0, count=2)
            .lease_storm(at_s=1.0, count=3))
    ordered = plan.sorted_events()
    assert [ev.at_s for ev in ordered] == [1.0, 1.0, 2.0]
    # The two t=1.0 events keep their plan order.
    assert [ev.count for ev in ordered] == [2, 3, 1]


def test_shifted_delays_every_event_and_copies():
    plan = sample_plan()
    shifted = plan.shifted(10.0)
    assert [ev.at_s for ev in shifted] == [ev.at_s + 10.0 for ev in plan]
    assert [ev.at_s for ev in plan] == [5.0, 8.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0, 19.0]  # untouched
    assert shifted.name == plan.name


def test_json_round_trip_preserves_every_field():
    plan = sample_plan()
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.name == plan.name
    assert clone.events == plan.events


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "plan.json"
    plan = sample_plan()
    plan.save(str(path))
    assert FaultPlan.load(str(path)).events == plan.events


def test_from_dict_defaults():
    plan = FaultPlan.from_dict({})
    assert plan.empty and plan.name == "plan"
    event = FaultEvent.from_dict({"kind": "lease_storm", "at_s": 1.0})
    assert event.count == 1 and event.duration_s == 0.0


@pytest.mark.parametrize("kwargs", [
    {"kind": "power_surge", "at_s": 0.0},            # unknown kind
    {"kind": "node_crash", "at_s": -1.0},            # negative time
    {"kind": "node_crash", "at_s": 0.0, "duration_s": -1.0},
    {"kind": "straggler", "at_s": 0.0, "magnitude": 0.0},
    {"kind": "network_degrade", "at_s": 0.0, "bandwidth_factor": 0.0},
    {"kind": "network_degrade", "at_s": 0.0, "drop_rate": 1.5},
    {"kind": "lease_storm", "at_s": 0.0, "count": 0},
    {"kind": "warmpool_pressure", "at_s": 0.0, "magnitude": 2.0},  # fraction > 1
])
def test_event_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        FaultEvent(**kwargs)
