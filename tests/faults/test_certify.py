"""The chaos-certification harness: checkers, schedules, and full runs."""

import numpy as np
import pytest

from repro.controlplane import LogRecord
from repro.faults import (
    FaultKind,
    certify,
    check_conservation,
    check_epoch_monotonic,
    check_no_double_grant,
    check_single_primary,
    random_plan,
)


def _rec(index, op, payload, epoch=1):
    return LogRecord(index=index, epoch=epoch, op=op, at_s=float(index),
                     payload=payload)


def _register(index, node, cores=4, epoch=1):
    return _rec(index, "register",
                {"node": node, "registration": {"cores": cores}}, epoch)


def _grant(index, lease_id, node, cores=1, epoch=1):
    return _rec(index, "grant",
                {"lease_id": lease_id, "node": node, "cores": cores}, epoch)


# -- checker unit tests (synthetic logs) -------------------------------------

def test_conservation_flags_silent_drops():
    assert check_conservation(10, {"ok": 10}) == []
    assert check_conservation(10, {"ok": 8, "gave_up": 2}) == []
    problems = check_conservation(10, {"ok": 9})
    assert problems and "10" in problems[0] and "9" in problems[0]


def test_double_grant_is_flagged():
    log = [_register(1, "n0001"),
           _grant(2, 7, "n0001"),
           _grant(3, 7, "n0001")]
    problems = check_no_double_grant(log)
    assert len(problems) == 1 and "double grant" in problems[0]


def test_grant_after_release_is_clean():
    log = [_register(1, "n0001"),
           _grant(2, 7, "n0001"),
           _rec(3, "release", {"lease_id": 7}),
           _grant(4, 7, "n0001")]
    assert check_no_double_grant(log) == []


def test_overcommit_and_unregistered_node_are_flagged():
    log = [_register(1, "n0001", cores=2),
           _grant(2, 1, "n0001", cores=2),
           _grant(3, 2, "n0001", cores=1),
           _grant(4, 3, "n0002", cores=1)]
    problems = check_no_double_grant(log)
    assert any("over-committed" in p for p in problems)
    assert any("unregistered node n0002" in p for p in problems)


def test_remove_frees_the_node_and_its_leases():
    log = [_register(1, "n0001", cores=2),
           _grant(2, 1, "n0001", cores=2),
           _rec(3, "remove", {"node": "n0001"}),
           _register(4, "n0001", cores=2),
           _grant(5, 2, "n0001", cores=2)]
    assert check_no_double_grant(log) == []


def test_single_primary_flags_duplicate_and_regressing_epochs():
    class E:
        def __init__(self, epoch, rank):
            self.epoch, self.rank = epoch, rank

    assert check_single_primary([E(1, 0), E(2, 1)]) == []
    assert any("elected twice" in p
               for p in check_single_primary([E(2, 0), E(2, 1)]))
    assert any("did not advance" in p
               for p in check_single_primary([E(3, 0), E(2, 1)]))


def test_epoch_monotonic_flags_regressions():
    good = [_rec(1, "grant", {"lease_id": 1}, epoch=1),
            _rec(2, "grant", {"lease_id": 2}, epoch=3)]
    assert check_epoch_monotonic(good) == []
    bad = good + [_rec(3, "grant", {"lease_id": 3}, epoch=2)]
    problems = check_epoch_monotonic(bad)
    assert problems and "backwards" in problems[0]


# -- randomized schedules ----------------------------------------------------

def test_random_plan_is_seed_deterministic():
    a = random_plan(np.random.default_rng(42), events=12)
    b = random_plan(np.random.default_rng(42), events=12)
    assert a.to_json() == b.to_json()
    c = random_plan(np.random.default_rng(43), events=12)
    assert a.to_json() != c.to_json()


def test_random_plan_draws_from_the_whole_taxonomy():
    plan = random_plan(np.random.default_rng(0), events=200)
    assert {ev.kind for ev in plan} == set(FaultKind.ALL)
    assert all(0.0 < ev.at_s < 0.85 * 8.0 + 1e-9 for ev in plan)


def test_random_plan_respects_a_kind_subset():
    plan = random_plan(np.random.default_rng(0), events=20,
                       kinds=(FaultKind.MANAGER_CRASH,))
    assert {ev.kind for ev in plan} == {FaultKind.MANAGER_CRASH}


# -- the full harness --------------------------------------------------------

def test_certify_clean_run_passes_every_invariant():
    report = certify(budget=1, seed=0, standbys=1, window_s=5.0)
    assert report.ok
    assert report.violations == []
    row = report.rows[0]
    assert row["invocations"] > 0
    assert set(row["invariants"]) == {
        "conservation", "no_double_grant", "single_primary", "epoch_monotonic",
    }
    assert "PASS" in report.format_report()


def test_certify_is_deterministic_across_calls():
    a = certify(budget=2, seed=7, standbys=1, window_s=5.0)
    b = certify(budget=2, seed=7, standbys=1, window_s=5.0)
    assert a.to_json() == b.to_json()


def test_certify_k0_loses_work_but_never_lies_about_it():
    """Zero standbys lose invocations to a manager crash — but the loss
    is *accounted* (conservation holds): nothing silently vanishes."""
    report = certify(budget=2, seed=3, standbys=0, window_s=5.0,
                     kinds=(FaultKind.MANAGER_CRASH, FaultKind.LEASE_STORM))
    assert report.ok  # invariants hold even while work is lost
    assert any(row["completion_ratio"] < 0.9 for row in report.rows)


def test_certify_report_serializes(tmp_path):
    report = certify(budget=1, seed=0, standbys=1, window_s=5.0)
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["budget"] == 1
    import json

    assert json.loads(report.to_json())["rows"] == payload["rows"]


def test_certify_rejects_nothing_silently():
    with pytest.raises(TypeError):
        certify(budget=1, bogus_kwarg=True)
