"""Cluster aggregate state and dragonfly topology tests."""

import pytest

from repro.cluster import (
    Cluster,
    DAINT_GPU,
    DAINT_MC,
    DragonflyTopology,
    Node,
    build_daint,
)

GiB = 1024**3


def small_cluster(n=4):
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", n, DAINT_MC)
    return cluster


def test_add_and_lookup_nodes():
    cluster = small_cluster(3)
    assert len(cluster) == 3
    assert "n0001" in cluster
    assert cluster.node("n0002").name == "n0002"
    assert cluster.node_index("n0000") == 0


def test_duplicate_node_rejected():
    cluster = Cluster()
    cluster.add_node(Node("a", DAINT_MC))
    with pytest.raises(ValueError):
        cluster.add_node(Node("a", DAINT_MC))


def test_idle_node_tracking():
    cluster = small_cluster(4)
    assert cluster.idle_node_count() == 4
    cluster.node("n0000").allocate("job", cores=36)
    assert cluster.idle_node_count() == 3
    cluster.node("n0001").draining = True
    assert cluster.idle_node_count() == 2


def test_utilization_aggregates():
    cluster = small_cluster(2)
    cluster.node("n0000").allocate("job", cores=36, memory_bytes=64 * GiB)
    assert cluster.core_utilization() == pytest.approx(0.5)
    assert cluster.memory_utilization() == pytest.approx(0.25)


def test_find_fit_first_deterministic():
    cluster = small_cluster(3)
    cluster.node("n0000").allocate("job", cores=36)
    found = cluster.find_fit(cores=4)
    assert found.name == "n0001"
    found = cluster.find_fit(cores=4, exclude=["n0001"])
    assert found.name == "n0002"


def test_find_fit_gpu_requires_gpu_node():
    cluster = Cluster()
    cluster.add_nodes("mc", 2, DAINT_MC)
    cluster.add_nodes("gpu", 1, DAINT_GPU)
    found = cluster.find_fit(cores=1, gpus=1)
    assert found.name == "gpu0000"
    assert cluster.find_fit(gpus=2) is None


def test_hop_latency_levels():
    topo = DragonflyTopology(nodes_per_group=4, intra_group_hops=2, inter_group_hops=5, hop_latency_s=100e-9)
    assert topo.hops(0, 0) == 0
    assert topo.hops(0, 3) == 2
    assert topo.hops(0, 4) == 5
    assert topo.latency(0, 4) == pytest.approx(500e-9)


def test_topology_validation():
    with pytest.raises(ValueError):
        DragonflyTopology(nodes_per_group=0)
    with pytest.raises(ValueError):
        DragonflyTopology(intra_group_hops=6, inter_group_hops=5)
    topo = DragonflyTopology()
    with pytest.raises(ValueError):
        topo.group_of(-1)


def test_cluster_hop_latency_by_name():
    cluster = small_cluster(4)  # groups of 2
    assert cluster.hop_latency("n0000", "n0000") == 0
    assert cluster.hop_latency("n0000", "n0001") > 0
    assert cluster.hop_latency("n0000", "n0002") > cluster.hop_latency("n0000", "n0001")


def test_build_daint_shapes():
    daint = build_daint(mc_nodes=10, gpu_nodes=5)
    assert len(daint) == 15
    mc = daint.node("mc0000")
    gpu = daint.node("gpu0000")
    assert mc.total_cores == 36 and mc.total_memory == 128 * GiB
    assert gpu.total_cores == 12 and gpu.total_gpus == 1
