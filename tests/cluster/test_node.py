"""Node allocation bookkeeping tests."""

import pytest

from repro.cluster import AllocationError, DAINT_GPU, DAINT_MC, Node

GiB = 1024**3


def make_node(spec=DAINT_MC):
    return Node("n0", spec)


def test_fresh_node_is_idle():
    node = make_node()
    assert node.is_idle
    assert node.free_cores == 36
    assert node.free_memory == 128 * GiB
    assert node.total_gpus == 0


def test_allocate_and_release_roundtrip():
    node = make_node()
    alloc = node.allocate("job1", cores=32, memory_bytes=64 * GiB)
    assert node.allocated_cores == 32
    assert node.free_cores == 4
    assert not node.is_idle
    node.release(alloc)
    assert node.is_idle
    assert node.free_cores == 36
    assert node.free_memory == 128 * GiB


def test_memory_only_allocation():
    """Software disaggregation allocates memory without cores (Sec. III-C)."""
    node = make_node()
    alloc = node.allocate("memsvc", memory_bytes=1 * GiB, kind="memservice")
    assert node.allocated_cores == 0
    assert node.allocated_memory == 1 * GiB
    assert alloc.kind == "memservice"


def test_over_allocation_rejected():
    node = make_node()
    node.allocate("job1", cores=36)
    with pytest.raises(AllocationError):
        node.allocate("job2", cores=1)
    with pytest.raises(AllocationError):
        node.allocate("job2", memory_bytes=129 * GiB)


def test_gpu_allocation_assigns_device_ids():
    node = Node("g0", DAINT_GPU)
    alloc = node.allocate("fn", cores=1, gpus=1, kind="function")
    assert alloc.gpu_ids == (0,)
    assert node.free_gpu_ids == frozenset()
    with pytest.raises(AllocationError):
        node.allocate("fn2", cores=1, gpus=1)
    node.release(alloc)
    assert node.free_gpu_ids == {0}


def test_empty_and_negative_allocations_rejected():
    node = make_node()
    with pytest.raises(ValueError):
        node.allocate("x")
    with pytest.raises(ValueError):
        node.allocate("x", cores=-1)


def test_draining_node_rejects_allocations():
    node = make_node()
    node.draining = True
    assert not node.can_allocate(cores=1)
    with pytest.raises(AllocationError):
        node.allocate("x", cores=1)


def test_release_unknown_allocation_raises():
    node = make_node()
    other = Node("n1", DAINT_MC)
    alloc = other.allocate("x", cores=1)
    with pytest.raises(KeyError):
        node.release(alloc)


def test_release_owner_frees_everything():
    node = make_node()
    node.allocate("fn", cores=1, kind="function")
    node.allocate("fn", memory_bytes=GiB, kind="function")
    node.allocate("job", cores=4, kind="batch")
    released = node.release_owner("fn")
    assert len(released) == 2
    assert node.allocated_cores == 4
    assert node.allocated_memory == 0


def test_utilization_fractions():
    node = make_node()
    node.allocate("job", cores=18, memory_bytes=32 * GiB)
    assert node.core_utilization() == pytest.approx(0.5)
    assert node.memory_utilization() == pytest.approx(0.25)


def test_allocations_of_kind():
    node = make_node()
    node.allocate("j", cores=4, kind="batch")
    node.allocate("f", cores=1, kind="function")
    assert len(node.allocations_of_kind("batch")) == 1
    assert len(node.allocations_of_kind("function")) == 1
    assert len(node.allocations) == 2
