"""Property-based tests of the discrete-event engine."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
def test_equal_timestamps_fifo(delays):
    """Processes scheduled for the same instant run in creation order."""
    env = Environment()
    order = []

    def proc(tag, d):
        yield env.timeout(d)
        order.append(tag)

    # All equal delays: strict FIFO by construction order.
    for tag in range(len(delays)):
        env.process(proc(tag, 5.0))
    env.run()
    assert order == list(range(len(delays)))


@given(
    seed_delays=st.lists(
        st.tuples(st.floats(min_value=0, max_value=10), st.floats(min_value=0, max_value=10)),
        min_size=1, max_size=20,
    )
)
def test_run_is_deterministic(seed_delays):
    """Two identical simulations produce identical traces."""

    def simulate():
        env = Environment()
        trace = []

        def proc(tag, d1, d2):
            yield env.timeout(d1)
            trace.append((tag, env.now))
            yield env.timeout(d2)
            trace.append((tag, env.now))

        for tag, (d1, d2) in enumerate(seed_delays):
            env.process(proc(tag, d1, d2))
        env.run()
        return trace

    assert simulate() == simulate()


@settings(max_examples=50)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    requests=st.lists(
        st.tuples(st.integers(min_value=1, max_value=8), st.floats(min_value=0.1, max_value=5)),
        min_size=1, max_size=25,
    ),
)
def test_resource_never_oversubscribed(capacity, requests):
    """At no simulated instant do granted slots exceed capacity."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    requests = [(min(count, capacity), hold) for count, hold in requests]
    violations = []

    def user(count, hold):
        with res.request(count=count) as req:
            yield req
            if res.count > res.capacity:
                violations.append(res.count)
            yield env.timeout(hold)

    for count, hold in requests:
        env.process(user(count, hold))
    env.run()
    assert not violations
    assert res.count == 0            # everything released
    assert res.queue_length == 0     # nobody stranded


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0.1, max_value=10)),
        min_size=1, max_size=30,
    )
)
def test_container_level_stays_in_bounds(ops):
    from repro.sim import Container

    env = Environment()
    tank = Container(env, capacity=100, init=50)
    observed = []

    def actor(is_put, amount):
        amount = min(amount, 10.0)
        if is_put:
            yield tank.put(amount)
        else:
            yield tank.get(amount)
        observed.append(tank.level)

    for is_put, amount in ops:
        env.process(actor(is_put, amount))
    env.run(until=1000)
    assert all(0 - 1e-9 <= lvl <= 100 + 1e-9 for lvl in observed)
