"""Property-based tests of warm pools, leases, billing and node accounting."""

from hypothesis import given, settings, strategies as st

from repro.cluster import DAINT_MC, Node
from repro.containers import ContainerState, Image, SARUS, WarmPool
from repro.disagg import JobBill
from repro.interference import InterferenceModel, ResourceDemand
from repro.sim import Environment

MiB = 1024**2
GiB = 1024**3


@settings(max_examples=40)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["acquire", "release", "reclaim", "drain"]),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=40,
    )
)
def test_warm_pool_memory_accounting_never_leaks(ops):
    """Node memory allocated by the pool always equals resident containers."""
    env = Environment()
    node = Node("n0", DAINT_MC)
    pool = WarmPool(env, node, SARUS)
    images = [Image(f"img{i}", size_bytes=100 * MiB, runtime_memory_bytes=256 * MiB)
              for i in range(4)]
    in_use = []
    for op, idx in ops:
        if op == "acquire":
            result = pool.acquire(images[idx])
            in_use.append(result.container)
        elif op == "release" and in_use:
            pool.release(in_use.pop())
        elif op == "reclaim":
            pool.reclaim(idx * 300 * MiB, swap=bool(idx % 2))
        elif op == "drain":
            pool.drain()
        # Invariant: allocated container memory == warm + in-use footprint.
        expected = pool.resident_bytes() + sum(
            c.image.runtime_memory_bytes for c in in_use
        )
        assert node.allocated_memory == expected
    # Cleanup path: discard everything, memory returns to zero.
    pool.drain()
    for container in in_use:
        pool.discard(container)
    assert node.allocated_memory == 0


@settings(max_examples=40)
@given(
    cores=st.integers(min_value=1, max_value=36),
    nodes=st.integers(min_value=1, max_value=64),
    runtime=st.floats(min_value=1.0, max_value=1e6),
    slowdown=st.floats(min_value=1.0, max_value=1.2),
)
def test_billing_saving_matches_discount_minus_overhead(cores, nodes, runtime, slowdown):
    bill = JobBill(nodes=nodes, node_cores=36, requested_cores_per_node=cores,
                   runtime_s=runtime, slowdown=slowdown)
    # shared/exclusive == (cores/36) * slowdown exactly.
    ratio = bill.shared_cost() / bill.exclusive_cost()
    assert abs(ratio - (cores / 36) * slowdown) < 1e-9
    # Full-node request with any slowdown is never worth it.
    if cores == 36 and slowdown > 1.0:
        assert not bill.sharing_worth_it()


@settings(max_examples=40)
@given(
    n_instances=st.integers(min_value=1, max_value=36),
    membw=st.floats(min_value=0.0, max_value=15e9),
    frac=st.floats(min_value=0.0, max_value=0.95),
)
def test_interference_efficiency_bounded(n_instances, membw, frac):
    model = InterferenceModel()
    demand = ResourceDemand(cores=1, membw=membw, llc_bytes=4 * MiB, frac_membw=frac)
    eff = model.efficiency(DAINT_MC, demand, n_instances)
    assert 0.0 < eff <= 1.0 + 1e-9


@settings(max_examples=40)
@given(
    demands=st.lists(
        st.tuples(st.integers(min_value=1, max_value=6),
                  st.floats(min_value=0, max_value=12e9),
                  st.floats(min_value=0, max_value=0.9)),
        min_size=1, max_size=6,
    )
)
def test_interference_monotone_in_tenants(demands):
    """Adding a tenant never speeds up the existing ones."""
    model = InterferenceModel()
    vec = [ResourceDemand(cores=c, membw=m, llc_bytes=8 * MiB, frac_membw=f)
           for c, m, f in demands]
    if sum(d.cores for d in vec) + 1 > DAINT_MC.cores:
        return  # would not fit
    before = model.slowdowns(DAINT_MC, vec)
    extra = ResourceDemand(cores=1, membw=8e9, llc_bytes=16 * MiB, frac_membw=0.6)
    after = model.slowdowns(DAINT_MC, vec + [extra])
    for b, a in zip(before, after):
        assert a >= b - 1e-9


@settings(max_examples=30)
@given(
    lease_plan=st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),
                  st.integers(min_value=0, max_value=2 * GiB)),
        min_size=1, max_size=10,
    )
)
def test_manager_lease_accounting_conserves_resources(lease_plan):
    import numpy as np

    from repro.cluster import Cluster
    from repro.network import DrcManager
    from repro.rfaas import NoCapacityError, ResourceManager

    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 1, DAINT_MC)
    manager = ResourceManager(env, cluster, drc=DrcManager(),
                              rng=np.random.default_rng(0))
    registered = manager.register_node("n0000", cores=16, memory_bytes=8 * GiB)
    leases = []
    for cores, memory in lease_plan:
        try:
            lease, _ = manager.lease(client="c", cores=cores, memory_bytes=memory)
            leases.append(lease)
        except NoCapacityError:
            pass
        # Invariant: free + leased == registered totals.
        leased_cores = sum(l.cores for l in leases)
        leased_mem = sum(l.memory_bytes for l in leases)
        assert registered.cores_free + leased_cores == 16
        assert registered.memory_free + leased_mem == 8 * GiB
        # Node-level allocation matches too.
        node = cluster.node("n0000")
        assert node.allocated_cores == leased_cores
    for lease in leases:
        manager.release_lease(lease)
    assert registered.cores_free == 16
    assert cluster.node("n0000").is_idle
