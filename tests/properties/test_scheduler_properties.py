"""Property-based tests of the batch scheduler's invariants."""

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec, JobState

GiB = 1024**3

job_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),       # nodes
        st.integers(min_value=1, max_value=36),      # cores/node
        st.floats(min_value=1.0, max_value=200.0),   # runtime
        st.floats(min_value=0.0, max_value=100.0),   # extra walltime slack
        st.floats(min_value=0.0, max_value=50.0),    # inter-arrival gap
    ),
    min_size=1,
    max_size=20,
)


def run_schedule(spec_tuples, nodes=4):
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", nodes, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    jobs = []
    violations = []

    def monitor():
        while True:
            # Invariant: each node has at most one batch owner and the
            # owner set matches the running set.
            owners = {}
            for job in sched.running.values():
                for name in job.node_names:
                    if name in owners:
                        violations.append(("double-booked", name))
                    owners[name] = job.job_id
            yield env.timeout(7.0)

    def submitter():
        for nodes_req, cores, runtime, slack, gap in spec_tuples:
            yield env.timeout(gap)
            jobs.append(
                sched.submit(
                    JobSpec(
                        user="u", app="a", nodes=nodes_req, cores_per_node=cores,
                        memory_per_node=1 * GiB, walltime=runtime + slack + 1e-6,
                        runtime=runtime,
                    )
                )
            )

    env.process(monitor())
    env.process(submitter())
    env.run(until=100_000)
    return env, sched, jobs, violations


@settings(max_examples=30, deadline=None)
@given(spec_tuples=job_specs)
def test_all_jobs_complete_and_no_double_booking(spec_tuples):
    env, sched, jobs, violations = run_schedule(spec_tuples)
    assert not violations
    assert all(job.state == JobState.COMPLETED for job in jobs)
    assert sched.idle_node_count() == 4
    assert sched.allocated_node_count() == 0


@settings(max_examples=30, deadline=None)
@given(spec_tuples=job_specs)
def test_jobs_never_start_before_submit(spec_tuples):
    _, _, jobs, _ = run_schedule(spec_tuples)
    for job in jobs:
        assert job.start_time >= job.submit_time
        assert job.end_time >= job.start_time


@settings(max_examples=30, deadline=None)
@given(spec_tuples=job_specs)
def test_node_count_granted_exactly(spec_tuples):
    _, _, jobs, _ = run_schedule(spec_tuples)
    for job in jobs:
        assert len(job.node_names) == job.spec.nodes
        assert len(set(job.node_names)) == job.spec.nodes


@settings(max_examples=20, deadline=None)
@given(spec_tuples=job_specs)
def test_backfill_never_reorders_completion_against_fifo_start(spec_tuples):
    """EASY guarantee: the queue head's start is never pushed past the
    shadow time computed when it became head; weaker testable form — for
    same-size jobs submitted together, starts are FIFO."""
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 2, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    jobs = []
    for _, cores, runtime, slack, _ in spec_tuples:
        jobs.append(
            sched.submit(
                JobSpec(user="u", app="a", nodes=2, cores_per_node=cores,
                        memory_per_node=GiB, walltime=runtime + slack + 1e-6,
                        runtime=runtime)
            )
        )
    env.run(until=1_000_000)
    starts = [job.start_time for job in jobs]
    assert starts == sorted(starts)
