"""Eq. 1 offloading model: threshold, splitting, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.offload import OffloadModel


def model(**kw):
    defaults = dict(t_local=0.01, t_inv=0.012, latency=0.002, bandwidth=1e9,
                    data_per_task=100_000)
    defaults.update(kw)
    return OffloadModel(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        model(t_local=0)
    with pytest.raises(ValueError):
        model(latency=-1)
    with pytest.raises(ValueError):
        model(bandwidth=0)
    with pytest.raises(ValueError):
        model(data_per_task=0)


def test_eq1_threshold():
    m = model(t_local=0.01, t_inv=0.012, latency=0.002)
    # (0.012 + 0.002) / 0.01 = 1.4 -> ceil = 2
    assert m.n_local_min == 2
    assert not m.should_offload(2)
    assert m.should_offload(3)


def test_remote_rate_is_min_of_link_and_executor():
    slow_link = model(bandwidth=1e6, data_per_task=1_000_000)  # 1 task/s link
    assert slow_link.remote_rate == pytest.approx(1.0)
    fast_link = model(bandwidth=1e12)
    assert fast_link.remote_rate == pytest.approx(1 / 0.012)


def test_small_batches_stay_local():
    m = model()
    plan = m.split(2, local_workers=4)
    assert plan.n_remote == 0
    assert plan.n_local == 2


def test_split_conserves_tasks_and_balances():
    m = model()
    plan = m.split(1000, local_workers=4, remote_workers=4)
    assert plan.total == 1000
    assert plan.n_remote > 0
    # Local side keeps at least the Eq.-1 minimum.
    assert plan.n_local >= m.n_local_min
    # Streams finish within ~20% of each other (discretization slack).
    local_rate = 4 / m.t_local
    remote_rate = min(4 / m.t_inv, m.bandwidth / m.data_per_task)
    local_time = plan.n_local / local_rate
    remote_time = m.latency + plan.n_remote / remote_rate
    assert local_time == pytest.approx(remote_time, rel=0.2)


def test_bandwidth_saturation_limits_offload():
    fat = model(bandwidth=1e10)
    thin = model(bandwidth=1e7)   # 100 tasks/s max
    plan_fat = fat.split(10_000, local_workers=2, remote_workers=64)
    plan_thin = thin.split(10_000, local_workers=2, remote_workers=64)
    assert plan_thin.n_remote < plan_fat.n_remote


def test_speedup_grows_with_batch_until_saturation():
    m = model()
    s_small = m.speedup(2)
    s_large = m.speedup(1000, local_workers=1, remote_workers=8)
    assert s_small == pytest.approx(1.0)
    assert s_large > 1.5


def test_zero_tasks():
    plan = model().split(0)
    assert plan.total == 0 and plan.estimated_time_s == 0.0
    with pytest.raises(ValueError):
        model().split(-1)
    with pytest.raises(ValueError):
        model().should_offload(-1)


def test_max_remote_tasks():
    m = model(bandwidth=1e6, data_per_task=1_000_000)
    assert m.max_remote_tasks(10.0) == 10
    with pytest.raises(ValueError):
        m.max_remote_tasks(-1)


@given(
    n=st.integers(min_value=0, max_value=5000),
    workers=st.integers(min_value=1, max_value=32),
)
def test_split_always_conserves(n, workers):
    plan = model().split(n, local_workers=workers, remote_workers=workers)
    assert plan.n_local + plan.n_remote == n
    assert plan.n_local >= 0 and plan.n_remote >= 0
    assert plan.estimated_time_s >= 0


@given(n=st.integers(min_value=1, max_value=2000))
def test_estimated_time_never_worse_than_local_only(n):
    m = model()
    plan = m.split(n, local_workers=2, remote_workers=4)
    local_only = n * m.t_local / 2
    assert plan.estimated_time_s <= local_only * 1.001 + m.latency
