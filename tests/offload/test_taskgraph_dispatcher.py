"""Task-graph scheduling and live dispatcher tests."""

import numpy as np
import pytest

from repro.local import LocalRuntime
from repro.offload import (
    OffloadDispatcher,
    OffloadModel,
    TaskGraph,
    calibrate_model,
    prefix_scan_graph,
    schedule_with_offloading,
)
from repro.workloads import generate_options, price_chunk, split_batch


# ---- task graph ---------------------------------------------------------------

def diamond():
    g = TaskGraph()
    g.add_task("a", 1.0)
    g.add_task("b", 2.0, deps=["a"])
    g.add_task("c", 3.0, deps=["a"])
    g.add_task("d", 1.0, deps=["b", "c"])
    return g


def test_graph_construction_and_validation():
    g = diamond()
    assert len(g) == 4
    assert g.duration("c") == 3.0
    with pytest.raises(ValueError):
        g.add_task("a", 1.0)  # duplicate
    with pytest.raises(KeyError):
        g.add_task("e", 1.0, deps=["zz"])
    with pytest.raises(ValueError):
        g.add_task("e", 0.0)


def test_levels_and_widths():
    g = diamond()
    assert g.levels() == [["a"], ["b", "c"], ["d"]]
    assert g.widths() == [1, 2, 1]
    assert g.max_width == 2


def test_critical_path():
    assert diamond().critical_path_length() == pytest.approx(1 + 3 + 1)
    assert TaskGraph().critical_path_length() == 0.0


def test_prefix_scan_width_profile():
    g = prefix_scan_graph(16)
    widths = g.widths()
    # Up-sweep narrows 16 -> 1, down-sweep widens back to 16.
    assert widths[0] == 16
    assert min(widths) == 1
    assert widths[-1] == 16
    with pytest.raises(ValueError):
        prefix_scan_graph(12)


def test_schedule_no_model_is_local_lpt():
    g = diamond()
    result = schedule_with_offloading(g, local_workers=2)
    assert result.offloaded_tasks == 0
    # Level times: 1 + 3 + 1 (b,c parallel on 2 workers).
    assert result.makespan_s == pytest.approx(5.0)
    with pytest.raises(ValueError):
        schedule_with_offloading(g, local_workers=0)


def test_schedule_offloads_wide_levels():
    g = prefix_scan_graph(32, task_duration_s=0.1)
    m = OffloadModel(t_local=0.1, t_inv=0.11, latency=0.01, bandwidth=1e9,
                     data_per_task=10_000)
    local_only = schedule_with_offloading(g, local_workers=2)
    offloaded = schedule_with_offloading(g, local_workers=2, model=m)
    assert offloaded.offloaded_tasks > 0
    assert offloaded.makespan_s < local_only.makespan_s
    # Narrow levels (width 1-2) never offload.
    widths = g.widths()
    for width, n_off in zip(widths, offloaded.per_level_offloads):
        if width <= 2:
            assert n_off == 0


# ---- live dispatcher ------------------------------------------------------------

@pytest.fixture(scope="module")
def runtime():
    rt = LocalRuntime(workers=2)
    rt.register("price", "repro.workloads.blackscholes:price_chunk")
    rt.prewarm()
    yield rt
    rt.shutdown()


def test_dispatcher_results_match_serial(runtime):
    batch = generate_options(20_000, seed=1)
    payloads = split_batch(batch, 8)
    model = OffloadModel(t_local=0.005, t_inv=0.006, latency=0.001,
                         bandwidth=2e9, data_per_task=120_000)
    dispatcher = OffloadDispatcher(runtime, model)
    report = dispatcher.run("price", price_chunk, payloads, iterations=2)
    assert report.plan.total == 8
    serial = np.concatenate([price_chunk(p, iterations=2) for p in payloads])
    got = np.concatenate(report.results)
    np.testing.assert_allclose(got, serial)


def test_dispatcher_without_model_runs_local(runtime):
    payloads = split_batch(generate_options(1000, seed=2), 4)
    report = OffloadDispatcher(runtime, model=None).run("price", price_chunk, payloads)
    assert report.plan.n_remote == 0
    assert len(report.results) == 4


def test_dispatcher_empty_batch(runtime):
    report = OffloadDispatcher(runtime).run("price", price_chunk, [])
    assert report.results == []
    assert report.wall_time_s >= 0


def test_calibrate_model_measures_real_times(runtime):
    probe = split_batch(generate_options(50_000, seed=3), 1)[0]
    model = calibrate_model(runtime, "price", price_chunk, probe,
                            iterations=2, repeats=2)
    assert model.t_local > 0
    assert model.t_inv > 0
    assert model.data_per_task > 100_000  # six float64 arrays of 50k
    assert model.n_local_min >= 1
    with pytest.raises(ValueError):
        calibrate_model(runtime, "price", price_chunk, probe, repeats=0)
