"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest.
Each runs in a subprocess exactly as a user would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "cold start" in out
    assert "attached start" in out


def test_memory_service():
    out = run_example("memory_service.py")
    assert "hit rate" in out
    assert "GB/s sustained" in out


def test_gpu_sharing():
    out = run_example("gpu_sharing.py")
    assert "warm evictions under memory pressure: 1" in out
    assert "remote:" in out


def test_colocation_policy():
    out = run_example("colocation_policy.py")
    assert "history_reject" in out
    assert "decided by history" in out


def test_elastic_mpi():
    out = run_example("elastic_mpi.py")
    assert "spawned 4 ranks" in out
    assert "all leases returned" in out


def test_idle_node_harvest():
    out = run_example("idle_node_harvest.py")
    assert "function invocations served" in out
    assert "batch jobs completed" in out


@pytest.mark.slow
def test_blackscholes_offload():
    out = run_example("blackscholes_offload.py")
    assert "identical prices" in out
    assert "Eq. 1 calibration" in out
