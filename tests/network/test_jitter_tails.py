"""Statistical shape of network jitter (the Fig. 7 p95 behaviour)."""

import numpy as np

from repro.network import TCP, UGNI


def sample_rtts(provider, size, n=4000, seed=0):
    rng = np.random.default_rng(seed)
    base = provider.params.round_trip(size, size)
    return np.array([provider.params.sample(base, rng) for _ in range(n)])


def test_jitter_produces_heavier_upper_tail():
    rtts = sample_rtts(UGNI, 64)
    p50, p95 = np.percentile(rtts, [50, 95])
    assert p95 > p50
    # Lognormal: the p95/p50 ratio reflects sigma (~1.14 at sigma=0.08).
    assert 1.05 < p95 / p50 < 1.35


def test_tcp_jitter_wider_than_rdma():
    ugni = sample_rtts(UGNI, 1024)
    tcp = sample_rtts(TCP, 1024)
    ratio_ugni = np.percentile(ugni, 95) / np.percentile(ugni, 50)
    ratio_tcp = np.percentile(tcp, 95) / np.percentile(tcp, 50)
    assert ratio_tcp > ratio_ugni  # kernel stacks are noisier


def test_median_tracks_deterministic_base():
    base = UGNI.params.round_trip(4096, 4096)
    rtts = sample_rtts(UGNI, 4096)
    # Lognormal with mu=0 has median == base.
    assert abs(np.median(rtts) / base - 1.0) < 0.03
