"""Simulated transport and DRC credential tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.network import (
    DrcError,
    DrcManager,
    IBVERBS,
    NetworkFabric,
    PROVIDERS,
    TCP,
    UGNI,
)
from repro.sim import Environment


def make_fabric(provider=IBVERBS, nodes=4, drc=None, jitterless=True):
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", nodes, DAINT_MC)
    if jitterless:
        from dataclasses import replace

        provider = replace(provider, params=provider.params.with_jitter(0.0))
    fabric = NetworkFabric(env, cluster, provider, rng=np.random.default_rng(1), drc=drc)
    return env, cluster, fabric


def run_transfer(env, fabric, src, dst, size, op="send"):
    result = {}

    def proc():
        conn = yield fabric.connect(src, dst, user="alice")
        ev = getattr(conn, op)(size)
        yield ev
        result["t"] = env.now
        result["bytes"] = ev.value

    env.process(proc())
    env.run()
    return result


def test_send_time_matches_loggp():
    env, cluster, fabric = make_fabric()
    size = 1 << 20
    res = run_transfer(env, fabric, "n0000", "n0001", size)
    expected = IBVERBS.connect_s + fabric.expected_transfer_time("n0000", "n0001", size)
    assert res["t"] == pytest.approx(expected, rel=1e-9)
    assert res["bytes"] == size


def test_inter_group_slower_than_intra_group():
    env1, _, f1 = make_fabric()
    r1 = run_transfer(env1, f1, "n0000", "n0001", 1024)  # same group (size 2)
    env2, _, f2 = make_fabric()
    r2 = run_transfer(env2, f2, "n0000", "n0002", 1024)  # other group
    assert r2["t"] > r1["t"]


def test_concurrent_transfers_share_egress_bandwidth():
    env, _, fabric = make_fabric()
    done = []
    size = 100 << 20  # 100 MiB -> serialization dominates

    def proc(dst):
        conn = yield fabric.connect("n0000", dst, user="alice")
        yield conn.send(size)
        done.append(env.now)

    env.process(proc("n0001"))
    env.process(proc("n0002"))
    env.run()
    serialization = size * IBVERBS.params.G
    # The second flow must queue behind the first at n0000's egress.
    assert max(done) >= 2 * serialization
    assert min(done) < max(done)


def test_transfers_to_distinct_nodes_from_distinct_sources_overlap():
    env, _, fabric = make_fabric()
    done = []
    size = 100 << 20

    def proc(src, dst):
        conn = yield fabric.connect(src, dst, user="alice")
        yield conn.send(size)
        done.append(env.now)

    env.process(proc("n0000", "n0001"))
    env.process(proc("n0002", "n0003"))
    env.run()
    # Disjoint node pairs share nothing: both finish at the same time.
    assert done[0] == pytest.approx(done[1])


def test_rdma_read_returns_payload_from_target():
    env, _, fabric = make_fabric()
    res = run_transfer(env, fabric, "n0000", "n0001", 10 << 20, op="rdma_read")
    assert res["bytes"] == 10 << 20


def test_closed_connection_rejects_ops():
    env, _, fabric = make_fabric()

    def proc():
        conn = yield fabric.connect("n0000", "n0001", user="alice")
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(10)

    env.process(proc())
    env.run()


def test_unknown_node_rejected():
    env, _, fabric = make_fabric()
    with pytest.raises(KeyError):
        fabric.connect("n0000", "nope", user="alice")


def test_ugni_requires_credential():
    drc = DrcManager()
    env, _, fabric = make_fabric(provider=UGNI, drc=drc)
    with pytest.raises(PermissionError):
        fabric.connect("n0000", "n0001", user="alice")


def test_ugni_with_granted_credential_connects():
    drc = DrcManager()
    cred = drc.acquire("executor-job")
    drc.grant(cred.cred_id, "executor-job", "alice")
    env, _, fabric = make_fabric(provider=UGNI, drc=drc)
    ok = {}

    def proc():
        conn = yield fabric.connect("n0000", "n0001", user="alice", cred_id=cred.cred_id)
        ok["conn"] = conn

    env.process(proc())
    env.run()
    assert ok["conn"].cred_id == cred.cred_id


def test_ugni_revoked_credential_denied():
    drc = DrcManager()
    cred = drc.acquire("job")
    drc.grant(cred.cred_id, "job", "alice")
    drc.release(cred.cred_id, "job")
    env, _, fabric = make_fabric(provider=UGNI, drc=drc)
    with pytest.raises(DrcError):
        fabric.connect("n0000", "n0001", user="alice", cred_id=cred.cred_id)


def test_drc_grant_requires_owner():
    drc = DrcManager()
    cred = drc.acquire("job")
    with pytest.raises(DrcError):
        drc.grant(cred.cred_id, "mallory", "mallory")
    with pytest.raises(DrcError):
        drc.authorize(999999, "alice")


def test_provider_registry_and_capabilities():
    assert set(PROVIDERS) == {"ugni", "ibverbs", "efa", "tcp"}
    assert UGNI.rdma_capable and UGNI.kernel_bypass
    assert not TCP.rdma_capable
    # The HPC fabrics must beat TCP on small-message latency by >10x.
    assert TCP.params.one_way(64) > 10 * UGNI.params.one_way(64)


def test_stats_accumulate():
    env, _, fabric = make_fabric()
    run_transfer(env, fabric, "n0000", "n0001", 1000)
    assert fabric.stats.messages == 1
    assert fabric.stats.bytes == 1000
