"""LogGP model unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network import LogGPParams, fit_loggp


def params(**kw):
    defaults = dict(L=1e-6, o=0.2e-6, G=1e-10, g=0.0)
    defaults.update(kw)
    return LogGPParams(**defaults)


def test_one_way_structure():
    p = params()
    assert p.one_way(0) == pytest.approx(2 * 0.2e-6 + 1e-6)
    assert p.one_way(1000) == pytest.approx(2 * 0.2e-6 + 1e-6 + 1000 * 1e-10)


def test_round_trip_is_sum_of_one_ways():
    p = params()
    assert p.round_trip(100, 50) == pytest.approx(p.one_way(100) + p.one_way(50))


def test_rdma_ops_cheaper_than_two_sided_for_small():
    # One-sided ops skip the remote-side overhead o.
    p = params(L=1e-6, o=0.5e-6)
    assert p.rdma_read(8) < p.round_trip(8, 8)


def test_bandwidth_inverse_of_G():
    assert params(G=1e-9).bandwidth == pytest.approx(1e9)
    assert params(G=0.0).bandwidth == float("inf")


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        LogGPParams(L=-1, o=0, G=0)
    p = params()
    with pytest.raises(ValueError):
        p.one_way(-1)
    with pytest.raises(ValueError):
        p.rdma_read(-5)


def test_injection_interval_uses_max_of_g_and_serialization():
    p = params(G=1e-9, g=2e-6)
    assert p.injection_interval(100) == pytest.approx(2e-6)      # g dominates
    assert p.injection_interval(10**4) == pytest.approx(1e-5)    # G dominates


def test_jitter_sampling_deterministic_with_seed():
    p = params().with_jitter(0.1)
    t = p.one_way(100)
    a = p.sample(t, np.random.default_rng(7))
    b = p.sample(t, np.random.default_rng(7))
    assert a == b
    assert p.sample(t, np.random.default_rng(8)) != a


def test_zero_jitter_is_identity():
    p = params()
    assert p.sample(1.0, np.random.default_rng(0)) == 1.0


@given(
    size1=st.integers(min_value=0, max_value=10**9),
    size2=st.integers(min_value=0, max_value=10**9),
)
def test_one_way_monotone_in_size(size1, size2):
    p = params()
    lo, hi = sorted([size1, size2])
    assert p.one_way(lo) <= p.one_way(hi)


@given(
    L=st.floats(min_value=1e-7, max_value=1e-4),
    G=st.floats(min_value=1e-11, max_value=1e-8),
)
def test_fit_recovers_exact_parameters(L, G):
    truth = LogGPParams(L=L, o=0.0, G=G)
    sizes = np.array([1, 64, 1024, 65536, 1 << 20], dtype=float)
    times = np.array([truth.one_way(int(s)) for s in sizes])
    fitted = fit_loggp(sizes, times)
    assert fitted.L == pytest.approx(L, rel=1e-6, abs=1e-12)
    assert fitted.G == pytest.approx(G, rel=1e-6, abs=1e-15)


def test_fit_requires_two_samples():
    with pytest.raises(ValueError):
        fit_loggp(np.array([1.0]), np.array([1.0]))
