"""Crash failover: detection, election, reconciliation, k=0 blast radius."""

from repro.controlplane import ReplicaRole
from repro.rfaas import NoCapacityError

import pytest

from .conftest import HEARTBEAT_S, SUSPECT_AFTER, build_ha_platform


def test_crash_promotes_lowest_rank_standby_within_the_detection_window():
    platform = build_ha_platform(standbys=2)
    ha = platform.ha
    platform.run_until(0.25)
    crashed = ha.crash_primary()
    assert crashed == "rm-0"
    assert not ha.available
    platform.run_until(3.0)
    ha.stop()
    platform.run()
    assert ha.primary_rank == 1  # lowest standby rank wins, always
    assert ha.epoch == 2
    election = ha.elections[-1]
    assert election.cause == "crash" and election.rank == 1
    # Detection is quantized to heartbeat ticks: the takeover lands
    # between `suspect_after` and `suspect_after + 2` intervals after
    # the crash (never sooner — no false positive from one late tick).
    latency = election.at_s - 0.25
    assert SUSPECT_AFTER * HEARTBEAT_S <= latency + 1e-9
    assert latency <= (SUSPECT_AFTER + 2) * HEARTBEAT_S + 1e-9
    hist = platform.telemetry.metrics.get("repro_controlplane_detection_seconds")
    assert hist is not None and hist.count == 1


def test_crashed_primary_rejoins_as_a_synced_standby():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    lease, _ = ha.lease("client-0", cores=2)
    platform.run_until(0.25)
    ha.crash_primary(outage_s=1.0)
    platform.run_until(3.0)
    ha.stop()
    platform.run()
    rejoined = ha.replica(0)
    assert rejoined.role is ReplicaRole.STANDBY
    assert set(rejoined.registrations) == {"n0001", "n0002", "n0003"}
    assert lease.lease_id in rejoined.lease_records
    assert rejoined.applied_index == ha.replica(1).applied_index
    assert rejoined.epoch == ha.epoch == 2


def test_k0_crash_is_total_loss_and_restarts_empty():
    platform = build_ha_platform(standbys=0)
    ha = platform.ha
    lease, _ = ha.lease("client-0", cores=2)
    platform.run_until(0.25)
    ha.crash_primary(outage_s=0.5)
    # Lease-expiry fencing: with nobody left to account for leases the
    # data plane is orphaned immediately.
    assert not lease.active
    assert ha.registered_nodes() == []
    metrics = platform.telemetry.metrics
    assert metrics.get("repro_controlplane_orphaned_leases_total").value == 1
    platform.run_until(2.0)
    ha.stop()
    platform.run()
    # The restarted primary leads a fresh epoch with empty state: the
    # control plane is back, the capacity is gone until re-registration.
    assert ha.primary_rank == 0
    assert ha.epoch == 2
    assert ha.elections[-1].cause == "restart"
    assert ha.primary.registrations == {}
    with pytest.raises(NoCapacityError):
        ha.lease("client-0")


def test_takeover_revokes_leases_the_standby_never_saw():
    """Reconciliation: a grant that bypassed replication (modeling state
    the dead primary never shipped) is revoked at takeover, so the new
    primary's view and the data plane agree."""
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    replicated, _ = ha.lease("client-0")
    unreplicated, _ = ha.inner.lease("client-1")  # behind the wrapper's back
    platform.run_until(0.25)
    ha.crash_primary()
    platform.run_until(2.0)
    ha.stop()
    platform.run()
    assert replicated.active
    assert not unreplicated.active
    metrics = platform.telemetry.metrics
    assert metrics.get("repro_controlplane_reconciled_leases_total").value == 1


def test_release_during_outage_is_buffered_then_reconciled():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    lease, _ = ha.lease("client-0", cores=3)
    platform.run_until(0.25)
    ha.crash_primary()
    ha.release_lease(lease)  # voluntary return while nobody listens
    assert not lease.active  # the client is done either way
    platform.run_until(2.0)
    ha.stop()
    platform.run()
    assert ha.commit_log[-1].op == "release"
    assert lease.lease_id not in ha.primary.lease_records
    assert ha.total_free_cores() == 12  # the cores actually came back


def test_crash_with_no_primary_is_a_noop():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    platform.run_until(0.25)
    assert ha.crash_primary() == "rm-0"
    assert ha.crash_primary() is None  # nobody left to kill
