"""Epoch fencing: a partitioned ex-primary can never split the brain."""

import pytest

from repro.controlplane import ReplicaRole
from repro.rfaas import ManagerUnavailableError, StaleEpochError

from .conftest import build_ha_platform


def _partitioned_takeover(heal_after_s):
    """Partition the primary at t=0.25 and run past the takeover."""
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    platform.run_until(0.25)
    assert ha.partition_primary(heal_after_s=heal_after_s) == "rm-0"
    return platform, ha


def test_partition_triggers_takeover_and_fences_the_old_primary():
    platform, ha = _partitioned_takeover(heal_after_s=0.0)
    platform.run_until(1.0)
    assert ha.epoch == 2
    assert ha.elections[-1].cause == "partition"
    assert ha.primary_rank == 1
    assert ha.replica(0).role is ReplicaRole.FENCED
    ha.stop()
    platform.run()


def test_mutations_during_partition_raise_unavailable():
    platform, ha = _partitioned_takeover(heal_after_s=0.0)
    with pytest.raises(ManagerUnavailableError) as exc:
        ha.lease("client-0")
    assert exc.value.cause == "partition"
    ha.stop()
    platform.run()


def test_fenced_ex_primary_cannot_grant_and_changes_no_state():
    platform, ha = _partitioned_takeover(heal_after_s=0.0)
    platform.run_until(1.0)  # standby has taken over; rm-0 fenced
    log_len = len(ha.commit_log)
    free = ha.total_free_cores()
    with pytest.raises(StaleEpochError) as exc:
        ha.attempt_grant_via(0, "client-0", cores=1)
    assert exc.value.current_epoch == 2
    assert len(ha.commit_log) == log_len  # fenced before any state change
    assert ha.total_free_cores() == free
    metrics = platform.telemetry.metrics
    assert metrics.get("repro_controlplane_fenced_grants_total").value == 1
    # The *current* primary grants normally through the same hook.
    lease, _ = ha.attempt_grant_via(1, "client-0", cores=1)
    assert lease.epoch == 2
    ha.stop()
    platform.run()


def test_healed_ex_primary_steps_down_and_resyncs():
    platform, ha = _partitioned_takeover(heal_after_s=1.0)
    platform.run_until(0.9)
    assert ha.replica(0).role is ReplicaRole.FENCED
    lease, _ = ha.lease("client-0")  # granted by the epoch-2 primary
    platform.run_until(2.0)
    ha.stop()
    platform.run()
    stepped_down = ha.replica(0)
    assert stepped_down.role is ReplicaRole.STANDBY
    assert stepped_down.epoch == 2
    assert lease.lease_id in stepped_down.lease_records  # resynced
    assert ha.primary_rank == 1  # leadership does NOT bounce back
    metrics = platform.telemetry.metrics
    assert metrics.get("repro_controlplane_stepdowns_total").value == 1


def test_short_partition_heals_inside_the_detection_timeout():
    """A blip shorter than the detector's timeout is a false positive
    avoided: no election, no epoch bump, the primary just resumes."""
    platform, ha = _partitioned_takeover(heal_after_s=0.15)
    platform.run_until(2.0)
    ha.stop()
    platform.run()
    assert ha.epoch == 1
    assert len(ha.elections) == 1  # bootstrap only
    assert ha.primary_rank == 0
    assert ha.replica(0).role is ReplicaRole.PRIMARY
    # And the front door works throughout.
    lease, _ = ha.lease("client-0")
    assert lease.epoch == 1


def test_partition_of_partitioned_primary_is_a_noop():
    platform, ha = _partitioned_takeover(heal_after_s=0.0)
    assert ha.partition_primary() is None
    ha.stop()
    platform.run()
