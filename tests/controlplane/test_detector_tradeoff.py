"""The failure detector's knob: detection latency vs false positives.

``suspect_after`` (missed heartbeat intervals before suspicion) is the
availability tradeoff of docs/control_plane_ha.md: small values detect
a dead primary fast but declare a *slow* primary dead (a needless
election); large values never cry wolf but stretch the outage every
client rides out in backoff.  These tests pin both sides.
"""

import pytest

from .conftest import build_ha_platform

HEARTBEAT_S = 0.1


def _takeover_latency(suspect_after: int) -> float:
    platform = build_ha_platform(standbys=1,
                                 heartbeat_interval_s=HEARTBEAT_S,
                                 suspect_after=suspect_after)
    ha = platform.ha
    platform.run_until(0.25)
    ha.crash_primary()
    platform.run_until(5.0)
    ha.stop()
    platform.run()
    assert ha.epoch == 2
    return ha.elections[-1].at_s - 0.25


@pytest.mark.parametrize("suspect_after", [2, 3])
def test_detection_latency_is_2_to_3_timeouts_quantized(suspect_after):
    """Takeover lands between ``m`` and ``m + 2`` heartbeat intervals
    after the crash — never earlier (that would be a false positive on
    a merely late tick), never later (that is detector lag)."""
    latency = _takeover_latency(suspect_after)
    assert suspect_after * HEARTBEAT_S <= latency + 1e-9
    assert latency <= (suspect_after + 2) * HEARTBEAT_S + 1e-9


def test_aggressive_detector_is_strictly_faster():
    assert _takeover_latency(2) < _takeover_latency(3)


@pytest.mark.parametrize("suspect_after,false_positive", [(2, True), (3, False)])
def test_false_positive_rate_mirrors_the_timeout(suspect_after, false_positive):
    """One partition blip, two detectors: the 0.3s blip outlives the
    aggressive detector's 0.2s timeout (needless election + stepdown)
    but stays inside the conservative detector's 0.3s one (no churn)."""
    platform = build_ha_platform(standbys=1,
                                 heartbeat_interval_s=HEARTBEAT_S,
                                 suspect_after=suspect_after)
    ha = platform.ha
    platform.run_until(0.25)
    ha.partition_primary(heal_after_s=0.3)
    platform.run_until(3.0)
    ha.stop()
    platform.run()
    metrics = platform.telemetry.metrics
    failovers = metrics.get("repro_controlplane_failovers_total").value
    if false_positive:
        assert failovers == 1  # cried wolf: epoch churn for a blip
        assert ha.epoch == 2
        assert metrics.get("repro_controlplane_stepdowns_total").value == 1
    else:
        assert failovers == 0
        assert ha.epoch == 1
        assert ha.primary_rank == 0
