"""Epoch-fenced replication: every mutation lands on every live replica."""

from repro.controlplane import ManagerReplica, ReplicaRole
from repro.faults import check_epoch_monotonic, check_no_double_grant

from .conftest import build_ha_platform


def test_bootstrap_group_shape():
    platform = build_ha_platform(standbys=2)
    ha = platform.ha
    assert len(ha.replicas) == 3
    assert ha.epoch == 1
    assert ha.primary_rank == 0
    assert ha.primary.role is ReplicaRole.PRIMARY
    assert [r.role for r in ha.replicas[1:]] == [ReplicaRole.STANDBY] * 2
    assert ha.elections[0].cause == "bootstrap"
    assert ha.available
    assert platform.manager is ha  # downstream consumers see the wrapper


def test_registrations_replicate_to_every_standby():
    platform = build_ha_platform(standbys=2)
    for replica in platform.ha.replicas:
        assert set(replica.registrations) == {"n0001", "n0002", "n0003"}
        assert replica.registrations["n0001"]["cores"] == 4


def test_grant_and_release_replicate_and_log():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    lease, _executor = ha.lease("client-0", cores=2)
    assert lease.epoch == 1
    standby = ha.replica(1)
    assert lease.lease_id in standby.lease_records
    assert standby.lease_records[lease.lease_id]["cores"] == 2
    ha.release_lease(lease)
    assert lease.lease_id not in standby.lease_records
    ops = [record.op for record in ha.commit_log]
    assert ops == ["register"] * 3 + ["grant", "release"]
    assert check_epoch_monotonic(ha.commit_log) == []
    assert check_no_double_grant(ha.commit_log) == []


def test_revoke_replicates():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    lease, _ = ha.lease("client-0")
    assert ha.revoke_lease(lease) is True
    assert lease.lease_id not in ha.replica(1).lease_records
    assert ha.commit_log[-1].op == "revoke"


def test_noop_mutations_are_not_logged():
    """Idempotent no-ops (unknown node, dead lease) must not pollute the
    fenced log — replay on a standby would otherwise diverge."""
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    before = len(ha.commit_log)
    assert ha.remove_node("n9999") is False
    lease, _ = ha.lease("client-0")
    ha.release_lease(lease)
    assert ha.revoke_lease(lease) is False  # already released
    log_ops = [r.op for r in ha.commit_log[before:]]
    assert log_ops == ["grant", "release"]  # no record for either no-op


def test_resync_copies_state_not_references():
    source = ManagerReplica(rank=0, role=ReplicaRole.PRIMARY, epoch=3)
    source.registrations = {"n0001": {"cores": 4}}
    source.lease_records = {7: {"node": "n0001", "cores": 1}}
    source.applied_index = 5
    joiner = ManagerReplica(rank=1)
    joiner.resync_from(source)
    assert joiner.registrations == source.registrations
    assert joiner.lease_records == source.lease_records
    assert joiner.epoch == 3 and joiner.applied_index == 5
    joiner.registrations["n0001"]["cores"] = 99
    assert source.registrations["n0001"]["cores"] == 4


def test_unfenced_reads_pass_through():
    platform = build_ha_platform(standbys=1)
    ha = platform.ha
    assert set(ha.registered_nodes()) == {"n0001", "n0002", "n0003"}
    assert ha.is_registered("n0001")
    assert ha.total_registered_cores() == 12
    assert ha.total_free_cores() == 12
    lease, _ = ha.lease("client-0", cores=4)
    assert ha.total_free_cores() == 8
    assert [l.lease_id for l, _node in ha.active_leases()] == [lease.lease_id]
