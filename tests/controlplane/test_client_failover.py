"""Client-side failover: a manager outage costs backoff, not failures."""

from repro.faults import FaultPlan, RecoveryOutcome, RetryPolicy

from .conftest import build_ha_platform

#: Storm-at-crash plan: the lease storm lands at the *same* timestamp
#: as the manager fault (stable tie order applies the storm first), so
#: revoked clients must re-lease into the dead/partitioned control
#: plane and exercise the typed ManagerUnavailableError retry arm.
def _storm_plan(at_s: float, kind: str, duration_s: float) -> FaultPlan:
    plan = FaultPlan(name="storm-at-crash").lease_storm(at_s=at_s, count=8)
    if kind == "crash":
        return plan.manager_crash(at_s=at_s, duration_s=duration_s)
    return plan.manager_partition(at_s=at_s, duration_s=duration_s)


def _drive(platform, window_s: float, policy: RetryPolicy, streams: int = 2):
    client = platform.client("n0000", retry_policy=policy)
    outcomes = []

    def stream():
        while platform.env.now < window_s:
            detailed = yield client.invoke_detailed("noop", payload_bytes=256)
            outcomes.append(detailed)
            yield platform.env.timeout(0.005)

    for _ in range(streams):
        platform.process(stream())
    platform.run_until(window_s + 10.0)
    platform.ha.stop()
    client.close()
    platform.run()
    return outcomes


def test_clients_ride_out_a_primary_crash_with_retries():
    platform = build_ha_platform(
        standbys=1, runtime_s=0.02,
        plan=_storm_plan(1.0, "crash", duration_s=2.0),
    )
    outcomes = _drive(platform, window_s=4.0,
                      policy=RetryPolicy(max_attempts=7, backoff_base_s=0.05,
                                         backoff_multiplier=2.0,
                                         backoff_max_s=1.0))
    assert outcomes and all(d.ok for d in outcomes)
    recovered = [d for d in outcomes if d.outcome is RecoveryOutcome.RECOVERED]
    assert recovered  # somebody actually crossed the outage
    assert max(d.retries for d in recovered) >= 1
    metrics = platform.telemetry.metrics
    down = metrics.get("repro_faults_retries_total", {"reason": "manager_down"})
    assert down is not None and down.value >= 1
    assert platform.ha.epoch >= 2  # a standby took over behind the scenes


def test_clients_ride_out_a_primary_partition_too():
    platform = build_ha_platform(
        standbys=1, runtime_s=0.02,
        plan=_storm_plan(1.0, "partition", duration_s=1.5),
    )
    outcomes = _drive(platform, window_s=4.0,
                      policy=RetryPolicy(max_attempts=7, backoff_base_s=0.05,
                                         backoff_multiplier=2.0,
                                         backoff_max_s=1.0))
    assert outcomes and all(d.ok for d in outcomes)
    assert platform.ha.epoch >= 2
    # The healed ex-primary stepped down instead of splitting the brain.
    assert platform.ha.primary_rank == 1


def test_too_small_a_budget_gives_up_during_a_k0_crash():
    platform = build_ha_platform(
        standbys=0, runtime_s=0.02,
        plan=_storm_plan(1.0, "crash", duration_s=0.0),  # never restarts
    )
    outcomes = _drive(platform, window_s=2.0,
                      policy=RetryPolicy(max_attempts=2, backoff_base_s=0.05,
                                         backoff_multiplier=2.0,
                                         backoff_max_s=0.2))
    gave_up = [d for d in outcomes if d.outcome is RecoveryOutcome.GAVE_UP]
    assert gave_up  # two attempts cannot outlive a permanent outage
    from repro.rfaas import ManagerUnavailableError
    assert any(isinstance(d.error, ManagerUnavailableError) for d in gave_up)
