"""Shared fixture for control-plane HA tests: a replicated platform."""

from repro.api import ClusterSpec, Platform
from repro.containers import Image
from repro.controlplane import HAConfig
from repro.interference import ResourceDemand
from repro.network import IBVERBS

MiB = 1024**2
GiB = 1024**3

#: The canonical detector shape used across these tests: 0.1s
#: heartbeats, suspicion after 3 silent intervals (timeout 0.3s).
HEARTBEAT_S = 0.1
SUSPECT_AFTER = 3


def build_ha_platform(standbys=1, heartbeat_interval_s=HEARTBEAT_S,
                      suspect_after=SUSPECT_AFTER, plan=None, seed=0,
                      runtime_s=0.0, nodes=5,
                      executors=("n0001", "n0002", "n0003")):
    """A jitterless platform with a replicated manager and a ``noop``.

    The wrapper is reachable both as ``platform.manager`` (what every
    downstream consumer sees) and ``platform.ha`` (typed accessor).
    """
    platform = Platform.build(
        ClusterSpec(nodes=nodes, provider=IBVERBS, jitter=0.0),
        seed=seed, telemetry=True, faults=plan,
        ha=HAConfig(standbys=standbys,
                    heartbeat_interval_s=heartbeat_interval_s,
                    suspect_after=suspect_after),
    )
    for name in executors:
        platform.register_node(name, cores=4, memory_bytes=8 * GiB)
    image = Image("fn-image", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=runtime_s,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    platform.image = image
    return platform
