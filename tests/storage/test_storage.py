"""Storage models: Lustre, object store, tiered I/O (Fig. 8 shapes)."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import LustreModel, ObjectStoreModel, TieredFunctionStorage

KiB, MiB, GiB = 1024, 1024**2, 1024**3


def test_lustre_stripe_accounting():
    fs = LustreModel(stripe_size=1 * MiB, stripe_count=4, ost_count=40)
    assert fs.effective_stripes(1) == 1
    assert fs.effective_stripes(1 * MiB) == 1
    assert fs.effective_stripes(3 * MiB) == 3
    assert fs.effective_stripes(100 * MiB) == 4  # capped by stripe_count


def test_lustre_latency_floor_is_milliseconds():
    fs = LustreModel()
    assert fs.read_time(1 * KiB) > 1e-3


def test_objectstore_latency_floor_is_submillisecond():
    store = ObjectStoreModel()
    assert store.read_time(1 * KiB) < 1e-3


def test_fig8_small_files_object_store_wins():
    fs, store = LustreModel(), ObjectStoreModel()
    for size in (1 * KiB, 64 * KiB, 1 * MiB):
        assert store.read_time(size) < fs.read_time(size)


def test_fig8_lustre_wins_at_scale():
    fs, store = LustreModel(), ObjectStoreModel()
    size = 1 * GiB
    readers = 32
    assert fs.aggregate_throughput(size, readers) > store.aggregate_throughput(size, readers)


def test_lustre_aggregate_scales_with_readers():
    fs = LustreModel()
    t1 = fs.aggregate_throughput(256 * MiB, 1)
    t16 = fs.aggregate_throughput(256 * MiB, 16)
    assert t16 > 4 * t1


def test_objectstore_saturates_with_readers():
    store = ObjectStoreModel(server_count=2, server_bandwidth=10e9)
    t64 = store.aggregate_throughput(256 * MiB, 64)
    assert t64 <= 2 * 10e9 * 1.01  # capped by server NICs


def test_validation():
    with pytest.raises(ValueError):
        LustreModel(ost_count=0)
    with pytest.raises(ValueError):
        LustreModel(stripe_size=0)
    with pytest.raises(ValueError):
        ObjectStoreModel(server_count=0)
    with pytest.raises(ValueError):
        LustreModel().read_time(-1)
    with pytest.raises(ValueError):
        LustreModel().read_time(1, concurrent_readers=0)
    with pytest.raises(ValueError):
        ObjectStoreModel().read_time(-1)


@given(size=st.integers(min_value=0, max_value=10 * GiB))
def test_lustre_monotone_in_size(size):
    fs = LustreModel()
    assert fs.read_time(size + MiB) >= fs.read_time(size)


@given(
    size=st.integers(min_value=1, max_value=GiB),
    readers=st.integers(min_value=1, max_value=128),
)
def test_per_reader_latency_never_improves_with_contention(size, readers):
    for model in (LustreModel(), ObjectStoreModel()):
        assert model.read_time(size, readers) >= model.read_time(size, 1) - 1e-12


def test_tiered_routes_by_size():
    tiered = TieredFunctionStorage(cache_threshold_bytes=4 * MiB)
    assert tiered.tier_for(1 * MiB) == "cache"
    assert tiered.tier_for(64 * MiB) == "pfs"
    assert tiered.read_time(1 * MiB) == tiered.cache.read_time(1 * MiB)
    assert tiered.read_time(64 * MiB) == tiered.pfs.read_time(64 * MiB)


def test_tiered_crossover_is_consistent():
    tiered = TieredFunctionStorage()
    crossover = tiered.crossover_size()
    assert 1024 < crossover < 1 << 30
    assert tiered.pfs.read_time(crossover) < tiered.cache.read_time(crossover)
    before = max(1024, crossover // 2)
    assert tiered.pfs.read_time(before) >= tiered.cache.read_time(before)
