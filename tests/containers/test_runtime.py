"""Container image and runtime (Table II) tests."""

import pytest

from repro.containers import (
    DOCKER,
    Image,
    ImageFormat,
    Registry,
    RUNTIMES,
    SARUS,
    SINGULARITY,
)

MiB = 1024**2


def img(fmt=ImageFormat.DOCKER, size=500 * MiB):
    return Image(name="ubuntu:20.04", size_bytes=size, format=fmt)


def test_image_validation():
    with pytest.raises(ValueError):
        Image("x", size_bytes=0)
    with pytest.raises(ValueError):
        Image("x", size_bytes=1, runtime_memory_bytes=0)
    with pytest.raises(ValueError):
        Image("x", size_bytes=1, format="oci?")


def test_registry_push_pull():
    reg = Registry()
    image = img()
    reg.push(image)
    assert "ubuntu:20.04" in reg
    assert reg.pull("ubuntu:20.04") is image
    with pytest.raises(KeyError):
        reg.pull("missing")


def test_table2_feature_matrix():
    """The Table II comparison, encoded as behaviour."""
    # Image format: Docker native, Singularity custom, Sarus Docker-compatible.
    assert DOCKER.supports_image(img(ImageFormat.DOCKER))
    assert not DOCKER.supports_image(img(ImageFormat.SINGULARITY))
    assert SINGULARITY.supports_image(img(ImageFormat.SINGULARITY))
    assert not SINGULARITY.supports_image(img(ImageFormat.DOCKER))
    assert SARUS.supports_image(img(ImageFormat.DOCKER))
    # Repositories: Docker and Sarus have registries, Singularity none.
    assert DOCKER.has_registry_support and SARUS.has_registry_support
    assert not SINGULARITY.has_registry_support
    # Device support: automatic for the HPC runtimes, plugins for Docker.
    assert not DOCKER.automatic_device_access
    assert SINGULARITY.automatic_device_access and SARUS.automatic_device_access
    # Batch system + MPI: HPC runtimes only.
    for runtime in (SINGULARITY, SARUS):
        assert runtime.batch_system_integration and runtime.native_mpi_support
    assert not DOCKER.batch_system_integration and not DOCKER.native_mpi_support


def test_only_hpc_runtimes_qualify_for_hpc_functions():
    assert not DOCKER.suitable_for_hpc_functions()
    assert SINGULARITY.suitable_for_hpc_functions()
    assert SARUS.suitable_for_hpc_functions()


def test_cold_start_hundreds_of_ms():
    image = img()
    for runtime in (DOCKER, SARUS):
        cold = runtime.cold_start_time(image)
        assert 0.1 < cold < 2.0, f"{runtime.name}: {cold}"
        assert runtime.warm_attach_s < cold / 50


def test_cold_start_grows_with_image_size():
    small = Image("s", size_bytes=50 * MiB)
    large = Image("l", size_bytes=2000 * MiB)
    assert SARUS.cold_start_time(large) > SARUS.cold_start_time(small)


def test_cold_start_format_mismatch_raises():
    with pytest.raises(ValueError):
        SINGULARITY.cold_start_time(img(ImageFormat.DOCKER))


def test_runtimes_registry():
    assert set(RUNTIMES) == {"docker", "singularity", "sarus"}
