"""Warm container pool: hits, swap, eviction, reclamation."""

import pytest

from repro.cluster import AllocationError, DAINT_MC, Node
from repro.containers import ContainerState, Image, SARUS, WarmPool
from repro.sim import Environment

MiB = 1024**2
GiB = 1024**3


def make_pool(node_mem=None):
    env = Environment()
    spec = DAINT_MC if node_mem is None else DAINT_MC.with_overrides(memory_bytes=node_mem)
    node = Node("n0", spec)
    pool = WarmPool(env, node, SARUS)
    return env, node, pool


def image(name="fn-image", mem=256 * MiB):
    return Image(name=name, size_bytes=300 * MiB, runtime_memory_bytes=mem)


def test_first_acquire_is_cold():
    env, node, pool = make_pool()
    res = pool.acquire(image())
    assert res.kind == "cold"
    assert res.startup_cost_s > 0.1
    assert pool.cold_starts == 1
    assert node.allocated_memory == 256 * MiB


def test_release_then_acquire_is_warm():
    env, node, pool = make_pool()
    res = pool.acquire(image())
    pool.release(res.container)
    assert pool.warm_count == 1
    res2 = pool.acquire(image())
    assert res2.kind == "warm"
    assert res2.container is res.container
    assert res2.startup_cost_s == pytest.approx(SARUS.warm_attach_s)
    assert pool.hits == 1


def test_warm_hit_matches_by_image_name():
    env, node, pool = make_pool()
    res = pool.acquire(image("a"))
    pool.release(res.container)
    res2 = pool.acquire(image("b"))
    assert res2.kind == "cold"


def test_reclaim_swaps_out_lru():
    env, node, pool = make_pool()
    r1 = pool.acquire(image("a"))
    pool.release(r1.container)
    env.run(until=10)  # advance clock for distinct LRU stamps
    r2 = pool.acquire(image("b"))
    pool.release(r2.container)
    freed = pool.reclaim(200 * MiB)
    assert freed == 256 * MiB
    assert pool.warm_count == 1
    assert pool.swapped_count == 1
    # LRU (image a) was the victim.
    assert r1.container.state == ContainerState.SWAPPED
    assert r2.container.state == ContainerState.WARM


def test_swapped_acquire_pays_swap_in():
    env, node, pool = make_pool()
    r1 = pool.acquire(image("a"))
    pool.release(r1.container)
    pool.reclaim(1)  # swap it out
    res = pool.acquire(image("a"))
    assert res.kind == "swapped"
    cold = SARUS.cold_start_time(image("a"))
    assert 0 < res.startup_cost_s < cold
    assert pool.swap_ins == 1
    assert node.allocated_memory == 256 * MiB


def test_reclaim_without_swap_discards():
    env, node, pool = make_pool()
    r = pool.acquire(image("a"))
    pool.release(r.container)
    pool.reclaim(1, swap=False)
    assert pool.swapped_count == 0
    assert pool.acquire(image("a")).kind == "cold"


def test_memory_pressure_evicts_warm_containers():
    env, node, pool = make_pool(node_mem=1 * GiB)
    big = 400 * MiB
    r1 = pool.acquire(image("a", mem=big))
    pool.release(r1.container)
    r2 = pool.acquire(image("b", mem=big))
    pool.release(r2.container)
    # Node has 1 GiB; a third 400 MiB container forces an eviction.
    r3 = pool.acquire(image("c", mem=big))
    assert r3.kind == "cold"
    assert pool.evictions >= 1
    assert node.allocated_memory <= 1 * GiB


def test_acquire_raises_when_memory_unavailable():
    env, node, pool = make_pool(node_mem=1 * GiB)
    node.allocate("batch-job", memory_bytes=900 * MiB, kind="batch")
    with pytest.raises(AllocationError):
        pool.acquire(image("a", mem=256 * MiB))


def test_drain_empties_pool():
    env, node, pool = make_pool()
    for name in ("a", "b", "c"):
        res = pool.acquire(image(name))
        pool.release(res.container)
    pool.drain()
    assert pool.warm_count == 0
    assert pool.swapped_count == 3
    assert node.allocated_memory == 0


def test_discard_frees_memory():
    env, node, pool = make_pool()
    res = pool.acquire(image())
    pool.discard(res.container)
    assert node.allocated_memory == 0
    assert pool.warm_count == 0


def test_release_requires_in_use():
    env, node, pool = make_pool()
    res = pool.acquire(image())
    pool.release(res.container)
    with pytest.raises(ValueError):
        pool.release(res.container)


def test_swap_bandwidth_validation():
    env, node, _ = make_pool()
    with pytest.raises(ValueError):
        WarmPool(env, node, SARUS, swap_bandwidth=0)
