"""FilterStore: predicate-matched gets (MPI mailbox semantics)."""

from repro.sim import Environment, FilterStore


def test_get_matches_predicate_not_fifo():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(consumer())
    store.put(1)
    store.put(3)
    store.put(4)
    env.run()
    assert got == [4]
    assert store.items == [1, 3]


def test_waiting_getters_served_when_item_arrives():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(tag, want):
        item = yield store.get(lambda x, w=want: x == w)
        got.append((tag, item, env.now))

    env.process(consumer("a", "x"))
    env.process(consumer("b", "y"))

    def producer():
        yield env.timeout(1)
        store.put("y")
        yield env.timeout(1)
        store.put("x")

    env.process(producer())
    env.run()
    assert ("b", "y", 1) in got
    assert ("a", "x", 2) in got


def test_multiple_getters_one_item_each():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    for _ in range(3):
        env.process(consumer())
    for i in range(3):
        store.put(i)
    env.run()
    assert sorted(got) == [0, 1, 2]
    assert len(store) == 0


def test_default_predicate_takes_first():
    env = Environment()
    store = FilterStore(env)
    store.put("first")
    store.put("second")
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()
    assert got == ["first"]
