"""Engine edge cases: conditions with failures, nested waits, restarts."""

import pytest

from repro.sim import AnyOf, Environment, Event, Interrupt, SimulationError


def test_all_of_fails_if_component_fails():
    env = Environment()
    good = env.timeout(1)
    bad = env.event()
    caught = []

    def waiter():
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(0.5)
        bad.fail(RuntimeError("component died"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["component died"]


def test_any_of_with_already_processed_event():
    env = Environment()
    done = env.timeout(0)

    def waiter():
        yield env.timeout(1)   # `done` fires and is processed meanwhile
        result = yield env.any_of([done, env.timeout(100)])
        return (env.now, list(result.values()))

    p = env.process(waiter())
    env.run(until=p)
    assert p.value[0] == 1  # resolved immediately at wait time


def test_process_waits_on_already_finished_process():
    env = Environment()

    def quick():
        yield env.timeout(1)
        return "done"

    child = env.process(quick())

    def parent():
        yield env.timeout(5)    # child long finished
        result = yield child
        return (env.now, result)

    p = env.process(parent())
    env.run()
    assert p.value == (5, "done")


def test_chained_interrupt_and_resume():
    env = Environment()
    log = []

    def worker():
        for attempt in range(3):
            try:
                yield env.timeout(10)
                log.append(("finished", attempt, env.now))
                return
            except Interrupt:
                log.append(("interrupted", attempt, env.now))

    def interrupter(victim):
        for _ in range(2):
            yield env.timeout(3)
            victim.interrupt()

    victim = env.process(worker())
    env.process(interrupter(victim))
    env.run()
    assert log[0] == ("interrupted", 0, 3)
    assert log[1] == ("interrupted", 1, 6)
    assert log[2] == ("finished", 2, 16)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unwaited_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    env.run()  # no raise


def test_run_twice_continues_from_stop_point():
    env = Environment()
    marks = []

    def proc():
        for _ in range(4):
            yield env.timeout(10)
            marks.append(env.now)

    env.process(proc())
    env.run(until=25)
    assert marks == [10, 20]
    env.run()
    assert marks == [10, 20, 30, 40]


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        value = yield env.timeout(2, value="payload")
        return value

    p = env.process(proc())
    env.run()
    assert p.value == "payload"


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0
    fired = []

    def proc():
        yield env.timeout(5)
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [105.0]


def test_interrupt_detaches_from_allof_target():
    """Interrupting a process waiting on AllOf must remove its resume
    callback from the condition, so the later trigger cannot resume a
    generator that already moved on (or finished)."""
    from repro.sim import AllOf

    env = Environment()
    condition = {}
    caught = []

    def waiter():
        condition["event"] = AllOf(env, [env.timeout(10), env.timeout(20)])
        try:
            yield condition["event"]
        except Interrupt as interrupt:
            caught.append((env.now, interrupt.cause))

    p = env.process(waiter())

    def interrupter():
        yield env.timeout(5)
        p.interrupt("stop")
        # The waiter is no longer wired to the condition...
        assert p._resume not in condition["event"].callbacks
        # ...but the condition itself still completes on its own.

    env.process(interrupter())
    env.run()
    assert caught == [(5, "stop")]
    assert condition["event"].triggered
    assert env.now == 20


def test_interrupt_detaches_from_anyof_target():
    env = Environment()
    condition = {}
    resumptions = []

    def waiter():
        condition["event"] = AnyOf(env, [env.event(), env.timeout(30)])
        try:
            yield condition["event"]
            resumptions.append(("completed", env.now))
        except Interrupt:
            resumptions.append(("interrupted", env.now))
            # Keep living past the interrupt; if the AnyOf callback were
            # still attached, its trigger at t=30 would resume this yield
            # a second time with the condition's value.
        yield env.timeout(100)
        resumptions.append(("slept", env.now))

    p = env.process(waiter())

    def interrupter():
        yield env.timeout(1)
        p.interrupt()
        assert p._resume not in condition["event"].callbacks

    env.process(interrupter())
    env.run()
    assert resumptions == [("interrupted", 1), ("slept", 101)]
