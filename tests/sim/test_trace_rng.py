"""Tests for time-series tracing and RNG streams."""

import numpy as np
import pytest

from repro.sim import EventLog, RngRegistry, TimeSeries


def test_timeseries_step_lookup():
    ts = TimeSeries("x")
    ts.record(0, 1.0)
    ts.record(10, 2.0)
    ts.record(20, 0.0)
    assert ts.value_at(0) == 1.0
    assert ts.value_at(9.99) == 1.0
    assert ts.value_at(10) == 2.0
    assert ts.value_at(25) == 0.0


def test_timeseries_rejects_non_monotonic():
    ts = TimeSeries()
    ts.record(5, 1)
    with pytest.raises(ValueError):
        ts.record(4, 2)


def test_timeseries_same_instant_overwrite():
    ts = TimeSeries()
    ts.record(1, 10)
    ts.record(1, 20)
    assert len(ts) == 1
    assert ts.value_at(1) == 20


def test_timeseries_lookup_before_first_raises():
    ts = TimeSeries()
    ts.record(5, 1)
    with pytest.raises(ValueError):
        ts.value_at(4)
    with pytest.raises(ValueError):
        TimeSeries().value_at(0)


def test_timeseries_sampling_grid():
    ts = TimeSeries()
    ts.record(0, 0)
    ts.record(3, 1)
    ts.record(7, 2)
    sampled = ts.sample(0, 8, 2)
    assert list(sampled.times) == [0, 2, 4, 6, 8]
    assert list(sampled.values) == [0, 0, 1, 1, 2]


def test_time_weighted_mean():
    ts = TimeSeries()
    ts.record(0, 0.0)
    ts.record(5, 10.0)
    ts.record(10, 0.0)
    # 0 for 5s then 10 for 5s over [0, 10] -> mean 5
    assert ts.time_weighted_mean(0, 10) == pytest.approx(5.0)


def test_intervals_where_extracts_spans():
    ts = TimeSeries()
    for t, v in [(0, 1), (2, 0), (5, 1), (9, 0), (12, 0)]:
        ts.record(t, v)
    idle = ts.intervals_where(lambda v: v == 0)
    assert idle == [(2, 5), (9, 12)]


def test_intervals_where_open_at_end():
    ts = TimeSeries()
    ts.record(0, 1)
    ts.record(4, 0)
    ts.record(10, 0)
    assert ts.intervals_where(lambda v: v == 0) == [(4, 10)]


def test_eventlog_filters():
    log = EventLog()
    log.emit(1.0, "start", job=1)
    log.emit(2.0, "end", job=1)
    log.emit(3.0, "start", job=2)
    assert len(log) == 3
    assert [r.payload["job"] for r in log.of_kind("start")] == [1, 2]
    assert log.kinds() == {"start", "end"}
    assert len(log.between(1.5, 3.0)) == 2


def test_rng_streams_independent_and_reproducible():
    reg1 = RngRegistry(seed=42)
    reg2 = RngRegistry(seed=42)
    a1 = reg1.stream("jobs").random(100)
    a2 = reg2.stream("jobs").random(100)
    np.testing.assert_array_equal(a1, a2)

    # Different stream names differ.
    b = RngRegistry(seed=42).stream("network").random(100)
    assert not np.array_equal(a1, b)

    # Different seeds differ.
    c = RngRegistry(seed=43).stream("jobs").random(100)
    assert not np.array_equal(a1, c)


def test_rng_stream_is_cached():
    reg = RngRegistry(seed=1)
    assert reg.stream("x") is reg.stream("x")
    reg.reset()
    first = RngRegistry(seed=1).stream("x").random(5)
    again = reg.stream("x").random(5)
    np.testing.assert_array_equal(first, again)


def test_timeseries_sample_no_float_drift_on_long_windows():
    """Regression: `t += interval` accumulated error and could drop the
    final grid point; grid points are now computed as start + i*interval."""
    ts = TimeSeries()
    ts.record(0, 1.0)
    # 2-minute polling over a week, the Fig. 1 regime.
    week = 7 * 24 * 3600.0
    sampled = ts.sample(0.0, week, 120.0)
    assert len(sampled) == int(week / 120.0) + 1
    assert sampled.times[-1] == week

    # The classic failure case: an interval with no exact binary
    # representation over many steps.
    ts2 = TimeSeries()
    ts2.record(0, 2.0)
    sampled2 = ts2.sample(0.0, 1200.0, 0.1)
    assert len(sampled2) == 12001
    assert sampled2.times[-1] == 1200.0


def test_timeseries_sample_nonzero_start_grid():
    ts = TimeSeries()
    ts.record(0, 5.0)
    sampled = ts.sample(10.0, 20.0, 2.5)
    assert list(sampled.times) == [10.0, 12.5, 15.0, 17.5, 20.0]
    assert all(v == 5.0 for v in sampled.values)


def test_eventlog_between_boundaries_are_inclusive():
    log = EventLog()
    log.emit(1.0, "a")
    log.emit(2.0, "b")
    log.emit(3.0, "c")
    # Both endpoints are included.
    assert [r.kind for r in log.between(1.0, 3.0)] == ["a", "b", "c"]
    assert [r.kind for r in log.between(2.0, 2.0)] == ["b"]
    # Strictly outside stays out.
    assert [r.kind for r in log.between(1.0 + 1e-12, 3.0 - 1e-12)] == ["b"]
    assert log.between(3.5, 9.0) == []
    # Inverted window is empty, not an error.
    assert log.between(3.0, 1.0) == []
