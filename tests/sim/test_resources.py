"""Unit tests for Resource / Container / Store primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            granted.append((tag, env.now))
            yield env.timeout(hold)

    env.process(user("a", 5))
    env.process(user("b", 5))
    env.process(user("c", 5))
    env.run()
    times = dict((t, at) for t, at in granted)
    assert times["a"] == 0 and times["b"] == 0
    assert times["c"] == 5


def test_resource_multi_slot_request():
    env = Environment()
    res = Resource(env, capacity=4)
    log = []

    def wide():
        with res.request(count=3) as req:
            yield req
            log.append(("wide", env.now))
            yield env.timeout(10)

    def narrow():
        yield env.timeout(1)
        with res.request(count=2) as req:
            yield req
            log.append(("narrow", env.now))

    env.process(wide())
    env.process(narrow())
    env.run()
    assert ("wide", 0) in log
    assert ("narrow", 10) in log  # must wait for 3 slots to free


def test_resource_priority_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def claimant(tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder())
    env.process(claimant("low", 10, 1))
    env.process(claimant("high", 0, 2))
    env.run()
    assert order == ["high", "low"]


def test_resource_head_of_line_blocking():
    # A wide request at the head must not be starved by small ones.
    env = Environment()
    res = Resource(env, capacity=4)
    order = []

    def holder():
        with res.request(count=3) as req:
            yield req
            yield env.timeout(5)

    def wide():
        yield env.timeout(1)
        with res.request(count=4) as req:
            yield req
            order.append(("wide", env.now))
            yield env.timeout(1)

    def small():
        yield env.timeout(2)
        with res.request(count=1) as req:
            yield req
            order.append(("small", env.now))

    env.process(holder())
    env.process(wide())
    env.process(small())
    env.run()
    assert order[0] == ("wide", 5)
    assert order[1] == ("small", 6)


def test_resource_counts_and_release():
    env = Environment()
    res = Resource(env, capacity=3)

    def proc():
        req = res.request(count=2)
        yield req
        assert res.count == 2
        assert res.available == 1
        res.release(req)
        assert res.count == 0

    env.process(proc())
    env.run()


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        yield env.timeout(2)
        req.cancel()
        assert res.queue_length == 0

    env.process(holder())
    env.process(impatient())
    env.run()
    assert res.count == 0


def test_resource_invalid_requests():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(count=0)
    with pytest.raises(ValueError):
        res.request(count=3)
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=10)
    got = []

    def consumer():
        yield tank.get(50)
        got.append(env.now)

    def producer():
        yield env.timeout(3)
        yield tank.put(45)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [3]
    assert tank.level == pytest.approx(5)


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=8)
    done = []

    def producer():
        yield tank.put(5)
        done.append(env.now)

    def consumer():
        yield env.timeout(2)
        yield tank.get(4)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [2]
    assert tank.level == pytest.approx(9)


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=7)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.put(6)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer():
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got_at = []

    def consumer():
        yield store.get()
        got_at.append(env.now)

    def producer():
        yield env.timeout(7)
        store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [7]


def test_store_bounded_capacity_rejects():
    env = Environment()
    store = Store(env, capacity=1)
    store.put("a")
    ev = store.put("b")
    assert ev.triggered and not ev.ok
    ev.defuse()
    assert len(store) == 1
