"""Edge cases the fast-path engine rewrite must not break.

The engine splits the event queue into an immediate deque plus heaps and
keeps a single-waiter slot per event; these tests pin the behaviors most
at risk from that rewrite: interrupts landing between same-timestamp
events, ``run(until=event)`` on a triggered-but-unprocessed event,
``Timeout(0)`` vs ``succeed()`` FIFO ordering, and condition waiters
under the single-waiter slot.
"""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt
from repro.sim.engine import SimulationError


# -- interrupt between two same-timestamp events ---------------------------

def test_interrupt_fires_before_pending_same_time_events():
    """An interrupt (priority 0) overtakes priority-1 events already
    queued for the same timestamp, regardless of scheduling order."""
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, env.now))

    def bystander(tag):
        yield env.timeout(5.0)
        log.append((tag, env.now))

    v = env.process(victim())

    def interrupter():
        yield env.timeout(5.0)
        v.interrupt(cause="preempt")
        log.append(("sent", env.now))

    env.process(interrupter())
    # Scheduled after the interrupter, so at t=5.0 the bystander timeout
    # is already enqueued with a seq *below* the interrupt event's.
    env.process(bystander("a"))
    env.run()
    assert ("interrupted", "preempt", 5.0) in log
    # The interrupt (priority 0) overtook bystander "a"'s same-timestamp
    # priority-1 timeout despite being scheduled later (higher seq).
    assert log.index(("interrupted", "preempt", 5.0)) < log.index(("a", 5.0))


def test_interrupt_detaches_single_waiter_slot():
    """The interrupted process's resume must be detached from the event
    it waited on (held in the _waiter slot), so the event firing later
    does not resume a finished process."""
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
            log.append("slept")
        except Interrupt:
            log.append(("interrupted", env.now))
        # Finishes immediately after handling the interrupt.

    v = env.process(victim())

    def interrupter():
        yield env.timeout(2.0)
        v.interrupt()

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", 2.0)]
    assert env.now == 10.0  # the detached timeout still fired, inertly


def test_interrupt_detaches_from_callback_list_with_other_waiters():
    """Detach also works when the victim's resume overflowed into the
    callbacks list because another process registered first."""
    env = Environment()
    log = []
    gate = env.event()

    def first():
        value = yield gate
        log.append(("first", value))

    def second():
        try:
            yield gate
            log.append("second-unexpected")
        except Interrupt:
            log.append("second-interrupted")

    env.process(first())
    p2 = env.process(second())

    def driver():
        yield env.timeout(1.0)
        p2.interrupt()
        yield env.timeout(1.0)
        gate.succeed("go")

    env.process(driver())
    env.run()
    assert log == ["second-interrupted", ("first", "go")]


# -- run(until=event) on a triggered-but-unprocessed event ------------------

def test_run_until_event_triggered_but_not_processed():
    """run(until=ev) where ev was triggered pre-run must process it
    (and everything due before it), then stop."""
    env = Environment()
    ev = env.event()
    ev.succeed("payload")  # triggered, sitting in the immediate queue
    assert ev.triggered and not ev.processed
    assert env.run(until=ev) == "payload"
    assert ev.processed


def test_run_until_event_stops_at_processing_not_at_trigger():
    env = Environment()
    log = []
    ev = env.event()

    def trigger():
        yield env.timeout(1.0)
        ev.succeed(42)
        log.append("triggered")

    def later():
        yield env.timeout(5.0)
        log.append("later")

    env.process(trigger())
    env.process(later())
    assert env.run(until=ev) == 42
    # The event fired at t=1.0; the t=5.0 process must not have run.
    assert log == ["triggered"]
    assert env.now == 1.0
    env.run()
    assert log == ["triggered", "later"]


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()

    def ticker():
        yield env.timeout(1.0)

    env.process(ticker())
    with pytest.raises(SimulationError):
        env.run(until=ev)


# -- Timeout(0) vs succeed() FIFO at one timestamp --------------------------

def test_timeout_zero_and_succeed_fifo_order():
    """Zero-delay timeouts and succeed()-triggered events at the same
    timestamp fire strictly in scheduling order."""
    env = Environment()
    log = []

    def driver():
        t1 = env.timeout(0.0, value="t1")
        e1 = env.event()
        e1.succeed("e1")
        t2 = env.timeout(0.0, value="t2")
        e2 = env.event()
        e2.succeed("e2")
        results = yield env.all_of([t1, e1, t2, e2])
        log.append(list(results.values()))

    def observer(tag):
        yield env.timeout(0.0)
        log.append(tag)

    env.process(observer("before"))
    env.process(driver())
    env.process(observer("after"))
    env.run()
    # Observers bracket the driver's components in strict seq order; the
    # AllOf condition event itself is scheduled after the last component
    # fires, so the driver resumes last.  Component order is preserved.
    assert log == ["before", "after", ["t1", "e1", "t2", "e2"]]


def test_timeout_zero_fires_after_earlier_succeed_and_before_later_one():
    env = Environment()
    order = []

    def waiter(ev, tag):
        yield ev
        order.append(tag)

    early = env.event()
    early.succeed()
    env.process(waiter(early, "early-succeed"))
    t0 = env.timeout(0.0)
    env.process(waiter(t0, "timeout-zero"))
    late = env.event()
    late.succeed()
    env.process(waiter(late, "late-succeed"))
    env.run()
    assert order == ["early-succeed", "timeout-zero", "late-succeed"]


# -- AllOf / AnyOf under the single-waiter fast path ------------------------

def test_allof_shares_events_with_a_process_waiter():
    """A condition's _check and a process's resume can wait on the same
    event: the first registrant takes the _waiter slot, the second goes
    to the callbacks list, and both fire in registration order."""
    env = Environment()
    log = []
    shared = env.event()
    cond = AllOf(env, [shared, env.timeout(1.0, value="t")])

    def direct_waiter():
        value = yield shared
        log.append(("direct", value, env.now))

    def cond_waiter():
        results = yield cond
        log.append(("cond", list(results.values()), env.now))

    env.process(direct_waiter())
    env.process(cond_waiter())

    def trigger():
        yield env.timeout(2.0)
        shared.succeed("s")

    env.process(trigger())
    env.run()
    assert ("direct", "s", 2.0) in log
    assert ("cond", ["s", "t"], 2.0) in log


def test_anyof_fires_on_first_and_excludes_untriggered_events():
    env = Environment()
    first = env.event()
    second = env.event()
    cond = AnyOf(env, [first, second])
    log = []

    def waiter():
        results = yield cond
        log.append((env.now, list(results.values())))

    env.process(waiter())

    def driver():
        yield env.timeout(1.0)
        first.succeed("fast")
        yield env.timeout(4.0)
        second.succeed("slow")

    env.process(driver())
    env.run()
    # Only the component triggered by finish time appears in the result.
    assert log == [(1.0, ["fast"])]
    assert env.now == 5.0


def test_anyof_result_includes_all_components_triggered_at_finish():
    env = Environment()
    # Timeouts are triggered at creation, so both appear in the result
    # dict even though only the first has been *processed* at t=1.0.
    first = env.timeout(1.0, value="fast")
    second = env.timeout(5.0, value="slow")
    cond = AnyOf(env, [first, second])
    log = []

    def waiter():
        results = yield cond
        log.append((env.now, list(results.values())))

    env.process(waiter())
    env.run()
    assert log == [(1.0, ["fast", "slow"])]


def test_allof_with_already_processed_component():
    env = Environment()
    done = env.event()
    done.succeed("pre")
    env.run()  # process it fully
    assert done.processed
    log = []

    def waiter():
        results = yield AllOf(env, [done, env.timeout(1.0, value="t")])
        log.append(list(results.values()))

    env.process(waiter())
    env.run()
    assert log == [["pre", "t"]]


def test_allof_failure_propagates_from_waiter_slot():
    env = Environment()
    boom = env.event()
    cond = AllOf(env, [boom, env.timeout(1.0)])
    caught = []

    def waiter():
        try:
            yield cond
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())

    def failer():
        yield env.timeout(0.5)
        boom.fail(RuntimeError("kaput"))

    env.process(failer())
    env.run()
    assert caught == ["kaput"]


# -- misc invariants of the split-queue scheduler ---------------------------

def test_event_count_matches_processed_events_after_drain():
    env = Environment()

    def p():
        for _ in range(10):
            yield env.timeout(0.0)
            yield env.timeout(1.0)

    env.process(p())
    env.process(p())
    env.run()
    # Initialize + per-yield timeouts + the two process-finish events.
    assert env.event_count == 2 * (1 + 20) + 2


def test_peek_merges_immediate_and_delayed_queues():
    env = Environment()
    env.timeout(5.0)
    assert env.peek() == 5.0
    env.timeout(0.0)
    assert env.peek() == 0.0


def test_run_until_time_between_queued_events():
    env = Environment()
    log = []

    def p():
        yield env.timeout(1.0)
        log.append(env.now)
        yield env.timeout(2.0)
        log.append(env.now)

    env.process(p())
    env.run(until=2.0)
    assert log == [1.0]
    assert env.now == 2.0
    env.run()
    assert log == [1.0, 3.0]
