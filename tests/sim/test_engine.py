"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        assert env.now == 5
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 7.5
    assert env.now == 7.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_between_events():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10)
        fired.append(env.now)

    env.process(proc())
    env.run(until=4)
    assert env.now == 4
    assert fired == []
    env.run(until=20)
    assert fired == [10]


def test_run_until_past_raises():
    env = Environment()
    env.process(iter_timeout(env, 5))
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def iter_timeout(env, t):
    yield env.timeout(t)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 3


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(1)
            order.append(tag)

        return proc

    for tag in range(10):
        env.process(make(tag)())
    env.run()
    assert order == list(range(10))


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append((env.now, value))

    def trigger():
        yield env.timeout(2)
        ev.succeed(42)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [(2, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_in_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("bad process")

    env.process(bad())
    with pytest.raises(ValueError, match="bad process"):
        env.run()


def test_process_waits_on_other_process():
    env = Environment()

    def child():
        yield env.timeout(4)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    p = env.process(parent())
    env.run()
    assert p.value == (4, "child-result")


def test_interrupt_wakes_process_early():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(victim):
        yield env.timeout(3)
        victim.interrupt(cause="reclaim")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert log == [(3, "reclaim")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_collects_values():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        results = yield env.all_of([t1, t2])
        return sorted(results.values())

    p = env.process(proc())
    env.run()
    assert p.value == ["a", "b"]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(10, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc())
    env.run()
    assert p.value[0] == 1
    assert "fast" in p.value[1]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0


def test_peek_and_step():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.step()
    assert env.now == 7
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_condition_different_env_rejected():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(SimulationError):
        AllOf(env1, [t1, t2])


def test_run_until_event_never_fires_raises():
    env = Environment()
    ev = env.event()  # nothing ever triggers it
    env.timeout(1)
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok
