"""Cloud FaaS baseline behaviour tests."""

import numpy as np
import pytest

from repro.cloudfaas import CloudConfig, CloudFaaSPlatform
from repro.containers import Image, ImageFormat
from repro.sim import Environment

MiB = 1024**2


def make_platform(**cfg):
    env = Environment()
    platform = CloudFaaSPlatform(env, config=CloudConfig(**cfg) if cfg else None,
                                 rng=np.random.default_rng(0))
    platform.register("fn", Image("fn", size_bytes=300 * MiB))
    return env, platform


def invoke(env, platform, **kw):
    out = {}

    def proc():
        record = yield platform.invoke("fn", **kw)
        out["record"] = record

    env.process(proc())
    env.run()
    return out["record"]


def test_first_invocation_cold():
    env, platform = make_platform()
    record = invoke(env, platform)
    assert record.cold
    assert record.startup_s > 0.3
    assert platform.cold_starts == 1


def test_warm_within_keepalive_cold_after():
    env, platform = make_platform(keepalive_s=100.0)
    first = invoke(env, platform)
    assert first.cold

    out = []

    def proc():
        record = yield platform.invoke("fn")
        out.append(record)
        yield env.timeout(200.0)  # past keep-alive
        record = yield platform.invoke("fn")
        out.append(record)

    env.process(proc())
    env.run()
    warm, purged = out
    assert not warm.cold and warm.startup_s < 0.01
    assert purged.cold
    assert platform.warm_invocations == 1
    assert platform.cold_starts == 2


def test_warm_invocation_costs_dozens_of_milliseconds():
    """The Sec. IV-A complaint about classical functions."""
    env, platform = make_platform()
    invoke(env, platform)
    record = invoke(env, platform)
    assert not record.cold
    assert 0.01 < record.total_s < 0.1  # dozens of ms, not microseconds


def test_large_payload_detours_through_storage():
    env, platform = make_platform()
    invoke(env, platform)  # warm it
    small = invoke(env, platform, payload_bytes=64 * 1024)
    big = invoke(env, platform, payload_bytes=32 * MiB)
    assert small.storage_s == 0.0
    assert big.storage_s > 0.02
    assert big.total_s > small.total_s


def test_large_output_also_detours():
    env, platform = make_platform()
    invoke(env, platform)
    record = invoke(env, platform, output_bytes=16 * MiB)
    assert record.storage_s > 0.0


def test_execution_time_added():
    env, platform = make_platform()
    invoke(env, platform)
    record = invoke(env, platform, runtime_s=0.5)
    assert record.execution_s == 0.5
    assert record.total_s > 0.5


def test_inline_limit_is_a_strict_boundary():
    """Edge path the burst router rides: == limit inline, limit+1 detours."""
    env, platform = make_platform()
    invoke(env, platform)  # warm it
    limit = platform.config.inline_payload_limit
    at_limit = invoke(env, platform, payload_bytes=limit)
    over = invoke(env, platform, payload_bytes=limit + 1)
    assert at_limit.storage_s == 0.0
    assert over.storage_s > 0.0


def test_detour_cost_is_two_object_store_round_trips():
    """storage_s is exactly 2x single_read_time per oversized direction."""
    env, platform = make_platform()
    invoke(env, platform)
    payload = 32 * MiB
    output = 8 * MiB
    expected = (2 * platform.storage.single_read_time(payload)
                + 2 * platform.storage.single_read_time(output))
    record = invoke(env, platform, payload_bytes=payload, output_bytes=output)
    assert record.storage_s == pytest.approx(expected)
    # The detour dwarfs the gateway hops at this size.
    assert record.storage_s > record.gateway_s


def test_keepalive_purge_then_recovery_counters():
    """purge -> cold start -> warm again; counters track the sequence."""
    env, platform = make_platform(keepalive_s=50.0)
    records = []

    def proc():
        for gap in (0.0, 10.0, 100.0, 1.0):
            if gap:
                yield env.timeout(gap)
            record = yield platform.invoke("fn")
            records.append(record)

    env.process(proc())
    env.run()
    first, warm, purged, rewarmed = records
    assert [r.cold for r in records] == [True, False, True, False]
    image = platform._functions["fn"]
    assert purged.startup_s == pytest.approx(
        platform.config.runtime.cold_start_time(image))
    assert rewarmed.startup_s == pytest.approx(
        platform.config.runtime.warm_attach_s)
    assert platform.cold_starts == 2
    assert platform.warm_invocations == 2


def test_validation():
    env, platform = make_platform()
    with pytest.raises(KeyError):
        platform.invoke("missing")
    with pytest.raises(ValueError):
        platform.invoke("fn", payload_bytes=-1)
    with pytest.raises(ValueError):
        platform.register("fn", Image("fn", size_bytes=1))
    with pytest.raises(ValueError):
        platform.register("sif", Image("sif", size_bytes=1, format=ImageFormat.SINGULARITY))
    with pytest.raises(ValueError):
        CloudConfig(gateway_latency_s=-1)
    with pytest.raises(ValueError):
        CloudConfig(keepalive_s=0)
