"""Live process-based runtime tests (real multiprocessing)."""

import numpy as np
import pytest

from repro.local import LocalRuntime, deserialize, payload_nbytes, resolve_target, serialize


@pytest.fixture(scope="module")
def runtime():
    rt = LocalRuntime(workers=2)
    rt.register("transport", "repro.workloads.openmc_like:transport_chunk")
    rt.register("price", "repro.workloads.blackscholes:price_chunk")
    rt.register("ep", "repro.workloads.nas:ep_kernel")
    yield rt
    rt.shutdown()


def test_resolve_target_validation():
    assert resolve_target("repro.workloads.nas:ep_kernel") is not None
    with pytest.raises(ValueError):
        resolve_target("no-colon")
    with pytest.raises(ModuleNotFoundError):
        resolve_target("nope.nope:fn")
    with pytest.raises(AttributeError):
        resolve_target("repro.workloads.nas:missing")
    with pytest.raises(TypeError):
        resolve_target("repro.workloads.nas:NAS_MODELS")


def test_register_validates_and_rejects_duplicates(runtime):
    with pytest.raises(ValueError):
        runtime.register("transport", "repro.workloads.nas:ep_kernel")
    with pytest.raises(ValueError):
        runtime.register("bad", "not-a-target")
    assert "price" in runtime.registered()


def test_invoke_executes_in_worker_process(runtime):
    out = runtime.invoke_sync("transport", {"particles": 200, "seed": 1})
    from repro.workloads import run_transport

    direct = run_transport(200, seed=1)
    assert out["collisions"] == direct.collisions
    assert out["k_estimate"] == direct.k_estimate


def test_invoke_kwargs(runtime):
    a = runtime.invoke_sync("ep", scale=12, seed=5)
    from repro.workloads.nas import ep_kernel

    assert a == ep_kernel(scale=12, seed=5)


def test_unregistered_function_raises(runtime):
    with pytest.raises(KeyError):
        runtime.invoke("missing", 1)


def test_map_preserves_order(runtime):
    payloads = [{"particles": 100, "seed": s} for s in range(4)]
    results = runtime.map("transport", payloads)
    assert [r["particles"] for r in results] == [100] * 4
    ks = [r["k_estimate"] for r in results]
    assert len(set(ks)) > 1  # different seeds -> different tallies


def test_worker_exception_propagates(runtime):
    with pytest.raises(ValueError):
        runtime.invoke_sync("transport", {"particles": 0})
    assert runtime.stats.errors >= 1


def test_cold_start_measured_and_warm_reuse(runtime):
    runtime.prewarm()
    assert runtime.stats.cold_start_s is not None
    assert runtime.stats.cold_start_s > 0.01  # process spawn is not free
    assert runtime.warm


def test_shutdown_and_restart():
    rt = LocalRuntime(workers=1)
    rt.register("ep", "repro.workloads.nas:ep_kernel")
    rt.invoke_sync("ep", scale=10)
    rt.shutdown()
    assert not rt.warm
    # Next invocation re-warms transparently (a new cold start).
    assert rt.invoke_sync("ep", scale=10) == rt.invoke_sync("ep", scale=10)
    rt.shutdown()


def test_context_manager():
    with LocalRuntime(workers=1) as rt:
        rt.register("ep", "repro.workloads.nas:ep_kernel")
        rt.invoke_sync("ep", scale=10)
    assert not rt.warm


def test_worker_count_validation():
    with pytest.raises(ValueError):
        LocalRuntime(workers=0)


def test_serialization_roundtrip_and_size():
    payload = {"a": np.arange(1000, dtype=np.float64), "b": "text"}
    blob = serialize(payload)
    back = deserialize(blob)
    np.testing.assert_array_equal(back["a"], payload["a"])
    assert back["b"] == "text"
    assert payload_nbytes(payload) == len(blob)
    assert payload_nbytes(payload) > 8000  # the array dominates
