"""Billing arithmetic and Fig. 10 utilization scenarios."""

import pytest

from repro.disagg import (
    FunctionBill,
    JobBill,
    ScenarioUtilization,
    colocation_scenarios,
    core_hour_discount,
)

GiB = 1024**3


def test_paper_discount_numbers():
    """Sec. V-C: 32/36 cores -> ~11%, 9/12 cores -> 25%."""
    assert core_hour_discount(32, 36) == pytest.approx(0.111, abs=0.001)
    assert core_hour_discount(9, 12) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        core_hour_discount(0, 36)
    with pytest.raises(ValueError):
        core_hour_discount(37, 36)


def test_job_bill_exclusive_vs_shared():
    bill = JobBill(nodes=2, node_cores=36, requested_cores_per_node=32,
                   runtime_s=3600.0)
    assert bill.exclusive_cost() == pytest.approx(72.0)
    assert bill.shared_cost() == pytest.approx(64.0)
    assert bill.saving_fraction() == pytest.approx(core_hour_discount(32, 36))
    assert bill.sharing_worth_it()


def test_job_bill_slowdown_erodes_saving():
    # 2% co-location slowdown still leaves the 11% discount clearly ahead.
    bill = JobBill(nodes=2, node_cores=36, requested_cores_per_node=32,
                   runtime_s=3600.0, slowdown=1.02)
    assert 0.0 < bill.saving_fraction() < core_hour_discount(32, 36)
    assert bill.sharing_worth_it()
    # A pathological 15% slowdown would not be worth it.
    bad = JobBill(nodes=2, node_cores=36, requested_cores_per_node=32,
                  runtime_s=3600.0, slowdown=1.15)
    assert not bad.sharing_worth_it()


def test_job_bill_validation():
    with pytest.raises(ValueError):
        JobBill(nodes=0, node_cores=36, requested_cores_per_node=1, runtime_s=1)
    with pytest.raises(ValueError):
        JobBill(nodes=1, node_cores=36, requested_cores_per_node=40, runtime_s=1)
    with pytest.raises(ValueError):
        JobBill(nodes=1, node_cores=36, requested_cores_per_node=36, runtime_s=1,
                slowdown=0.9)


def test_function_bill_components():
    bill = FunctionBill(cores=1, memory_bytes=2 * GiB, duration_s=3600.0,
                        core_hour_price=1.0, gib_hour_price=0.05)
    assert bill.cost() == pytest.approx(1.0 + 2 * 0.05)
    gpu = FunctionBill(cores=1, memory_bytes=0, duration_s=1800.0, gpus=1,
                       gpu_hour_price=10.0)
    assert gpu.cost() == pytest.approx(0.5 * (1 + 10))
    with pytest.raises(ValueError):
        FunctionBill(cores=-1, memory_bytes=0, duration_s=1)


def test_scenario_utilization_basics():
    s = ScenarioUtilization("x", used_core_time=50, allocated_core_time=100)
    assert s.utilization == 0.5
    with pytest.raises(ValueError):
        ScenarioUtilization("x", used_core_time=101, allocated_core_time=100)
    with pytest.raises(ValueError):
        ScenarioUtilization("x", used_core_time=1, allocated_core_time=0)


def test_fig10_ordering_and_magnitude():
    """Co-located > partial > exclusive; improvement in the tens of %."""
    scenarios = colocation_scenarios(
        node_cores=36, batch_nodes=2, batch_cores_per_node=32,
        batch_runtime_s=100.0, function_cores_per_node=4,
        batch_slowdown=1.01,
    )
    exclusive = scenarios["exclusive"]
    partial = scenarios["partial"]
    coloc = scenarios["colocated"]
    assert coloc.utilization > partial.utilization > exclusive.utilization
    improvement = coloc.improvement_over(exclusive)
    assert improvement > 0.3  # paper: up to ~52%
    assert coloc.utilization <= 1.0


def test_fig10_slowdown_reduces_coloc_utilization():
    base = colocation_scenarios(36, 2, 32, 100.0, 4, batch_slowdown=1.0)
    slowed = colocation_scenarios(36, 2, 32, 100.0, 4, batch_slowdown=1.10)
    assert slowed["colocated"].utilization < base["colocated"].utilization


def test_scenario_validation():
    with pytest.raises(ValueError):
        colocation_scenarios(36, 1, 40, 100, 0)
    with pytest.raises(ValueError):
        colocation_scenarios(36, 1, 32, 100, 10)  # 32+10 > 36
    with pytest.raises(ValueError):
        colocation_scenarios(36, 1, 32, 100, 4, function_busy_fraction=2.0)


def test_scenario_utilization_str_is_human_readable():
    s = ScenarioUtilization("colocated", used_core_time=50.0, allocated_core_time=100.0)
    text = str(s)
    assert text == "colocated: 50.0% utilization (used 50.0 / allocated 100.0 core-s)"


def test_colocated_scenario_counts_both_workloads_core_time():
    """Regression: the colocated scenario dropped fn_used from its
    used_core_time (a tuple artifact), understating utilization."""
    scenarios = colocation_scenarios(
        node_cores=36, batch_nodes=2, batch_cores_per_node=32,
        batch_runtime_s=100.0, function_cores_per_node=4,
        batch_slowdown=1.0,
    )
    coloc = scenarios["colocated"]
    batch_used = 2 * 32 * 100.0
    fn_used = 2 * 4 * 100.0
    assert coloc.used_core_time == pytest.approx(batch_used + fn_used)
    # With all leftover cores serving functions, colocated utilization is 100%.
    assert coloc.utilization == pytest.approx(1.0)
