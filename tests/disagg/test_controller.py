"""Disaggregation controller integration tests (scheduler <-> manager)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.disagg import ControllerConfig, DisaggregationController
from repro.network import IBVERBS, DrcManager, NetworkFabric
from repro.rfaas import NodeLoadRegistry, ResourceManager
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec

GiB = 1024**3


class Rig:
    def __init__(self, nodes=4, config=None):
        self.env = Environment()
        self.cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
        self.cluster.add_nodes("n", nodes, DAINT_MC)
        self.scheduler = BatchScheduler(self.env, self.cluster)
        self.loads = NodeLoadRegistry(self.cluster)
        self.manager = ResourceManager(
            self.env, self.cluster, loads=self.loads, drc=DrcManager(),
            rng=np.random.default_rng(0),
        )
        self.controller = DisaggregationController(
            self.scheduler, self.manager, config=config
        )

    def spec(self, nodes=1, cores=32, walltime=100.0, shared=True, mem=8 * GiB):
        return JobSpec(
            user="u", app="lulesh", nodes=nodes, cores_per_node=cores,
            memory_per_node=mem, walltime=walltime, runtime=walltime, shared=shared,
        )


def test_idle_nodes_registered_at_startup():
    rig = Rig(nodes=4)
    assert set(rig.manager.registered_nodes()) == {"n0000", "n0001", "n0002", "n0003"}
    assert rig.controller.idle_registrations == 4
    assert rig.controller.registered_idle_nodes() == ["n0000", "n0001", "n0002", "n0003"]


def test_batch_job_reclaims_idle_registration():
    rig = Rig(nodes=2)
    job = rig.scheduler.submit(rig.spec(nodes=1, shared=False))
    rig.env.run(until=1)
    # Claimed node pulled from pool; non-consenting job adds nothing back.
    assert job.node_names[0] not in rig.manager.registered_nodes()
    assert rig.controller.reclaims == 1
    rig.env.run()
    # After the job ends the node returns as idle.
    assert len(rig.manager.registered_nodes()) == 2


def test_shared_job_leftovers_registered():
    rig = Rig(nodes=2)
    job = rig.scheduler.submit(rig.spec(nodes=1, cores=32, shared=True))
    rig.env.run(until=1)
    name = job.node_names[0]
    assert rig.manager.is_registered(name)
    info = rig.manager.node_info(name)
    assert info.cores_total == 4  # 36 - 32 leftover
    assert rig.controller.coloc_registrations == 1
    assert rig.controller.registered_coloc_nodes() == [name]


def test_job_demand_published_and_withdrawn():
    rig = Rig(nodes=2)
    job = rig.scheduler.submit(rig.spec(nodes=2, shared=True))
    rig.env.run(until=1)
    for name in job.node_names:
        demands = rig.loads.demands(name)
        assert f"job-{job.job_id}" in demands
        assert demands[f"job-{job.job_id}"].label == "lulesh"
    rig.env.run()
    for name in job.node_names:
        assert f"job-{job.job_id}" not in rig.loads.demands(name)


def test_full_node_job_registers_nothing():
    rig = Rig(nodes=2)
    job = rig.scheduler.submit(rig.spec(nodes=1, cores=36, shared=True, mem=120 * GiB))
    rig.env.run(until=1)
    # No leftover cores -> no co-location registration.
    assert not rig.manager.is_registered(job.node_names[0])


def test_reserve_cores_respected():
    rig = Rig(nodes=2, config=ControllerConfig(reserve_cores=2))
    job = rig.scheduler.submit(rig.spec(nodes=1, cores=32, shared=True))
    rig.env.run(until=1)
    info = rig.manager.node_info(job.node_names[0])
    assert info.cores_total == 2  # 36 - 32 - 2 reserved


def test_harvest_can_be_disabled():
    rig = Rig(nodes=2, config=ControllerConfig(harvest_idle_nodes=False,
                                               harvest_shared_jobs=False))
    assert rig.manager.registered_nodes() == []
    rig.scheduler.submit(rig.spec(nodes=1, shared=True))
    rig.env.run(until=1)
    assert rig.manager.registered_nodes() == []


def test_node_churn_through_job_sequence():
    rig = Rig(nodes=2)
    # Two sequential non-shared jobs needing both nodes.
    for _ in range(2):
        rig.scheduler.submit(rig.spec(nodes=2, shared=False, walltime=50.0))
    rig.env.run()
    # All jobs done; everything registered as idle again.
    assert len(rig.manager.registered_nodes()) == 2
    assert rig.controller.reclaims >= 2
    # Registrations: initial 2 idle + re-registrations after each job.
    assert rig.controller.idle_registrations >= 4


def test_config_validation():
    with pytest.raises(ValueError):
        ControllerConfig(reserve_cores=-1)
    with pytest.raises(ValueError):
        ControllerConfig(min_cores=0)
    with pytest.raises(ValueError):
        ControllerConfig(memory_headroom=0.0)
