"""Container migration (Sec. III-C) and fair pricing (ref [40]) tests."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import ContainerState, Image
from repro.disagg import JobBill, core_hour_discount
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import NodeLoadRegistry, ResourceManager
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2


def make_manager(nodes=3):
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", nodes, DAINT_MC)
    manager = ResourceManager(env, cluster, loads=NodeLoadRegistry(cluster),
                              drc=DrcManager(), rng=np.random.default_rng(0))
    return env, cluster, manager


def warm_up(manager, node_name, images):
    info = manager.node_info(node_name)
    for image in images:
        result = info.warm_pool.acquire(image)
        info.warm_pool.release(result.container)
    return info


def test_migration_moves_warm_containers():
    env, cluster, manager = make_manager()
    manager.register_node("n0000", cores=4, memory_bytes=8 * GiB)
    manager.register_node("n0001", cores=4, memory_bytes=8 * GiB)
    images = [Image(f"img{i}", size_bytes=200 * MiB) for i in range(3)]
    src = warm_up(manager, "n0000", images)
    dst = manager.node_info("n0001")
    assert src.warm_pool.warm_count == 3

    moved = {}

    def prog():
        n = yield manager.migrate_warm_containers("n0000", "n0001")
        moved["n"] = n
        moved["t"] = env.now

    env.process(prog())
    env.run()
    assert moved["n"] == 3
    assert moved["t"] > 0  # transfer took time
    assert src.warm_pool.warm_count == 0
    assert dst.warm_pool.warm_count == 3
    # Memory accounting moved with them.
    assert cluster.node("n0000").allocated_memory == 0
    assert cluster.node("n0001").allocated_memory == 3 * 256 * MiB
    # Migrated containers give warm hits at the destination.
    result = dst.warm_pool.acquire(images[0])
    assert result.kind == "warm"


def test_migration_overflow_swaps_to_pfs():
    env, cluster, manager = make_manager()
    manager.register_node("n0000", cores=4, memory_bytes=8 * GiB)
    manager.register_node("n0001", cores=4, memory_bytes=8 * GiB)
    # Destination node's memory is almost entirely taken by a batch job.
    cluster.node("n0001").allocate("job", memory_bytes=127 * GiB + 900 * MiB)
    big = Image("big", size_bytes=200 * MiB, runtime_memory_bytes=1 * GiB)
    src = warm_up(manager, "n0000", [big])

    def prog():
        n = yield manager.migrate_warm_containers("n0000", "n0001")
        assert n == 0

    env.process(prog())
    env.run()
    # Fell back to the parallel filesystem.
    assert src.warm_pool.swapped_count == 1
    swapped = next(iter(src.warm_pool._swapped.values()))
    assert swapped.state == ContainerState.SWAPPED
    # A later acquire on the source swaps it back in (cheaper than cold).
    result = src.warm_pool.acquire(big)
    assert result.kind == "swapped"


def test_migration_validation():
    env, _, manager = make_manager()
    manager.register_node("n0000", cores=1, memory_bytes=1 * GiB)
    with pytest.raises(KeyError):
        manager.migrate_warm_containers("n0000", "n0002")
    manager.register_node("n0001", cores=1, memory_bytes=1 * GiB)
    with pytest.raises(ValueError):
        manager.migrate_warm_containers("n0000", "n0001", transfer_bandwidth=0)


def test_fair_pricing_removes_interference_cost():
    bill = JobBill(nodes=2, node_cores=36, requested_cores_per_node=32,
                   runtime_s=3600.0, slowdown=1.04)
    # Naive shared billing charges the inflated wall clock...
    assert bill.shared_cost() > bill.fair_shared_cost()
    # ...fair billing charges the exclusive-equivalent time.
    assert bill.fair_shared_cost() == pytest.approx(2 * 32 * 1.0)
    assert bill.colocation_rebate() == pytest.approx(2 * 32 * 0.04)
    # Under fair pricing the saving equals the pure core discount.
    assert bill.fair_saving_fraction() == pytest.approx(core_hour_discount(32, 36))


def test_fair_pricing_neutral_without_interference():
    bill = JobBill(nodes=1, node_cores=36, requested_cores_per_node=36,
                   runtime_s=100.0, slowdown=1.0)
    assert bill.colocation_rebate() == pytest.approx(0.0)
    assert bill.fair_shared_cost() == pytest.approx(bill.shared_cost())
