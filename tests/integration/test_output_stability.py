"""Byte-identity of experiment outputs across fresh interpreters.

The fast-path engine rewrite (split event queues, single-waiter slots,
traced/fast executor split) must not perturb a single event: same seed
⇒ the exact same bytes out of the experiment pipelines, run in separate
interpreter processes so no in-process state can mask a drift.  A pinned
sha256 of a pure-engine event trace additionally locks the scheduler's
event *order* against the pre-rewrite engine.
"""

import hashlib
import os
import pathlib
import subprocess
import sys

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

# Digest of the same trace produced by the pre-rewrite heap-only engine.
GOLDEN_TRACE_SHA256 = (
    "b68819477aeb555a9da0138922b93e009cc32d76e1c93f5134a72cacac4b6ed3"
)
GOLDEN_TRACE_EVENTS = 676

_FIG07_EXPORT = """
import sys
from repro.experiments import fig07_latency
result = fig07_latency.run(samples=25, seed=3)
with open(sys.argv[1], "w", encoding="utf-8") as fh:
    fh.write(fig07_latency.format_report(result))
"""

_AUTOSCALE_EXPORT = """
import sys
from repro.experiments import autoscale_sweep
result = autoscale_sweep.run(loads=(1.0, 4.0), window_s=12.0, seed=2)
with open(sys.argv[1], "w", encoding="utf-8") as fh:
    fh.write(result.to_json())
"""


def _fresh_run(code, path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", code, str(path)],
        check=True, env=env, timeout=240,
    )
    return path.read_bytes()


def test_fig07_report_is_byte_identical_across_interpreters(tmp_path):
    first = _fresh_run(_FIG07_EXPORT, tmp_path / "a.txt")
    second = _fresh_run(_FIG07_EXPORT, tmp_path / "b.txt")
    assert len(first) > 0
    assert first == second


def test_autoscale_json_is_byte_identical_across_interpreters(tmp_path):
    first = _fresh_run(_AUTOSCALE_EXPORT, tmp_path / "a.json")
    second = _fresh_run(_AUTOSCALE_EXPORT, tmp_path / "b.json")
    assert len(first) > 0
    assert first == second


def test_engine_trace_matches_pre_rewrite_golden_digest():
    """A mixed workload (zero-delay churn, trigger/wait chains, AllOf,
    interrupts) must replay the exact event order of the pre-rewrite
    engine — the digest below was captured from the heap-only engine."""
    from repro.sim import Environment, Interrupt

    env = Environment()
    trace = []

    def sleeper(tag, delay):
        try:
            yield env.timeout(delay)
            trace.append(("slept", tag, env.now))
        except Interrupt as intr:
            trace.append(("interrupted", tag, intr.cause, env.now))

    def worker(tag):
        for i in range(50):
            yield env.timeout(0.0 if i % 3 == 0 else 0.25 * ((tag + i) % 5))
            trace.append(("tick", tag, env.now))
        return tag

    def waiter():
        evs = [env.event() for _ in range(10)]

        def trigger():
            for i, ev in enumerate(evs):
                yield env.timeout(0.5)
                ev.succeed(i)

        env.process(trigger())
        for ev in evs:
            value = yield ev
            trace.append(("event", value, env.now))
        children = [env.process(worker(100 + i)) for i in range(4)]
        results = yield env.all_of(children)
        trace.append(("all", sorted(results.values()), env.now))

    victims = [env.process(sleeper(i, 1000.0)) for i in range(5)]

    def interrupter():
        for v in victims:
            yield env.timeout(0.75)
            v.interrupt(cause="reclaim")

    for t in range(8):
        env.process(worker(t))
    env.process(waiter())
    env.process(interrupter())
    env.run()

    digest = hashlib.sha256(repr(trace).encode()).hexdigest()
    assert digest == GOLDEN_TRACE_SHA256
    assert env.event_count == GOLDEN_TRACE_EVENTS
