"""End-to-end integration: batch trace + controller + live invocations.

These tests exercise the complete software-disaggregation loop the paper
describes — scheduler, controller, manager, executors, clients, fabric,
containers, interference — in one simulation, and assert the global
invariants that make the system trustworthy: conservation of resources,
clean reclamation, and useful work actually done on harvested capacity.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import Image
from repro.disagg import ControllerConfig, DisaggregationController
from repro.interference import ResourceDemand
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import (
    FunctionRegistry,
    NodeLoadRegistry,
    NoCapacityError,
    ResourceManager,
    RFaaSClient,
)
from repro.sim import Environment
from repro.slurm import (
    BatchScheduler,
    JobSpec,
    JobState,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
)

GiB = 1024**3
MiB = 1024**2


class FullRig:
    def __init__(self, nodes=8, seed=0, reserve_cores=1):
        self.env = Environment()
        self.cluster = Cluster(topology=DragonflyTopology(nodes_per_group=4))
        self.cluster.add_nodes("n", nodes, DAINT_MC)
        self.scheduler = BatchScheduler(self.env, self.cluster)
        self.drc = DrcManager()
        provider = replace(IBVERBS, params=IBVERBS.params.with_jitter(0.0))
        self.fabric = NetworkFabric(self.env, self.cluster, provider,
                                    rng=np.random.default_rng(seed), drc=self.drc)
        self.loads = NodeLoadRegistry(self.cluster)
        self.manager = ResourceManager(self.env, self.cluster, loads=self.loads,
                                       drc=self.drc, rng=np.random.default_rng(seed))
        self.controller = DisaggregationController(
            self.scheduler, self.manager,
            config=ControllerConfig(reserve_cores=reserve_cores),
        )
        self.functions = FunctionRegistry()
        self.image = Image("fn", size_bytes=150 * MiB)
        self.functions.register(
            "work", self.image, runtime_s=2.0,
            demand=ResourceDemand(cores=1, membw=0.3e9, llc_bytes=1 * MiB, frac_membw=0.05),
        )
        self.stats = {"ok": 0, "rejected": 0}

    def function_stream(self, client_node, horizon):
        client = RFaaSClient(self.env, self.manager, self.fabric, self.functions,
                             client_node=client_node)

        def proc():
            while self.env.now < horizon:
                try:
                    result = yield client.invoke("work", payload_bytes=32 * 1024)
                except NoCapacityError:
                    yield self.env.timeout(10.0)
                    continue
                if result.ok:
                    self.stats["ok"] += 1
                else:
                    self.stats["rejected"] += 1
                    yield self.env.timeout(10.0)

        return self.env.process(proc())


def test_functions_run_on_harvested_capacity_during_batch_trace():
    rig = FullRig(nodes=8, seed=1)
    gen = WorkloadGenerator(
        np.random.default_rng(2), 8,
        WorkloadConfig(target_utilization=0.85, runtime_median_s=200.0,
                       max_runtime_s=600.0, max_nodes=4, shared_fraction=0.8),
    )
    horizon = 3600.0
    drive_workload(rig.env, rig.scheduler, gen, duration=horizon)
    for i in range(4):
        rig.function_stream(f"n{i:04d}", horizon)
    rig.env.run(until=horizon)

    # Functions did real work while batch ran.
    assert rig.stats["ok"] > 100
    assert len(rig.scheduler.completed) > 5
    # Reclamation happened and never broke anything.
    assert rig.controller.reclaims > 0


def test_resources_fully_conserved_after_trace():
    rig = FullRig(nodes=6, seed=3)
    gen = WorkloadGenerator(
        np.random.default_rng(4), 6,
        WorkloadConfig(target_utilization=0.8, runtime_median_s=120.0,
                       max_runtime_s=400.0, max_nodes=3),
    )
    drive_workload(rig.env, rig.scheduler, gen, duration=1800.0)
    for i in range(2):
        rig.function_stream(f"n{i:04d}", 1800.0)
    # Run far past the horizon so everything drains.
    rig.env.run()

    # Every batch job finished; every node's batch state is clean.
    assert not rig.scheduler.running
    assert not rig.scheduler.queue
    for node in rig.cluster:
        assert node.allocations_of_kind("batch") == ()
        # Only controller-registered serverless state may remain (warm
        # containers, function leases from streams that ended mid-wait).
        assert node.allocated_cores <= DAINT_MC.cores

    # Load registry holds no stale batch entries.
    for node in rig.cluster:
        for key in rig.loads.demands(node.name):
            assert not key.startswith("job-"), f"stale {key} on {node.name}"


def test_invocations_dilated_by_real_batch_neighbours():
    """A function co-located with a memory-hungry batch job runs slower
    than one on an idle node — through the full platform stack."""
    rig = FullRig(nodes=2, seed=5, reserve_cores=1)
    rig.functions.register(
        "membound", rig.image, runtime_s=1.0,
        demand=ResourceDemand(cores=1, membw=8e9, llc_bytes=20 * MiB, frac_membw=0.7),
    )
    # A shared MILC-like job occupies node 0 heavily.
    rig.scheduler.submit(JobSpec(
        user="u", app="milc", nodes=1, cores_per_node=30,
        memory_per_node=32 * GiB, walltime=10_000.0, runtime=10_000.0, shared=True,
    ))
    results = {}

    def probe():
        yield rig.env.timeout(1.0)
        # Invoke against whichever node the manager picks: node 0 has the
        # batch job (few leftover cores), node 1 is idle.
        client = RFaaSClient(rig.env, rig.manager, rig.fabric, rig.functions,
                             client_node="n0001")
        busy_node = rig.scheduler.completed or list(rig.scheduler.running.values())
        job_node = list(rig.scheduler.running.values())[0].node_names[0]
        idle_node = "n0001" if job_node == "n0000" else "n0000"
        # Force placement by excluding the other node.
        lease_busy, exec_busy = rig.manager.lease(client="p1", cores=1, exclude=(idle_node,))
        lease_idle, exec_idle = rig.manager.lease(client="p2", cores=1, exclude=(job_node,))
        from repro.rfaas import InvocationRequest

        fdef = rig.functions.lookup("membound")
        r_busy = yield exec_busy.execute(fdef, InvocationRequest("membound", 0))
        r_idle = yield exec_idle.execute(fdef, InvocationRequest("membound", 0))
        results["busy"] = r_busy.timings.execution
        results["idle"] = r_idle.timings.execution

    rig.env.process(probe())
    rig.env.run(until=5000.0)
    assert results["busy"] > results["idle"] * 1.02


def test_migration_preserves_warmth_across_reclaim():
    """Before a node is reclaimed, its warm containers move elsewhere and
    keep serving warm starts."""
    rig = FullRig(nodes=3, seed=6)
    done = {}

    def scenario():
        # Warm a container on node 0 via a real invocation.
        client = RFaaSClient(rig.env, rig.manager, rig.fabric, rig.functions,
                             client_node="n0002")
        result = yield client.invoke("work")
        src = result.node_name
        dst = next(n for n in rig.manager.registered_nodes() if n != src)
        client.close()
        # Drop the executor's attachment so the container returns to the
        # pool (an executor about to drain would do the same).
        info = rig.manager.node_info(src)
        for container in list(info.executor._attached.values()):
            info.warm_pool.release(container)
        info.executor._attached.clear()
        moved = yield rig.manager.migrate_warm_containers(src, dst)
        done["moved"] = moved
        done["dst_warm"] = rig.manager.node_info(dst).warm_pool.warm_count

    rig.env.process(scenario())
    rig.env.run(until=100.0)
    assert done["moved"] == 1
    assert done["dst_warm"] == 1
