"""Fresh-interpreter determinism of the traced chaos sweep.

Span/trace ids come from process-global counters, so the strongest form
of the determinism contract is across *fresh interpreters*: a traced
run must produce byte-identical simulated timelines to an untraced run
of the same seed, and two traced runs must stream byte-identical span
files.
"""

import os
import pathlib
import subprocess
import sys

import repro

REPO_SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])

SCRIPT = """
import sys
from repro.experiments import chaos_sweep
from repro.telemetry import SpanPipeline, TelemetryCollector

mode, stream = sys.argv[1], sys.argv[2]
kwargs = dict(rates=(8.0,), window_s=6.0, seed=3)
if mode == "traced":
    pipeline = SpanPipeline(stream_path=stream)
    with TelemetryCollector(pipeline=pipeline):
        result = chaos_sweep.run(**kwargs)
    pipeline.close()
else:
    result = chaos_sweep.run(**kwargs)
sys.stdout.write(chaos_sweep.format_report(result))
"""


def run_fresh(mode, stream):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT, mode, str(stream)],
        capture_output=True, env=env, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_traced_run_matches_untraced_byte_for_byte(tmp_path):
    untraced = run_fresh("off", tmp_path / "unused.jsonl")
    traced = run_fresh("traced", tmp_path / "stream.jsonl")
    assert traced == untraced
    assert b"Chaos sweep" in traced
    # The traced run really did stream spans while producing the same
    # simulated timeline.
    assert (tmp_path / "stream.jsonl").stat().st_size > 0


def test_two_traced_runs_stream_identical_spans(tmp_path):
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    out_a = run_fresh("traced", first)
    out_b = run_fresh("traced", second)
    assert out_a == out_b
    assert first.read_bytes() == second.read_bytes()
    assert first.stat().st_size > 0
