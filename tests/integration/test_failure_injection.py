"""Failure injection: node death under batch jobs and function executors."""

import pytest

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec, JobState

from .test_full_loop import FullRig

GiB = 1024**3


def spec(nodes=1, walltime=100.0, cores=36):
    return JobSpec(user="u", app="a", nodes=nodes, cores_per_node=cores,
                   memory_per_node=4 * GiB, walltime=walltime, runtime=walltime)


def test_node_failure_kills_owning_job():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 2, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    job = sched.submit(spec(nodes=2))
    env.run(until=10)
    victim = sched.fail_node(job.node_names[0])
    assert victim is job
    env.run(until=20)
    assert job.state == JobState.FAILED
    assert job.end_time == 10
    # All the job's nodes were released, including healthy ones.
    for name in job.node_names:
        assert cluster.node(name).allocations_of_kind("batch") == ()


def test_failed_node_not_rescheduled_until_restore():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 2, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    sched.fail_node("n0000")
    job = sched.submit(spec(nodes=1, walltime=5.0))
    env.run(until=1)
    assert job.node_names == ("n0001",)
    # A 2-node job cannot start while one node is down.
    wide = sched.submit(spec(nodes=2, walltime=5.0))
    env.run(until=20)
    assert wide.state == JobState.PENDING
    sched.restore_node("n0000")
    env.run()
    assert wide.state == JobState.COMPLETED


def test_failure_of_idle_node_kills_nothing():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 2, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    assert sched.fail_node("n0000") is None
    assert cluster.node("n0000").draining
    kinds = [r.kind for r in sched.log]
    assert "node_failure" in kinds


def test_failure_event_logged_with_job():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 1, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    job = sched.submit(spec(nodes=1))
    env.run(until=1)
    sched.fail_node("n0000")
    record = sched.log.of_kind("node_failure")[0]
    assert record.payload["job_id"] == job.job_id


def test_function_clients_survive_node_failure():
    """The platform side of a failure: executor node dies mid-invocation,
    the client redirects, work completes elsewhere."""
    rig = FullRig(nodes=3, seed=9)
    results = []

    def invoker():
        client_stream = rig.function_stream("n0002", horizon=100.0)
        yield client_stream

    def killer():
        yield rig.env.timeout(5.0)
        # Find a node serving functions and fail it end-to-end: batch
        # side + serverless side.
        for name in list(rig.manager.registered_nodes()):
            executor = rig.manager.node_info(name).executor
            if executor.active_invocations:
                rig.scheduler.fail_node(name)
                rig.manager.remove_node(name, immediate=True)
                results.append(name)
                return

    rig.env.process(invoker())
    rig.env.process(killer())
    rig.env.run(until=100.0)
    assert results, "expected to fail an active executor node"
    failed = results[0]
    # Invocations continued on the surviving nodes.
    assert rig.stats["ok"] > 10
    assert failed not in rig.manager.registered_nodes()
    # The failed node carries no serverless leftovers.
    node = rig.scheduler.cluster.node(failed)
    assert node.allocations_of_kind("function") == ()
