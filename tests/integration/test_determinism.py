"""Whole-system determinism: identical seeds replay identical histories."""

import numpy as np

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import (
    BatchScheduler,
    UtilizationSampler,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
)

from .test_full_loop import FullRig


def trace_signature(seed):
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 8, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    gen = WorkloadGenerator(
        np.random.default_rng(seed), 8,
        WorkloadConfig(target_utilization=0.85, runtime_median_s=120.0,
                       max_runtime_s=500.0, max_nodes=4),
    )
    sampler = UtilizationSampler(env, sched, interval=60.0)
    drive_workload(env, sched, gen, duration=1800.0)
    env.run(until=1800.0)
    return (
        tuple((r.time, r.kind) for r in sched.log),
        tuple(sampler.idle_nodes.values),
        len(sched.completed),
    )


def test_batch_trace_bit_identical_per_seed():
    assert trace_signature(11) == trace_signature(11)
    assert trace_signature(11) != trace_signature(12)


def full_loop_signature(seed):
    rig = FullRig(nodes=4, seed=seed)
    rig.function_stream("n0000", horizon=120.0)
    rig.function_stream("n0001", horizon=120.0)
    rig.env.run(until=120.0)
    return (
        rig.stats["ok"],
        rig.stats["rejected"],
        tuple((r.time, r.kind) for r in rig.manager.log),
        rig.fabric.stats.messages,
        rig.fabric.stats.bytes,
    )


def test_full_platform_deterministic():
    a = full_loop_signature(21)
    b = full_loop_signature(21)
    assert a == b
    assert a[0] > 0  # and it did real work
