"""Analysis helpers: idle statistics and table rendering."""

import pytest

from repro.analysis import (
    idle_duration_stats,
    render_table,
    sampled_idle_durations,
    utilization_summary,
)
from repro.sim import TimeSeries


def test_idle_duration_stats():
    stats = idle_duration_stats([60, 120, 300, 900, 1200])
    assert stats.count == 5
    assert stats.median_s == 300
    assert stats.fraction_under_10min == pytest.approx(3 / 5)
    assert stats.p90_s > stats.median_s
    with pytest.raises(ValueError):
        idle_duration_stats([])


def test_sampled_idle_durations_counts_runs():
    ts = TimeSeries()
    for i, v in enumerate([1, 0, 0, 1, 0, 0, 0, 1]):
        ts.record(i * 120, v)
    assert sampled_idle_durations(ts, 120) == [240, 360]
    with pytest.raises(ValueError):
        sampled_idle_durations(ts, 0)


def test_sampled_idle_durations_open_trailing_run():
    ts = TimeSeries()
    for i, v in enumerate([1, 0, 0]):
        ts.record(i * 120, v)
    assert sampled_idle_durations(ts, 120) == [240]


def test_utilization_summary():
    ts = TimeSeries()
    for i, v in enumerate([2, 4, 2, 0]):
        ts.record(i * 120, v)
    summary = utilization_summary(ts, total_nodes=10)
    assert summary["median_idle_nodes"] == 2
    assert summary["max_idle_nodes"] == 4
    assert summary["median_allocated_fraction"] == pytest.approx(0.8)
    with pytest.raises(ValueError):
        utilization_summary(ts, total_nodes=0)
    with pytest.raises(ValueError):
        utilization_summary(TimeSeries(), total_nodes=5)


def test_render_table_alignment_and_validation():
    text = render_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]], title="T")
    lines = text.split("\n")
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    # All data lines equal width.
    assert len(set(len(line) for line in lines[1:])) <= 2
    with pytest.raises(ValueError):
        render_table([], [])
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])


def test_render_table_empty_rows_ok():
    text = render_table(["col"], [])
    assert "col" in text


def test_format_value_ranges():
    from repro.analysis import format_value

    assert format_value(0.0) == "0"
    assert "e" in format_value(1e-6)
    assert format_value(123.456) == "123.5"
    assert format_value(1.2345) == "1.234"
    assert format_value("x") == "x"
