"""The ``repro autoscale`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_autoscale_sweep_runs():
    lines, out = collect()
    assert main(["autoscale", "--loads", "1", "--window", "5"], out=out) == 0
    text = "\n".join(lines)
    assert "Autoscale sweep" in text
    assert "reactive" in text and "predictive" in text
    assert "autoscale completed in" in text


def test_autoscale_writes_json(tmp_path):
    out_path = tmp_path / "sweep.json"
    lines, out = collect()
    code = main(["autoscale", "--loads", "1", "--window", "5",
                 "--json", str(out_path)], out=out)
    assert code == 0
    blob = json.loads(out_path.read_text())
    assert blob["window_s"] == 5.0
    assert {p["mode"] for p in blob["points"]} == {"reactive", "predictive"}
    assert str(out_path) in "\n".join(lines)


def test_autoscale_no_crash_flag():
    lines, out = collect()
    assert main(["autoscale", "--loads", "1", "--window", "5", "--no-crash"],
                out=out) == 0


def test_autoscale_replays_a_plan_file(tmp_path):
    plan_path = tmp_path / "plan.json"
    FaultPlan(name="file-plan").node_crash(
        at_s=1.0, node="n0001", duration_s=1.0, immediate=True,
    ).save(str(plan_path))
    lines, out = collect()
    assert main(["autoscale", "--loads", "1", "--window", "5",
                 "--plan", str(plan_path)], out=out) == 0


def test_autoscale_plan_and_no_crash_are_mutually_exclusive(tmp_path):
    plan_path = tmp_path / "plan.json"
    FaultPlan().node_crash(at_s=1.0, node="n0001").save(str(plan_path))
    with pytest.raises(SystemExit):
        main(["autoscale", "--plan", str(plan_path), "--no-crash"],
             out=lambda s: None)


def test_autoscale_rejects_malformed_loads():
    with pytest.raises(SystemExit):
        main(["autoscale", "--loads", "high,higher"], out=lambda s: None)


def test_autoscale_listed_as_experiment():
    lines, out = collect()
    assert main(["list"], out=out) == 0
    assert any("autoscale" in line for line in lines)


def test_autoscale_metrics_export(tmp_path):
    metrics = tmp_path / "metrics.txt"
    lines, out = collect()
    code = main(["autoscale", "--loads", "1", "--window", "5",
                 "--metrics-out", str(metrics)], out=out)
    assert code == 0
    text = metrics.read_text()
    assert "repro_capacity_admitted_total" in text
    assert "repro_capacity_prewarms_total" in text
