"""Workload generator statistics and utilization sampling."""

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import (
    BatchScheduler,
    NodeStateTracker,
    UtilizationSampler,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
)

GiB = 1024**3


def test_specs_are_valid_and_bounded():
    gen = WorkloadGenerator(np.random.default_rng(0), cluster_nodes=64)
    for _ in range(300):
        s = gen.draw_spec()
        assert 1 <= s.nodes <= 64
        assert 1 <= s.cores_per_node <= 36
        assert 0 <= s.memory_per_node <= 128 * GiB
        assert 0 < s.runtime <= s.walltime


def test_memory_fraction_centered_near_quarter():
    gen = WorkloadGenerator(np.random.default_rng(1), cluster_nodes=64)
    fracs = [gen.draw_spec().memory_per_node / (128 * GiB) for _ in range(2000)]
    assert 0.18 < np.mean(fracs) < 0.33  # paper: avg node memory usage ~24%


def test_many_jobs_leave_cores_idle():
    # The LULESH-style constraint: core counts often mismatch 36.
    gen = WorkloadGenerator(np.random.default_rng(2), cluster_nodes=64)
    partial = sum(1 for _ in range(1000) if gen.draw_spec().cores_per_node < 36)
    assert partial > 200


def test_arrival_rate_matches_target_utilization():
    gen = WorkloadGenerator(np.random.default_rng(3), cluster_nodes=100)
    # offered load = lambda * E[nodes*runtime] ~= util * N
    offered = gen.arrival_rate * gen._mean_node_count() * gen._mean_runtime()
    assert offered == pytest.approx(0.93 * 100, rel=0.01)


def test_generator_deterministic_per_seed():
    a = WorkloadGenerator(np.random.default_rng(7), 32).draw_spec()
    b = WorkloadGenerator(np.random.default_rng(7), 32).draw_spec()
    assert a == b


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(target_utilization=0.0)
    with pytest.raises(ValueError):
        WorkloadConfig(size_geom_p=1.0)
    with pytest.raises(ValueError):
        WorkloadGenerator(np.random.default_rng(0), cluster_nodes=0)


def small_sim(hours=2.0, nodes=16, seed=0, util=0.9):
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", nodes, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    cfg = WorkloadConfig(
        target_utilization=util,
        runtime_median_s=300.0,
        max_runtime_s=1800.0,
        max_nodes=nodes // 2,
    )
    gen = WorkloadGenerator(np.random.default_rng(seed), nodes, cfg)
    sampler = UtilizationSampler(env, sched, interval=120.0)
    tracker = NodeStateTracker(env, sched)
    drive_workload(env, sched, gen, duration=hours * 3600)
    env.run(until=hours * 3600)
    return env, sched, sampler, tracker


def test_end_to_end_workload_keeps_cluster_busy():
    env, sched, sampler, tracker = small_sim()
    # After warmup the cluster should be mostly allocated.
    alloc = sampler.allocated_node_fraction
    later = [v for t, v in zip(alloc.times, alloc.values) if t > 1800]
    assert np.mean(later) > 0.5
    assert len(sched.completed) > 10


def test_sampler_series_aligned_on_interval():
    _, _, sampler, _ = small_sim(hours=0.5)
    times = sampler.idle_nodes.times
    assert times[0] == 0
    assert np.allclose(np.diff(times), 120.0)


def test_tracker_idle_durations_positive_and_finite():
    _, _, _, tracker = small_sim()
    durations = tracker.all_idle_durations()
    assert durations, "expected some idle periods"
    assert all(d > 0 for d in durations)


def test_tracker_matches_scheduler_counts():
    env, sched, _, tracker = small_sim(hours=1.0)
    # At end time: nodes whose series ends at 0 == scheduler's free nodes.
    idle_from_tracker = sum(
        1 for name, ts in tracker.series.items() if ts.values[-1] == 0.0
    )
    assert idle_from_tracker == sched.idle_node_count()


def test_sampler_interval_validation():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 1, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    with pytest.raises(ValueError):
        UtilizationSampler(env, sched, interval=0)
