"""SWF trace export/import round trips."""

import io

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import (
    BatchScheduler,
    JobState,
    SwfRecord,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
    read_swf,
    write_swf,
)


def run_trace(nodes=8, hours=1.0, seed=0):
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", nodes, DAINT_MC)
    sched = BatchScheduler(env, cluster)
    gen = WorkloadGenerator(
        np.random.default_rng(seed), nodes,
        WorkloadConfig(target_utilization=0.85, runtime_median_s=120.0,
                       max_runtime_s=600.0, max_nodes=4),
    )
    drive_workload(env, sched, gen, duration=hours * 3600)
    env.run()
    return sched


def test_write_and_read_roundtrip():
    sched = run_trace()
    buffer = io.StringIO()
    count = write_swf(sched.completed, buffer)
    assert count == len(sched.completed) > 10
    buffer.seek(0)
    records = read_swf(buffer)
    assert len(records) == count
    by_id = {job.job_id: job for job in sched.completed}
    for record in records:
        job = by_id[record.job_id]
        assert record.submit_time == int(job.submit_time)
        assert record.wait_time == int(job.wait_time)
        assert record.runtime == pytest.approx(job.end_time - job.start_time, abs=1)
        assert record.procs == job.spec.total_cores
        assert record.status == 1  # completed


def test_records_reconstruct_specs():
    sched = run_trace()
    buffer = io.StringIO()
    write_swf(sched.completed, buffer)
    buffer.seek(0)
    for record in read_swf(buffer, limit=20):
        spec = record.to_spec(cores_per_node=36)
        assert spec.nodes >= 1
        assert 1 <= spec.cores_per_node <= 36
        assert spec.nodes * 36 >= record.procs
        assert spec.runtime <= spec.walltime


def test_reimported_trace_drives_scheduler():
    """An exported trace replays through a fresh scheduler."""
    sched = run_trace(nodes=4, hours=0.5, seed=3)
    buffer = io.StringIO()
    write_swf(sched.completed, buffer)
    buffer.seek(0)
    records = read_swf(buffer, limit=10)

    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 8, DAINT_MC)
    replay = BatchScheduler(env, cluster)

    def submitter():
        t0 = records[0].submit_time
        for record in records:
            gap = record.submit_time - t0
            if gap > 0:
                yield env.timeout(gap)
                t0 = record.submit_time
            replay.submit(record.to_spec())

    env.process(submitter())
    env.run()
    assert len(replay.completed) == len(records)
    assert all(j.state == JobState.COMPLETED for j in replay.completed)


def test_comments_and_limits():
    text = "; header\n; more\n" + " ".join(["7", "0", "1", "10", "4"] + ["-1"] * 13)
    records = read_swf(io.StringIO(text))
    assert len(records) == 1
    assert records[0].job_id == 7
    assert read_swf(io.StringIO(text), limit=0) == []


def test_malformed_line_rejected():
    with pytest.raises(ValueError):
        read_swf(io.StringIO("1 2 3\n"))


def test_file_path_roundtrip(tmp_path):
    sched = run_trace(nodes=4, hours=0.5, seed=5)
    path = tmp_path / "trace.swf"
    count = write_swf(sched.completed, path)
    assert path.exists()
    assert len(read_swf(path)) == count


def test_spec_reconstruction_validation():
    record = SwfRecord([1, 0, 0, 10, 0] + [-1] * 13)
    with pytest.raises(ValueError):
        record.to_spec()
