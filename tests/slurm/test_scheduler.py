"""Batch scheduler behaviour: FCFS, backfill, hooks, reclamation."""

import pytest

from repro.cluster import Cluster, DAINT_MC
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec, JobState, Partition

GiB = 1024**3


def make(n_nodes=4, partitions=None):
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", n_nodes, DAINT_MC)
    sched = BatchScheduler(env, cluster, partitions=partitions)
    return env, cluster, sched


def spec(nodes=1, walltime=100.0, runtime=None, cores=36, shared=False, partition="normal", mem=4 * GiB):
    return JobSpec(
        user="u", app="app", nodes=nodes, cores_per_node=cores,
        memory_per_node=mem, walltime=walltime,
        runtime=runtime if runtime is not None else walltime,
        shared=shared, partition=partition,
    )


def test_job_starts_and_completes():
    env, cluster, sched = make(2)
    job = sched.submit(spec(nodes=1, walltime=50))
    env.run()
    assert job.state == JobState.COMPLETED
    assert job.start_time == 0
    assert job.end_time == 50
    assert sched.idle_node_count() == 2
    assert cluster.node(job.node_names[0]).is_idle


def test_whole_node_granularity():
    env, cluster, sched = make(2)
    # Two 1-node jobs using few cores still occupy distinct nodes.
    j1 = sched.submit(spec(nodes=1, cores=4, walltime=100))
    j2 = sched.submit(spec(nodes=1, cores=4, walltime=100))
    env.run(until=1)
    assert j1.node_names != j2.node_names
    assert sched.idle_node_count() == 0


def test_fcfs_queueing():
    env, _, sched = make(2)
    j1 = sched.submit(spec(nodes=2, walltime=100))
    j2 = sched.submit(spec(nodes=2, walltime=100))
    env.run()
    assert j1.start_time == 0
    assert j2.start_time == 100


def test_easy_backfill_short_job_jumps_ahead():
    env, _, sched = make(4)
    long = sched.submit(spec(nodes=2, walltime=100))      # runs now
    wide = sched.submit(spec(nodes=4, walltime=100))      # blocked head, shadow t=100
    short = sched.submit(spec(nodes=2, walltime=50))      # fits before shadow
    env.run()
    assert long.start_time == 0
    assert short.start_time == 0       # backfilled
    assert wide.start_time == 100      # not delayed by backfill


def test_backfill_never_delays_head():
    env, _, sched = make(4)
    sched.submit(spec(nodes=2, walltime=100))
    head = sched.submit(spec(nodes=4, walltime=100))
    # Too long to finish before shadow, and needs the head's nodes.
    late = sched.submit(spec(nodes=2, walltime=500))
    env.run()
    assert head.start_time == 100
    assert late.start_time >= 100


def test_backfill_on_spare_nodes_may_run_long():
    env, _, sched = make(4)
    sched.submit(spec(nodes=1, walltime=100))              # 3 nodes remain
    head = sched.submit(spec(nodes=4, walltime=100))       # blocked; shadow=100, extra=0... wait
    # extra nodes at shadow: at t=100 the 1-node job releases; available=4,
    # head takes 4 -> extra 0. A long backfill on remaining nodes would
    # delay the head, so it must NOT start before the head.
    long_backfill = sched.submit(spec(nodes=3, walltime=1000))
    env.run()
    assert head.start_time == 100
    assert long_backfill.start_time >= head.start_time


def test_walltime_used_for_shadow_runtime_for_completion():
    env, _, sched = make(2)
    # Job finishes earlier than its walltime; queue drains on actual end.
    j1 = sched.submit(spec(nodes=2, walltime=1000, runtime=10))
    j2 = sched.submit(spec(nodes=2, walltime=10))
    env.run()
    assert j1.end_time == 10
    assert j2.start_time == 10


def test_unknown_partition_rejected():
    env, _, sched = make(2)
    with pytest.raises(KeyError):
        sched.submit(spec(partition="nope"))


def test_inadmissible_job_rejected():
    env, _, sched = make(2)
    with pytest.raises(ValueError):
        sched.submit(spec(nodes=3))  # partition has 2 nodes


def test_cancel_pending_and_running():
    env, _, sched = make(1)
    running = sched.submit(spec(nodes=1, walltime=100))
    queued = sched.submit(spec(nodes=1, walltime=100))
    env.run(until=10)
    sched.cancel(queued)
    assert queued.state == JobState.CANCELLED
    sched.cancel(running)
    env.run()
    assert running.state == JobState.CANCELLED
    assert running.end_time == 10
    with pytest.raises(ValueError):
        sched.cancel(running)


def test_hooks_fire_and_reclaim_called():
    env, _, sched = make(2)
    events = []
    sched.on_job_start.append(lambda job: events.append(("start", job.job_id)))
    sched.on_job_end.append(lambda job: events.append(("end", job.job_id)))
    reclaimed = []
    sched.reclaim_hook = lambda names: reclaimed.append(tuple(names))
    job = sched.submit(spec(nodes=2, walltime=20))
    env.run()
    assert ("start", job.job_id) in events
    assert ("end", job.job_id) in events
    assert reclaimed == [job.node_names]


def test_used_fractions_reflect_actual_use():
    env, cluster, sched = make(2)
    sched.submit(spec(nodes=2, cores=18, walltime=100, mem=64 * GiB))
    env.run(until=1)
    assert sched.used_core_fraction() == pytest.approx(0.5)
    assert sched.used_memory_fraction() == pytest.approx(0.5)
    assert sched.allocated_node_count() == 2


def test_sharing_consent_via_partition():
    env, cluster, _ = make(2)
    parts = [
        Partition(name="normal", node_names=["n0000"]),
        Partition(name="coloc", node_names=["n0001"], shared_by_default=True),
    ]
    env2 = Environment()
    sched = BatchScheduler(env2, cluster, partitions=parts)
    j1 = sched.submit(spec(nodes=1, shared=False))
    j2 = sched.submit(spec(nodes=1, shared=False, partition="coloc"))
    assert not sched.sharing_consent(j1)
    assert sched.sharing_consent(j2)


def test_event_log_records_lifecycle():
    env, _, sched = make(1)
    sched.submit(spec(nodes=1, walltime=5))
    env.run()
    kinds = [r.kind for r in sched.log]
    assert kinds == ["submit", "start", "end"]


def test_draining_node_not_scheduled():
    env, cluster, sched = make(2)
    cluster.node("n0000").draining = True
    job = sched.submit(spec(nodes=1, walltime=10))
    env.run(until=1)
    assert job.node_names == ("n0001",)
