"""Job spec validation and partition admission tests."""

import pytest

from repro.cluster import DAINT_GPU, Node
from repro.slurm import Job, JobSpec, JobState, Partition, gres_available_gpus

GiB = 1024**3


def spec(**kw):
    defaults = dict(
        user="u", app="a", nodes=2, cores_per_node=36,
        memory_per_node=32 * GiB, walltime=3600, runtime=1800,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


def test_spec_validation():
    with pytest.raises(ValueError):
        spec(nodes=0)
    with pytest.raises(ValueError):
        spec(cores_per_node=0)
    with pytest.raises(ValueError):
        spec(walltime=0)
    with pytest.raises(ValueError):
        spec(runtime=4000)  # > walltime
    with pytest.raises(ValueError):
        spec(memory_per_node=-1)


def test_spec_totals():
    s = spec(nodes=4, cores_per_node=32)
    assert s.total_cores == 128


def test_job_lifecycle_fields():
    job = Job(spec(), submit_time=10.0)
    assert job.state == JobState.PENDING
    assert job.wait_time is None
    with pytest.raises(ValueError):
        _ = job.expected_end
    job.start_time = 25.0
    assert job.wait_time == 15.0
    assert job.expected_end == 25.0 + 3600


def test_job_slowdown_extends_runtime():
    job = Job(spec())
    assert job.actual_runtime == 1800
    job.slowdown = 1.05
    assert job.actual_runtime == pytest.approx(1890)


def test_job_ids_unique():
    a, b = Job(spec()), Job(spec())
    assert a.job_id != b.job_id


def test_partition_admission():
    part = Partition(name="normal", node_names=["a", "b", "c"], max_walltime=7200)
    assert part.admits(spec(nodes=3, walltime=7200, runtime=100))
    assert not part.admits(spec(nodes=4))
    assert not part.admits(spec(walltime=7201, runtime=100))
    assert not part.admits(spec(partition="debug"))


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition(name="x", node_names=[])
    with pytest.raises(ValueError):
        Partition(name="x", node_names=["a", "a"])
    with pytest.raises(ValueError):
        Partition(name="x", node_names=["a"], max_walltime=0)


def test_sharing_consent_flag_or_partition():
    part = Partition(name="normal", node_names=["a"])
    shared_part = Partition(name="coloc", node_names=["a"], shared_by_default=True)
    assert part.job_allows_sharing(spec(shared=True))
    assert not part.job_allows_sharing(spec(shared=False))
    assert shared_part.job_allows_sharing(spec(shared=False, partition="coloc"))


def test_gres_reports_free_gpus():
    node = Node("g", DAINT_GPU)
    assert gres_available_gpus(node) == 1
    alloc = node.allocate("fn", cores=1, gpus=1)
    assert gres_available_gpus(node) == 0
    node.release(alloc)
    assert gres_available_gpus(node) == 1
