"""Multi-partition scheduling and GPU (GRES) job handling."""

import pytest

from repro.cluster import Cluster, DAINT_GPU, DAINT_MC
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec, JobState, Partition

GiB = 1024**3


def make():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("mc", 2, DAINT_MC)
    cluster.add_nodes("gpu", 2, DAINT_GPU)
    partitions = [
        Partition(name="mc", node_names=["mc0000", "mc0001"]),
        Partition(name="gpu", node_names=["gpu0000", "gpu0001"], max_walltime=3600.0),
    ]
    sched = BatchScheduler(env, cluster, partitions=partitions)
    return env, cluster, sched


def spec(partition, nodes=1, gpus=0, cores=12, walltime=100.0):
    return JobSpec(user="u", app="a", nodes=nodes, cores_per_node=cores,
                   memory_per_node=1 * GiB, walltime=walltime, runtime=walltime,
                   gpus_per_node=gpus, partition=partition)


def test_partitions_isolate_nodes():
    env, cluster, sched = make()
    mc_job = sched.submit(spec("mc", nodes=2, cores=36))
    gpu_job = sched.submit(spec("gpu", nodes=2, gpus=1))
    env.run(until=1)
    assert set(mc_job.node_names) == {"mc0000", "mc0001"}
    assert set(gpu_job.node_names) == {"gpu0000", "gpu0001"}


def test_partition_queues_independent():
    env, _, sched = make()
    # Saturate the mc partition; the gpu partition stays available.
    sched.submit(spec("mc", nodes=2, cores=36, walltime=100.0))
    blocked = sched.submit(spec("mc", nodes=1, cores=36, walltime=50.0))
    free = sched.submit(spec("gpu", nodes=1, walltime=50.0))
    env.run(until=1)
    assert blocked.state == JobState.PENDING
    assert free.state == JobState.RUNNING


def test_gpu_job_allocates_devices():
    env, cluster, sched = make()
    job = sched.submit(spec("gpu", nodes=1, gpus=1))
    env.run(until=1)
    node = cluster.node(job.node_names[0])
    assert node.free_gpu_ids == frozenset()
    env.run()
    assert node.free_gpu_ids == {0}


def test_gpu_request_on_cpu_partition_never_starts():
    env, _, sched = make()
    job = sched.submit(spec("mc", nodes=1, gpus=1))
    env.run(until=200)
    assert job.state == JobState.PENDING  # no mc node has GPUs


def test_partition_walltime_limit():
    env, _, sched = make()
    with pytest.raises(ValueError):
        sched.submit(spec("gpu", walltime=7200.0))


def test_free_nodes_per_partition():
    env, _, sched = make()
    sched.submit(spec("mc", nodes=1, cores=36, walltime=50.0))
    env.run(until=1)
    assert len(sched.free_node_names("mc")) == 1
    assert len(sched.free_node_names("gpu")) == 2
    assert sched.idle_node_count() == 3


def test_duplicate_partition_rejected():
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", 2, DAINT_MC)
    with pytest.raises(ValueError):
        BatchScheduler(env, cluster, partitions=[
            Partition(name="p", node_names=["n0000"]),
            Partition(name="p", node_names=["n0001"]),
        ])
