"""The ``repro memdurability`` subcommand and ``repro chaos --memservice``."""

import json

import pytest

from repro.cli import main


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_memdurability_sweep_runs():
    lines, out = collect()
    assert main(["memdurability", "--factors", "1,2", "--window", "8",
                 "--accesses", "80"], out=out) == 0
    text = "\n".join(lines)
    assert "Memory durability" in text
    assert "k=1" in text and "k=2" in text
    assert "memdurability completed in" in text


def test_memdurability_writes_json(tmp_path):
    out_path = tmp_path / "sweep.json"
    lines, out = collect()
    code = main(["memdurability", "--factors", "1,2", "--window", "8",
                 "--accesses", "80", "--json", str(out_path)], out=out)
    assert code == 0
    blob = json.loads(out_path.read_text())
    assert blob["window_s"] == 8.0
    assert [p["replication"] for p in blob["points"]] == [1, 2]
    assert str(out_path) in "\n".join(lines)


def test_memdurability_rejects_malformed_factors():
    with pytest.raises(SystemExit):
        main(["memdurability", "--factors", "one,two"], out=lambda s: None)


def test_memdurability_listed_as_experiment():
    lines, out = collect()
    assert main(["list"], out=out) == 0
    assert any("memdurability" in line for line in lines)


def test_memdurability_metrics_export(tmp_path):
    metrics = tmp_path / "metrics.txt"
    lines, out = collect()
    code = main(["memdurability", "--factors", "2", "--window", "8",
                 "--accesses", "80", "--metrics-out", str(metrics)], out=out)
    assert code == 0
    text = metrics.read_text()
    assert "repro_memservice_replicas_lost_total" in text
    assert "repro_memservice_failovers_total" in text


def test_chaos_memservice_flag():
    lines, out = collect()
    assert main(["chaos", "--rates", "0", "--window", "5", "--memservice"],
                out=out) == 0
    assert "Chaos sweep" in "\n".join(lines)
