"""Loadgen determinism: same spec, same trace — in any interpreter."""

import pathlib
import pickle
import subprocess
import sys

from repro.loadgen import (
    LoadSpec,
    MmppArrivals,
    PoissonArrivals,
    TenantMix,
    WorkloadTrace,
    synthesize,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

SPEC = LoadSpec(
    arrivals=PoissonArrivals(rate_per_s=500.0),
    mix=TenantMix(population=1_200_000, zipf_s=1.1),
    window_s=2.0,
    service_s=0.05,
    seed=42,
)


def test_same_spec_same_trace_in_process():
    assert synthesize(SPEC) == synthesize(SPEC)


def test_different_seed_different_trace():
    other = LoadSpec(arrivals=SPEC.arrivals, mix=SPEC.mix,
                     window_s=SPEC.window_s, service_s=SPEC.service_s, seed=43)
    assert synthesize(SPEC) != synthesize(other)


def test_trace_json_roundtrip_is_byte_identical():
    trace = synthesize(SPEC)
    text = trace.to_json()
    assert WorkloadTrace.from_json(text).to_json() == text


def test_spec_dict_roundtrip():
    spec = LoadSpec(arrivals=MmppArrivals(rates_per_s=(100.0, 1000.0),
                                          mean_dwell_s=0.5),
                    mix=TenantMix(population=10_000, zipf_s=1.3),
                    window_s=3.0, service_s=0.02, seed=7)
    assert LoadSpec.from_dict(spec.to_dict()) == spec


def test_trace_pickle_roundtrip():
    trace = synthesize(SPEC)
    clone = pickle.loads(pickle.dumps(trace))
    assert clone == trace
    assert clone.to_json() == trace.to_json()


def test_spec_pickle_roundtrip():
    assert pickle.loads(pickle.dumps(SPEC)) == SPEC


def test_fresh_interpreters_produce_byte_identical_traces():
    """The cross-process contract behind parallel sweeps: no hash salt,
    no interpreter state, may leak into the trace."""
    script = (
        "from repro.loadgen import LoadSpec, PoissonArrivals, TenantMix, synthesize\n"
        "spec = LoadSpec(arrivals=PoissonArrivals(rate_per_s=500.0),\n"
        "                mix=TenantMix(population=1_200_000, zipf_s=1.1),\n"
        "                window_s=2.0, service_s=0.05, seed=42)\n"
        "import sys; sys.stdout.write(synthesize(spec).to_json())\n"
    )
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert outputs[0] == synthesize(SPEC).to_json()


def test_population_scales_without_materializing_clients():
    """1.2M synthetic clients must not mean 1.2M objects: the trace
    holds one entry per *arrival*, and Zipf concentrates the draw."""
    trace = synthesize(SPEC)
    assert trace.population == 1_200_000
    assert len(trace) < 2_000  # ~rate * window, nowhere near population
    assert trace.distinct_tenants() < len(trace)
    assert trace.times == sorted(trace.times)


def test_mmpp_bursts_beat_the_mean_rate():
    spec = LoadSpec(arrivals=MmppArrivals(rates_per_s=(50.0, 2000.0),
                                          mean_dwell_s=0.5),
                    mix=TenantMix(population=100_000),
                    window_s=6.0, seed=3)
    trace = synthesize(spec)
    # A modulated process must show bursts above its long-run mean.
    assert trace.peak_rate_per_s() > spec.arrivals.mean_rate_per_s() * 1.2
