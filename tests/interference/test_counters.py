"""Counter sampling and profile recovery."""

import numpy as np
import pytest

from repro.interference import (
    CounterProfile,
    ResourceDemand,
    sample_counters,
)

GBs = 1e9
MiB = 1024**2


def demand():
    return ResourceDemand(
        cores=4, membw=8 * GBs, netbw=1 * GBs, llc_bytes=16 * MiB,
        frac_membw=0.4, frac_netbw=0.1,
    )


def test_samples_reflect_demand():
    samples = sample_counters(demand(), np.random.default_rng(0), windows=50)
    assert len(samples) == 50
    mean_dram = np.mean([s.dram_bandwidth for s in samples])
    assert mean_dram == pytest.approx(8 * GBs, rel=0.05)
    mean_net = np.mean([s.net_bandwidth for s in samples])
    assert mean_net == pytest.approx(1 * GBs, rel=0.05)


def test_sampling_validation():
    with pytest.raises(ValueError):
        sample_counters(demand(), np.random.default_rng(0), windows=0)
    with pytest.raises(ValueError):
        sample_counters(demand(), np.random.default_rng(0), window_s=0)


def test_profile_roundtrip_recovers_demand():
    """profile(samples(demand)) ~= demand — the Fig. 4 feedback loop."""
    original = demand()
    samples = sample_counters(original, np.random.default_rng(1), windows=100)
    profile = CounterProfile.from_samples(samples)
    recovered = profile.to_demand(llc_bytes=original.llc_bytes)
    assert recovered.cores == original.cores
    assert recovered.membw == pytest.approx(original.membw, rel=0.05)
    assert recovered.netbw == pytest.approx(original.netbw, rel=0.05)
    # Boundness estimate lands in a sane band.
    assert 0.0 < recovered.frac_membw < 0.6


def test_profile_requires_samples():
    with pytest.raises(ValueError):
        CounterProfile.from_samples([])


def test_memory_hog_classified_memory_bound():
    hog = ResourceDemand(cores=1, membw=12 * GBs, frac_membw=0.9)
    samples = sample_counters(hog, np.random.default_rng(2), windows=50)
    recovered = CounterProfile.from_samples(samples).to_demand()
    assert recovered.frac_membw > 0.7
