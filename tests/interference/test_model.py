"""Interference model: contention mechanics and paper-shape checks."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import DAINT_MC
from repro.interference import InterferenceModel, PlacementError, ResourceDemand
from repro.workloads import nas_model

GBs = 1e9
MiB = 1024**2


MODEL = InterferenceModel()


def cpu_demand(cores=1):
    return ResourceDemand(cores=cores, membw=0.2 * GBs, llc_bytes=1 * MiB, frac_membw=0.02)


def mem_demand(cores=1, membw=12 * GBs):
    return ResourceDemand(cores=cores, membw=membw, llc_bytes=26 * MiB, frac_membw=0.88)


def test_demand_validation():
    with pytest.raises(ValueError):
        ResourceDemand(cores=-1)
    with pytest.raises(ValueError):
        ResourceDemand(cores=1, membw=-1)
    with pytest.raises(ValueError):
        ResourceDemand(cores=1, frac_membw=0.7, frac_netbw=0.4)
    d = ResourceDemand(cores=1, frac_membw=0.3, frac_netbw=0.2)
    assert d.frac_cpu == pytest.approx(0.5)


def test_single_workload_no_contention():
    s = MODEL.slowdowns(DAINT_MC, [cpu_demand()])
    assert s == [pytest.approx(1.0)]


def test_sharing_noise_applied_to_multitenant():
    s = MODEL.slowdowns(DAINT_MC, [cpu_demand(), cpu_demand()])
    assert all(v >= 1.0 + MODEL.sharing_noise * 0.99 for v in s)


def test_oversubscription_rejected():
    with pytest.raises(PlacementError):
        MODEL.slowdowns(DAINT_MC, [cpu_demand(cores=37)])


def test_membw_saturation_dilates_memory_bound():
    # 12 memory-hogs on one socket exceed 68 GB/s: clear slowdown.
    s = MODEL.slowdowns(DAINT_MC, [mem_demand()] * 12)
    assert all(v > 1.5 for v in s)
    # The same count of compute-bound instances barely suffers.
    s_cpu = MODEL.slowdowns(DAINT_MC, [cpu_demand()] * 12)
    assert all(v < 1.15 for v in s_cpu)


def test_compute_bound_insensitive_to_memory_hog_on_other_socket():
    # 18 cores of compute on socket 0, then memory hogs land on socket 1.
    compute = ResourceDemand(cores=18, membw=3 * GBs, llc_bytes=8 * MiB, frac_membw=0.1)
    hogs = [mem_demand() for _ in range(10)]
    slow = MODEL.slowdowns(DAINT_MC, [compute] + hogs)
    # Compute job suffers only noise + frequency penalty, not the
    # socket-1 bandwidth crunch.
    assert slow[0] < 1.2
    assert all(h > slow[0] for h in slow[1:])


def test_extra_net_traffic_hits_network_bound_only():
    netty = ResourceDemand(cores=4, membw=1 * GBs, netbw=4 * GBs, frac_membw=0.1, frac_netbw=0.5)
    compute = cpu_demand(cores=4)
    # Inject 9 GB/s of background RDMA traffic (node NIC is 10.2 GB/s).
    slow = MODEL.slowdowns(DAINT_MC, [netty, compute], extra_netbw=9 * GBs)
    assert slow[0] > 1.1
    assert slow[1] < 1.1
    assert slow[0] > slow[1]


def test_extra_membw_models_memory_service():
    milc_like = ResourceDemand(cores=16, membw=55 * GBs, llc_bytes=30 * MiB, frac_membw=0.55)
    base = MODEL.slowdowns(DAINT_MC, [milc_like])[0]
    perturbed = MODEL.slowdowns(DAINT_MC, [milc_like], extra_membw=40 * GBs)[0]
    assert perturbed > base


def test_frequency_penalty_monotone():
    f1 = MODEL.frequency_penalty(1, 36)
    f18 = MODEL.frequency_penalty(18, 36)
    f36 = MODEL.frequency_penalty(36, 36)
    assert f1 == 1.0
    assert f1 < f18 < f36
    assert f36 == pytest.approx(1.0 / 0.85)


def test_relative_throughput_single_is_one():
    assert MODEL.relative_throughput(DAINT_MC, cpu_demand(), 1) == pytest.approx(1.0)


# ---- Table III shape checks -------------------------------------------------

def test_table3_ep_near_linear():
    """EP at 32 functions: ~27x (paper: 27.2)."""
    demand = nas_model("ep.W").demand(1)
    thr = MODEL.relative_throughput(DAINT_MC, demand, 32)
    assert 24 < thr < 31


def test_table3_cg_saturates():
    """CG throughput saturates: ~6x at 16 (paper: 6), < EP everywhere."""
    cg = nas_model("cg.A").demand(1)
    ep = nas_model("ep.W").demand(1)
    thr16 = MODEL.relative_throughput(DAINT_MC, cg, 16)
    assert 4 < thr16 < 9
    for n in (8, 16, 24, 32):
        assert MODEL.relative_throughput(DAINT_MC, cg, n) < MODEL.relative_throughput(
            DAINT_MC, ep, n
        )


def test_table3_second_socket_helps_cg():
    """CG jumps when instances spill to socket 1 (paper: 6 -> 8.5 -> 11.4)."""
    cg = nas_model("cg.A").demand(1)
    thr16 = MODEL.relative_throughput(DAINT_MC, cg, 16)
    thr32 = MODEL.relative_throughput(DAINT_MC, cg, 32)
    assert thr32 > 1.4 * thr16


def test_table3_bt_lu_efficiency_band():
    """BT/LU land at roughly 70-85% efficiency at high counts."""
    for key in ("bt.W", "lu.W"):
        demand = nas_model(key).demand(1)
        eff = MODEL.efficiency(DAINT_MC, demand, 24)
        assert 0.55 < eff < 0.95, f"{key}: {eff}"


@given(n=st.integers(min_value=1, max_value=36))
def test_throughput_never_exceeds_instance_count(n):
    demand = nas_model("ep.W").demand(1)
    thr = MODEL.relative_throughput(DAINT_MC, demand, n)
    assert 0 < thr <= n + 1e-9


@given(n=st.integers(min_value=2, max_value=36))
def test_slowdowns_at_least_one(n):
    demands = [nas_model("mg.W").demand(1)] * n
    for s in MODEL.slowdowns(DAINT_MC, demands):
        assert s >= 1.0
