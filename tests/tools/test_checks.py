"""The unified ``tools.checks`` entry point: registry, run semantics,
and the CLI exit-code contract CI depends on."""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import checks  # noqa: E402


def test_registry_contains_every_repo_lint():
    assert set(checks.CHECKS) == {"benches", "metric-names", "public-api",
                                  "sweeps"}
    for fn in checks.CHECKS.values():
        assert callable(fn)


def test_run_executes_a_single_check():
    assert checks.run("benches") == []
    assert checks.run("metric-names") == []
    assert checks.run("public-api") == []
    assert checks.run("sweeps") == []


def test_run_unknown_check_raises_with_registered_names():
    with pytest.raises(KeyError) as excinfo:
        checks.run("no-such-check")
    message = excinfo.value.args[0]
    assert "no-such-check" in message
    assert "metric-names" in message and "public-api" in message


def test_run_all_defaults_to_every_check_sorted():
    results = checks.run_all()
    assert list(results) == sorted(checks.CHECKS)
    assert all(problems == [] for problems in results.values())


def test_run_all_honors_an_explicit_selection():
    results = checks.run_all(["public-api"])
    assert list(results) == ["public-api"]


def test_main_exit_codes(capsys, monkeypatch):
    assert checks.main([]) == 0
    out = capsys.readouterr().out
    assert "metric-names: ok" in out and "public-api: ok" in out
    assert "sweeps: ok" in out

    assert checks.main(["--list"]) == 0
    assert capsys.readouterr().out.splitlines() == [
        "benches", "metric-names", "public-api", "sweeps",
    ]

    assert checks.main(["bogus"]) == 2
    assert "bogus" in capsys.readouterr().err

    # A failing check drives exit code 1 and prints its violations.
    monkeypatch.setitem(checks.CHECKS, "metric-names", lambda: ["bad name"])
    assert checks.main(["metric-names"]) == 1
    captured = capsys.readouterr()
    assert "1 violation(s)" in captured.out
    assert "bad name" in captured.err
