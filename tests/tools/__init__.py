"""Tests for the repo tooling (unified checks, perf gate)."""
