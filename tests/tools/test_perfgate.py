"""The perf gate's comparison logic and the committed baseline file.

``compare()`` is a pure function of two dicts, so the gate semantics are
tested without timing anything — tier-1 wall time does not grow.  The
baseline-file tests double as the acceptance check that the fast-path
PR's recorded event-loop speedup is >= 1.5x.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import perfgate  # noqa: E402


def _baseline():
    return {
        "scenarios": {
            "event_loop": {"metric": "events_per_s", "after": 800000.0,
                           "before": 500000.0, "speedup": 1.6},
            "fig07_latency": {"metric": "wall_s", "after": 0.05,
                              "before": 0.06, "speedup": 1.2},
        },
        "tolerance": {"events_per_s": 0.25, "wall_s": 0.5},
    }


def test_compare_passes_within_tolerance():
    measurements = {
        "event_loop": {"metric": "events_per_s", "value": 700000.0},
        "fig07_latency": {"metric": "wall_s", "value": 0.07},
    }
    assert perfgate.compare(_baseline(), measurements) == []


def test_compare_flags_throughput_below_the_floor():
    measurements = {
        "event_loop": {"metric": "events_per_s", "value": 599999.0},
        "fig07_latency": {"metric": "wall_s", "value": 0.05},
    }
    problems = perfgate.compare(_baseline(), measurements)
    assert len(problems) == 1
    assert problems[0].startswith("event_loop:")
    assert "below the tolerance floor" in problems[0]


def test_compare_flags_wall_time_above_the_ceiling():
    measurements = {
        "event_loop": {"metric": "events_per_s", "value": 800000.0},
        "fig07_latency": {"metric": "wall_s", "value": 0.0751},
    }
    problems = perfgate.compare(_baseline(), measurements)
    assert len(problems) == 1
    assert problems[0].startswith("fig07_latency:")
    assert "exceeds the tolerance ceiling" in problems[0]


def test_compare_flags_missing_scenario_and_metric_mismatch():
    measurements = {
        "event_loop": {"metric": "wall_s", "value": 1.0},
    }
    problems = perfgate.compare(_baseline(), measurements)
    assert any("metric mismatch" in p for p in problems)
    assert any("fig07_latency: scenario missing" in p for p in problems)


def test_compare_uses_default_tolerance_when_unconfigured():
    baseline = _baseline()
    del baseline["tolerance"]
    # Default tol is 0.3: floor = 560k, so 550k regresses but 570k passes.
    bad = {"event_loop": {"metric": "events_per_s", "value": 550000.0},
           "fig07_latency": {"metric": "wall_s", "value": 0.05}}
    ok = {"event_loop": {"metric": "events_per_s", "value": 570000.0},
          "fig07_latency": {"metric": "wall_s", "value": 0.05}}
    assert perfgate.compare(baseline, bad) != []
    assert perfgate.compare(baseline, ok) == []


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    perfgate.write_baseline(_baseline(), path)
    assert perfgate.load_baseline(path) == _baseline()


# -- the committed baseline file (acceptance criteria) ----------------------

def test_committed_baseline_shape():
    baseline = perfgate.load_baseline()
    scenarios = baseline["scenarios"]
    assert set(scenarios) == {"event_loop", "fig07_latency", "chaos_sweep"}
    for name, recorded in scenarios.items():
        assert recorded["metric"] in {"events_per_s", "wall_s"}
        assert recorded["after"] > 0
        assert recorded["before"] > 0
        assert recorded["speedup"] > 0
    assert baseline["tolerance"]["events_per_s"] > 0
    assert baseline["tolerance"]["wall_s"] > 0


def test_committed_event_loop_speedup_meets_the_acceptance_bar():
    """The fast-path PR's acceptance criterion: >= 1.5x events/sec on the
    event-loop microbench versus the pre-PR engine, as recorded in the
    committed BENCH_engine.json."""
    recorded = perfgate.load_baseline()["scenarios"]["event_loop"]
    assert recorded["metric"] == "events_per_s"
    assert recorded["after"] / recorded["before"] >= 1.5
    assert recorded["speedup"] >= 1.5
    assert recorded["events"] > 100_000  # a real workload, not a toy loop
