"""The bench-baseline drift lint: BENCH_*.json <-> perfgate.BENCHES."""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import check_benches, perfgate  # noqa: E402


def _valid_baseline() -> dict:
    return {
        "scenarios": {
            "case": {"metric": "wall_s", "after": 1.0, "before": 1.0},
        },
        "tolerance": {"wall_s": 0.5},
    }


def _populate(root: pathlib.Path) -> None:
    """Write a valid baseline for every registered suite into ``root``."""
    for _, baseline_path in perfgate.BENCHES.values():
        (root / baseline_path.name).write_text(
            json.dumps(_valid_baseline()), encoding="utf-8",
        )


def test_real_repo_is_clean():
    assert check_benches.violations() == []


def test_every_registered_suite_has_a_real_module_and_baseline():
    for suite, (module_name, baseline_path) in perfgate.BENCHES.items():
        assert baseline_path.exists(), suite
        assert (REPO_ROOT / "benchmarks" / f"{module_name}.py").exists(), suite


def test_unregistered_baseline_is_flagged(tmp_path):
    _populate(tmp_path)
    (tmp_path / "BENCH_orphan.json").write_text("{}", encoding="utf-8")
    problems = check_benches.violations(root=tmp_path)
    assert any("BENCH_orphan.json" in p and "no perfgate suite" in p
               for p in problems)


def test_missing_registered_baseline_is_flagged(tmp_path):
    _populate(tmp_path)
    some_suite, (_, some_path) = sorted(perfgate.BENCHES.items())[0]
    (tmp_path / some_path.name).unlink()
    problems = check_benches.violations(root=tmp_path)
    assert any(some_suite in p and "does not exist" in p for p in problems)


def test_invalid_json_is_flagged(tmp_path):
    _populate(tmp_path)
    _, (_, some_path) = sorted(perfgate.BENCHES.items())[0]
    (tmp_path / some_path.name).write_text("{not json", encoding="utf-8")
    problems = check_benches.violations(root=tmp_path)
    assert any("not valid JSON" in p for p in problems)


def test_missing_schema_pieces_are_flagged(tmp_path):
    _populate(tmp_path)
    _, (_, some_path) = sorted(perfgate.BENCHES.items())[0]
    (tmp_path / some_path.name).write_text(
        json.dumps({"scenarios": {"case": {"metric": "wall_s"}}}),
        encoding="utf-8",
    )
    problems = check_benches.violations(root=tmp_path)
    assert any("no 'tolerance'" in p for p in problems)
    assert any("no 'after'" in p for p in problems)


def test_metric_without_tolerance_is_flagged(tmp_path):
    _populate(tmp_path)
    _, (_, some_path) = sorted(perfgate.BENCHES.items())[0]
    baseline = _valid_baseline()
    baseline["scenarios"]["case"]["metric"] = "requests_per_s"
    (tmp_path / some_path.name).write_text(json.dumps(baseline),
                                           encoding="utf-8")
    problems = check_benches.violations(root=tmp_path)
    assert any("has no tolerance" in p for p in problems)


def test_clean_synthetic_root_passes(tmp_path):
    _populate(tmp_path)
    assert check_benches.violations(root=tmp_path) == []
