"""The ``repro obs`` subcommand family and ``--stream-spans``."""

import json

import pytest

from repro.cli import main


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


@pytest.fixture(scope="module")
def streamed_chaos(tmp_path_factory):
    """One traced chaos run shared by every obs test (they only read)."""
    path = tmp_path_factory.mktemp("obs") / "stream.jsonl"
    lines, out = collect()
    code = main(["chaos", "--rates", "8", "--window", "6",
                 "--stream-spans", str(path)], out=out)
    assert code == 0
    return path, "\n".join(lines)


def test_stream_spans_reports_pipeline_summary(streamed_chaos):
    path, text = streamed_chaos
    assert "[stream:" in text
    assert "peak retained" in text
    assert str(path) in text
    # The file is valid JSONL, one span per line.
    first = json.loads(path.read_text().splitlines()[0])
    assert "name" in first and "span_id" in first


def test_obs_critical_path_default_trace(streamed_chaos):
    path, _ = streamed_chaos
    lines, out = collect()
    assert main(["obs", "critical-path", str(path)], out=out) == 0
    text = "\n".join(lines)
    assert "critical path of trace" in text
    # The chain reaches from the client request into the executor.
    assert "rfaas.request" in text
    assert "rfaas.attempt" in text


def test_obs_critical_path_lists_all_traces(streamed_chaos):
    path, _ = streamed_chaos
    lines, out = collect()
    assert main(["obs", "critical-path", str(path), "--all"], out=out) == 0
    text = "\n".join(lines)
    assert "trace(s)" in text
    assert "rfaas.request" in text


def test_obs_critical_path_explicit_trace_id(streamed_chaos):
    path, _ = streamed_chaos
    record = next(
        json.loads(line) for line in path.read_text().splitlines()
        if "trace_id" in json.loads(line)["attrs"]
    )
    trace_id = record["attrs"]["trace_id"]
    lines, out = collect()
    code = main(["obs", "critical-path", str(path), "--trace-id", str(trace_id)],
                out=out)
    assert code == 0
    assert f"critical path of trace {trace_id}" in "\n".join(lines)


def test_obs_critical_path_rejects_unknown_trace(streamed_chaos):
    path, _ = streamed_chaos
    with pytest.raises(SystemExit):
        main(["obs", "critical-path", str(path), "--trace-id", "999999999"],
             out=lambda s: None)


def test_obs_critical_path_on_untraced_file_fails_cleanly(tmp_path):
    path = tmp_path / "untraced.jsonl"
    span = {"span_id": 1, "parent_id": None, "name": "x", "track": "main",
            "start": 0.0, "end": 1.0, "attrs": {}}
    path.write_text(json.dumps(span) + "\n")
    lines, out = collect()
    assert main(["obs", "critical-path", str(path)], out=out) == 1
    assert "no spans with a trace_id" in "\n".join(lines)


def test_obs_slo_replay(streamed_chaos):
    path, _ = streamed_chaos
    # A sub-millisecond threshold marks everything bad: breaches fire.
    lines, out = collect()
    assert main(["obs", "slo", str(path), "--threshold", "0.0001"], out=out) == 0
    assert "slo.breach episode(s)" in "\n".join(lines)
    # A generous threshold (and budget) stays quiet.
    lines, out = collect()
    assert main(["obs", "slo", str(path), "--threshold", "1000",
                 "--budget", "0.99"], out=out) == 0
    assert "no SLO breaches" in "\n".join(lines)


def test_obs_red_rollup(streamed_chaos):
    path, _ = streamed_chaos
    lines, out = collect()
    assert main(["obs", "red", str(path)], out=out) == 0
    text = "\n".join(lines)
    assert "per-tenant RED rollup" in text
    assert "p95_s" in text


def test_obs_tail(streamed_chaos):
    path, _ = streamed_chaos
    lines, out = collect()
    assert main(["obs", "tail", str(path), "-n", "5"], out=out) == 0
    text = "\n".join(lines)
    assert "last 5 of" in text


def test_obs_rejects_missing_file():
    with pytest.raises(SystemExit):
        main(["obs", "red", "/nonexistent/spans.jsonl"], out=lambda s: None)
