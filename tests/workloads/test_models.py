"""Workload demand-model tests."""

import pytest

from repro.workloads import (
    AppModel,
    RODINIA_BENCHMARKS,
    blackscholes_model,
    is_valid_rank_count,
    lulesh_model,
    milc_model,
    nas_model,
    openmc_model,
    rodinia_benchmark,
    valid_rank_counts,
)

GBs = 1e9


def test_appmodel_validation():
    with pytest.raises(ValueError):
        AppModel(name="x", runtime_s=0, membw_per_rank=1)
    with pytest.raises(ValueError):
        AppModel(name="x", runtime_s=1, membw_per_rank=-1)
    with pytest.raises(ValueError):
        AppModel(name="x", runtime_s=1, membw_per_rank=1, gpu_fraction=1.5)


def test_appmodel_demand_scales_with_ranks():
    m = AppModel(name="x", runtime_s=1, membw_per_rank=2 * GBs, llc_per_rank=1e6, frac_membw=0.3)
    d1, d4 = m.demand(1), m.demand(4)
    assert d4.cores == 4
    assert d4.membw == pytest.approx(4 * d1.membw)
    assert d4.llc_bytes == pytest.approx(4 * d1.llc_bytes)
    assert d4.frac_membw == d1.frac_membw
    with pytest.raises(ValueError):
        m.demand(0)


def test_nas_lookup_and_error():
    assert nas_model("cg.A").frac_membw > 0.8
    assert nas_model("ep.W").frac_membw < 0.1
    with pytest.raises(KeyError):
        nas_model("zz.Z")


def test_nas_runtimes_in_paper_band():
    """Sec. V-B: serial NAS runtimes between 0.6 and 4.2 seconds."""
    for key in ("bt.W", "cg.A", "ep.W", "lu.W"):
        assert 0.5 <= nas_model(key).runtime_s <= 4.3


def test_lulesh_cubic_rank_constraint():
    assert valid_rank_counts(130) == [1, 8, 27, 64, 125]
    assert is_valid_rank_count(27)
    assert not is_valid_rank_count(36)
    assert valid_rank_counts(0) == []


def test_lulesh_compute_bound_and_size_trend():
    small, large = lulesh_model(20), lulesh_model(60)
    assert small.frac_membw < 0.5  # compute-dominated
    # Larger problems are less memory-bound (better surface/volume).
    assert large.frac_membw < small.frac_membw
    assert large.runtime_s > small.runtime_s
    with pytest.raises(ValueError):
        lulesh_model(2)


def test_milc_memory_bound_and_size_trend():
    small, large = milc_model(8), milc_model(24)
    assert large.frac_membw > small.frac_membw
    assert large.membw_per_rank > small.membw_per_rank
    # MILC is distinctly more memory-bound than LULESH (Sec. V-C).
    assert milc_model(16).frac_membw > lulesh_model(30).frac_membw
    with pytest.raises(ValueError):
        milc_model(2)


def test_gpu_variants():
    assert lulesh_model(30, gpu=True).gpu_fraction > 0.5
    assert lulesh_model(30).gpu_fraction == 0.0
    assert milc_model(16, gpu=True).gpu_fraction > 0.5


def test_rodinia_catalog():
    assert len(RODINIA_BENCHMARKS) >= 8
    for bench in RODINIA_BENCHMARKS.values():
        assert 0.05 < bench.runtime_s < 1.0  # "a few hundred milliseconds"
        assert bench.host.demand(1).cores == 1
    assert rodinia_benchmark("hotspot").gpu_occupancy == pytest.approx(0.7)
    with pytest.raises(KeyError):
        rodinia_benchmark("nope")


def test_blackscholes_and_openmc_models():
    bs = blackscholes_model(10**6)
    assert bs.frac_membw < 0.5
    mc = openmc_model(10_000)
    assert mc.runtime_s == pytest.approx(0.95, rel=0.01)
    with pytest.raises(ValueError):
        blackscholes_model(0)
    with pytest.raises(ValueError):
        openmc_model(0)


def test_nas_class_scaling():
    from repro.workloads import nas_model_for_class

    base = nas_model("cg.A")
    big = nas_model_for_class("cg", "B")
    small = nas_model_for_class("cg", "S")
    assert big.runtime_s == pytest.approx(base.runtime_s * 4.0)
    assert small.runtime_s < base.runtime_s
    # Bandwidth demand is an algorithm property, unchanged by class.
    assert big.membw_per_rank == base.membw_per_rank
    # Footprint grows but saturates.
    assert base.llc_per_rank <= big.llc_per_rank <= 64 * 1024 * 1024
    assert nas_model_for_class("ep", "C").name == "ep.C"
    with pytest.raises(KeyError):
        nas_model_for_class("cg", "Z")
    with pytest.raises(KeyError):
        nas_model_for_class("zz", "A")
