"""Runnable mini-kernel tests: determinism, correctness, real work."""

import numpy as np
import pytest

from repro.workloads import (
    generate_options,
    lulesh_kernel,
    milc_kernel,
    nas_kernel,
    price_chunk,
    price_options,
    run_transport,
    split_batch,
    transport_chunk,
)
from repro.workloads.nas import (
    bt_kernel,
    cg_kernel,
    ep_kernel,
    ft_kernel,
    is_kernel,
    mg_kernel,
)


# ---- NAS kernels -------------------------------------------------------------

@pytest.mark.parametrize("kernel,kwargs", [
    (ep_kernel, dict(scale=14)),
    (cg_kernel, dict(n=500, iterations=10)),
    (mg_kernel, dict(levels=4, iterations=2)),
    (ft_kernel, dict(n=16, iterations=2)),
    (is_kernel, dict(scale=12)),
    (bt_kernel, dict(n=16, iterations=2)),
])
def test_nas_kernels_deterministic_and_finite(kernel, kwargs):
    a = kernel(seed=3, **kwargs)
    b = kernel(seed=3, **kwargs)
    assert a == b
    assert np.isfinite(a)
    assert kernel(seed=4, **kwargs) != a


def test_nas_kernel_lookup():
    assert nas_kernel("ep") is ep_kernel
    with pytest.raises(KeyError):
        nas_kernel("zz")


def test_cg_kernel_actually_solves():
    # More iterations -> closer to the true solution norm (monotone-ish).
    loose = cg_kernel(n=400, iterations=3, seed=0)
    tight = cg_kernel(n=400, iterations=60, seed=0)
    tighter = cg_kernel(n=400, iterations=120, seed=0)
    assert abs(tighter - tight) < abs(tight - loose) + 1e-9


def test_kernel_validation():
    with pytest.raises(ValueError):
        ep_kernel(scale=0)
    with pytest.raises(ValueError):
        cg_kernel(n=1)
    with pytest.raises(ValueError):
        mg_kernel(levels=1)
    with pytest.raises(ValueError):
        lulesh_kernel(n=2)
    with pytest.raises(ValueError):
        milc_kernel(lattice=1)


# ---- LULESH / MILC surrogates ---------------------------------------------------

def test_lulesh_kernel_conserves_bounds():
    result = lulesh_kernel(n=16, iterations=5, seed=1)
    assert np.isfinite(result)
    assert result >= 0.0  # energies clipped to [0, 10]
    assert lulesh_kernel(n=16, iterations=5, seed=1) == result


def test_milc_kernel_deterministic():
    a = milc_kernel(lattice=4, iterations=1, seed=2)
    assert a == milc_kernel(lattice=4, iterations=1, seed=2)
    assert a > 0


# ---- Black-Scholes -----------------------------------------------------------------

def test_blackscholes_known_value():
    """Spot=100, K=100, r=5%, sigma=20%, T=1y call: 10.4506 (textbook)."""
    from repro.workloads import OptionBatch

    batch = OptionBatch(
        spot=np.array([100.0]), strike=np.array([100.0]), rate=np.array([0.05]),
        volatility=np.array([0.2]), expiry=np.array([1.0]), is_call=np.array([True]),
    )
    price = price_options(batch)[0]
    assert price == pytest.approx(10.4506, abs=1e-3)


def test_blackscholes_put_call_parity():
    batch = generate_options(500, seed=5)
    calls = price_options(
        type(batch)(batch.spot, batch.strike, batch.rate, batch.volatility,
                    batch.expiry, np.ones(len(batch), dtype=bool))
    )
    puts = price_options(
        type(batch)(batch.spot, batch.strike, batch.rate, batch.volatility,
                    batch.expiry, np.zeros(len(batch), dtype=bool))
    )
    lhs = calls - puts
    rhs = batch.spot - batch.strike * np.exp(-batch.rate * batch.expiry)
    np.testing.assert_allclose(lhs, rhs, atol=1e-8)


def test_split_batch_covers_everything():
    batch = generate_options(1000, seed=0)
    chunks = split_batch(batch, 7)
    assert sum(len(c["spot"]) for c in chunks) == 1000
    # Chunked pricing matches whole-batch pricing.
    whole = price_options(batch)
    parts = np.concatenate([price_chunk(c) for c in chunks])
    np.testing.assert_allclose(parts, whole)


def test_split_batch_validation():
    batch = generate_options(10)
    with pytest.raises(ValueError):
        split_batch(batch, 0)
    # More chunks than options: empty chunks dropped.
    chunks = split_batch(batch, 20)
    assert sum(len(c["spot"]) for c in chunks) == 10


# ---- Monte Carlo transport ---------------------------------------------------------

def test_transport_conservation():
    result = run_transport(2000, seed=0)
    # Every particle ends absorbed, leaked, or still alive at the cap.
    assert result.absorptions + result.leakage <= result.particles
    assert result.collisions >= result.absorptions
    assert result.fissions <= result.absorptions
    assert result.mean_distance_cm > 0


def test_transport_deterministic():
    a = run_transport(500, seed=9)
    b = run_transport(500, seed=9)
    assert a == b


def test_transport_k_estimate_reasonable():
    result = run_transport(20_000, seed=1)
    # A crude reactor, but k should land in a physical band.
    assert 0.2 < result.k_estimate < 2.5


def test_transport_chunk_roundtrip():
    out = transport_chunk({"particles": 300, "seed": 4})
    assert out["particles"] == 300
    assert out["collisions"] > 0
    direct = run_transport(300, seed=4)
    assert out["k_estimate"] == direct.k_estimate


def test_transport_validation():
    with pytest.raises(ValueError):
        run_transport(0)
    with pytest.raises(ValueError):
        run_transport(10, max_collisions=0)
