"""PDE Black-Scholes solver: validation against the closed form."""

import numpy as np
import pytest

from repro.workloads import OptionBatch, price_options
from repro.workloads.blackscholes_pde import PdeGrid, pde_chunk, solve_european_pde


def closed_form(spot, strike, rate, vol, expiry, is_call):
    batch = OptionBatch(
        spot=np.array([spot]), strike=np.array([strike]), rate=np.array([rate]),
        volatility=np.array([vol]), expiry=np.array([expiry]),
        is_call=np.array([is_call]),
    )
    return float(price_options(batch)[0])


@pytest.mark.parametrize("is_call", [True, False])
@pytest.mark.parametrize("spot,strike,vol,expiry", [
    (100.0, 100.0, 0.2, 1.0),
    (120.0, 100.0, 0.3, 0.5),
    (80.0, 100.0, 0.15, 2.0),
])
def test_pde_matches_closed_form(spot, strike, vol, expiry, is_call):
    rate = 0.05
    pde = solve_european_pde(spot, strike, rate, vol, expiry, is_call,
                             grid=PdeGrid(space_points=600, time_steps=600))
    exact = closed_form(spot, strike, rate, vol, expiry, is_call)
    assert pde == pytest.approx(exact, abs=0.05)


def test_textbook_value():
    # S=K=100, r=5%, sigma=20%, T=1y call: 10.4506.
    pde = solve_european_pde(100, 100, 0.05, 0.2, 1.0, True,
                             grid=PdeGrid(space_points=800, time_steps=800))
    assert pde == pytest.approx(10.4506, abs=0.03)


def test_refinement_converges():
    exact = closed_form(100, 100, 0.05, 0.25, 1.0, True)
    coarse = solve_european_pde(100, 100, 0.05, 0.25, 1.0, True,
                                grid=PdeGrid(space_points=50, time_steps=50))
    fine = solve_european_pde(100, 100, 0.05, 0.25, 1.0, True,
                              grid=PdeGrid(space_points=400, time_steps=400))
    assert abs(fine - exact) < abs(coarse - exact)


def test_validation():
    with pytest.raises(ValueError):
        solve_european_pde(0, 100, 0.05, 0.2, 1.0)
    with pytest.raises(ValueError):
        solve_european_pde(100, 100, -0.01, 0.2, 1.0)
    with pytest.raises(ValueError):
        PdeGrid(space_points=2)
    with pytest.raises(ValueError):
        PdeGrid(s_max_factor=1.0)


def test_pde_chunk_batches():
    payload = {
        "spot": [100.0, 110.0], "strike": [100.0, 100.0], "rate": [0.05, 0.05],
        "volatility": [0.2, 0.2], "expiry": [1.0, 1.0], "is_call": [True, False],
        "space_points": 300, "time_steps": 300,
    }
    prices = pde_chunk(payload)
    assert len(prices) == 2
    assert prices[0] == pytest.approx(closed_form(100, 100, 0.05, 0.2, 1.0, True), abs=0.1)
    assert prices[1] == pytest.approx(closed_form(110, 100, 0.05, 0.2, 1.0, False), abs=0.1)


def test_pde_chunk_usable_remotely():
    """The heavyweight kernel runs through the live runtime too."""
    from repro.local import LocalRuntime

    payload = {
        "spot": [100.0], "strike": [100.0], "rate": [0.05],
        "volatility": [0.2], "expiry": [1.0], "is_call": [True],
        "space_points": 100, "time_steps": 100,
    }
    with LocalRuntime(workers=1) as rt:
        rt.register("pde", "repro.workloads.blackscholes_pde:pde_chunk")
        remote = rt.invoke_sync("pde", payload)
    assert remote == pde_chunk(payload)
