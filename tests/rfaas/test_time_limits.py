"""Time-limited functions (Sec. III-A): admission-time enforcement."""

import pytest

from repro.rfaas import InvocationStatus

from .conftest import Harness


def test_over_limit_invocation_rejected():
    h = Harness()
    h.manager.register_node("n0001", cores=2, memory_bytes=8 << 30,
                            max_invocation_s=1.0)
    h.register_function("too-long", runtime_s=5.0)
    client = h.client()
    out = {}

    def proc():
        result = yield client.invoke("too-long")
        out["result"] = result

    h.env.process(proc())
    h.env.run()
    # Rejected on every registered node -> surfaces as REJECTED/TERMINATED.
    assert out["result"].status in (InvocationStatus.REJECTED, InvocationStatus.TERMINATED)


def test_within_limit_accepted():
    h = Harness()
    h.manager.register_node("n0001", cores=2, memory_bytes=8 << 30,
                            max_invocation_s=1.0)
    h.register_function("quick", runtime_s=0.5)
    client = h.client()
    out = {}

    def proc():
        result = yield client.invoke("quick")
        out["result"] = result

    h.env.process(proc())
    h.env.run()
    assert out["result"].ok


def test_limit_applies_to_dilated_runtime():
    """The limit guards wall-clock occupancy, so dilation counts."""
    from repro.interference import ResourceDemand

    h = Harness()
    h.manager.register_node("n0001", cores=2, memory_bytes=8 << 30,
                            max_invocation_s=1.0)
    hog = ResourceDemand(cores=16, membw=120e9, llc_bytes=80 << 20, frac_membw=0.9)
    h.loads.add("n0001", "hog", hog)
    # 0.9 s nominal, but the hog dilates it past the 1 s limit.
    h.register_function(
        "borderline", runtime_s=0.9,
        demand=ResourceDemand(cores=1, membw=10e9, llc_bytes=20 << 20, frac_membw=0.9),
    )
    client = h.client()
    out = {}

    def proc():
        result = yield client.invoke("borderline")
        out["result"] = result

    h.env.process(proc())
    h.env.run()
    assert not out["result"].ok


def test_limit_validation():
    h = Harness()
    with pytest.raises(ValueError):
        h.manager.register_node("n0001", cores=1, memory_bytes=1 << 30,
                                max_invocation_s=0.0)
