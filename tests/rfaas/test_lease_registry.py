"""Lease state machine and function registry tests."""

import numpy as np
import pytest

from repro.containers import Image
from repro.interference import ResourceDemand
from repro.rfaas import FunctionRegistry, Lease, LeaseState

MiB = 1024**2


def lease(**kw):
    defaults = dict(client="c", node_name="n0", cores=1, memory_bytes=0)
    defaults.update(kw)
    return Lease(**defaults)


def test_lease_validation():
    with pytest.raises(ValueError):
        lease(cores=0, memory_bytes=0, gpus=0)
    with pytest.raises(ValueError):
        lease(cores=-1)


def test_memory_only_lease_allowed():
    l = lease(cores=0, memory_bytes=1024)
    assert l.active


def test_lease_cancel_notifies_once():
    calls = []
    l = lease()
    l.on_cancel.append(lambda lse: calls.append(lse.lease_id))
    l.cancel()
    l.cancel()  # idempotent
    assert calls == [l.lease_id]
    assert l.state == LeaseState.CANCELLED


def test_lease_release_vs_cancel():
    l = lease()
    l.release()
    assert l.state == LeaseState.RELEASED
    l.cancel()  # no-op after release
    assert l.state == LeaseState.RELEASED


def test_registry_register_and_lookup():
    reg = FunctionRegistry()
    image = Image("img", size_bytes=100 * MiB)
    demand = ResourceDemand(cores=1, membw=1e9, frac_membw=0.2)
    fdef = reg.register("fn", image, runtime_s=0.5, demand=demand)
    assert "fn" in reg
    assert reg.lookup("fn") is fdef
    assert reg.names() == ["fn"]
    with pytest.raises(ValueError):
        reg.register("fn", image, runtime_s=0.5, demand=demand)
    with pytest.raises(KeyError):
        reg.lookup("missing")


def test_registry_profiles_when_demand_missing():
    reg = FunctionRegistry(rng=np.random.default_rng(0))
    image = Image("img", size_bytes=100 * MiB)
    fdef = reg.register("fn", image, runtime_s=0.1)
    assert fdef.demand.cores == 1
    assert fdef.demand.membw > 0
    assert 0 <= fdef.demand.frac_membw < 1


def test_function_def_validation():
    from repro.rfaas import FunctionDef

    image = Image("img", size_bytes=1)
    demand = ResourceDemand(cores=1)
    with pytest.raises(ValueError):
        FunctionDef("f", image, demand, runtime_s=-1)
    with pytest.raises(ValueError):
        FunctionDef("f", image, demand, runtime_s=1, output_bytes=-1)
