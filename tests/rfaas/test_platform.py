"""End-to-end rFaaS platform tests: invoke, warm starts, reclamation."""

import pytest

from repro.cluster import AllocationError
from repro.interference import ResourceDemand
from repro.rfaas import ExecutorMode, InvocationStatus, NoCapacityError

from .conftest import Harness

GiB = 1024**3
MiB = 1024**2


def run_invocations(h, client, n, function="noop", payload=1024):
    results = []

    def proc():
        for _ in range(n):
            result = yield client.invoke(function, payload_bytes=payload)
            results.append(result)

    h.env.process(proc())
    h.env.run()
    return results


def test_invoke_roundtrip_ok(harness):
    harness.register_node("n0001")
    harness.register_function("noop", runtime_s=0.0)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1)
    assert result.ok
    assert result.node_name == "n0001"
    assert result.startup_kind == "cold"
    assert result.timings.total > 0
    assert result.timings.network_out > 0


def test_second_invocation_attached_no_startup(harness):
    harness.register_node("n0001")
    harness.register_function("noop", runtime_s=0.0)
    client = harness.client()
    first, second = run_invocations(harness, client, 2)
    assert first.startup_kind == "cold"
    # The function process stays attached: zero sandbox cost afterwards.
    assert second.startup_kind == "attached"
    assert second.timings.startup == 0.0


def test_prewarm_eliminates_cold_start(harness):
    reg = harness.register_node("n0001")
    harness.register_function("noop", runtime_s=0.0)
    reg.executor.prewarm(harness.image)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1)
    assert result.startup_kind == "warm"


def test_execution_time_reflects_function_runtime(harness):
    harness.register_node("n0001")
    harness.register_function("work", runtime_s=0.25)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1, function="work")
    assert result.timings.execution >= 0.25
    # Alone on the node: no meaningful dilation.
    assert result.timings.execution < 0.26


def test_interference_dilates_execution(harness):
    """A memory-hogging batch tenant slows the function down."""
    harness.register_node("n0001", cores=4)
    hog = ResourceDemand(cores=16, membw=60e9, llc_bytes=40 * MiB, frac_membw=0.6)
    harness.loads.add("n0001", "batch-job", hog)
    harness.register_function(
        "membound", runtime_s=0.2,
        demand=ResourceDemand(cores=1, membw=10e9, llc_bytes=20 * MiB, frac_membw=0.8),
    )
    client = harness.client()
    (result,) = run_invocations(harness, client, 1, function="membound")
    assert result.timings.execution > 0.2 * 1.05


def test_concurrent_invocations_respect_slots(harness):
    harness.register_node("n0001", cores=2)
    harness.register_function("work", runtime_s=0.1)
    client = harness.client()
    done = []

    def proc(tag):
        result = yield client.invoke("work")
        done.append((tag, harness.env.now, result.status))

    for tag in range(3):
        harness.env.process(proc(tag))
    harness.env.run()
    assert all(status == InvocationStatus.OK for _, _, status in done)
    times = sorted(t for _, t, _ in done)
    # Two run concurrently on the executor's 2 slots; the third queues.
    assert times[2] > times[0] + 0.09
    # Parallel invokes shared one lease.
    assert len(harness.manager.node_info("n0001").leases) == 1


def test_lease_reuse_single_connection(harness):
    harness.register_node("n0001")
    harness.register_function("noop", runtime_s=0.0)
    client = harness.client()
    results = run_invocations(harness, client, 5)
    assert all(r.ok for r in results)
    assert client.redirects == 0
    assert len(harness.manager.node_info("n0001").leases) == 1


def test_lease_accounting_and_release(harness):
    reg = harness.register_node("n0001", cores=4, memory=8 * GiB)
    harness.register_function("noop", runtime_s=0.0)
    client = harness.client()
    run_invocations(harness, client, 1)
    assert reg.cores_free == 3
    client.close()
    assert reg.cores_free == 4
    node = harness.cluster.node("n0001")
    assert node.allocations_of_kind("function") == ()


def test_no_capacity_rejected(harness):
    harness.register_function("noop", runtime_s=0.0)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1)
    assert result.status == InvocationStatus.REJECTED


def test_graceful_remove_lets_invocation_finish(harness):
    harness.register_node("n0001")
    harness.register_function("slow", runtime_s=1.0)
    client = harness.client()
    results = []

    def invoker():
        result = yield client.invoke("slow")
        results.append(result)

    def reclaimer():
        yield harness.env.timeout(0.5)
        harness.manager.remove_node("n0001", immediate=False)

    harness.env.process(invoker())
    harness.env.process(reclaimer())
    harness.env.run()
    assert results[0].ok
    assert not harness.manager.is_registered("n0001")


def test_immediate_remove_terminates_and_redirects(harness):
    harness.register_node("n0001")
    harness.register_node("n0002")
    harness.register_function("slow", runtime_s=1.0)
    client = harness.client()
    results = []

    def invoker():
        result = yield client.invoke("slow")
        results.append(result)

    def reclaimer():
        yield harness.env.timeout(0.5)
        harness.manager.remove_node("n0001", immediate=True)

    harness.env.process(invoker())
    harness.env.process(reclaimer())
    harness.env.run()
    assert results[0].ok
    assert results[0].node_name == "n0002"
    assert client.redirects == 1


def test_immediate_remove_no_fallback_terminates(harness):
    harness.register_node("n0001")
    harness.register_function("slow", runtime_s=1.0)
    client = harness.client()
    results = []

    def invoker():
        result = yield client.invoke("slow")
        results.append(result)

    def reclaimer():
        yield harness.env.timeout(0.2)
        harness.manager.remove_node("n0001", immediate=True)

    harness.env.process(invoker())
    harness.env.process(reclaimer())
    harness.env.run()
    assert results[0].status in (InvocationStatus.TERMINATED, InvocationStatus.REJECTED)


def test_register_node_validation(harness):
    harness.register_node("n0001")
    with pytest.raises(ValueError):
        harness.register_node("n0001")  # duplicate
    with pytest.raises(ValueError):
        harness.manager.register_node("n0002", cores=0, memory_bytes=0)
    # Cannot register more than the node has free.
    node = harness.cluster.node("n0002")
    node.allocate("job", cores=36)
    with pytest.raises(AllocationError):
        harness.register_node("n0002", cores=1)
    # Removing an unregistered node is an idempotent no-op.
    assert harness.manager.remove_node("n0003") is False


def test_lease_prefers_warm_node(harness):
    harness.register_node("n0001")
    reg2 = harness.register_node("n0002")
    harness.register_function("noop", runtime_s=0.0)
    reg2.executor.prewarm(harness.image)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1)
    assert result.node_name == "n0002"
    assert result.startup_kind == "warm"


def test_gpu_lease(harness):
    # Register a GPU node.
    from repro.cluster import DAINT_GPU, Node

    harness.cluster.add_node(Node("gpu0", DAINT_GPU))
    harness.manager.register_node("gpu0", cores=2, memory_bytes=4 * GiB, gpus=1)
    harness.register_function("gpufn", runtime_s=0.1, needs_gpu=True)
    client = harness.client()
    (result,) = run_invocations(harness, client, 1, function="gpufn")
    assert result.ok
    assert result.node_name == "gpu0"
    with pytest.raises(NoCapacityError):
        harness.manager.lease(client="x", cores=1, gpus=1)  # GPU now leased? no...
