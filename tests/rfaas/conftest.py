"""Shared fixtures for rFaaS platform tests."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import Image
from repro.interference import ResourceDemand
from repro.network import IBVERBS, UGNI, DrcManager, NetworkFabric
from repro.rfaas import (
    ExecutorMode,
    FunctionRegistry,
    NodeLoadRegistry,
    ResourceManager,
    RFaaSClient,
)
from repro.sim import Environment

MiB = 1024**2
GiB = 1024**3


def jitterless(provider):
    return replace(provider, params=provider.params.with_jitter(0.0))


class Harness:
    """A small cluster with a fabric, manager, registry, and client."""

    def __init__(self, nodes=4, provider=None, mode=ExecutorMode.HOT, seed=0):
        self.env = Environment()
        self.cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
        self.cluster.add_nodes("n", nodes, DAINT_MC)
        self.drc = DrcManager()
        provider = provider or jitterless(IBVERBS)
        self.fabric = NetworkFabric(
            self.env, self.cluster, provider,
            rng=np.random.default_rng(seed), drc=self.drc,
        )
        self.loads = NodeLoadRegistry(self.cluster)
        self.manager = ResourceManager(
            self.env, self.cluster, loads=self.loads, drc=self.drc,
            rng=np.random.default_rng(seed),
        )
        self.functions = FunctionRegistry(rng=np.random.default_rng(seed))
        self.image = Image(name="fn-image", size_bytes=300 * MiB)
        self.mode = mode

    def register_node(self, name, cores=4, memory=8 * GiB, gpus=0):
        return self.manager.register_node(
            name, cores=cores, memory_bytes=memory, gpus=gpus, mode=self.mode
        )

    def register_function(self, name="noop", runtime_s=0.0, **kw):
        demand = kw.pop(
            "demand",
            ResourceDemand(cores=1, membw=0.2e9, llc_bytes=1 * MiB, frac_membw=0.02),
        )
        return self.functions.register(
            name, self.image, runtime_s=runtime_s, demand=demand, **kw
        )

    def client(self, client_node="n0000", **kw):
        return RFaaSClient(
            self.env, self.manager, self.fabric, self.functions,
            client_node=client_node, **kw,
        )


@pytest.fixture
def harness():
    return Harness()
