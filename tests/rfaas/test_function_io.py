"""Function I/O through the storage tier (Sec. IV-D integration)."""

import pytest

from repro.storage import LustreModel, ObjectStoreModel, TieredFunctionStorage

from .conftest import Harness

MiB = 1024**2
GiB = 1024**3


def run_one(h, function):
    out = {}

    def proc():
        client = h.client()
        result = yield client.invoke(function)
        out["result"] = result

    h.env.process(proc())
    h.env.run()
    return out["result"]


def test_no_input_no_io_time():
    h = Harness()
    h.register_node("n0001")
    h.register_function("noio", runtime_s=0.0)
    result = run_one(h, "noio")
    assert result.timings.io == 0.0


def test_small_input_served_from_cache_tier():
    h = Harness()
    h.register_node("n0001")
    h.register_function("smallio", runtime_s=0.0, input_read_bytes=256 * 1024)
    result = run_one(h, "smallio")
    # Object-store latency floor: sub-millisecond.
    assert 0 < result.timings.io < 1.5e-3


def test_large_input_served_from_pfs():
    h = Harness()
    h.register_node("n0001")
    size = 410 * MiB  # the OpenMC opr input of Sec. V-D
    h.register_function("bigio", runtime_s=0.0, input_read_bytes=size)
    result = run_one(h, "bigio")
    pfs = TieredFunctionStorage().pfs.read_time(size)
    assert result.timings.io == pytest.approx(pfs)
    assert result.timings.io > 0.05  # hundreds of MB take real time


def test_io_counted_in_total():
    h = Harness()
    h.register_node("n0001")
    h.register_function("fn", runtime_s=0.1, input_read_bytes=64 * MiB)
    result = run_one(h, "fn")
    t = result.timings
    assert t.total == pytest.approx(
        t.network_out + t.dispatch + t.startup + t.io + t.execution + t.network_back
    )
    assert t.io > 0 and t.execution >= 0.1


def test_custom_storage_configuration():
    # An executor can be given a deliberately slow PFS.
    h = Harness()
    reg = h.register_node("n0001")
    slow = TieredFunctionStorage(
        pfs=LustreModel(ost_bandwidth=0.1e9, client_bandwidth=0.1e9),
        cache=ObjectStoreModel(),
        cache_threshold_bytes=1,
    )
    reg.executor.storage = slow
    h.register_function("fn", runtime_s=0.0, input_read_bytes=64 * MiB)
    result = run_one(h, "fn")
    assert result.timings.io > 0.5


def test_negative_input_rejected():
    h = Harness()
    with pytest.raises(ValueError):
        h.register_function("bad", runtime_s=0.0, input_read_bytes=-1)
