"""Function checkpointing across reclamation (Sec. III)."""

import pytest

from repro.rfaas import InvocationStatus

from .conftest import Harness


def run_scenario(checkpointable, reclaim_at=2.0, runtime=5.0, interval=0.5):
    h = Harness()
    reg1 = h.register_node("n0001")
    h.register_node("n0002")
    h.register_function(
        "long", runtime_s=runtime,
        checkpointable=checkpointable, checkpoint_interval_s=interval,
    )
    # Prewarm so execution starts ~immediately (no cold-start offset).
    reg1.executor.prewarm(h.image)
    client = h.client()
    out = {}

    def invoker():
        t0 = h.env.now
        result = yield client.invoke("long")
        out["result"] = result
        out["elapsed"] = h.env.now - t0

    def reclaimer():
        yield h.env.timeout(reclaim_at)
        h.manager.remove_node("n0001", immediate=True)

    h.env.process(invoker())
    h.env.process(reclaimer())
    h.env.run()
    return h, out


def test_checkpointable_resumes_not_restarts():
    h, out = run_scenario(checkpointable=True)
    result = out["result"]
    assert result.ok
    assert result.node_name == "n0002"
    # ~1.5-2s of work was checkpointed before the 2s reclaim; the retry
    # only executes the remainder, so the second leg is well under the
    # full 5s runtime.
    assert result.timings.execution < 4.0
    # Total elapsed ~ reclaim point + remaining work + redirect costs,
    # clearly less than a full restart (2 + 5 = 7s plus overheads).
    assert out["elapsed"] < 6.5


def test_non_checkpointable_restarts_from_zero():
    h, out = run_scenario(checkpointable=False)
    result = out["result"]
    assert result.ok
    # The retry re-executes everything.
    assert result.timings.execution >= 5.0
    assert out["elapsed"] > 7.0


def test_checkpoint_rounds_down_to_interval():
    # Reclaim at 1.3s with 0.5s checkpoints: 1.0s is preserved, so the
    # retry runs 4.0s (5 - 1).
    h, out = run_scenario(checkpointable=True, reclaim_at=1.3, interval=0.5)
    assert out["result"].ok
    assert out["result"].timings.execution == pytest.approx(4.0, abs=0.1)


def test_checkpoint_interval_validation():
    h = Harness()
    with pytest.raises(ValueError):
        h.register_function("bad", runtime_s=1.0, checkpointable=True,
                            checkpoint_interval_s=0.0)


def test_resume_offset_request_validation():
    from repro.rfaas import InvocationRequest

    with pytest.raises(ValueError):
        InvocationRequest(function="f", payload_bytes=0, resume_offset_s=-1.0)
