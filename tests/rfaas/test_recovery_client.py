"""Client-side failure recovery: retry loop, exhaustion, close semantics."""

import pytest

from repro.faults import RecoveryOutcome, RetryPolicy
from repro.rfaas import (
    InvocationStatus,
    InvocationTimeout,
    LeaseRevokedError,
    RFaaSError,
    TerminationError,
)

from .conftest import Harness


def _reclaim_whenever_leased(h, client, period=0.1, kills=None):
    """Reclaim the client's current node every ``period`` seconds."""

    def killer():
        remaining = [kills]
        while remaining[0] is None or remaining[0] > 0:
            yield h.env.timeout(period)
            lease = client.lease
            if lease is not None and lease.active:
                h.manager.remove_node(lease.node_name, immediate=True)
                if remaining[0] is not None:
                    remaining[0] -= 1

    return h.env.process(killer())


def test_redirect_exhaustion_surfaces_terminated_not_hang():
    """Repeated immediate reclaims exhaust max_redirects: TERMINATED result."""
    h = Harness(nodes=5)
    for name in ("n0001", "n0002", "n0003", "n0004"):
        h.register_node(name)
    h.register_function("work", runtime_s=0.5)
    client = h.client()  # default policy: max_redirects=3, 4 attempts
    _reclaim_whenever_leased(h, client)
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("work", payload_bytes=64)

    h.env.process(driver())
    h.env.run(until=10.0)
    detailed = out["d"]
    assert detailed.outcome is RecoveryOutcome.GAVE_UP
    assert detailed.result.status is InvocationStatus.TERMINATED
    assert not detailed.ok
    assert isinstance(detailed.error, TerminationError)
    # Every attempt made ended in a redirect, and the counter says so.
    assert detailed.attempts == client.retry_policy.max_attempts == 4
    assert detailed.retries == client.retry_policy.max_redirects == 3
    assert client.redirects == detailed.attempts


def test_plain_invoke_reports_terminated_on_exhaustion():
    h = Harness(nodes=5)
    for name in ("n0001", "n0002", "n0003", "n0004"):
        h.register_node(name)
    h.register_function("work", runtime_s=0.5)
    client = h.client()
    _reclaim_whenever_leased(h, client)
    out = {}

    def driver():
        out["r"] = yield client.invoke("work", payload_bytes=64)

    h.env.process(driver())
    h.env.run(until=10.0)
    assert out["r"].status is InvocationStatus.TERMINATED


def test_single_reclaim_recovers_on_another_node():
    h = Harness()
    h.register_node("n0001")
    h.register_node("n0002")
    h.register_function("work", runtime_s=0.5)
    client = h.client()
    _reclaim_whenever_leased(h, client, kills=1)
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("work", payload_bytes=64)

    h.env.process(driver())
    h.env.run(until=10.0)
    detailed = out["d"]
    assert detailed.ok
    assert detailed.outcome is RecoveryOutcome.RECOVERED
    assert detailed.retries == 1 and detailed.attempts == 2
    assert detailed.recovery_s > 0
    assert detailed.result.node_name == "n0002"  # excluded the reclaimed node
    assert client.redirects == 1


def test_backoff_delays_retries():
    h = Harness()
    h.register_node("n0001")
    h.register_node("n0002")
    h.register_function("work", runtime_s=0.5)
    policy = RetryPolicy(max_attempts=4, backoff_base_s=0.25)
    client = h.client(retry_policy=policy)
    _reclaim_whenever_leased(h, client, kills=1)
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("work", payload_bytes=64)

    h.env.process(driver())
    h.env.run(until=10.0)
    detailed = out["d"]
    assert detailed.ok and detailed.retries == 1
    assert detailed.backoff_s == pytest.approx(0.25)


def test_client_timeout_aborts_long_invocation():
    h = Harness()
    h.register_node("n0001")
    h.register_function("slow", runtime_s=5.0)
    client = h.client(retry_policy=RetryPolicy(max_attempts=4, timeout_s=0.25))
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("slow", payload_bytes=64)

    h.env.process(driver())
    h.env.run(until=10.0)
    detailed = out["d"]
    assert detailed.outcome is RecoveryOutcome.TIMED_OUT
    assert detailed.result.status is InvocationStatus.TERMINATED
    assert isinstance(detailed.error, InvocationTimeout)
    assert detailed.elapsed_s == pytest.approx(0.25, abs=0.05)
    # A deadline is terminal: the loop does not burn further attempts.
    assert detailed.attempts == 1


def test_no_capacity_is_rejected_not_retried():
    h = Harness()
    h.register_function("noop")
    client = h.client()
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("noop")

    h.env.process(driver())
    h.env.run()
    detailed = out["d"]
    assert detailed.outcome is RecoveryOutcome.REJECTED
    assert detailed.result.status is InvocationStatus.REJECTED
    assert client.redirects == 0  # rejection is terminal, not a redirect


def test_close_is_idempotent_and_releases_the_lease():
    h = Harness()
    h.register_node("n0001")
    h.register_function("noop")
    client = h.client()

    def driver():
        yield client.invoke("noop", payload_bytes=64)

    h.env.process(driver())
    h.env.run()
    assert len(h.manager.active_leases()) == 1
    client.close()
    client.close()  # second call is a no-op, not an error
    assert client.closed
    assert client.lease is None
    assert h.manager.active_leases() == []


def test_invoke_after_close_raises():
    h = Harness()
    h.register_node("n0001")
    h.register_function("noop")
    client = h.client()
    client.close()

    def driver():
        with pytest.raises(RFaaSError):
            yield client.invoke("noop")

    h.env.process(driver())
    h.env.run()


def test_close_during_in_flight_lease_setup_leaks_nothing():
    """close() racing _ensure_lease's connect: the fresh lease goes back."""
    h = Harness()
    h.register_node("n0001")
    h.register_function("noop")
    client = h.client()
    out = {}

    def driver():
        out["d"] = yield client.invoke_detailed("noop", payload_bytes=64)

    def closer():
        # The connect handshake takes a (simulated) microsecond or two;
        # land inside it.
        yield h.env.timeout(1e-7)
        client.close()

    h.env.process(driver())
    h.env.process(closer())
    h.env.run()
    detailed = out["d"]
    assert not detailed.ok
    assert detailed.outcome is RecoveryOutcome.GAVE_UP
    assert isinstance(detailed.error, LeaseRevokedError)
    assert h.manager.active_leases() == []  # the raced lease was handed back
    assert client.closed and client.lease is None
