"""Idempotent manager mutations: remove/revoke are safe to repeat.

Failover reconciliation and fault injection both re-drive mutations
whose first delivery may or may not have landed (a takeover replays
the replicated view against the data plane; an injector's crash event
can race a voluntary drain).  ``remove_node`` and ``revoke_lease``
therefore report *whether they did anything* instead of raising on a
repeat — the boolean is what keeps the fenced commit log free of
no-op records.
"""

from .conftest import Harness


def build_harness():
    harness = Harness()
    for name in ("n0001", "n0002", "n0003"):
        harness.register_node(name)
    harness.register_function()
    return harness


def test_remove_node_returns_true_then_false():
    harness = build_harness()
    assert harness.manager.remove_node("n0001") is True
    assert harness.manager.remove_node("n0001") is False  # already gone
    assert harness.manager.remove_node("n0001", immediate=True) is False


def test_remove_node_of_never_registered_node_is_false():
    harness = build_harness()
    assert harness.manager.remove_node("n9999") is False
    assert harness.manager.remove_node("") is False


def test_revoke_lease_returns_true_then_false():
    harness = build_harness()
    lease, _executor = harness.manager.lease("client-0", cores=1)
    assert harness.manager.revoke_lease(lease) is True
    assert harness.manager.revoke_lease(lease) is False  # already dead
    assert harness.manager.revoke_lease(lease, reason="again") is False


def test_revoke_after_release_is_false_and_frees_nothing_twice():
    harness = build_harness()
    free_before = harness.manager.total_free_cores()
    lease, _executor = harness.manager.lease("client-0", cores=2)
    harness.manager.release_lease(lease)
    assert harness.manager.total_free_cores() == free_before
    assert harness.manager.revoke_lease(lease) is False
    assert harness.manager.total_free_cores() == free_before  # no double-free


def test_remove_node_revokes_its_leases_once():
    harness = build_harness()
    lease, _executor = harness.manager.lease("client-0", cores=1)
    node = lease.node_name
    assert harness.manager.remove_node(node, immediate=True) is True
    assert not lease.active
    assert harness.manager.revoke_lease(lease) is False
    assert harness.manager.remove_node(node) is False
