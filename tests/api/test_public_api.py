"""The public-API lint: the exported surface must match the manifest.

Wired through the unified ``tools.checks`` entry point so the suite runs
the exact code path CI and humans run (``python -m tools.checks``).
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import check_public_api, checks  # noqa: E402


def test_public_surface_matches_the_manifest():
    assert checks.run("public-api") == []


def test_snapshot_covers_the_contract_modules():
    surface = check_public_api.snapshot()
    assert set(surface) == set(check_public_api.MODULES)
    assert "Platform" in surface["repro.api"]
    assert "ClusterSpec" in surface["repro.api"]
    for name in ("FaultPlan", "Injector", "RetryPolicy", "DegradedResult"):
        assert name in surface["repro.faults"]
    for name in ("RFaaSClient", "ResourceManager", "LeaseRevokedError"):
        assert name in surface["repro.rfaas"]


def test_snapshot_records_signatures_and_members():
    surface = check_public_api.snapshot()
    platform = surface["repro.api"]["Platform"]
    assert platform["kind"] == "class"
    assert "cluster_spec" in platform["methods"]["build"]
    assert "faults" in platform["methods"]["build"]
    client = surface["repro.rfaas"]["RFaaSClient"]
    assert "retry_policy" in client["signature"]
    assert "close" in client["methods"]


def test_drift_against_a_tampered_manifest_is_reported(tmp_path):
    surface = check_public_api.snapshot()
    tampered = check_public_api.load_manifest()
    del tampered["repro.api"]["Platform"]
    tampered["repro.faults"]["Bogus"] = {"kind": "value", "type": "int"}
    path = tmp_path / "public_api.json"
    check_public_api.write_manifest(tampered, path)
    recorded = check_public_api.load_manifest(path)
    problems = []
    for module_name in surface:
        have, want = surface[module_name], recorded.get(module_name, {})
        for name in sorted(set(have) | set(want)):
            if name not in want:
                problems.append(f"{module_name}.{name}: new export")
            elif name not in have:
                problems.append(f"{module_name}.{name}: disappeared")
    assert any("Platform" in p and "new export" in p for p in problems)
    assert any("Bogus" in p and "disappeared" in p for p in problems)
