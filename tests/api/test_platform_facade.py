"""The Platform facade: one build() call wires the whole stack."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.containers import Image
from repro.faults import FaultPlan
from repro.interference import ResourceDemand
from repro.network import IBVERBS
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryCollector

MiB = 1024**2
GiB = 1024**3


def _ready_platform(**build_kwargs):
    platform = Platform.build(
        ClusterSpec(nodes=3, provider=IBVERBS, jitter=0.0), **build_kwargs
    )
    platform.register_node("n0001", cores=4, memory_bytes=8 * GiB)
    image = Image("fn-image", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=0.01,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    return platform


def _run_some(platform, n=3):
    client = platform.client("n0000")
    results = []

    def driver():
        for _ in range(n):
            result = yield client.invoke("noop", payload_bytes=64)
            results.append(result)

    platform.process(driver())
    platform.run()
    return results


def test_build_defaults():
    platform = Platform.build()
    assert platform.spec == ClusterSpec()
    assert platform.env.now == 0.0
    assert platform.injector is None
    assert platform.telemetry is NULL_TELEMETRY
    assert platform.cluster.node("n0001") is not None


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(nodes_per_group=0)


def test_invoke_roundtrip_through_facade():
    platform = _ready_platform()
    results = _run_some(platform)
    assert len(results) == 3 and all(r.ok for r in results)
    assert results[0].node_name == "n0001"
    assert platform.env.now > 0


def test_telemetry_true_pins_a_fresh_scope():
    platform = _ready_platform(telemetry=True)
    assert platform.telemetry is not NULL_TELEMETRY
    _run_some(platform)
    counter = platform.telemetry.metrics.get("repro_manager_leases_total")
    assert counter is not None and counter.value >= 1


def test_telemetry_accepts_collector_and_instance():
    collector = TelemetryCollector()
    with collector:
        platform = Platform.build(telemetry=collector)
        assert platform.telemetry in collector.scopes
        assert platform.telemetry is not NULL_TELEMETRY

    scope = Telemetry()
    platform = Platform.build(telemetry=scope)
    assert platform.telemetry is scope

    with pytest.raises(TypeError):
        Platform.build(telemetry="yes please")


def test_empty_fault_plan_changes_nothing():
    plain = _run_some(_ready_platform(seed=5))
    with_empty_plan = _run_some(_ready_platform(seed=5, faults=FaultPlan()))
    assert [r.timings.total for r in plain] == \
        [r.timings.total for r in with_empty_plan]
    assert _ready_platform(faults=FaultPlan()).injector is None


def test_nonempty_fault_plan_starts_an_injector():
    plan = FaultPlan().lease_storm(at_s=1.0)
    platform = _ready_platform(faults=plan)
    assert platform.injector is not None
    assert platform.injector.started
    assert platform.injector.plan is plan


def test_same_seed_same_run():
    def totals(seed):
        # The default UGNI provider, jitter and all.
        platform = Platform.build(ClusterSpec(nodes=3), seed=seed)
        platform.register_node("n0001", cores=4, memory_bytes=8 * GiB)
        image = Image("fn-image", size_bytes=50 * MiB)
        platform.functions.register(
            "noop", image, runtime_s=0.01,
            demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
            output_bytes=1,
        )
        return [r.timings.total for r in _run_some(platform)]

    assert totals(2) == totals(2)
    # The default UGNI provider has latency jitter, so a different seed
    # observably reshuffles the network samples.
    assert totals(2) != totals(3)
