"""Trace-context propagation: every request forms one causal tree.

Covers the causal-tracing tentpole: a :class:`TraceContext` minted at
the front door (CapacityPlane admission, or a bare client) is threaded
through admission instants, retry attempts, executor dispatch, and the
cloud-burst detour, so every span of one request shares one
``trace_id`` — including retries that resume on different hardware
after a node crash.
"""

import pytest

from repro.api import ClusterSpec, Platform
from repro.containers import Image
from repro.faults import FaultPlan
from repro.interference import ResourceDemand
from repro.telemetry import (
    SpanKind,
    TraceContext,
    Tracer,
    critical_path,
    trace_index,
    trace_root,
)

MiB = 1024**2
GiB = 1024**3


# -- TraceContext unit behaviour ---------------------------------------------

def test_mint_draws_fresh_counter_ids():
    a = TraceContext.mint()
    b = TraceContext.mint()
    assert b.trace_id == a.trace_id + 1
    assert a.span_id is None


def test_child_keeps_trace_reanchors_span():
    ctx = TraceContext(7, span_id=5)
    child = ctx.child(9)
    assert child.trace_id == 7 and child.span_id == 9
    assert ctx.span_id == 5          # parent context untouched


def test_context_is_immutable_and_hashable():
    ctx = TraceContext(1, 2)
    with pytest.raises(AttributeError):
        ctx.trace_id = 3
    assert ctx == TraceContext(1, 2)
    assert hash(ctx) == hash(TraceContext(1, 2))
    assert ctx != TraceContext(1, 3)


# -- Tracer ctx plumbing ------------------------------------------------------

def test_ctx_parents_span_when_stack_is_empty():
    tracer = Tracer(clock=lambda: 0.0)
    ctx = TraceContext(42, span_id=7)
    with tracer.span("hop", ctx=ctx) as outer:
        with tracer.span("nested") as inner:
            pass
    assert outer.parent_id == 7
    assert outer.attrs["trace_id"] == 42
    # Nested spans inherit trace_id from the local parent, no ctx needed.
    assert inner.parent_id == outer.span_id
    assert inner.attrs["trace_id"] == 42


def test_local_parent_wins_over_ctx():
    tracer = Tracer(clock=lambda: 0.0)
    foreign = TraceContext(99, span_id=1)
    with tracer.span("outer", ctx=TraceContext(42, None)) as outer:
        with tracer.span("inner", ctx=foreign) as inner:
            pass
    assert inner.parent_id == outer.span_id      # not foreign.span_id
    assert inner.attrs["trace_id"] == 42


def test_begin_finish_and_instant_accept_ctx():
    ticks = iter([1.0, 2.0, 3.0])
    tracer = Tracer(clock=lambda: next(ticks))
    ctx = TraceContext(5, span_id=3)
    root = tracer.begin("job", ctx=ctx)
    marker = tracer.instant("evt", ctx=ctx.child(root.span_id))
    tracer.finish(root)
    assert root.parent_id == 3 and root.attrs["trace_id"] == 5
    assert marker.parent_id == root.span_id and marker.attrs["trace_id"] == 5


# -- end-to-end through the platform -----------------------------------------

def build(executors=("n0001", "n0002"), cores=2, capacity=True, faults=None,
          seed=0):
    platform = Platform.build(
        ClusterSpec(nodes=3, jitter=0.0), seed=seed,
        capacity=capacity, faults=faults, telemetry=True,
    )
    for node in executors:
        platform.register_node(node, cores=cores, memory_bytes=8 * GiB)
    platform.functions.register(
        "fn", Image("img", size_bytes=100 * MiB, runtime_memory_bytes=256 * MiB),
        runtime_s=0.05,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    return platform


def govern(platform, count, tenants=2, until=30.0):
    plane = platform.capacity
    clients = [platform.client("n0000", name=f"t{i}") for i in range(tenants)]
    results = []

    def one(client):
        result = yield plane.invoke(client, "fn", tenant=client.name)
        results.append(result)

    def source():
        for i in range(count):
            platform.process(one(clients[i % tenants]))
            yield platform.env.timeout(0.05)

    platform.process(source())
    platform.run_until(until)
    plane.stop()
    platform.run()
    for client in clients:
        client.close()
    return results


def test_governed_request_forms_one_tree_per_invocation():
    platform = build()
    results = govern(platform, count=6)
    assert all(r.ok for r in results)
    traces = trace_index(platform.telemetry.spans)
    roots = {
        tid: trace_root(members) for tid, members in traces.items()
        if trace_root(members).name == SpanKind.CAPACITY
    }
    assert len(roots) == 6           # one trace per governed invocation
    for tid, members in traces.items():
        if tid not in roots:
            continue
        names = {s.name for s in members}
        # The whole journey is in one tree: admission, client request,
        # the attempt, and the executor-side invocation.
        assert {"capacity.admit", SpanKind.REQUEST, SpanKind.ATTEMPT,
                SpanKind.INVOCATION} <= names
        assert all(s.attrs["trace_id"] == tid for s in members)
        # Exactly one root; everything else links inside the trace.
        ids = {s.span_id for s in members}
        orphans = [s for s in members
                   if s.parent_id is not None and s.parent_id not in ids]
        assert not orphans


def test_trace_survives_node_crash_and_spans_the_retry():
    """Acceptance: admission -> crash -> retry -> completion, one trace_id."""
    plan = (FaultPlan(name="storm")
            .node_crash(at_s=0.3, node="n0001", duration_s=0.5, immediate=True)
            .node_crash(at_s=0.6, node="n0002", duration_s=0.5, immediate=True))
    platform = build(faults=plan)
    results = govern(platform, count=40, until=10.0)
    assert len(results) == 40
    traces = trace_index(platform.telemetry.spans)

    retried = []
    for tid, members in traces.items():
        root = trace_root(members)
        if root is None or root.name != SpanKind.CAPACITY:
            continue
        attempts = sorted((s for s in members if s.name == SpanKind.ATTEMPT),
                          key=lambda s: s.start)
        if len(attempts) >= 2 and attempts[-1].attrs.get("outcome") == "ok":
            retried.append((tid, members, attempts))
    assert retried, "the storm should force at least one traced retry"

    tid, members, attempts = retried[0]
    # Every attempt is a *sibling* under the same rfaas.request span.
    request = next(s for s in members if s.name == SpanKind.REQUEST)
    assert {a.parent_id for a in attempts} == {request.span_id}
    # The whole journey carries one trace id, crash notwithstanding.
    assert all(s.attrs["trace_id"] == tid for s in members)
    # And the critical path walks the tree root-to-leaf deterministically.
    path = critical_path(members)
    assert path[0]["name"] == SpanKind.CAPACITY
    assert any(step["name"] == SpanKind.ATTEMPT for step in path)
    assert sum(step["self_s"] for step in path) == pytest.approx(
        path[0]["duration_s"])


def test_cloud_burst_detour_joins_the_trace():
    platform = build(executors=("n0001",), cores=1)
    govern(platform, count=30, tenants=6)
    spans = list(platform.telemetry.spans)
    bursts = [s for s in spans if s.name == "capacity.burst"]
    assert bursts, "the overloaded pool should force cloud bursts"
    roots = {s.span_id: s for s in spans if s.name == SpanKind.CAPACITY}
    for burst in bursts:
        assert burst.parent_id in roots
        assert burst.attrs["trace_id"] == roots[burst.parent_id].attrs["trace_id"]


def test_bare_client_mints_its_own_trace():
    platform = build(capacity=None)
    client = platform.client("n0000", name="solo")
    done = []

    def flow():
        result = yield client.invoke("fn")
        done.append(result)

    platform.process(flow())
    platform.run_until(5.0)
    client.close()
    assert done and done[0].status.value == "ok"
    spans = list(platform.telemetry.spans)
    request = next(s for s in spans if s.name == SpanKind.REQUEST)
    assert request.parent_id is None          # ungoverned: client is the root
    tid = request.attrs["trace_id"]
    attempt = next(s for s in spans if s.name == SpanKind.ATTEMPT)
    invocation = next(s for s in spans if s.name == SpanKind.INVOCATION)
    assert attempt.parent_id == request.span_id
    assert invocation.parent_id == attempt.span_id
    assert attempt.attrs["trace_id"] == invocation.attrs["trace_id"] == tid
