"""Causal-tree analysis: trace grouping, roots, and the critical path."""

import pytest

from repro.telemetry import (
    Span,
    critical_path,
    critical_path_table,
    trace_index,
    trace_root,
    trace_summaries,
)


def make_span(name, start, end, trace_id=None, parent_id=None, track="main",
              **attrs):
    if trace_id is not None:
        attrs["trace_id"] = trace_id
    span = Span(name, start, track=track, parent_id=parent_id, attrs=attrs)
    span.end = end
    return span


def sample_trace():
    """root [0..10] -> fast child [1..3], slow child [2..9] -> leaf [3..8]."""
    root = make_span("capacity.invocation", 0.0, 10.0, trace_id=1)
    fast = make_span("capacity.admit", 1.0, 3.0, trace_id=1,
                     parent_id=root.span_id)
    slow = make_span("rfaas.request", 2.0, 9.0, trace_id=1,
                     parent_id=root.span_id)
    leaf = make_span("rfaas.attempt", 3.0, 8.0, trace_id=1,
                     parent_id=slow.span_id)
    return [root, fast, slow, leaf]


def test_trace_index_groups_closed_spans_by_trace():
    spans = sample_trace()
    spans.append(make_span("other", 0.0, 1.0, trace_id=2))
    open_span = Span("open", 0.0, attrs={"trace_id": 1})   # never closed
    untraced = make_span("untraced", 0.0, 1.0)             # no trace_id
    spans.extend([open_span, untraced])
    traces = trace_index(spans)
    assert set(traces) == {1, 2}
    assert len(traces[1]) == 4 and len(traces[2]) == 1


def test_trace_root_prefers_earliest_unparented_span():
    spans = sample_trace()
    assert trace_root(spans).name == "capacity.invocation"
    # A span whose parent is *outside* the trace also counts as a root.
    orphan = [make_span("half", 5.0, 6.0, trace_id=3, parent_id=999_999)]
    assert trace_root(orphan).name == "half"
    assert trace_root([]) is None


def test_trace_summaries_report_extent():
    rows = trace_summaries(sample_trace())
    (row,) = rows
    assert row["trace_id"] == 1
    assert row["root"] == "capacity.invocation"
    assert row["spans"] == 4
    assert row["duration_s"] == 10.0


def test_critical_path_follows_last_finishing_child():
    path = critical_path(sample_trace())
    assert [step["name"] for step in path] == [
        "capacity.invocation", "rfaas.request", "rfaas.attempt"]
    assert [step["depth"] for step in path] == [0, 1, 2]
    # self time = own duration minus the chosen child's duration.
    assert path[0]["self_s"] == pytest.approx(10.0 - 7.0)
    assert path[1]["self_s"] == pytest.approx(7.0 - 5.0)
    assert path[2]["self_s"] == pytest.approx(5.0)
    # The path accounts for the root's entire duration.
    assert sum(step["self_s"] for step in path) == pytest.approx(10.0)


def test_critical_path_guards_against_id_cycles():
    root = make_span("root", 0.0, 3.0, trace_id=1)
    a = make_span("a", 0.0, 2.0, trace_id=1, parent_id=root.span_id)
    back = make_span("back", 0.0, 1.0, trace_id=1, parent_id=a.span_id)
    back.span_id = root.span_id   # corrupt merge: id collision forms a cycle
    path = critical_path([root, a, back])
    assert [s["name"] for s in path] == ["root", "a"]   # the walk terminates


def test_critical_path_table_renders():
    text = critical_path_table(sample_trace(), trace_id=1)
    assert "critical path of trace 1" in text
    assert "capacity.invocation" in text
    assert "rfaas.attempt" in text
    assert critical_path_table([]) == "no spans with a trace_id"
