"""Tracer unit tests: nesting, interleaved processes, null overhead."""

import pytest

from repro.sim import Environment
from repro.telemetry import NULL_TELEMETRY, Telemetry, Tracer, install, telemetry_of
from repro.telemetry.tracer import NULL_TRACER


def test_nested_spans_link_parents():
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    # Children close (and are recorded) before parents.
    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert outer.start == 0.0 and outer.end == 3.0
    assert inner.start == 1.0 and inner.end == 2.0


def test_sibling_spans_share_parent():
    tracer = Tracer(clock=lambda: 0.0)
    with tracer.span("parent") as parent:
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
    assert a.parent_id == parent.span_id
    assert b.parent_id == parent.span_id


def test_exception_marks_span_and_propagates():
    tracer = Tracer(clock=lambda: 0.0)
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.attrs["error"] == "ValueError"
    assert span.end is not None


def test_interleaved_processes_keep_separate_stacks():
    """Two sim processes inside spans at once must not cross-link."""
    env = Environment()
    telemetry = Telemetry(env=env)
    tracer = telemetry.tracer

    def worker(name, delay):
        with tracer.span(f"{name}.outer"):
            yield env.timeout(delay)
            with tracer.span(f"{name}.inner"):
                yield env.timeout(delay)

    env.process(worker("a", 1.0))
    env.process(worker("b", 1.5))  # resumes interleave with a's spans
    env.run()

    by_name = {s.name: s for s in tracer.spans}
    assert by_name["a.inner"].parent_id == by_name["a.outer"].span_id
    assert by_name["b.inner"].parent_id == by_name["b.outer"].span_id
    assert by_name["b.inner"].parent_id != by_name["a.outer"].span_id


def test_instant_spans_are_zero_duration():
    tracer = Tracer(clock=lambda: 42.0)
    span = tracer.instant("evt", track="t", key="v")
    assert span.is_instant
    assert span.start == span.end == 42.0
    assert span.attrs == {"key": "v"}


def test_begin_finish_explicit_lifetime():
    ticks = iter([1.0, 5.0])
    tracer = Tracer(clock=lambda: next(ticks))
    span = tracer.begin("job", track="jobs", job_id=7)
    assert tracer.spans == []  # not recorded until finished
    tracer.finish(span, state="completed")
    assert tracer.spans == [span]
    assert span.duration == 4.0
    assert span.attrs == {"job_id": 7, "state": "completed"}
    with pytest.raises(ValueError):
        tracer.finish(span)


def test_null_tracer_is_inert():
    with NULL_TRACER.span("anything") as span:
        span.set(ignored=True)
    assert NULL_TRACER.spans == ()
    assert NULL_TRACER.instant("x").is_instant
    NULL_TRACER.finish(NULL_TRACER.begin("y"))


def test_telemetry_of_defaults_to_null():
    env = Environment()
    assert telemetry_of(env) is NULL_TELEMETRY
    assert telemetry_of(None) is NULL_TELEMETRY


def test_install_pins_telemetry_to_env():
    env = Environment()
    telemetry = Telemetry(env=env)
    install(env, telemetry)
    assert telemetry_of(env) is telemetry
    other = Environment()
    assert telemetry_of(other) is NULL_TELEMETRY
