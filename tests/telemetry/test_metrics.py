"""Metrics registry unit tests: instruments, naming, labels, scopes."""

import math

import pytest

from repro.sim import Environment
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    validate_metric_name,
)
from repro.telemetry.metrics import default_buckets


def make_registry(env=None):
    env = env or Environment()
    return env, MetricsRegistry(clock=lambda: env.now)


def test_counter_monotone():
    _, registry = make_registry()
    counter = registry.counter("repro_test_things_total")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_get_or_create_shares_instrument():
    _, registry = make_registry()
    a = registry.counter("repro_test_things_total")
    b = registry.counter("repro_test_things_total")
    assert a is b
    c = registry.counter("repro_test_things_total", labels={"node": "n1"})
    assert c is not a
    assert len(registry) == 2


def test_kind_conflict_rejected():
    _, registry = make_registry()
    registry.counter("repro_test_things_total")
    with pytest.raises(ValueError):
        registry.gauge("repro_test_things_total")


def test_gauge_time_weighted_mean_uses_sim_clock():
    env, registry = make_registry()
    gauge = registry.gauge("repro_test_level_count")
    gauge.set(0)

    def driver():
        yield env.timeout(10)
        gauge.set(10)
        yield env.timeout(10)

    env.process(driver())
    env.run()
    # 0 for 10 s, then 10 for 10 s -> time-weighted mean 5.
    assert gauge.value == 10
    assert gauge.time_weighted_mean() == pytest.approx(5.0)


def test_histogram_exact_quantiles_and_buckets():
    hist = Histogram("repro_test_latency_seconds", buckets=[1e-6, 1e-3, 1.0])
    for v in [5e-7, 5e-4, 0.5, 2.0]:
        hist.observe(v)
    assert hist.count == 4
    assert hist.sum == pytest.approx(5e-7 + 5e-4 + 0.5 + 2.0)
    assert hist.quantile(0.0) == 5e-7
    assert hist.quantile(1.0) == 2.0
    assert hist.mean() == pytest.approx(hist.sum / 4)
    cumulative = hist.cumulative_buckets()
    assert cumulative == [(1e-6, 1), (1e-3, 2), (1.0, 3), (math.inf, 4)]
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_default_buckets_log_spaced():
    buckets = default_buckets(1e-6, 1e3, per_decade=1)
    assert len(buckets) == 10
    for lo, hi in zip(buckets[:-1], buckets[1:]):
        assert hi / lo == pytest.approx(10.0)


def test_naming_convention_enforced():
    _, registry = make_registry()
    for bad in [
        "executor_invocations_total",     # missing repro_ prefix
        "repro_executor_total",           # missing name segment
        "repro_executor_invocations",     # missing unit
        "repro_Executor_invocations_total",  # uppercase
        "repro_executor_latency_ms",      # unit not in the closed set
    ]:
        with pytest.raises(ValueError):
            validate_metric_name(bad)
        with pytest.raises(ValueError):
            registry.counter(bad)
    assert validate_metric_name("repro_executor_invocations_total")
    assert validate_metric_name("repro_warmpool_resident_bytes")
    assert validate_metric_name("repro_scheduler_queue_wait_seconds")


def test_null_registry_still_validates_names():
    with pytest.raises(ValueError):
        NULL_REGISTRY.counter("bogus")
    instrument = NULL_REGISTRY.counter("repro_test_things_total")
    instrument.inc()
    instrument.observe(1.0)
    instrument.set(2.0)
    assert instrument.value == 0.0
    assert len(NULL_REGISTRY) == 0
