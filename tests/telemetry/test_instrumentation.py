"""Telemetry wired through the real invocation path, without perturbing it.

Covers the acceptance criteria of the telemetry PR: fig07 traces carry
nested spans for the hot, warm, and cold invocation paths; traced and
untraced runs of the same seed produce identical simulated event
timelines; and the warm pool / manager / scheduler instrumentation
reports what the subsystem statistics already report.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import Image
from repro.containers.runtime import SARUS
from repro.containers.warmpool import WarmPool
from repro.experiments import fig07_latency
from repro.interference import ResourceDemand
from repro.network import IBVERBS, DrcManager, NetworkFabric
from repro.rfaas import (
    FunctionRegistry,
    NodeLoadRegistry,
    ResourceManager,
    RFaaSClient,
)
from repro.sim import Environment
from repro.slurm.job import JobSpec
from repro.slurm.scheduler import BatchScheduler
from repro.telemetry import Telemetry, TelemetryCollector, install

MiB = 1024**2
GiB = 1024**3


def build_platform(env, seed=0):
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", 2, DAINT_MC)
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, IBVERBS, rng=np.random.default_rng(seed), drc=drc)
    loads = NodeLoadRegistry(cluster)
    manager = ResourceManager(env, cluster, loads=loads, drc=drc,
                              rng=np.random.default_rng(seed))
    manager.register_node("n0001", cores=2, memory_bytes=8 * GiB)
    functions = FunctionRegistry()
    image = Image("fn", size_bytes=50 * MiB)
    functions.register(
        "fn", image, runtime_s=0.001,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    client = RFaaSClient(env, manager, fabric, functions, client_node="n0000")
    return manager, client


def run_invocations(env, client, count=4):
    statuses = []

    def driver():
        for _ in range(count):
            result = yield client.invoke("fn", payload_bytes=64)
            statuses.append(result.status)

    env.process(driver())
    env.run()
    return statuses


def test_invocation_spans_nest_under_invocation():
    env = Environment()
    telemetry = Telemetry(env=env).install(env)
    _, client = build_platform(env)
    run_invocations(env, client, count=3)

    spans = telemetry.spans
    invocations = [s for s in spans if s.name == "rfaas.invocation"]
    assert len(invocations) == 3
    inv_ids = {s.span_id for s in invocations}
    for child_name in ("rfaas.dispatch", "rfaas.sandbox", "rfaas.execution"):
        children = [s for s in spans if s.name == child_name]
        assert len(children) == 3
        assert all(c.parent_id in inv_ids for c in children)
    # First invocation cold-starts, later ones reuse the attached container.
    kinds = [s.attrs["kind"] for s in spans if s.name == "rfaas.sandbox"]
    assert kinds[0] == "cold"
    assert set(kinds[1:]) == {"attached"}
    # Span timestamps are simulated seconds and properly ordered.
    for span in invocations:
        assert span.end >= span.start >= 0.0


def test_executor_metrics_match_executor_statistics():
    env = Environment()
    telemetry = Telemetry(env=env).install(env)
    manager, client = build_platform(env)
    run_invocations(env, client, count=5)

    executor = manager.node_info("n0001").executor
    metrics = telemetry.metrics
    labels = {"node": "n0001", "mode": "hot"}
    assert metrics.get("repro_executor_invocations_total", labels).value == executor.completed == 5
    dispatch = metrics.get("repro_executor_dispatch_seconds", labels)
    assert dispatch.count == 5
    assert dispatch.quantile(0.5) == pytest.approx(0.3e-6)


def test_manager_metrics_track_lease_lifecycle():
    env = Environment()
    telemetry = Telemetry(env=env).install(env)
    manager, client = build_platform(env)
    run_invocations(env, client, count=2)
    client.close()

    metrics = telemetry.metrics
    assert metrics.get("repro_manager_leases_total").value == 1
    assert metrics.get("repro_manager_registered_nodes_count").value == 1
    # All cores free again after the client released its lease.
    assert metrics.get("repro_manager_free_cores_count").value == 2
    names = {s.name for s in telemetry.spans}
    assert {"manager.register_node", "manager.lease", "manager.release_lease"} <= names


def test_warmpool_metrics_match_pool_statistics():
    env = Environment()
    telemetry = Telemetry(env=env).install(env)
    cluster = Cluster()
    cluster.add_nodes("m", 1, DAINT_MC)
    pool = WarmPool(env, cluster.node("m0000"), SARUS)
    image = Image("img", size_bytes=50 * MiB)

    first = pool.acquire(image)          # cold
    pool.release(first.container)
    second = pool.acquire(image)         # warm hit
    pool.release(second.container)
    pool.reclaim(1, swap=True)           # evict to PFS
    third = pool.acquire(image)          # swap-in

    metrics = telemetry.metrics
    labels = {"node": "m0000"}
    assert metrics.get("repro_warmpool_cold_starts_total", labels).value == pool.cold_starts == 1
    assert metrics.get("repro_warmpool_hits_total", labels).value == pool.hits == 1
    assert metrics.get("repro_warmpool_swapins_total", labels).value == pool.swap_ins == 1
    assert metrics.get("repro_warmpool_evictions_total", labels).value == pool.evictions == 1
    gauge = metrics.get("repro_warmpool_resident_bytes", labels)
    assert gauge.value == pool.resident_bytes()
    kinds = [s.attrs["kind"] for s in telemetry.spans if s.name == "warmpool.acquire"]
    assert kinds == ["cold", "warm", "swapped"]
    pool.discard(third.container)


def test_scheduler_queue_wait_and_free_node_gauge():
    env = Environment()
    telemetry = Telemetry(env=env).install(env)
    cluster = Cluster()
    cluster.add_nodes("s", 2, DAINT_MC)
    scheduler = BatchScheduler(env, cluster)

    spec = JobSpec(user="u", app="app", nodes=2, cores_per_node=4,
                   memory_per_node=GiB, walltime=100.0, runtime=50.0)
    scheduler.submit(spec)               # starts immediately, wait = 0
    scheduler.submit(spec)               # must wait for the first to finish
    env.run()

    metrics = telemetry.metrics
    wait = metrics.get("repro_scheduler_queue_wait_seconds")
    assert wait.count == 2
    assert wait.quantile(0.0) == 0.0
    assert wait.quantile(1.0) == pytest.approx(50.0)
    free_nodes = metrics.get("repro_scheduler_free_nodes_count")
    assert free_nodes.value == 2         # everything finished
    job_spans = [s for s in telemetry.spans if s.name == "slurm.job"]
    assert len(job_spans) == 2
    assert all(s.duration == pytest.approx(50.0) for s in job_spans)
    assert {s.attrs["state"] for s in job_spans} == {"completed"}


# Process-global counters (lease/client/invocation ids) differ between
# runs in one interpreter; they are identities, not timings.
_VOLATILE_KEYS = ("lease_id", "client", "invocation_id")


def event_timeline(env, client, manager, count):
    statuses = run_invocations(env, client, count)
    records = [
        (
            r.time,
            r.kind,
            tuple(sorted(
                (k, v) for k, v in r.payload.items() if k not in _VOLATILE_KEYS
            )),
        )
        for r in manager.log
    ]
    return records, statuses, env.now


def test_traced_and_untraced_runs_are_identical():
    """Telemetry must not perturb simulated time or seeded determinism."""
    env_plain = Environment()
    manager_plain, client_plain = build_platform(env_plain, seed=7)
    baseline = event_timeline(env_plain, client_plain, manager_plain, count=6)

    env_traced = Environment()
    install(env_traced, Telemetry(env=env_traced))
    manager_traced, client_traced = build_platform(env_traced, seed=7)
    traced = event_timeline(env_traced, client_traced, manager_traced, count=6)

    assert traced == baseline


def test_fig07_traced_equals_untraced():
    untraced = fig07_latency.run(sizes=(1, 1024), samples=10, seed=5)
    with TelemetryCollector():
        traced = fig07_latency.run(sizes=(1, 1024), samples=10, seed=5)
    assert traced == untraced


def test_fig07_trace_covers_hot_warm_and_cold_paths():
    collector = TelemetryCollector()
    with collector:
        fig07_latency.run(sizes=(1,), samples=3, seed=0)
    invocations = [s for s in collector.spans if s.name == "rfaas.invocation"]
    modes = {s.attrs["mode"] for s in invocations}
    assert modes == {"hot", "warm"}
    sandbox_kinds = {s.attrs["kind"] for s in collector.spans if s.name == "rfaas.sandbox"}
    assert "cold" in sandbox_kinds
    inv_ids = {s.span_id for s in invocations}
    nested = [s for s in collector.spans if s.parent_id in inv_ids]
    assert nested  # children attach to invocation spans
