"""The metric-name lint: src/repro cannot drift from the convention.

Wired through the unified ``tools.checks`` entry point so the suite runs
the exact code path CI and humans run (``python -m tools.checks``).
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import check_metric_names, checks  # noqa: E402


def test_every_registered_metric_name_is_conventional():
    assert checks.run("metric-names") == []


def test_lint_actually_scans_the_instrumented_subsystems():
    found = check_metric_names.find_metric_names()
    files = {path for path, _, _ in found}
    names = {name for _, _, name in found}
    # The tentpole instrumentation points must all be visible to the lint.
    assert any("rfaas/executor.py" in f for f in files)
    assert any("rfaas/manager.py" in f for f in files)
    assert any("containers/warmpool.py" in f for f in files)
    assert any("slurm/scheduler.py" in f for f in files)
    assert "repro_executor_dispatch_seconds" in names
    assert "repro_warmpool_resident_bytes" in names
    assert "repro_scheduler_queue_wait_seconds" in names


def test_lint_catches_a_bad_name(tmp_path):
    bad = tmp_path / "module.py"
    bad.write_text("metrics.counter('badly_named')\n")
    problems = check_metric_names.violations(root=tmp_path)
    assert len(problems) == 1
    assert "badly_named" in problems[0]
