"""Exporter tests: JSONL round-trip, Chrome trace_event, Prometheus text."""

import json

from repro.telemetry import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace_events,
    load_spans,
    prometheus_text,
    write_chrome_trace,
    write_spans_jsonl,
)


def sample_spans():
    ticks = iter([float(t) for t in range(10)])
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("outer", track="n1/exec", function="f"):
        with tracer.span("inner", track="n1/exec"):
            pass
    tracer.instant("evt", track="n2/pool", kind="cold")
    return tracer.spans


def test_jsonl_round_trip(tmp_path):
    spans = sample_spans()
    path = str(tmp_path / "spans.jsonl")
    assert write_spans_jsonl(spans, path) == 3
    loaded = load_spans(path)
    assert len(loaded) == 3
    for original, restored in zip(spans, loaded):
        assert restored.name == original.name
        assert restored.track == original.track
        assert restored.start == original.start
        assert restored.end == original.end
        assert restored.attrs == original.attrs
        assert restored.parent_id == original.parent_id


def test_chrome_trace_structure(tmp_path):
    spans = sample_spans()
    events = chrome_trace_events(spans)
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(slices) == 2 and len(instants) == 1
    # One thread_name per track, one process_name per node.
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert thread_names == {"n1/exec", "n2/pool"}
    # Timestamps are in microseconds relative to the earliest span.
    outer = next(e for e in slices if e["name"] == "outer")
    inner = next(e for e in slices if e["name"] == "inner")
    assert outer["ts"] == 0.0
    assert inner["ts"] == 1e6 and inner["dur"] == 1e6
    outer_span = next(s for s in spans if s.name == "outer")
    assert inner["args"]["parent_id"] == outer_span.span_id
    # The file is valid JSON with a traceEvents array.
    path = str(tmp_path / "trace.json")
    write_chrome_trace(spans, path)
    payload = json.load(open(path))
    assert isinstance(payload["traceEvents"], list)


def test_load_spans_reads_chrome_format_back(tmp_path):
    spans = sample_spans()
    path = str(tmp_path / "trace.json")
    write_chrome_trace(spans, path)
    loaded = load_spans(path)
    assert {s.name for s in loaded} == {"outer", "inner", "evt"}
    inner = next(s for s in loaded if s.name == "inner")
    assert inner.duration == 1.0


def test_open_spans_are_skipped_by_chrome_export():
    span = Span("open", 1.0)
    assert chrome_trace_events([span]) == []


def test_prometheus_text_format():
    registry = MetricsRegistry(clock=lambda: 1.0, scope="sim0")
    registry.counter("repro_test_things_total", help="things").inc(3)
    registry.gauge("repro_test_level_count").set(7)
    hist = registry.histogram("repro_test_wait_seconds", buckets=[1.0, 10.0])
    hist.observe(0.5)
    hist.observe(5.0)
    text = prometheus_text(registry)
    assert "# TYPE repro_test_things_total counter" in text
    assert '# HELP repro_test_things_total things' in text
    assert 'repro_test_things_total{scope="sim0"} 3' in text
    assert 'repro_test_level_count{scope="sim0"} 7' in text
    assert 'repro_test_wait_seconds_bucket{le="1",scope="sim0"} 1' in text
    assert 'repro_test_wait_seconds_bucket{le="+Inf",scope="sim0"} 2' in text
    assert 'repro_test_wait_seconds_count{scope="sim0"} 2' in text
    assert text.endswith("\n")


def test_prometheus_merges_scopes_without_duplicate_headers():
    a = MetricsRegistry(clock=lambda: 0.0, scope="sim0")
    b = MetricsRegistry(clock=lambda: 0.0, scope="sim1")
    a.counter("repro_test_things_total").inc()
    b.counter("repro_test_things_total").inc(2)
    text = prometheus_text([a, b])
    assert text.count("# TYPE repro_test_things_total counter") == 1
    assert 'repro_test_things_total{scope="sim0"} 1' in text
    assert 'repro_test_things_total{scope="sim1"} 2' in text


# -- format sniffing ----------------------------------------------------------

def test_load_spans_single_line_jsonl_is_not_misread_as_chrome(tmp_path):
    """One span -> one JSON object: the old try-Chrome-first sniffing
    parsed it as an (empty) event list and silently dropped the span."""
    span = Span("solo", 1.0, attrs={"k": "v"})
    span.end = 2.0
    path = str(tmp_path / "one.jsonl")
    write_spans_jsonl([span], path)
    (loaded,) = load_spans(path)
    assert loaded.name == "solo"
    assert loaded.span_id == span.span_id
    assert loaded.attrs == {"k": "v"}


def test_load_spans_jsonl_with_traceevents_attr_stays_jsonl(tmp_path):
    """A JSONL span whose *attrs* mention traceEvents must not be routed
    through the Chrome parser."""
    span = Span("tricky", 0.0, attrs={"traceEvents": "red-herring"})
    span.end = 1.0
    path = str(tmp_path / "tricky.jsonl")
    write_spans_jsonl([span], path)
    (loaded,) = load_spans(path)
    assert loaded.name == "tricky"


def test_load_spans_reads_bare_chrome_event_list(tmp_path):
    path = str(tmp_path / "events.json")
    events = chrome_trace_events(sample_spans())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh)
    loaded = load_spans(path)
    assert {s.name for s in loaded} == {"outer", "inner", "evt"}


def test_load_spans_empty_and_blank_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    blank = tmp_path / "blank.jsonl"
    blank.write_text("\n\n  \n")
    assert load_spans(str(empty)) == []
    assert load_spans(str(blank)) == []


def test_load_spans_round_trips_identity(tmp_path):
    """span_id/parent_id survive both formats, so causal analysis works
    on loaded dumps, not just live collectors."""
    spans = sample_spans()
    jsonl = str(tmp_path / "s.jsonl")
    chrome = str(tmp_path / "s.json")
    write_spans_jsonl(spans, jsonl)
    write_chrome_trace(spans, chrome)
    for path in (jsonl, chrome):
        by_name = {s.name: s for s in load_spans(path)}
        original = {s.name: s for s in spans}
        assert by_name["inner"].span_id == original["inner"].span_id
        assert by_name["inner"].parent_id == original["outer"].span_id


# -- label-value escaping -----------------------------------------------------

def test_prometheus_escapes_hostile_label_values():
    registry = MetricsRegistry(clock=lambda: 0.0, scope="sim0")
    registry.counter(
        "repro_test_things_total",
        labels={"tenant": 'evil"} 1\nfake_metric 2\\'},
    ).inc()
    text = prometheus_text(registry)
    # The hostile value stays inside one quoted label: backslash first,
    # then quotes, then newlines, per the exposition-format spec.
    assert '\\"} 1\\nfake_metric 2\\\\' in text
    assert "\nfake_metric" not in text          # no injected sample line
    (sample,) = [line for line in text.splitlines()
                 if not line.startswith("#")]
    assert sample.endswith(" 1")


def test_prometheus_escaping_is_spec_exact():
    from repro.telemetry.exporters import _escape_label_value

    assert _escape_label_value('a"b') == 'a\\"b'
    assert _escape_label_value("a\\b") == "a\\\\b"
    assert _escape_label_value("a\nb") == "a\\nb"
    # Backslash is escaped first so escapes are not double-mangled.
    assert _escape_label_value('\\"') == '\\\\\\"'
    assert _escape_label_value("plain") == "plain"
