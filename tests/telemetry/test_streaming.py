"""Streaming pipeline tests: P² accuracy, bounded memory, RED, SLO burn.

The bounded-memory assertions are the PR's acceptance criterion: the
pipeline must retain at most ``ring_capacity`` spans no matter how long
the stream runs — 100k spans in, ring-sized tail out.
"""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (
    FlightRecorder,
    JsonlStreamWriter,
    MetricsRegistry,
    P2Quantile,
    RedAggregator,
    SloConfig,
    SloMonitor,
    Span,
    SpanKind,
    SpanPipeline,
    StreamConfig,
    StreamStats,
)


# -- P² quantile estimator ----------------------------------------------------

def test_p2_exact_below_five_observations():
    est = P2Quantile(0.5)
    assert math.isnan(est.value)
    for x in (5.0, 1.0, 3.0):
        est.observe(x)
    assert est.value == 3.0          # exact nearest-rank median of {1,3,5}


def test_p2_rejects_degenerate_quantiles():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


@pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
def test_p2_tracks_numpy_on_lognormal_stream(p):
    rng = np.random.default_rng(42)
    samples = rng.lognormal(mean=0.0, sigma=0.5, size=50_000)
    est = P2Quantile(p)
    for x in samples:
        est.observe(float(x))
    exact = float(np.percentile(samples, p * 100))
    assert est.value == pytest.approx(exact, rel=0.02)


def test_p2_tracks_numpy_on_uniform_stream():
    rng = np.random.default_rng(7)
    samples = rng.uniform(0.0, 100.0, size=20_000)
    est = P2Quantile(0.9)
    for x in samples:
        est.observe(float(x))
    assert est.value == pytest.approx(90.0, rel=0.05)


def test_p2_memory_is_five_markers():
    est = P2Quantile(0.99)
    for i in range(10_000):
        est.observe(float(i))
    # Constant state regardless of stream length: five heights/positions.
    assert len(est._q) == 5 and len(est._pos) == 5
    assert est.count == 10_000


def test_stream_stats_snapshot_keys():
    stats = StreamStats()
    for x in (1.0, 2.0, 3.0, 4.0):
        stats.observe(x)
    snap = stats.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10.0
    assert snap["mean"] == 2.5
    assert snap["min"] == 1.0 and snap["max"] == 4.0
    assert {"p50", "p95", "p99"} <= set(snap)


# -- sinks --------------------------------------------------------------------

def make_span(name, start, duration=0.01, parent_id=None, **attrs):
    span = Span(name, start, parent_id=parent_id, attrs=attrs)
    span.end = start + duration
    return span


def test_jsonl_writer_streams_and_flushes(tmp_path):
    path = tmp_path / "stream.jsonl"
    writer = JsonlStreamWriter(path, flush_every=2)
    writer.append(make_span("a", 0.0))
    writer.append(make_span("b", 1.0))       # hits the flush threshold
    assert len(path.read_text().strip().splitlines()) == 2
    writer.close()
    writer.append(make_span("c", 2.0))       # ignored after close
    assert writer.written == 2
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in records] == ["a", "b"]


def test_flight_recorder_ring_and_snapshots():
    recorder = FlightRecorder(capacity=4, trigger_prefixes=("fault.",),
                              snapshot_limit=2)
    for i in range(10):
        recorder.append(make_span(f"s{i}", float(i)))
    assert len(recorder) == 4                # ring holds only the tail
    assert [s.name for s in recorder] == ["s6", "s7", "s8", "s9"]
    recorder.append(make_span("fault.node_crash", 10.0, node="n0001"))
    assert recorder.triggers == 1
    (snap,) = recorder.snapshots
    assert snap["trigger"] == "fault.node_crash"
    # The snapshot preserved the spans leading up to the incident.
    assert [s.name for s in snap["spans"]][-1] == "fault.node_crash"
    assert len(snap["spans"]) == 4


# -- RED rollup ---------------------------------------------------------------

def request_root(tenant, start, duration=0.01, route="hpc"):
    return make_span(SpanKind.CAPACITY, start, duration=duration,
                     tenant=tenant, route=route)


def test_red_counts_once_per_request():
    red = RedAggregator(MetricsRegistry(lambda: 0.0, scope="t"))
    red.observe(request_root("a", 0.0))
    red.observe(request_root("a", 1.0, route="rejected"))
    red.observe(request_root("b", 2.0))
    # Child spans of a governed request must not double-count.
    red.observe(make_span(SpanKind.REQUEST, 2.0, parent_id=123, tenant="b"))
    red.observe(make_span(SpanKind.INVOCATION, 2.0, tenant="b"))
    rows = {row["tenant"]: row for row in red.table()}
    assert rows["a"]["count"] == 2 and rows["a"]["errors"] == 1
    assert rows["b"]["count"] == 1 and rows["b"]["errors"] == 0


def test_red_counts_bare_client_requests():
    red = RedAggregator(MetricsRegistry(lambda: 0.0, scope="t"))
    red.observe(make_span(SpanKind.REQUEST, 0.0, client="solo", outcome="ok"))
    red.observe(make_span(SpanKind.REQUEST, 1.0, client="solo",
                          outcome="gave_up"))
    (row,) = red.table()
    assert row["tenant"] == "solo"
    assert row["count"] == 2 and row["errors"] == 1


# -- SLO burn-rate monitor ----------------------------------------------------

def test_slo_breach_fires_once_per_episode():
    config = SloConfig(latency_threshold_s=0.1, error_budget=0.1,
                       window_s=10.0, buckets=10, burn_threshold=1.0)
    monitor = SloMonitor(MetricsRegistry(lambda: 0.0, scope="t"), config)
    # Fast requests: no breach.
    for i in range(5):
        assert monitor.observe(request_root("a", i * 0.1)) is None
    # A burst of slow requests blows the 10% budget: one breach span...
    breaches = [monitor.observe(request_root("a", 1.0 + i * 0.1, duration=0.5))
                for i in range(5)]
    fired = [b for b in breaches if b is not None]
    assert len(fired) == 1
    assert fired[0].name == SpanKind.SLO_BREACH
    assert fired[0].attrs["tenant"] == "a"
    assert fired[0].attrs["burn_rate"] >= 1.0
    # ...and the episode does not re-fire while the burn persists.
    assert monitor.observe(request_root("a", 3.0, duration=0.5)) is None
    assert len(monitor.breaches) == 1


def test_slo_rearms_after_rate_recovers():
    config = SloConfig(latency_threshold_s=0.1, error_budget=0.5,
                       window_s=1.0, buckets=2, burn_threshold=1.0)
    monitor = SloMonitor(MetricsRegistry(lambda: 0.0, scope="t"), config)
    assert monitor.observe(request_root("a", 0.0, duration=0.5)) is not None
    # The window slides past the bad bucket; plenty of good requests.
    for i in range(20):
        monitor.observe(request_root("a", 2.0 + i * 0.1, duration=0.01))
    assert monitor.burn_rate("a") < 1.0
    # A fresh burn episode fires a second breach.
    fired = [monitor.observe(request_root("a", 10.0 + i * 0.1, duration=0.5))
             for i in range(6)]
    assert any(b is not None for b in fired)
    assert len(monitor.breaches) == 2


def test_slo_tenants_are_independent():
    config = SloConfig(latency_threshold_s=0.1, error_budget=0.1,
                       window_s=10.0, buckets=10)
    monitor = SloMonitor(MetricsRegistry(lambda: 0.0, scope="t"), config)
    for i in range(5):
        monitor.observe(request_root("slow", i * 0.1, duration=0.5))
        monitor.observe(request_root("fast", i * 0.1, duration=0.01))
    assert monitor.burn_rate("slow") > 1.0
    assert monitor.burn_rate("fast") == 0.0
    assert {b.attrs["tenant"] for b in monitor.breaches} == {"slow"}


def test_slo_config_validation():
    with pytest.raises(ValueError):
        SloConfig(latency_threshold_s=0.0)
    with pytest.raises(ValueError):
        SloConfig(error_budget=1.5)
    with pytest.raises(ValueError):
        SloConfig(buckets=0)
    with pytest.raises(ValueError):
        SloConfig(burn_threshold=0.0)


# -- the pipeline: bounded memory end to end ---------------------------------

def test_pipeline_memory_is_bounded_by_ring_capacity(tmp_path):
    """Acceptance: >= 100k spans in, peak retained <= ring size."""
    ring = 512
    path = tmp_path / "stream.jsonl"
    pipeline = SpanPipeline(StreamConfig(ring_capacity=ring, flush_every=64),
                            stream_path=path)
    total = 100_000
    for i in range(total):
        pipeline.append(request_root(f"t{i % 4}", i * 1e-3))
    pipeline.close()
    assert pipeline.seen == total
    assert pipeline.peak_retained <= ring
    assert len(pipeline) == ring             # iteration yields only the tail
    # Nothing was lost: the full stream is on disk.
    assert pipeline.writer.written == total
    assert sum(1 for _ in path.open()) == total
    # And the online rollups saw everything without retaining samples.
    assert sum(s.count for s in pipeline.red.tenants.values()) == total


def test_pipeline_breach_spans_join_the_stream(tmp_path):
    config = StreamConfig(
        ring_capacity=64,
        slo=SloConfig(latency_threshold_s=0.01, error_budget=0.01,
                      window_s=10.0, buckets=10),
    )
    path = tmp_path / "stream.jsonl"
    with SpanPipeline(config, stream_path=path) as pipeline:
        for i in range(10):
            pipeline.append(request_root("a", i * 0.1, duration=0.5))
    assert pipeline.slo.breaches
    names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
    assert SpanKind.SLO_BREACH in names


def test_pipeline_snapshots_on_fault_spans():
    pipeline = SpanPipeline(StreamConfig(ring_capacity=32))
    for i in range(100):
        pipeline.append(make_span("rfaas.invocation", float(i)))
    pipeline.append(make_span("fault.node_crash", 100.0))
    assert pipeline.recorder.triggers == 1
    assert len(pipeline.recorder.snapshots) == 1


def test_pipeline_duck_types_the_span_list(tmp_path):
    """Batch exporters must keep working on the in-memory tail."""
    from repro.telemetry import chrome_trace_events, write_spans_jsonl

    pipeline = SpanPipeline(StreamConfig(ring_capacity=16))
    for i in range(50):
        pipeline.append(make_span("rfaas.invocation", float(i)))
    assert len(pipeline) == 16
    events = chrome_trace_events(list(pipeline))
    assert [e for e in events if e["ph"] == "X"]
    out = tmp_path / "tail.jsonl"
    assert write_spans_jsonl(pipeline, str(out)) == 16


def test_stream_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(ring_capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        JsonlStreamWriter("unused", flush_every=0)
