"""Device loss: lease revocation, batch replay, causal traces, billing."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.faults import FaultPlan
from repro.gpu import GpuFunctionSpec
from repro.gpuservice import BatchPolicy, GpuServiceConfig
from repro.rfaas import GpuLeaseRevokedError, NoCapacityError
from repro.telemetry import TelemetryCollector

MiB = 1024**2


def spec(name="fn"):
    return GpuFunctionSpec(
        name=name, kernel_count=16, kernel_time_s=1e-3, occupancy=0.5,
        input_bytes=1_000_000, device_memory_bytes=256 * MiB,
    )


def build(plan=None, gpu_nodes=2, max_batch_size=4):
    config = GpuServiceConfig(
        gpu_nodes=gpu_nodes,
        policy=BatchPolicy(max_batch_size=max_batch_size, max_wait_s=0.002),
    )
    platform = Platform.build(
        ClusterSpec(nodes=max(gpu_nodes, 2), jitter=0.0), seed=0,
        faults=plan, gpu=config,
    )
    return platform, platform.gpu


def test_device_loss_replays_in_flight_batches_on_the_survivor():
    plan = FaultPlan().gpu_device_loss(at_s=0.02, node="n0000",
                                       duration_s=0.1)
    with TelemetryCollector() as collector:
        platform, service = build(plan)
        fn = service.register(spec())
        outcomes = []

        def driver():
            requests = [service.submit(fn.name) for _ in range(12)]
            for request in requests:
                outcomes.append((yield request.done))

        platform.process(driver())
        platform.run()
        service.stop()
        platform.run()

    # >= 95% of invocations complete despite losing a device mid-batch
    # (here: all of them, on the surviving device).
    assert len(outcomes) == 12
    assert service.completed == service.submitted == 12
    assert service.devices_lost == 1
    assert service.replays > 0
    assert service.leases.revoked >= 1
    replayed = [o for o in outcomes if o["replays"] > 0]
    assert replayed and all(o["device"] == "n0001/gpu0" for o in replayed)
    # Wasted attempts are billed.
    assert service.replay_cost > 0

    # Causal trace: a replayed request's single trace runs revoke ->
    # replay -> completion, hopping devices but never changing trace_id.
    spans = list(collector.spans)
    revokes = [s for s in spans if s.name == "gpu.lease.revoked"]
    assert revokes and all(s.attrs["device"] == "n0000/gpu0" for s in revokes)
    request_spans = [s for s in spans if s.name == "gpu.request"]
    assert len(request_spans) == 12
    by_trace = {}
    for span in spans:
        trace = span.attrs.get("trace_id")
        if trace is not None:
            by_trace.setdefault(trace, []).append(span)
    for outcome_span in request_spans:
        trace = by_trace[outcome_span.attrs["trace_id"]]
        names = [s.name for s in trace]
        assert names.count("gpu.request") == 1
    replayed_traces = 0
    for trace_spans in by_trace.values():
        names = [s.name for s in trace_spans]
        if "gpu.replay" not in names:
            continue
        replayed_traces += 1
        # The interrupted ride errored, the retry completed cleanly.
        items = [s for s in trace_spans if s.name == "gpu.batch.item"]
        assert len(items) >= 2
        assert any(s.attrs.get("error") for s in items)
        assert any(not s.attrs.get("error") for s in items)
        assert "gpu.request" in names
    assert replayed_traces == len(replayed)
    # The node healed: both devices are back online, cold.
    assert service.devices_online() == ["n0000/gpu0", "n0001/gpu0"]
    assert not service.is_warm(fn.name, "n0000/gpu0")


def test_queued_requests_behind_a_dead_device_are_rerouted_unbilled():
    platform, service = build(max_batch_size=64)
    fn = service.register(spec())
    outcomes = []

    def driver():
        requests = [service.submit(fn.name) for _ in range(3)]
        for request in requests:
            outcomes.append((yield request.done))

    platform.process(driver())
    platform.run_until(0.0005)        # queued, nothing launched yet
    assert service.batcher.pending_total() == 3
    lost = service.lose_node("n0000")
    assert lost == 1
    service.stop()
    platform.run()
    assert [o["device"] for o in outcomes] == ["n0001/gpu0"] * 3
    # Queued (never-launched) work is re-routed but not billed: no
    # device time was wasted.
    assert service.replays == 3
    assert service.replay_cost == 0.0
    assert all(o["replays"] == 0 for o in outcomes)


def test_losing_the_last_device_fails_requests_with_the_lease_error():
    platform, service = build(gpu_nodes=1, max_batch_size=4)
    fn = service.register(spec())
    failures = []

    def driver():
        requests = [service.submit(fn.name) for _ in range(4)]
        for request in requests:
            try:
                yield request.done
            except (NoCapacityError, GpuLeaseRevokedError) as exc:
                failures.append(exc)

    platform.process(driver())
    platform.run_until(0.01)          # the batch is in flight
    service.lose_node("n0000")
    service.stop()
    platform.run()
    assert len(failures) == 4
    assert service.failed == 4 and service.completed == 0
    lease = service.leases  # every lease on the dead device was revoked
    assert lease.active_leases() == []


def test_restored_devices_rejoin_the_lease_pool_cold():
    platform, service = build(max_batch_size=1)
    fn_a = service.register(spec("fn_a"))
    fn_b = service.register(spec("fn_b"))
    service.submit(fn_a.name)
    platform.run()
    assert service.is_warm(fn_a.name, "n0000/gpu0")
    service.lose_node("n0000")
    assert service.devices_online() == ["n0001/gpu0"]
    assert service.restore_node("n0000") == 1
    assert service.devices_online() == ["n0000/gpu0", "n0001/gpu0"]
    assert not service.is_warm(fn_a.name, "n0000/gpu0")
    # The restored device is grantable again: fn_b's first grant picks
    # the least-committed device, which is the fresh n0000/gpu0.
    service.submit(fn_b.name)
    platform.run()
    assert service._lease_of[fn_b.name].device in service.devices_online()
