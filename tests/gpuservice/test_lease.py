"""Fractional GPU lease manager: deterministic grants, revocation."""

import pytest

from repro.cluster.specs import P100
from repro.gpu import GpuDevice
from repro.gpuservice import GpuLeaseManager, GpuLeaseState
from repro.rfaas import GpuLeaseRevokedError, NoCapacityError
from repro.sim import Environment

MiB = 1024**2


def make_fleet(devices=("b/gpu0", "a/gpu0")):
    """Registration order deliberately unsorted: grants must not care."""
    env = Environment()
    manager = GpuLeaseManager(env)
    for name in devices:
        node = name.split("/")[0]
        manager.add_device(GpuDevice(env, P100, name=name), node)
    return env, manager


def test_grant_prefers_least_committed_with_name_tiebreak():
    _, manager = make_fleet()
    # Both empty: the name tie-break picks "a/gpu0" regardless of
    # registration order.
    first = manager.grant("fn_a", occupancy=0.5, memory_bytes=256 * MiB)
    assert first.device == "a/gpu0"
    # Now "a" carries 0.5: the next grant lands on the emptier "b".
    second = manager.grant("fn_b", occupancy=0.5, memory_bytes=256 * MiB)
    assert second.device == "b/gpu0"
    assert manager.granted == 2
    assert [l.function for l in manager.active_leases()] == ["fn_a", "fn_b"]


def test_grant_respects_occupancy_and_memory_ceilings():
    _, manager = make_fleet(devices=("a/gpu0",))
    manager.grant("fat", occupancy=0.8, memory_bytes=P100.memory_bytes - MiB)
    with pytest.raises(NoCapacityError):
        manager.grant("occ", occupancy=0.3, memory_bytes=MiB)  # 1.1 > 1.0
    with pytest.raises(NoCapacityError):
        manager.grant("mem", occupancy=0.1, memory_bytes=2 * MiB)
    # A share that fits both ceilings still goes through.
    lease = manager.grant("thin", occupancy=0.2, memory_bytes=MiB)
    assert lease.device == "a/gpu0"


def test_node_pinned_grant_only_considers_that_node():
    _, manager = make_fleet()
    lease = manager.grant("fn", 0.5, MiB, node="b")
    assert lease.device == "b/gpu0" and lease.node == "b"
    with pytest.raises(NoCapacityError):
        manager.grant("fn2", 0.6, MiB, node="b")  # "a" is free but off-limits


def test_release_returns_capacity_without_callbacks():
    _, manager = make_fleet(devices=("a/gpu0",))
    lease = manager.grant("fn", 1.0, MiB)
    fired = []
    lease.on_revoke(fired.append)
    manager.release(lease)
    assert lease.state == GpuLeaseState.RELEASED
    assert not fired
    assert manager.committed_occupancy("a/gpu0") == 0.0
    manager.grant("fn", 1.0, MiB)  # the share is grantable again


def test_remove_device_revokes_every_lease_and_fires_callbacks():
    _, manager = make_fleet()
    a = manager.grant("fn_a", 0.5, MiB)
    b = manager.grant("fn_b", 0.4, MiB)
    assert {a.device, b.device} == {"a/gpu0", "b/gpu0"}
    revoked = []
    a.on_revoke(revoked.append)
    b.on_revoke(revoked.append)
    victims = manager.remove_device(a.device, cause="device-loss")
    assert victims == [a]
    assert revoked == [a]
    assert a.state == GpuLeaseState.REVOKED and a.revoked_cause == "device-loss"
    assert b.is_active
    assert manager.devices() == [b.device]
    assert manager.revoked == 1


def test_revoked_lease_error_carries_device_and_cause():
    _, manager = make_fleet(devices=("a/gpu0",))
    lease = manager.grant("fn", 0.5, MiB)
    manager.revoke(lease, cause="reclaimed-by-batch-job")
    error = lease.error()
    assert isinstance(error, GpuLeaseRevokedError)
    assert "a/gpu0" in str(error)
    assert "reclaimed-by-batch-job" in str(error)


def test_double_revoke_and_revoke_after_release_are_noops():
    _, manager = make_fleet(devices=("a/gpu0",))
    lease = manager.grant("fn", 0.5, MiB)
    manager.revoke(lease, cause="first")
    manager.revoke(lease, cause="second")
    assert lease.revoked_cause == "first"
    assert manager.revoked == 1
    released = manager.grant("fn2", 0.5, MiB)
    manager.release(released)
    manager.revoke(released)
    assert released.state == GpuLeaseState.RELEASED
