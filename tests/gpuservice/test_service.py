"""GPU service end-to-end: cost model, warm contexts, tracing."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.gpu import GpuFunctionSpec
from repro.gpuservice import BatchPolicy, GpuServiceConfig
from repro.telemetry import TelemetryCollector

MiB = 1024**2


def spec(name="fn", kernels=4, kernel_time=1e-3, occupancy=0.5,
         input_bytes=1_000_000, device_memory=256 * MiB):
    return GpuFunctionSpec(
        name=name, kernel_count=kernels, kernel_time_s=kernel_time,
        occupancy=occupancy, input_bytes=input_bytes,
        device_memory_bytes=device_memory,
    )


def build(policy=None, **config_kwargs):
    config = GpuServiceConfig(
        gpu_nodes=2, policy=policy or BatchPolicy(max_batch_size=1),
        **config_kwargs,
    )
    platform = Platform.build(ClusterSpec(nodes=2, jitter=0.0), seed=0,
                              gpu=config)
    return platform, platform.gpu


def expected_latency(config, fn, batch_size, cold):
    """The service's published cost model, recomputed independently."""
    latency = 0.0
    if cold:
        latency += config.context_setup_s
        latency += fn.device_memory_bytes / config.pcie_bandwidth
    latency += batch_size * fn.input_bytes / config.pcie_bandwidth
    latency += config.setup_s
    latency += fn.kernel_count * (
        config.launch_overhead_s
        + fn.kernel_time_s * (1.0 + (batch_size - 1) * config.batch_marginal)
    )
    return latency


def test_unknown_function_is_rejected():
    platform, service = build()
    with pytest.raises(ValueError):
        service.submit("never-registered")


def test_single_cold_request_latency_matches_the_cost_model():
    platform, service = build()
    fn = service.register(spec())
    results = []

    def driver():
        results.append((yield service.submit(fn.name).done))

    platform.process(driver())
    platform.run()
    assert results and results[0]["batch_size"] == 1
    want = expected_latency(service.config, fn, batch_size=1, cold=True)
    assert results[0]["latency_s"] == pytest.approx(want, rel=1e-12)


def test_warm_context_skips_setup_and_weight_transfer():
    platform, service = build()
    fn = service.register(spec())
    latencies = []

    def driver():
        first = yield service.submit(fn.name).done
        second = yield service.submit(fn.name).done
        latencies.extend([first["latency_s"], second["latency_s"]])

    platform.process(driver())
    platform.run()
    config = service.config
    cold_cost = (config.context_setup_s
                 + fn.device_memory_bytes / config.pcie_bandwidth)
    assert latencies[0] - latencies[1] == pytest.approx(cold_cost, rel=1e-12)
    assert service.warm_devices_for(fn.name) == [service._lease_of[fn.name].device]


def test_two_functions_land_on_two_devices_deterministically():
    platform, service = build()
    a = service.register(spec("fn_a"))
    b = service.register(spec("fn_b"))
    service.submit(a.name)
    service.submit(b.name)
    platform.run()
    lease_a = service._lease_of[a.name]
    lease_b = service._lease_of[b.name]
    assert lease_a.device == "n0000/gpu0"
    assert lease_b.device == "n0001/gpu0"


def test_batched_requests_share_one_launch_and_amortize():
    platform, service = build(policy=BatchPolicy(max_batch_size=4,
                                                 max_wait_s=1.0))
    fn = service.register(spec())
    results = []

    def driver():
        requests = [service.submit(fn.name) for _ in range(4)]
        for request in requests:
            results.append((yield request.done))

    platform.process(driver())
    platform.run()
    assert service.batches == 1
    assert {r["batch_size"] for r in results} == {4}
    assert service.batcher.flushes_on_size == 1
    # All four completed at the same instant, at the batched cost.
    want = expected_latency(service.config, fn, batch_size=4, cold=True)
    for r in results:
        assert r["latency_s"] == pytest.approx(want, rel=1e-12)
    # Amortization: 4 requests in one launch beat 4 unbatched launches.
    assert want < 4 * expected_latency(service.config, fn, 1, cold=True)


def test_request_traces_form_the_documented_span_tree():
    with TelemetryCollector() as collector:
        platform, service = build(policy=BatchPolicy(max_batch_size=2,
                                                     max_wait_s=1.0))
        fn = service.register(spec())
        r1 = service.submit(fn.name)
        r2 = service.submit(fn.name)
        platform.run()
    spans = list(collector.spans)
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["gpu.request"]) == 2
    assert len(by_name["gpu.batch"]) == 1
    assert len(by_name["gpu.batch.item"]) == 2
    batch = by_name["gpu.batch"][0]
    # Items parent under the batch span but keep their request's trace.
    item_traces = set()
    for item in by_name["gpu.batch.item"]:
        assert item.parent_id == batch.span_id
        item_traces.add(item.attrs["trace_id"])
    request_traces = {s.attrs["trace_id"] for s in by_name["gpu.request"]}
    assert item_traces == request_traces == {r1.ctx.trace_id, r2.ctx.trace_id}
    assert all(s.track == "gpu" for s in spans if s.name.startswith("gpu."))


def test_stop_flushes_a_stranded_partial_batch():
    platform, service = build(policy=BatchPolicy(max_batch_size=64,
                                                 max_wait_s=1e9))
    fn = service.register(spec())
    request = service.submit(fn.name)
    platform.run_until(0.001)
    assert service.batcher.pending_total() == 1
    service.stop()
    platform.run()
    assert request.done.triggered and request.done.value["batch_size"] == 1
    assert service.completed == 1
