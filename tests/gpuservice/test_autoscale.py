"""GPU warm-pool autoscaling: forecast-driven prewarm + spread."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.capacity import AutoscalerConfig
from repro.gpu import GpuFunctionSpec
from repro.gpuservice import BatchPolicy, GpuServiceConfig

MiB = 1024**2


def spec(name="fn"):
    return GpuFunctionSpec(
        name=name, kernel_count=4, kernel_time_s=1e-3, occupancy=0.5,
        input_bytes=1_000_000, device_memory_bytes=256 * MiB,
    )


def build(max_batch_size=1, gpu_nodes=2):
    config = GpuServiceConfig(
        gpu_nodes=gpu_nodes,
        policy=BatchPolicy(max_batch_size=max_batch_size, max_wait_s=0.002),
        autoscale=AutoscalerConfig(),
    )
    platform = Platform.build(ClusterSpec(nodes=gpu_nodes, jitter=0.0),
                              seed=0, gpu=config)
    return platform, platform.gpu


def test_prewarm_generator_warms_one_context_once():
    platform, service = build()
    fn = service.register(spec())
    env = platform.env
    env.process(service.prewarm(fn.name, "n0001/gpu0"))
    service.stop()
    platform.run()
    assert service.prewarms == 1
    assert service.warm_devices_for(fn.name) == ["n0001/gpu0"]
    # Warming an already-warm context is a no-op.
    env.process(service.prewarm(fn.name, "n0001/gpu0"))
    platform.run()
    assert service.prewarms == 1


def test_prewarm_ignores_unknown_and_offline_targets():
    platform, service = build()
    fn = service.register(spec())
    service.lose_node("n0001")
    platform.env.process(service.prewarm(fn.name, "n0001/gpu0"))
    platform.env.process(service.prewarm("nope", "n0000/gpu0"))
    platform.env.process(service.prewarm(fn.name, "no-such-device"))
    service.stop()
    platform.run()
    assert service.prewarms == 0


def test_autoscaler_prewarms_ahead_of_forecast_demand():
    platform, service = build()
    fn = service.register(spec())
    env = platform.env

    def load():
        # A steady arrival stream trains the forecaster; the leased
        # device warms itself on the first cold batch, so any spread
        # beyond one device must come from the autoscaler.
        for _ in range(40):
            service.submit(fn.name)
            yield env.timeout(0.05)

    platform.process(load())
    platform.run_until(3.0)
    service.stop()
    platform.run()
    assert service.autoscaler.ticks > 0
    assert service.prewarms >= 1
    # Both devices end warm: the lease's own plus the prewarmed spare.
    assert service.warm_devices_for(fn.name) == ["n0000/gpu0", "n0001/gpu0"]


def test_autoscaler_stop_is_clean_and_idempotent():
    platform, service = build()
    service.register(spec())
    platform.run_until(1.0)
    assert service.autoscaler.running
    service.stop()
    service.stop()
    platform.run()
    assert not service.autoscaler.running
