"""Batching semantics: size/timer triggers, the race, drain."""

import pytest

from repro.gpuservice import BatchPolicy, GpuBatcher
from repro.sim import Environment


def make_batcher(max_batch_size=4, max_wait_s=0.010):
    env = Environment()
    flushed = []
    batcher = GpuBatcher(
        env, BatchPolicy(max_batch_size=max_batch_size, max_wait_s=max_wait_s),
        flush=lambda dev, fn, batch, trigger: flushed.append(
            (env.now, dev, fn, list(batch), trigger)
        ),
    )
    return env, batcher, flushed


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch_size=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_wait_s=0.0)


def test_size_trigger_flushes_synchronously():
    env, batcher, flushed = make_batcher(max_batch_size=2)
    batcher.enqueue("d0", "fn", "r1")
    assert not flushed and batcher.pending(("d0", "fn")) == 1
    batcher.enqueue("d0", "fn", "r2")
    # Synchronous: no simulation step happened yet.
    assert flushed == [(0.0, "d0", "fn", ["r1", "r2"], "size")]
    assert batcher.pending(("d0", "fn")) == 0
    assert batcher.flushes_on_size == 1


def test_timer_flushes_a_partial_batch_at_max_wait():
    env, batcher, flushed = make_batcher(max_batch_size=8, max_wait_s=0.010)
    batcher.enqueue("d0", "fn", "r1")

    def late():
        yield env.timeout(0.004)
        batcher.enqueue("d0", "fn", "r2")

    env.process(late())
    env.run()
    # The max-wait clock starts with the *oldest* request: one flush at
    # t=0.010, carrying both requests, and the second enqueue did not
    # schedule a competing timer.
    assert flushed == [(0.010, "d0", "fn", ["r1", "r2"], "timer")]
    assert batcher.flushes_on_timer == 1 and batcher.flushes_on_size == 0


def test_size_flush_wins_the_race_and_the_stale_timer_noops():
    env, batcher, flushed = make_batcher(max_batch_size=2, max_wait_s=0.010)

    def driver():
        batcher.enqueue("d0", "fn", "r1")   # t=0: starts the timer
        yield env.timeout(0.002)
        batcher.enqueue("d0", "fn", "r2")   # fills the batch before 0.010
        yield env.timeout(0.001)
        batcher.enqueue("d0", "fn", "r3")   # a NEW batch, new generation

    env.process(driver())
    env.run()
    # r1+r2 flushed on size at t=0.002; the t=0.010 timer woke into a
    # newer generation and must NOT have flushed r3 early — r3's own
    # timer (started t=0.003) fires at t=0.013.
    assert [(d, f, b, t) for _, d, f, b, t in flushed] == [
        ("d0", "fn", ["r1", "r2"], "size"),
        ("d0", "fn", ["r3"], "timer"),
    ]
    assert [t for t, *_ in flushed] == pytest.approx([0.002, 0.013])
    assert batcher.flushes_on_size == 1 and batcher.flushes_on_timer == 1


def test_unit_batch_is_a_synchronous_fast_path_with_no_timers():
    env, batcher, flushed = make_batcher(max_batch_size=1)
    for i in range(3):
        batcher.enqueue("d0", "fn", f"r{i}")
    assert [t for t, *_ in flushed] == [0.0, 0.0, 0.0]
    assert batcher.flushes_on_size == 3 and batcher.flushes_on_timer == 0
    # No timer process was ever scheduled: the queue is idle.
    env.run()
    assert env.now == 0.0


def test_queues_are_independent_per_device_function_pair():
    env, batcher, flushed = make_batcher(max_batch_size=2)
    batcher.enqueue("d0", "fn_a", "a1")
    batcher.enqueue("d0", "fn_b", "b1")
    batcher.enqueue("d1", "fn_a", "c1")
    assert not flushed
    assert batcher.pending_total() == 3
    assert batcher.keys() == [("d0", "fn_a"), ("d0", "fn_b"), ("d1", "fn_a")]
    batcher.enqueue("d0", "fn_a", "a2")
    assert flushed == [(0.0, "d0", "fn_a", ["a1", "a2"], "size")]


def test_drain_removes_only_the_dead_devices_queues():
    env, batcher, flushed = make_batcher(max_batch_size=8, max_wait_s=0.010)
    batcher.enqueue("d0", "fn", "dead1")
    batcher.enqueue("d0", "fn", "dead2")
    batcher.enqueue("d1", "fn", "alive")
    drained = batcher.drain(device="d0")
    assert drained == ["dead1", "dead2"]
    assert batcher.pending_total() == 1
    env.run()
    # d0's pending timer woke into the drained generation: no flush for
    # it; d1's timer still fired normally.
    assert flushed == [(0.010, "d1", "fn", ["alive"], "timer")]


def test_flush_all_empties_every_queue_immediately():
    env, batcher, flushed = make_batcher(max_batch_size=8)
    batcher.enqueue("d0", "fn_a", "a")
    batcher.enqueue("d1", "fn_b", "b")
    batcher.flush_all()
    assert len(flushed) == 2 and batcher.pending_total() == 0
    env.run()
    assert len(flushed) == 2  # the stale timers expired into no-ops
