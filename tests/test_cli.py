"""CLI experiment runner tests."""

import pytest

from repro.cli import EXPERIMENTS, _parse_overrides, main


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_list_shows_every_experiment():
    lines, out = collect()
    assert main(["list"], out=out) == 0
    text = "\n".join(lines)
    for name in EXPERIMENTS:
        assert name in text


def test_run_single_experiment_with_override():
    lines, out = collect()
    code = main(["run", "fig08"], out=out)
    assert code == 0
    assert any("Fig. 8" in line for line in lines)
    assert any("completed in" in line for line in lines)


def test_run_with_set_override():
    lines, out = collect()
    main(["run", "tab03", "--set", "counts=(1, 4)"], out=out)
    text = "\n".join(lines)
    assert "Table III" in text
    assert "| 1 " in text and "| 4 " in text


def test_parse_overrides():
    assert _parse_overrides(["a=1", "b=2.5", "c=(1,2)", "d=text"]) == {
        "a": 1, "b": 2.5, "c": (1, 2), "d": "text",
    }
    with pytest.raises(SystemExit):
        _parse_overrides(["missing-equals"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"], out=lambda s: None)


def test_all_rejects_overrides():
    with pytest.raises(SystemExit):
        main(["run", "all", "--set", "x=1"], out=lambda s: None)
