"""CLI experiment runner tests."""

import pytest

from repro.cli import EXPERIMENTS, _parse_overrides, main


def collect():
    lines = []
    return lines, lambda text: lines.append(text)


def test_list_shows_every_experiment():
    lines, out = collect()
    assert main(["list"], out=out) == 0
    text = "\n".join(lines)
    for name in EXPERIMENTS:
        assert name in text


def test_run_single_experiment_with_override():
    lines, out = collect()
    code = main(["run", "fig08"], out=out)
    assert code == 0
    assert any("Fig. 8" in line for line in lines)
    assert any("completed in" in line for line in lines)


def test_run_with_set_override():
    lines, out = collect()
    main(["run", "tab03", "--set", "counts=(1, 4)"], out=out)
    text = "\n".join(lines)
    assert "Table III" in text
    assert "| 1 " in text and "| 4 " in text


def test_parse_overrides():
    assert _parse_overrides(["a=1", "b=2.5", "c=(1,2)", "d=text"]) == {
        "a": 1, "b": 2.5, "c": (1, 2), "d": "text",
    }
    with pytest.raises(SystemExit):
        _parse_overrides(["missing-equals"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"], out=lambda s: None)


def test_all_rejects_overrides():
    with pytest.raises(SystemExit):
        main(["run", "all", "--set", "x=1"], out=lambda s: None)


def test_run_with_trace_and_metrics_export(tmp_path):
    import json

    trace = tmp_path / "trace.json"
    spans = tmp_path / "spans.jsonl"
    metrics = tmp_path / "metrics.txt"
    lines, out = collect()
    code = main(
        ["run", "fig07", "--set", "samples=5", "--set", "sizes=(1, 1024)",
         "--trace", str(trace), "--spans", str(spans), "--metrics-out", str(metrics)],
        out=out,
    )
    assert code == 0
    payload = json.loads(trace.read_text())
    events = payload["traceEvents"]
    assert events
    names = {e["name"] for e in events}
    assert "rfaas.invocation" in names and "rfaas.dispatch" in names
    # Nested spans: children carry parent_id links into invocation spans.
    inv_ids = {e["args"]["span_id"] for e in events if e.get("name") == "rfaas.invocation"}
    assert any(e.get("args", {}).get("parent_id") in inv_ids for e in events)
    # Hot, warm, and cold paths all appear in the trace.
    modes = {e["args"].get("mode") for e in events if e.get("name") == "rfaas.invocation"}
    assert {"hot", "warm"} <= modes
    kinds = {e["args"].get("kind") for e in events if e.get("name") == "rfaas.sandbox"}
    assert "cold" in kinds
    assert spans.read_text().strip()
    assert "repro_executor_invocations_total" in metrics.read_text()
    assert any("[trace:" in line for line in lines)


def test_telemetry_summary_subcommand(tmp_path):
    trace = tmp_path / "trace.json"
    quiet = lambda s: None
    main(["run", "fig07", "--set", "samples=5", "--set", "sizes=(1,)",
          "--trace", str(trace)], out=quiet)
    lines, out = collect()
    code = main(["telemetry", "summary", str(trace)], out=out)
    assert code == 0
    text = "\n".join(lines)
    assert "Telemetry summary" in text
    assert "rfaas.invocation" in text
    assert "p95 (us)" in text


def test_run_without_telemetry_flags_records_nothing(tmp_path):
    from repro.telemetry.provider import _ACTIVE

    lines, out = collect()
    main(["run", "fig10"], out=out)
    assert _ACTIVE == []  # no collector leaks into later runs
