"""The gpu_scaling sweep reproduces the batching tradeoff."""

import pytest

from repro.experiments import gpu_scaling_sweep

BATCH_SIZES = (1, 4, 16, 64)
REQUESTS = 512


@pytest.fixture(scope="module")
def result():
    return gpu_scaling_sweep.run(batch_sizes=BATCH_SIZES, requests=REQUESTS)


def test_throughput_rises_with_batch_size_then_plateaus(result):
    throughput = [p.throughput_rps for p in result.points]
    # Monotone rise (a small drain-tail wobble is tolerated at the cap).
    for smaller, larger in zip(throughput, throughput[1:]):
        assert larger > smaller * 0.95
    # Batching is the point: the largest batch beats unbatched by a lot.
    assert throughput[-1] > 3 * throughput[0]
    # The offered load saturates its cap at large batch sizes.
    offered = [p.offered_rps for p in result.points]
    assert offered == sorted(offered)
    assert offered[-1] == pytest.approx(800.0)


def test_tail_latency_grows_monotonically_with_batch_size(result):
    p99 = [p.p99_ms for p in result.points]
    assert p99 == sorted(p99)
    assert p99[-1] > 5 * p99[0]
    # p50 <= p99 everywhere, and batch fill shows up in the median too.
    for point in result.points:
        assert point.p50_ms <= point.p99_ms


def test_batches_are_full_and_size_triggered_on_defaults(result):
    for point in result.points:
        assert point.completed == 2 * REQUESTS
        assert point.mean_batch_size == pytest.approx(point.batch_size)
        assert point.timer_flushes == 0
        assert point.size_flushes * point.batch_size == point.completed


def test_scenario_is_a_pure_function_of_params_and_seed():
    params = {"batch_size": 4, "requests": 64, "max_rate_rps": 800.0}
    assert (gpu_scaling_sweep.scenario(dict(params), seed=7)
            == gpu_scaling_sweep.scenario(dict(params), seed=7))


def test_report_renders_the_tradeoff_table(result):
    text = gpu_scaling_sweep.format_report(result)
    assert "GPU invocation batching" in text
    assert "p99 (ms)" in text and "throughput (r/s)" in text
