"""The manager_failover sweep: standbys turn outages into tail latency."""

import pytest

from repro.experiments import manager_failover_sweep


def test_default_plan_pairs_storms_with_manager_faults():
    plan = manager_failover_sweep.default_plan(20.0)
    kinds = [ev.kind for ev in plan]
    assert kinds == ["lease_storm", "manager_crash",
                     "lease_storm", "manager_partition", "node_crash"]
    events = list(plan)
    # The storm shares the fault's timestamp: stable tie order applies
    # the storm first, so revoked clients re-lease into the outage.
    assert events[0].at_s == events[1].at_s
    assert events[2].at_s == events[3].at_s


def test_acceptance_bar_k0_loses_k1_completes():
    result = manager_failover_sweep.run(standbys=(0, 1), window_s=12.0, seed=0)
    lost, ha = result.points
    assert lost.standbys == 0 and ha.standbys == 1
    # k=0: the crash wipes lease state; the storm is rejected wholesale.
    assert lost.completion_ratio < 0.9
    assert lost.failovers == 0
    # k=1: the PR's acceptance criterion — >= 99 % completion with zero
    # double grants and a single primary per epoch.
    assert ha.completion_ratio >= 0.99
    assert ha.failovers >= 1
    assert ha.epochs >= 2
    assert ha.manager_down_retries >= 1
    assert lost.invariants_ok and ha.invariants_ok


def test_more_standbys_change_nothing_when_one_suffices():
    result = manager_failover_sweep.run(standbys=(1, 2), window_s=10.0, seed=0)
    one, two = result.points
    assert one.completion_ratio >= 0.99
    assert two.completion_ratio >= 0.99
    assert one.epochs == two.epochs  # same storm, same elections


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        manager_failover_sweep.run(window_s=0.0)


def test_format_report_mentions_the_sweep():
    result = manager_failover_sweep.run(standbys=(1,), window_s=8.0, seed=0)
    report = manager_failover_sweep.format_report(result)
    assert "Manager failover" in report
    assert "invariants" in report
    assert "PASS" in report


def test_scenarios_are_seed_deterministic():
    a = manager_failover_sweep.run(standbys=(1,), window_s=8.0, seed=0)
    b = manager_failover_sweep.run(standbys=(1,), window_s=8.0, seed=0)
    assert a.to_json() == b.to_json()
