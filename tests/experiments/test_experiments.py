"""Paper-shape assertions for every experiment module.

These tests pin the *qualitative* results the paper reports — who wins,
by roughly what factor, where the crossovers fall — so a regression in
any substrate that would change a paper-level conclusion fails loudly.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig01_utilization,
    fig07_latency,
    fig08_storage,
    fig09_cpu_sharing,
    fig10_utilization,
    fig11_memory_sharing,
    fig12_gpu_sharing,
    fig13_offloading,
    tab03_idle_node,
)

MiB = 1024**2


# ---- Fig. 1 ------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig01_result():
    return fig01_utilization.run(nodes=32, hours=6.0, seed=1)


def test_fig01_high_utilization_with_small_idle_pool(fig01_result):
    summary = fig01_result.summary
    # Allocated fraction high (paper: 80-94%+); some idle nodes exist.
    assert summary["median_allocated_fraction"] > 0.7
    assert summary["median_idle_nodes"] >= 0


def test_fig01_memory_overprovisioned(fig01_result):
    # Paper: average node memory usage can be as little as ~24%.
    assert fig01_result.memory_used_fraction_mean < 0.45
    assert fig01_result.memory_used_fraction_mean < fig01_result.memory_allocated_fraction_mean


def test_fig01_idle_periods_short(fig01_result):
    # Paper: 70-80% of idle events < 10 minutes.
    assert fig01_result.sampled_idle.fraction_under_10min > 0.6
    assert fig01_result.sampled_idle.median_s < 600
    assert fig01_result.exact_idle.count >= fig01_result.sampled_idle.count


def test_fig01_report_renders(fig01_result):
    text = fig01_utilization.format_report(fig01_result)
    assert "Fig. 1" in text and "idle" in text


# ---- Fig. 7 -----------------------------------------------------------------

@pytest.fixture(scope="module")
def fig07_result():
    return fig07_latency.run(sizes=(1, 1024, 256 * 1024), samples=60, seed=2)


def test_fig07_hot_tracks_fabric(fig07_result):
    for hot, fab in zip(fig07_result.hot, fig07_result.fabric):
        assert hot.median_s < fab.median_s + 2e-6  # within ~2 us


def test_fig07_warm_pays_wakeup(fig07_result):
    for warm, hot in zip(fig07_result.warm, fig07_result.hot):
        assert warm.median_s > hot.median_s + 5e-6
        assert warm.p95_s > warm.median_s  # long wakeup tail


def test_fig07_single_digit_microseconds_small_messages(fig07_result):
    small = fig07_result.hot[0]
    assert small.median_s < 10e-6  # paper: single-digit us


def test_fig07_bandwidth_bound_at_large_sizes(fig07_result):
    big_hot = fig07_result.hot[-1]
    big_warm = fig07_result.warm[-1]
    # At 256 KiB the transfer dominates: hot and warm converge within 2x.
    assert big_warm.median_s < 2 * big_hot.median_s
    assert fig07_latency.format_report(fig07_result)


# ---- Fig. 8 ------------------------------------------------------------------

def test_fig08_crossover_shape():
    result = fig08_storage.run()
    small = [p for p in result.points if p.size_bytes <= 1 * MiB and p.readers == 1]
    assert all(p.minio_wins_latency for p in small)
    big = [p for p in result.points if p.size_bytes >= 256 * MiB and p.readers >= 16]
    assert all(p.lustre_throughput > p.minio_throughput for p in big)
    assert 0 < result.crossover_bytes_single_reader < 1 << 30
    assert "Fig. 8" in fig08_storage.format_report(result)


# ---- Table III ------------------------------------------------------------------

def test_tab03_matches_paper_shape():
    result = tab03_idle_node.run()
    thr = result.throughput
    # EP near-linear at 32 (paper 27.2).
    assert 24 < thr["ep.W"][32] < 31
    # CG saturates: relative throughput at 16 in the paper band.
    assert thr["cg.A"][16] < 0.55 * thr["ep.W"][16]
    # BT/LU in the 70-85% efficiency band at 24.
    for key in ("bt.W", "lu.W"):
        assert 0.6 < thr[key][24] / 24 < 0.95
    # rFaaS overhead: largest for CG (paper ~13%), small for EP (<1%).
    assert 0.08 < result.overhead["cg.A"] < 0.2
    assert result.overhead["ep.W"] < 0.01
    assert "Table III" in tab03_idle_node.format_report(result)


# ---- Fig. 9 ---------------------------------------------------------------------

def test_fig09_batch_impact_negligible():
    result = fig09_cpu_sharing.run(milc_sizes=())
    for cell in result.cells:
        # Paper: LULESH slowdown within noise; CG is the worst partner.
        assert cell.batch_slowdown < 1.10
        if cell.nas != "cg.A":
            assert cell.batch_slowdown < 1.03
        # FaaS side suffers more than the batch job.
        assert cell.faas_slowdown >= cell.batch_slowdown - 1e-9


def test_fig09_discount_offsets_slowdown():
    result = fig09_cpu_sharing.run(milc_sizes=())
    non_cg = [c for c in result.cells if c.nas != "cg.A"]
    assert all(c.net_saving > 0 for c in non_cg)
    assert "Fig. 9" in fig09_cpu_sharing.format_report(result)


# ---- Fig. 10 -------------------------------------------------------------------

def test_fig10_colocation_wins():
    result = fig10_utilization.run()
    for row in result.rows:
        assert row.colocated > row.partial > row.exclusive
    # Paper: up to ~52% improvement.
    assert 0.25 < result.max_improvement < 0.8
    assert "Fig. 10" in fig10_utilization.format_report(result)


# ---- Fig. 11 ---------------------------------------------------------------------

def test_fig11_lulesh_insensitive_milc_sensitive():
    result = fig11_memory_sharing.run()
    lulesh = [p for p in result.points if p.app == "lulesh"]
    milc = [p for p in result.points if p.app == "milc"]
    assert all(p.slowdown < 1.02 for p in lulesh)  # paper: unaffected
    worst_milc = max(p.slowdown for p in milc)
    worst_lulesh = max(p.slowdown for p in lulesh)
    assert worst_milc > worst_lulesh
    # Larger MILC problems are at least as sensitive (at max traffic).
    at_full = {p.problem_size: p.slowdown for p in milc if p.interval_s == 0.0}
    assert at_full[24] >= at_full[16] - 1e-9
    assert "Fig. 11" in fig11_memory_sharing.format_report(result)


def test_fig11_traffic_reaches_10gbs():
    result = fig11_memory_sharing.run()
    assert max(p.traffic_bw for p in result.points) > 9e9  # ~10 GB/s


# ---- Fig. 12 --------------------------------------------------------------------

def test_fig12_low_overhead_with_small_size_outliers():
    result = fig12_gpu_sharing.run()
    slowdowns = [(c.batch_app, c.problem_size, c.batch_slowdown) for c in result.cells]
    over_5pct = [s for s in slowdowns if s[2] > 1.05]
    # Paper: overhead < 5% overall, with outliers (6.1%, 10.5%) at the
    # smallest LULESH size and "slightly higher" small-size MILC overheads.
    assert over_5pct, "expected outliers at small problem sizes"
    assert len(over_5pct) <= len(slowdowns) // 4  # outliers, not the norm
    smallest = {"lulesh": 20, "milc": 8}
    worst = max(slowdowns, key=lambda s: s[2])
    assert worst[1] == smallest[worst[0]]
    assert 1.05 < worst[2] < 1.15  # paper's worst outlier: 10.5%
    # Largest problem sizes stay in the <5% regime (lavamd excepted for
    # MILC's mid size, which the paper calls "slightly higher").
    largest = [s for s in slowdowns if s[1] in (45, 24)]
    assert all(s[2] <= 1.055 for s in largest)
    assert result.cost_discount == pytest.approx(0.25)
    assert "Fig. 12" in fig12_gpu_sharing.format_report(result)


def test_fig12_platform_measurement_is_numerically_identical():
    """The device share measured on a live GpuDevice (through the
    Platform facade) reproduces the analytic occupancy-overload model
    bit-for-bit: kernel time-sharing dilates the batch kernel by
    ``max(1, occ)``, and ``max(1, occ) - 1 == max(0, occ - 1)``."""
    analytic = fig12_gpu_sharing.run()
    measured = fig12_gpu_sharing.run_platform()
    assert measured.cost_discount == analytic.cost_discount
    assert measured.cells == analytic.cells


# ---- Fig. 13 ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig13_results():
    return fig13_offloading.run(
        workers=2, options=60_000, iterations=2, particles=(1_000,), seed=5
    )


def test_fig13_results_numerically_correct(fig13_results):
    assert all(r.checks_passed for r in fig13_results)


def test_fig13_eq1_calibration_sane(fig13_results):
    for result in fig13_results:
        assert result.model.t_local > 0
        assert result.model.t_inv > 0
        assert result.model.n_local_min >= 1
        assert result.predicted_doubled_speedup >= 1.0


def test_fig13_report_renders(fig13_results):
    text = fig13_offloading.format_report(fig13_results)
    assert "Fig. 13" in text and "Eq. 1" in text


def test_tab03_platform_cross_validates_model():
    """Throughput measured through the live platform stack agrees with
    the analytic interference model (same contention engine, different
    code path: leases, executors, slots, load registry)."""
    from repro.cluster import DAINT_MC
    from repro.interference import InterferenceModel
    from repro.workloads import nas_model

    counts = (1, 4, 16)
    measured = tab03_idle_node.run_platform("cg.A", counts=counts, window_s=40.0)
    model = InterferenceModel()
    demand = nas_model("cg.A").demand(1)
    for n in counts:
        predicted = model.relative_throughput(DAINT_MC, demand, n)
        assert measured[n] == pytest.approx(predicted, rel=0.25), (
            f"{n} streams: measured {measured[n]:.2f} vs model {predicted:.2f}"
        )
    # The saturation shape survives the full stack.
    assert measured[16] < 0.6 * 16
