"""Loadstorm sweep: conservation, shared-seed planning, shard crashes."""

import pytest

from repro.experiments import loadstorm_sweep
from repro.experiments.loadstorm_sweep import (
    LoadstormResult,
    plan_scenarios,
    scenario,
)

#: Small enough for the default suite, large enough to exercise batching.
SMALL = dict(window_s=2.0, rate_per_s=600.0, population=50_000,
             nodes=4, cores_per_node=8)


def _point(**overrides):
    params = {
        "shards": 2, "window_s": SMALL["window_s"],
        "rate_per_s": SMALL["rate_per_s"], "population": SMALL["population"],
        "zipf_s": 1.1, "service_s": 0.05, "arrival": "poisson",
        "nodes": SMALL["nodes"], "cores_per_node": SMALL["cores_per_node"],
        "max_batch": 32, "crash_at_frac": 0.0,
    }
    params.update(overrides)
    return scenario(params, seed=0)


def test_every_admitted_request_is_accounted_for():
    point = _point()
    assert point["admitted"] == (
        point["completed"] + point["rejected"] + point["degraded"]
    )
    assert point["conservation_ok"]
    assert point["admitted"] > 0


def test_scenario_is_deterministic():
    assert _point() == _point()


def test_one_seed_is_shared_across_all_points():
    plan = plan_scenarios(shards=(1, 2, 4), seed=9, **SMALL)
    assert [spec.seed for spec in plan.scenarios] == [9, 9, 9]
    assert [spec.label for spec in plan.scenarios] == [
        "shards=1", "shards=2", "shards=4",
    ]
    # Same seed means the identical trace at every shard count: the
    # admitted column must agree point-to-point.
    points = [spec.execute() for spec in plan.scenarios]
    assert len({p["admitted"] for p in points}) == 1


def test_mmpp_arrivals_run_and_conserve():
    point = _point(arrival="mmpp")
    assert point["conservation_ok"]
    assert point["admitted"] > 0


def test_shard_crash_mid_storm_conserves_and_recovers():
    point = _point(shards=2, crash_at_frac=0.5)
    assert point["crashes"] == 1
    # Crash fencing turns in-flight grants into retries/degraded and
    # revoked leases — never silent drops.
    assert point["admitted"] == (
        point["completed"] + point["rejected"] + point["degraded"]
    )
    assert point["conservation_ok"]
    assert point["completed"] > 0  # the surviving shard kept granting


def test_unknown_arrival_kind_is_rejected():
    with pytest.raises(ValueError):
        _point(arrival="bursty")


def test_assemble_rebuilds_the_typed_result_in_plan_order():
    plan = plan_scenarios(shards=(2, 1), seed=0, **SMALL)
    points = [spec.execute() for spec in plan.scenarios]
    result = loadstorm_sweep.assemble(points, plan.meta)
    assert isinstance(result, LoadstormResult)
    assert [p.shards for p in result.points] == [2, 1]
    assert result.population == SMALL["population"]
    report = result.format_report()
    assert "shards=2" in report and "conserved" in report


def test_run_shim_matches_serial_protocol():
    result = loadstorm_sweep.run(shards=(1,), seed=0, **SMALL)
    assert len(result.points) == 1
    assert result.points[0].conservation_ok
    text = result.to_json()
    assert text.startswith("{")
