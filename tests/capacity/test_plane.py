"""CapacityPlane end-to-end tests: routes, conservation, facade, chaos."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.capacity import (
    AdmissionConfig,
    AutoscalerConfig,
    CapacityConfig,
    CapacityPlane,
    TenantQuota,
)
from repro.containers import Image
from repro.faults import FaultPlan
from repro.interference import ResourceDemand
from repro.slurm import BatchScheduler

MiB = 1024**2
GiB = 1024**3


def build(nodes=3, executors=("n0001", "n0002"), cores=2, capacity=True,
          faults=None, seed=0, telemetry=None):
    platform = Platform.build(
        ClusterSpec(nodes=nodes, jitter=0.0), seed=seed,
        capacity=capacity, faults=faults, telemetry=telemetry,
    )
    for node in executors:
        platform.register_node(node, cores=cores, memory_bytes=8 * GiB)
    platform.functions.register(
        "fn", Image("img", size_bytes=100 * MiB, runtime_memory_bytes=256 * MiB),
        runtime_s=0.05,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    return platform


def govern(platform, count, tenants=2, until=30.0):
    plane = platform.capacity
    clients = [platform.client("n0000", name=f"t{i}") for i in range(tenants)]
    results = []

    def one(client):
        result = yield plane.invoke(client, "fn", tenant=client.name)
        results.append(result)

    def source():
        for i in range(count):
            platform.process(one(clients[i % tenants]))
            yield platform.env.timeout(0.05)

    platform.process(source())
    platform.run_until(until)
    plane.stop()
    platform.run()
    for client in clients:
        client.close()
    return plane, results


def test_happy_path_routes_hpc_and_conserves():
    platform = build()
    plane, results = govern(platform, count=20)
    assert len(results) == 20
    assert all(r.route == "hpc" and r.ok for r in results)
    stats = plane.stats()
    assert stats["completed"] == 20
    assert (stats["completed"] + stats["rejected"] + stats["bursts"]
            == stats["invocations"] == 20)


def test_unplaceable_overflows_to_cloud_with_cost():
    # One single-core executor, several concurrent tenants: some
    # invocations find no lease and must burst.
    platform = build(executors=("n0001",), cores=1)
    plane, results = govern(platform, count=30, tenants=6)
    routes = {r.route for r in results}
    assert "cloud" in routes
    clouds = [r for r in results if r.route == "cloud"]
    assert all(r.ok and r.cost > 0 and r.cloud is not None for r in clouds)
    assert plane.stats()["burst_cost"] == pytest.approx(
        sum(r.cost for r in clouds))
    # Nothing silently dropped.
    stats = plane.stats()
    assert (stats["completed"] + stats["rejected"] + stats["bursts"]
            == stats["invocations"] == 30)


def test_burst_disabled_turns_unplaceable_into_rejection():
    config = CapacityConfig(burst_enabled=False)
    platform = build(executors=("n0001",), cores=1, capacity=config)
    plane, results = govern(platform, count=30, tenants=6)
    rejected = [r for r in results if r.route == "rejected"]
    assert rejected
    assert all(not r.ok and r.error is not None for r in rejected)
    assert plane.stats()["bursts"] == 0


def test_admission_backpressure_surfaces_as_rejected_route():
    config = CapacityConfig(
        admission=AdmissionConfig(
            max_queue_depth=0,
            default_quota=TenantQuota(rate_per_s=1.0, burst=1.0),
        ),
    )
    platform = build(capacity=config)
    plane, results = govern(platform, count=10, tenants=1)
    rejected = [r for r in results if r.route == "rejected"]
    assert rejected
    assert all(r.error.reason == "queue_full" for r in rejected)
    stats = plane.stats()
    assert stats["rejected"] == len(rejected)
    assert (stats["completed"] + stats["rejected"] + stats["bursts"]
            == stats["invocations"] == 10)


def test_survives_node_crash_storm():
    """FaultPlan chaos: crashes + heals mid-run, no hang, conservation."""
    plan = (FaultPlan(name="storm")
            .node_crash(at_s=0.3, node="n0001", duration_s=0.5, immediate=True)
            .node_crash(at_s=0.6, node="n0002", duration_s=0.5, immediate=True))
    platform = build(faults=plan)
    plane, results = govern(platform, count=40, until=10.0)
    assert len(results) == 40
    stats = plane.stats()
    assert (stats["completed"] + stats["rejected"] + stats["bursts"]
            == stats["invocations"] == 40)
    assert platform.injector.injected  # the storm actually fired
    # The autoscaler kept running through the chaos.
    assert plane.autoscaler.ticks > 0


def test_release_idle_leases_returns_capacity():
    platform = build(executors=("n0001",), cores=1)
    plane = platform.capacity
    client = platform.client("n0000", name="t0")
    done = []

    def flow():
        result = yield plane.invoke(client, "fn", tenant="t0")
        done.append(result)

    platform.process(flow())
    platform.run_until(5.0)
    plane.stop()
    platform.run()
    assert done[0].route == "hpc"
    # The tenant's lease went back to the pool once it idled.
    assert client._lease is None
    assert platform.manager.active_leases() == []
    client.close()


def test_facade_wiring_and_validation():
    platform = build(capacity=True)
    assert isinstance(platform.capacity, CapacityPlane)
    assert platform.capacity.autoscaler.running
    platform.capacity.stop()
    # cloud is lazy and memoized.
    assert platform.cloud is platform.cloud
    # controller: none until attached, attach is once-only.
    assert platform.controller is None
    controller = platform.attach_controller(
        BatchScheduler(platform.env, platform.cluster))
    assert platform.controller is controller
    with pytest.raises(RuntimeError):
        platform.attach_controller(
            BatchScheduler(platform.env, platform.cluster))
    with pytest.raises(TypeError):
        Platform.build(ClusterSpec(nodes=2), capacity="yes")
    with pytest.raises(TypeError):
        Platform.build(ClusterSpec(nodes=2), cloud="yes")


def test_no_capacity_by_default():
    platform = Platform.build(ClusterSpec(nodes=2))
    assert platform.capacity is None


def test_capacity_metrics_emitted():
    platform = build(telemetry=True)
    govern(platform, count=10)
    names = {m.name for m in platform.telemetry.metrics}
    assert "repro_capacity_admitted_total" in names
    assert "repro_capacity_invocations_total" in names
    assert "repro_capacity_latency_seconds" in names
    assert "repro_capacity_supply_cores_count" in names
