"""Warm-pool autoscaler tests against a real platform."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.capacity import AutoscalerConfig, DemandForecaster, WarmPoolAutoscaler
from repro.containers import Image
from repro.interference import ResourceDemand

MiB = 1024**2
GiB = 1024**3


def build(nodes=3, executors=("n0001", "n0002"), images=1, **cfg):
    platform = Platform.build(ClusterSpec(nodes=nodes, jitter=0.0), seed=0)
    for node in executors:
        platform.register_node(node, cores=2, memory_bytes=8 * GiB)
    for i in range(images):
        platform.functions.register(
            f"fn{i}", Image(f"img{i}", size_bytes=100 * MiB,
                            runtime_memory_bytes=256 * MiB),
            runtime_s=0.01,
            demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        )
    forecaster = DemandForecaster()
    scaler = WarmPoolAutoscaler(
        platform.env, platform.manager, platform.cluster,
        platform.functions, forecaster,
        AutoscalerConfig(**cfg) if cfg else None,
    )
    return platform, forecaster, scaler


def warm_counts(platform, image_name):
    return {
        node: platform.manager.node_info(node).warm_pool.warm_count_for(image_name)
        for node in platform.manager.registered_nodes()
    }


def drive_arrivals(forecaster, rate, duration, function="fn0"):
    gap = 1.0 / rate
    for i in range(int(rate * duration)):
        forecaster.observe_arrival(i * gap, function)


def test_predictive_prewarms_toward_forecast():
    platform, forecaster, scaler = build(interval_s=0.5, horizon_s=1.0)
    drive_arrivals(forecaster, rate=4.0, duration=2.0)
    scaler.start()
    platform.run_until(3.0)
    scaler.stop()
    platform.run()
    assert scaler.prewarms > 0
    counts = warm_counts(platform, "img0")
    assert sum(counts.values()) >= 4      # ~ headroom * rate * horizon
    # Spread round-robin across node groups, not piled on one node.
    assert all(count > 0 for count in counts.values())


def test_reactive_mode_never_prewarms():
    platform, forecaster, scaler = build(predictive=False)
    drive_arrivals(forecaster, rate=8.0, duration=2.0)
    scaler.start()
    platform.run_until(3.0)
    scaler.stop()
    platform.run()
    assert scaler.prewarms == 0
    assert sum(warm_counts(platform, "img0").values()) == 0
    # ... but it still observed supply for the forecaster's ledger.
    assert scaler.ticks > 0
    assert forecaster.harvested_core_seconds() > 0


def test_per_node_cap_respected():
    platform, forecaster, scaler = build(max_warm_per_node=2)
    drive_arrivals(forecaster, rate=50.0, duration=2.0)   # huge demand
    scaler.start()
    platform.run_until(5.0)
    scaler.stop()
    platform.run()
    counts = warm_counts(platform, "img0")
    assert all(count <= 2 for count in counts.values())


def test_stop_lets_the_event_queue_drain():
    platform, forecaster, scaler = build()
    scaler.start()
    platform.run_until(1.0)
    assert scaler.running
    scaler.stop()
    platform.run()          # would never return with the loop alive
    assert not scaler.running


def test_reprovisions_after_crash_and_heal():
    platform, forecaster, scaler = build(interval_s=0.25)
    drive_arrivals(forecaster, rate=8.0, duration=2.0)
    scaler.start()
    platform.run_until(2.0)
    before = warm_counts(platform, "img0")
    assert sum(before.values()) > 0
    # Crash wipes the node's pool; re-registration starts empty.
    platform.manager.remove_node("n0001")
    platform.register_node("n0001", cores=2, memory_bytes=8 * GiB)
    assert warm_counts(platform, "img0")["n0001"] == 0
    # Keep demand flowing so the forecast stays warm, let the loop tick.
    for i in range(16):
        forecaster.observe_arrival(2.0 + i * 0.125, "fn0")
    platform.run_until(4.0)
    scaler.stop()
    platform.run()
    assert warm_counts(platform, "img0")["n0001"] > 0


def test_multiple_images_each_get_pools():
    platform, forecaster, scaler = build(images=2)
    drive_arrivals(forecaster, rate=4.0, duration=2.0, function="fn0")
    for i in range(8):
        # After fn0's stream: the aggregate clock must not run backwards.
        forecaster.observe_arrival(2.0 + i * 0.25, "fn1")
    scaler.start()
    platform.run_until(3.0)
    scaler.stop()
    platform.run()
    assert sum(warm_counts(platform, "img0").values()) > 0
    assert sum(warm_counts(platform, "img1").values()) > 0


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(percentile=1.5)
    with pytest.raises(ValueError):
        AutoscalerConfig(max_warm_per_node=0)
