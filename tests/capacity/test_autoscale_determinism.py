"""The capacity plane's determinism contract (ISSUE acceptance criterion).

Same seed ⇒ byte-identical sweep JSON across *fresh interpreters* —
including under a FaultPlan node-crash scenario, where the autoscaler's
re-provisioning races recovering traffic.
"""

import os
import pathlib
import subprocess
import sys

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

# Entity ids (containers, invocations, leases) are process-global
# counters, so the byte-identical claim holds per interpreter run — each
# run gets a fresh process, like the CLI.
_SWEEP_EXPORT = """
import sys
from repro.experiments import autoscale_sweep
crash = sys.argv[2] == "crash"
result = autoscale_sweep.run(loads=(4.0,), window_s=8.0, seed=7, crash=crash)
with open(sys.argv[1], "w", encoding="utf-8") as fh:
    fh.write(result.to_json())
"""


def _sweep_bytes(path, crash):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _SWEEP_EXPORT, str(path),
         "crash" if crash else "calm"],
        check=True, env=env, timeout=240,
    )
    return path.read_bytes()


def test_same_seed_sweep_is_byte_identical(tmp_path):
    first = _sweep_bytes(tmp_path / "a.json", crash=False)
    second = _sweep_bytes(tmp_path / "b.json", crash=False)
    assert len(first) > 0
    assert first == second


def test_same_seed_sweep_is_byte_identical_under_crash_storm(tmp_path):
    first = _sweep_bytes(tmp_path / "a.json", crash=True)
    second = _sweep_bytes(tmp_path / "b.json", crash=True)
    assert b'"faults_injected": 0' not in first  # the storm really ran
    assert first == second
