"""Cloud-burst router tests: lazy registration, billing, counters."""

import numpy as np
import pytest

from repro.capacity import BurstConfig, CloudBurstRouter
from repro.cloudfaas import CloudFaaSPlatform
from repro.containers import Image
from repro.disagg.billing import FunctionBill
from repro.interference import ResourceDemand
from repro.rfaas import FunctionRegistry
from repro.sim import Environment

MiB = 1024**2


def build(config=None):
    env = Environment()
    cloud = CloudFaaSPlatform(env, rng=np.random.default_rng(0))
    registry = FunctionRegistry()
    registry.register(
        "fn", Image("img", size_bytes=100 * MiB, runtime_memory_bytes=256 * MiB),
        runtime_s=0.05,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
    )
    router = CloudBurstRouter(env, cloud, config)
    return env, cloud, registry.lookup("fn"), router


def run_burst(env, router, fdef, **kw):
    out = []

    def proc():
        record = yield from router.burst(fdef, **kw)
        out.append(record)

    env.process(proc())
    env.run()
    return out[0]


def test_burst_runs_on_cloud_and_bills_at_premium():
    config = BurstConfig(premium=3.0)
    env, cloud, fdef, router = build(config)
    record = run_burst(env, router, fdef)
    assert record.invocation.cold          # first touch on the cloud
    assert record.latency_s > 0.0
    expected = FunctionBill(
        cores=1,
        memory_bytes=fdef.image.runtime_memory_bytes + fdef.memory_bytes,
        duration_s=record.invocation.total_s,
        core_hour_price=config.core_hour_price * 3.0,
        gib_hour_price=config.gib_hour_price * 3.0,
    ).cost()
    assert record.cost == pytest.approx(expected)
    assert record.cost > 0.0
    assert router.bursts == 1
    assert router.total_cost == pytest.approx(record.cost)


def test_registration_is_lazy_and_idempotent():
    env, cloud, fdef, router = build()
    run_burst(env, router, fdef)
    second = run_burst(env, router, fdef)
    # A second burst must not re-register (the cloud raises on duplicates),
    # and it rides the warm sandbox within the keep-alive window.
    assert not second.invocation.cold
    assert router.bursts == 2
    assert cloud.cold_starts == 1 and cloud.warm_invocations == 1


def test_costs_accumulate_across_bursts():
    env, cloud, fdef, router = build()
    first = run_burst(env, router, fdef)
    second = run_burst(env, router, fdef)
    assert router.total_cost == pytest.approx(first.cost + second.cost)


def test_config_validation():
    with pytest.raises(ValueError):
        BurstConfig(premium=0.0)
    with pytest.raises(ValueError):
        BurstConfig(billed_cores=0)
    with pytest.raises(ValueError):
        BurstConfig(core_hour_price=-1.0)
