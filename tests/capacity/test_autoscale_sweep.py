"""autoscale_sweep experiment: shape, conservation, the predictive win."""

import json

import pytest

from repro.experiments import autoscale_sweep
from repro.faults import FaultPlan


@pytest.fixture(scope="module")
def default_sweep():
    """One full default run (crash storm, 1x/4x/16x) shared by the asserts."""
    return autoscale_sweep.run()


def pairs_by_load(result):
    by_load = {}
    for point in result.points:
        by_load.setdefault(point.load, {})[point.mode] = point
    return by_load


def test_every_scenario_conserves_invocations(default_sweep):
    for point in default_sweep.points:
        assert (point.completed + point.bursts + point.rejected
                == point.invocations)
        assert point.invocations > 0


def test_predictive_beats_reactive_at_high_load(default_sweep):
    """The ISSUE acceptance bar: warm-start rate, >= 4x load."""
    for load, modes in pairs_by_load(default_sweep).items():
        if load >= 4.0:
            assert (modes["predictive"].warm_start_rate
                    > modes["reactive"].warm_start_rate), f"load {load}"
    # And the mechanism is visible: predictive prewarms, reactive never.
    for point in default_sweep.points:
        if point.mode == "reactive":
            assert point.prewarms == 0
        else:
            assert point.prewarms > 0


def test_pressure_grows_with_load(default_sweep):
    by_load = pairs_by_load(default_sweep)
    loads = sorted(by_load)
    reactive = [by_load[load]["reactive"] for load in loads]
    assert reactive[-1].burst_fraction > reactive[0].burst_fraction
    assert reactive[-1].rejected > 0            # backpressure engages at 16x
    assert reactive[-1].burst_cost > 0.0        # ... and bursts were billed
    # The crash storm fired in every scenario.
    assert all(p.faults_injected > 0 for p in default_sweep.points)


def test_json_round_trip(default_sweep):
    blob = json.loads(default_sweep.to_json())
    assert blob["window_s"] == default_sweep.window_s
    assert len(blob["points"]) == len(default_sweep.points)
    # sort_keys makes the dump canonical for byte-comparison.
    assert default_sweep.to_json() == json.dumps(blob, sort_keys=True, indent=2)


def test_report_renders(default_sweep):
    report = autoscale_sweep.format_report(default_sweep)
    assert "predictive" in report and "reactive" in report
    assert "warm" in report and "burst cost" in report


def test_crash_false_disables_the_storm():
    result = autoscale_sweep.run(loads=(1.0,), window_s=4.0, crash=False)
    assert all(p.faults_injected == 0 for p in result.points)


def test_custom_plan_overrides_default():
    plan = FaultPlan(name="one-crash").node_crash(
        at_s=1.0, node="n0001", duration_s=1.0, immediate=True)
    result = autoscale_sweep.run(loads=(1.0,), window_s=4.0, plan=plan)
    assert all(p.faults_injected >= 1 for p in result.points)


def test_validation():
    with pytest.raises(ValueError):
        autoscale_sweep.run(window_s=0.0)
    with pytest.raises(ValueError):
        autoscale_sweep.run(loads=(0.0,), window_s=1.0)
    with pytest.raises(ValueError):
        autoscale_sweep.run(tenants=0)
