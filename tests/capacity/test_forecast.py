"""Demand/supply forecaster unit tests (pure arithmetic, no sim)."""

import pytest

from repro.capacity import DemandForecaster, ForecastConfig


def feed_uniform(forecaster, rate, duration, function=None, start=0.0):
    gap = 1.0 / rate
    t = start
    count = int(round(rate * duration))
    for _ in range(count):
        forecaster.observe_arrival(t, function)
        t += gap
    return t


def test_ewma_converges_to_uniform_rate():
    f = DemandForecaster(ForecastConfig(tau_s=1.0))
    end = feed_uniform(f, rate=10.0, duration=5.0)
    assert f.rate(end) == pytest.approx(10.0, rel=0.2)


def test_ewma_decays_when_arrivals_stop():
    f = DemandForecaster(ForecastConfig(tau_s=1.0))
    end = feed_uniform(f, rate=10.0, duration=5.0)
    assert f.rate(end + 10.0) < 0.01 * f.rate(end)


def test_percentile_remembers_burst_after_ewma_forgot():
    cfg = ForecastConfig(tau_s=0.5, window_s=10.0, bucket_s=0.5)
    f = DemandForecaster(cfg)
    end = feed_uniform(f, rate=40.0, duration=1.0)   # one-second burst
    later = end + 5.0                                 # EWMA has decayed ~5 tau
    assert f.rate(later) < 1.0
    # The burst's buckets are still inside the window: high quantile sees it.
    assert f.percentile_rate(later, q=0.95) >= 20.0
    # ... and forecast_arrivals takes the larger of the two estimates.
    assert f.forecast_arrivals(later, horizon_s=1.0, q=0.95) >= 20.0


def test_idle_buckets_pull_the_low_quantiles_down():
    f = DemandForecaster(ForecastConfig(window_s=10.0, bucket_s=0.5))
    end = feed_uniform(f, rate=40.0, duration=1.0)
    # Most of the window is empty: the median bucket rate is zero.
    assert f.percentile_rate(end + 5.0, q=0.5) == 0.0


def test_per_function_streams_are_independent():
    f = DemandForecaster(ForecastConfig(tau_s=1.0))
    end_a = feed_uniform(f, rate=10.0, duration=3.0, function="a")
    end_b = feed_uniform(f, rate=2.0, duration=3.0, function="b", start=end_a)
    assert f.functions_seen() == ["a", "b"]
    # Each stream's estimate tracks its own rate at its own end.
    assert f.rate(end_a, "a") > 5.0
    assert 0.5 < f.rate(end_b, "b") < 5.0
    # "a" has been silent while "b" ran: its estimate decayed below "b"'s.
    assert f.rate(end_b, "a") < f.rate(end_b, "b")
    # The aggregate stream saw every arrival.
    assert f.arrivals == 30 + 6


def test_supply_integrates_into_core_seconds():
    f = DemandForecaster()
    f.observe_supply(0.0, 4)
    f.observe_supply(10.0, 8)       # 4 cores for 10 s
    f.observe_supply(15.0, 0)       # 8 cores for 5 s
    assert f.harvested_core_seconds() == pytest.approx(40.0 + 40.0)
    assert f.supply_cores() == 0.0
    # Open-ended query extrapolates the current level.
    f.observe_supply(20.0, 2)
    assert f.harvested_core_seconds(now=25.0) == pytest.approx(80.0 + 10.0)


def test_validation():
    with pytest.raises(ValueError):
        ForecastConfig(tau_s=0.0)
    with pytest.raises(ValueError):
        ForecastConfig(bucket_s=2.0, window_s=1.0)
    f = DemandForecaster()
    f.observe_arrival(5.0)
    with pytest.raises(ValueError):
        f.observe_arrival(4.0)      # time went backwards
    with pytest.raises(ValueError):
        f.observe_supply(0.0, -1)
    with pytest.raises(ValueError):
        f.forecast_arrivals(0.0, horizon_s=-1.0)
    with pytest.raises(ValueError):
        f.percentile_rate(6.0, q=1.5)


def test_unknown_function_forecasts_zero():
    f = DemandForecaster()
    assert f.rate(0.0, "never-seen") == 0.0
    assert f.forecast_arrivals(0.0, 1.0, function="never-seen") == 0.0
