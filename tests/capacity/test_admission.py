"""Admission controller unit tests: buckets, priorities, backpressure."""

import pytest

from repro.capacity import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    TenantQuota,
    TokenBucket,
)
from repro.rfaas import AdmissionRejected as ReexportedRejection
from repro.sim import Environment


def admit_all(env, controller, requests):
    """Drive admissions; returns [(tenant, admitted_at | exception)]."""
    outcomes = []

    def one(tenant, priority):
        try:
            yield from controller.admit(tenant, priority=priority)
        except AdmissionRejected as err:
            outcomes.append((tenant, err))
        else:
            outcomes.append((tenant, env.now))

    for tenant, priority in requests:
        env.process(one(tenant, priority))
    env.run()
    return outcomes


def test_rejection_is_part_of_the_rfaas_taxonomy():
    assert ReexportedRejection is AdmissionRejected
    err = AdmissionRejected("nope", reason="queue_full", tenant="t")
    assert err.reason == "queue_full" and err.tenant == "t"


def test_token_bucket_accrues_and_caps():
    bucket = TokenBucket(TenantQuota(rate_per_s=2.0, burst=4.0))
    for _ in range(4):
        assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    assert bucket.eta(0.0) == pytest.approx(0.5)
    assert bucket.try_take(0.5)
    # Refill never exceeds the burst capacity.
    assert bucket.eta(100.0) == 0.0
    bucket._refill(100.0)
    assert bucket.tokens == 4.0


def test_token_bucket_float_residue_does_not_starve():
    """A sleep of exactly eta must succeed despite float residue."""
    bucket = TokenBucket(TenantQuota(rate_per_s=3.0, burst=1.0))
    t = 0.0
    for _ in range(1000):
        eta = bucket.eta(t)
        t += eta
        assert bucket.try_take(t), f"starved at t={t}"


def test_burst_then_queue_then_rate_limited():
    env = Environment()
    controller = AdmissionController(env, AdmissionConfig(
        default_quota=TenantQuota(rate_per_s=2.0, burst=2.0),
    ))
    outcomes = admit_all(env, controller, [("t", 1)] * 6)
    times = [t for _, t in outcomes]
    # Two ride the burst immediately, the rest drain at 2/s.
    assert times[:2] == [0.0, 0.0]
    assert times[2:] == pytest.approx([0.5, 1.0, 1.5, 2.0])
    assert controller.admitted == 6 and controller.rejected == 0


def test_bounded_queue_rejects_with_queue_full():
    env = Environment()
    controller = AdmissionController(env, AdmissionConfig(
        max_queue_depth=2,
        default_quota=TenantQuota(rate_per_s=1.0, burst=1.0),
    ))
    outcomes = admit_all(env, controller, [("t", 1)] * 5)
    rejections = [err for _, err in outcomes if isinstance(err, AdmissionRejected)]
    assert len(rejections) == 2          # 1 fast-path + 2 queued + 2 rejected
    assert all(err.reason == "queue_full" for err in rejections)
    assert controller.admitted == 3 and controller.rejected == 2


def test_queue_wait_bound_rejects_with_timeout():
    env = Environment()
    controller = AdmissionController(env, AdmissionConfig(
        max_queue_wait_s=0.4,
        default_quota=TenantQuota(rate_per_s=1.0, burst=1.0),
    ))
    outcomes = admit_all(env, controller, [("t", 1)] * 3)
    admitted = [t for _, t in outcomes if not isinstance(t, AdmissionRejected)]
    rejected = [err for _, err in outcomes if isinstance(err, AdmissionRejected)]
    # First takes the burst token; second would wait 1 s > 0.4 s bound.
    assert admitted == [0.0]
    assert len(rejected) == 2
    assert all(err.reason == "timeout" for err in rejected)
    assert env.now >= 0.4


def test_priorities_overtake_arrival_order():
    env = Environment()
    controller = AdmissionController(env, AdmissionConfig(
        default_quota=TenantQuota(rate_per_s=1.0, burst=1.0),
    ))
    order = []

    def one(label, priority, delay):
        yield env.timeout(delay)
        yield from controller.admit("t", priority=priority)
        order.append(label)

    # Same tenant throughout: one bucket, so the later requests contend.
    env.process(one("burst", 1, 0.0))        # takes the only token
    env.process(one("low", 5, 0.01))         # queues first...
    env.process(one("high", 0, 0.02))        # ...but lower priority value wins
    env.run()
    assert order == ["burst", "high", "low"]


def test_per_tenant_buckets_are_isolated():
    env = Environment()
    controller = AdmissionController(env, AdmissionConfig(
        default_quota=TenantQuota(rate_per_s=1.0, burst=1.0),
        quotas={"vip": TenantQuota(rate_per_s=100.0, burst=10.0)},
    ))
    outcomes = admit_all(
        env, controller, [("vip", 1)] * 5 + [("slow", 1)] * 2)
    vip_times = [t for tenant, t in outcomes if tenant == "vip"]
    slow_times = [t for tenant, t in outcomes if tenant == "slow"]
    assert vip_times == [0.0] * 5            # vip burst absorbs all five
    assert slow_times == pytest.approx([0.0, 1.0])


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_queue_depth=-1)
    with pytest.raises(ValueError):
        AdmissionConfig(max_queue_wait_s=0.0)
    with pytest.raises(ValueError):
        TenantQuota(rate_per_s=0.0)
    with pytest.raises(ValueError):
        TenantQuota(burst=0.5)
