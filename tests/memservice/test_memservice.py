"""Memory service function and remote paging tests."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.memservice import (
    MemoryClient,
    MemoryServiceFunction,
    RemotePager,
    TrafficPattern,
)
from repro.network import IBVERBS, NetworkFabric
from repro.rfaas import NodeLoadRegistry
from repro.sim import Environment

MiB = 1024**2
GiB = 1024**3


class Setup:
    def __init__(self):
        self.env = Environment()
        self.cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
        self.cluster.add_nodes("n", 2, DAINT_MC)
        provider = replace(IBVERBS, params=IBVERBS.params.with_jitter(0.0))
        self.fabric = NetworkFabric(self.env, self.cluster, provider,
                                    rng=np.random.default_rng(0))
        self.loads = NodeLoadRegistry(self.cluster)
        self.service = MemoryServiceFunction(
            self.env, self.cluster.node("n0001"), size_bytes=1 * GiB, loads=self.loads
        )

    def connect_client(self):
        holder = {}

        def proc():
            yield self.service.start()
            conn = yield self.fabric.connect("n0000", "n0001", user="app")
            holder["client"] = MemoryClient(self.env, self.fabric, self.service, conn)

        self.env.process(proc())
        self.env.run()
        return holder["client"]


def test_service_allocates_node_memory():
    s = Setup()
    s.connect_client()
    node = s.cluster.node("n0001")
    assert node.allocated_memory == 1 * GiB
    assert node.allocations_of_kind("memservice")
    s.service.stop()
    assert node.allocated_memory == 0


def test_double_start_rejected():
    s = Setup()
    s.connect_client()
    with pytest.raises(RuntimeError):
        s.service.start()


def test_read_write_counts_and_bounds():
    s = Setup()
    client = s.connect_client()

    def proc():
        yield client.read(0, 10 * MiB)
        yield client.write(512 * MiB, 10 * MiB)

    s.env.process(proc())
    s.env.run()
    assert s.service.bytes_read == 10 * MiB
    assert s.service.bytes_written == 10 * MiB
    with pytest.raises(ValueError):
        client.read(1 * GiB - 1, 2)  # crosses the end
    with pytest.raises(ValueError):
        client.read(-1, 10)


def test_access_requires_active_service():
    s = Setup()
    client = s.connect_client()
    s.service.stop()
    with pytest.raises(RuntimeError):
        client.read(0, 1024)


def test_stream_registers_background_traffic():
    s = Setup()
    client = s.connect_client()
    pattern = TrafficPattern(op_bytes=10 * MiB, interval_s=0.01)
    observed = {}

    def watcher():
        yield s.env.timeout(0.05)
        observed["netbw"] = s.loads._extra_netbw.get("n0001", 0.0)

    def proc():
        ops = yield client.stream(pattern, duration_s=0.2)
        observed["ops"] = ops

    s.env.process(proc())
    s.env.process(watcher())
    s.env.run()
    assert observed["ops"] > 5
    assert observed["netbw"] > 100 * MiB  # hundreds of MB/s offered
    # Cleared after the stream finished.
    assert s.loads._extra_netbw.get("n0001", 0.0) == 0.0


def test_traffic_pattern_validation():
    with pytest.raises(ValueError):
        TrafficPattern(op_bytes=0, interval_s=0.1)
    with pytest.raises(ValueError):
        TrafficPattern(op_bytes=1, interval_s=-1)
    p = TrafficPattern(op_bytes=10 * MiB, interval_s=0.0)
    assert p.mean_bandwidth(0.01) == pytest.approx(10 * MiB / 0.01)


def test_pager_faults_then_hits():
    s = Setup()
    client = s.connect_client()
    pager = RemotePager(s.env, client, page_bytes=2 * MiB, resident_pages=4)
    outcomes = []

    def proc():
        for page in (0, 1, 0, 1):
            hit = yield pager.touch(page)
            outcomes.append(hit)

    s.env.process(proc())
    s.env.run()
    assert outcomes == [False, False, True, True]
    assert pager.faults == 2 and pager.hits == 2


def test_pager_lru_eviction_and_writeback():
    s = Setup()
    client = s.connect_client()
    pager = RemotePager(s.env, client, page_bytes=2 * MiB, resident_pages=2)

    def proc():
        yield pager.touch(0, dirty=True)
        yield pager.touch(1)
        yield pager.touch(2)   # evicts page 0 (dirty -> writeback)
        hit = yield pager.touch(0)
        assert not hit

    s.env.process(proc())
    s.env.run()
    assert pager.writebacks == 1
    assert pager.resident_count == 2


def test_pager_flush_writes_dirty_pages():
    s = Setup()
    client = s.connect_client()
    pager = RemotePager(s.env, client, page_bytes=2 * MiB, resident_pages=8)

    def proc():
        yield pager.touch(0, dirty=True)
        yield pager.touch(1, dirty=True)
        yield pager.touch(2, dirty=False)
        flushed = yield pager.flush()
        assert flushed == 2

    s.env.process(proc())
    s.env.run()
    assert s.service.bytes_written == 2 * 2 * MiB


def test_pager_validation():
    s = Setup()
    client = s.connect_client()
    with pytest.raises(ValueError):
        RemotePager(s.env, client, page_bytes=0)
    with pytest.raises(ValueError):
        RemotePager(s.env, client, page_bytes=2 * GiB)  # bigger than buffer
    pager = RemotePager(s.env, client, page_bytes=2 * MiB)
    with pytest.raises(ValueError):
        pager.touch(10**9)


def test_service_validation():
    s = Setup()
    with pytest.raises(ValueError):
        MemoryServiceFunction(s.env, s.cluster.node("n0000"), size_bytes=0)
