"""ReplicatedMemoryService: replication, fencing, migration, repair, failover."""

import pytest

from repro.api import ClusterSpec, Platform
from repro.faults import FaultPlan
from repro.memservice import DurableMemoryConfig
from repro.rfaas.errors import DataLossError, MemoryServiceUnavailable
from repro.sim import Environment
from repro.slurm import BatchScheduler

MiB = 1024**2
GiB = 1024**3

HOSTS = ("n0001", "n0002", "n0003", "n0004")


def build(replication=2, repair_interval_s=0.2, size=48 * MiB, chunk=16 * MiB,
          hosts=HOSTS, faults=None, nodes=6, **config_kwargs):
    config = DurableMemoryConfig(
        size_bytes=size, chunk_bytes=chunk, replication=replication,
        repair_interval_s=repair_interval_s, hosts=hosts, **config_kwargs,
    )
    platform = Platform.build(
        ClusterSpec(nodes=nodes, jitter=0.0), seed=0, telemetry=True,
        faults=faults, durable_memory=config,
    )
    return platform


def drive(platform, generator, until=5.0):
    done = {}

    def wrapper():
        result = yield from generator
        done["value"] = result

    platform.process(wrapper())
    platform.run_until(until)
    assert "value" in done, "driver process did not finish"
    return done["value"]


# -- configuration and wiring --------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        DurableMemoryConfig(size_bytes=0)
    with pytest.raises(ValueError):
        DurableMemoryConfig(chunk_bytes=0)
    with pytest.raises(ValueError):
        DurableMemoryConfig(replication=0)
    with pytest.raises(ValueError):
        DurableMemoryConfig(repair_interval_s=-1.0)


def test_build_places_k_replicas_on_distinct_nodes_and_groups():
    platform = build(replication=2)
    service = platform.durable_memory
    assert service is not None and service.active
    assert service.num_chunks == 3  # 48 MiB / 16 MiB
    topology = platform.cluster.topology
    for chunk in service.chunks:
        nodes = chunk.nodes()
        assert len(nodes) == 2 and len(set(nodes)) == 2
        groups = {topology.group_of(platform.cluster.node_index(n)) for n in nodes}
        assert len(groups) == 2  # wide enough cluster: distinct groups too
    assert service.repair.running


def test_build_rejects_unsatisfiable_replication():
    with pytest.raises(ValueError):
        build(replication=3, hosts=("n0001", "n0002"))


def test_memory_client_requires_durable_memory():
    platform = Platform.build(ClusterSpec(nodes=2), seed=0)
    with pytest.raises(RuntimeError):
        platform.memory_client("n0000")


def test_chunk_span_covers_partial_last_chunk():
    platform = build(size=40 * MiB, chunk=16 * MiB)  # chunks 16/16/8
    service = platform.durable_memory
    assert service.chunks[-1].size_bytes == 8 * MiB
    assert service.chunk_span(0, 40 * MiB) == [
        (0, 16 * MiB), (1, 16 * MiB), (2, 8 * MiB)
    ]
    assert service.chunk_span(16 * MiB - 1, 2) == [(0, 1), (1, 1)]
    assert service.chunk_span(39 * MiB, 0) == [(2, 0)]
    with pytest.raises(ValueError):
        service.validate_access(39 * MiB, 2 * MiB)  # crosses the end


def test_stop_is_idempotent_and_invalidates_access():
    platform = build()
    service = platform.durable_memory
    hosted = sum(len(c.replicas) for c in service.chunks)
    assert hosted == 6
    service.stop()
    service.stop()  # no double-free
    for name in HOSTS:
        assert platform.cluster.node(name).allocated_memory == 0
    with pytest.raises(MemoryServiceUnavailable):
        service.validate_access(0, 1)


def test_service_ids_are_per_environment():
    a, b = Environment(), Environment()
    assert [a.next_id("memservice") for _ in range(3)] == [1, 2, 3]
    assert b.next_id("memservice") == 1  # fresh env, fresh stream
    assert a.next_id("other") == 1       # streams are independent


# -- reads, writes, and versioning ---------------------------------------------

def test_write_stamps_every_replica_and_read_verifies():
    platform = build(replication=2)
    service = platform.durable_memory
    client = platform.memory_client("n0000")

    def work():
        put = yield client.write(0, 20 * MiB)  # spans chunks 0 and 1
        got = yield client.read(0, 20 * MiB)
        return put, got

    put, got = drive(platform, work())
    assert put == got == 20 * MiB
    for chunk in service.chunks[:2]:
        assert chunk.version == 1
        assert all(r.version == 1 for r in chunk.replicas)
    assert service.chunks[2].version == 0
    assert client.failovers == 0 and client.data_losses == 0


def test_crash_read_fails_over_and_repair_restores_the_factor():
    platform = build(replication=2, repair_interval_s=0.2)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    victim = service.chunks[0].nodes()[0]

    def work():
        yield client.write(0, 48 * MiB)
        lost = service.kill_node(victim, cause="test")
        assert lost >= 1
        got = yield client.read(0, 48 * MiB)
        return got

    got = drive(platform, work())
    assert got == 48 * MiB
    assert client.data_losses == 0
    assert service.replicas_lost >= 1
    platform.run_until(8.0)
    assert len(service.under_replicated_chunks()) == 0
    assert service.repair.repairs >= 1
    for chunk in service.chunks:
        nodes = chunk.nodes()
        assert len(nodes) == 2 and len(set(nodes)) == 2


def test_unreplicated_crash_raises_data_loss():
    platform = build(replication=1)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    victim = service.chunks[0].nodes()[0]
    offsets = [i * 16 * MiB for i, c in enumerate(service.chunks)
               if c.nodes() == [victim]]
    assert offsets

    def work():
        yield client.write(0, 48 * MiB)
        service.kill_node(victim, cause="test")
        with pytest.raises(DataLossError):
            yield client.read(offsets[0], 1 * MiB)
        with pytest.raises(DataLossError):
            yield client.write(offsets[0], 1 * MiB)
        return True

    assert drive(platform, work())
    assert client.data_losses >= 1
    # Nothing to repair from: the chunk stays lost.
    platform.run_until(8.0)
    assert len(service.under_replicated_chunks()) >= 1
    assert service.repair.repairs == 0


# -- fencing: a partitioned stale replica cannot serve torn reads -------------

def test_partition_fences_missed_writes_and_read_averts_stale_replica():
    platform = build(replication=2, repair_interval_s=30.0)  # repair out of frame
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    primary = service.chunks[0].nodes()[0]

    def work():
        yield client.write(0, 1 * MiB)
        platform.fabric.conditioner.partition([primary])
        yield client.write(0, 1 * MiB)  # primary misses this write
        assert service.epoch == 1      # fence bumped
        assert service.degraded_writes == 1
        platform.fabric.conditioner.heal([primary])
        got = yield client.read(0, 1 * MiB)
        return got

    got = drive(platform, work())
    assert got == 1 * MiB
    # The healed-but-stale primary was reached, rejected, and failed over.
    assert client.stale_reads_averted == 1
    assert client.failovers == 1
    assert client.data_losses == 0
    chunk = service.chunks[0]
    stale = next(r for r in chunk.replicas if r.node_name == primary)
    assert stale.epoch < chunk.epoch and stale.version < chunk.version


def test_repair_resyncs_fenced_replica_in_place():
    platform = build(replication=2, repair_interval_s=0.2)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    primary = service.chunks[0].nodes()[0]

    def work():
        platform.fabric.conditioner.partition([primary])
        yield client.write(0, 1 * MiB)
        platform.fabric.conditioner.heal([primary])
        return True

    drive(platform, work())
    platform.run_until(8.0)
    assert service.repair.resyncs >= 1
    chunk = service.chunks[0]
    assert all(service.is_clean(chunk, r) for r in chunk.replicas)
    assert len(service.under_replicated_chunks()) == 0


def test_fully_unreachable_write_aborts_without_committing():
    platform = build(replication=2, repair_interval_s=30.0)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    nodes = service.chunks[0].nodes()

    def work():
        yield client.write(0, 1 * MiB)
        platform.fabric.conditioner.partition(nodes)
        with pytest.raises(MemoryServiceUnavailable):
            yield client.write(0, 1 * MiB)
        # Aborted: the committed version did not advance, data is intact.
        assert service.chunks[0].version == 1
        platform.fabric.conditioner.heal(nodes)
        got = yield client.read(0, 1 * MiB)
        return got

    assert drive(platform, work()) == 1 * MiB
    assert client.data_losses == 0


def test_transient_partition_is_unavailable_not_data_loss():
    platform = build(replication=1, repair_interval_s=30.0)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    only = service.chunks[0].nodes()[0]

    def work():
        yield client.write(0, 1 * MiB)
        platform.fabric.conditioner.partition([only])
        with pytest.raises(MemoryServiceUnavailable):
            yield client.read(0, 1 * MiB)
        platform.fabric.conditioner.heal([only])
        got = yield client.read(0, 1 * MiB)
        return got

    assert drive(platform, work()) == 1 * MiB
    assert client.data_losses == 0  # the data was never gone


def test_strict_quorum_surfaces_degraded_writes():
    platform = build(replication=2, repair_interval_s=30.0, strict_quorum=True)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    primary = service.chunks[0].nodes()[0]

    def work():
        platform.fabric.conditioner.partition([primary])
        with pytest.raises(MemoryServiceUnavailable):
            yield client.write(0, 1 * MiB)
        platform.fabric.conditioner.heal([primary])
        return True

    assert drive(platform, work())
    # Strict mode still commits on the replicas that acked.
    assert service.chunks[0].version == 1
    assert service.degraded_writes == 1


# -- reclaim integration: manager hooks and scheduler drains -------------------

def test_immediate_manager_reclaim_destroys_hosted_replicas():
    platform = build(replication=2)
    service = platform.durable_memory
    victim = service.chunks[0].nodes()[0]
    platform.register_node(victim, cores=2, memory_bytes=1 * GiB)
    platform.manager.remove_node(victim, immediate=True)
    assert victim not in service.hosting_nodes()
    assert service.replicas_lost >= 1


def test_graceful_manager_reclaim_migrates_chunks_off():
    platform = build(replication=2)
    service = platform.durable_memory
    victim = service.chunks[0].nodes()[0]
    hosted = sum(1 for c in service.chunks for r in c.replicas
                 if r.node_name == victim)
    platform.register_node(victim, cores=2, memory_bytes=1 * GiB)
    platform.manager.remove_node(victim, immediate=False)
    platform.run_until(2.0)
    assert victim not in service.hosting_nodes()
    assert service.migrations == hosted
    assert service.replicas_lost == 0
    assert not platform.cluster.node(victim).allocations_of_kind("memservice")
    for chunk in service.chunks:
        assert len(chunk.replicas) == 2
        assert all(service.is_clean(chunk, r) for r in chunk.replicas)


def test_scheduler_drain_triggers_live_migration():
    platform = build(replication=2)
    service = platform.durable_memory
    scheduler = BatchScheduler(platform.env, platform.cluster)
    service.attach_scheduler(scheduler)
    victim = service.chunks[0].nodes()[0]
    scheduler.drain_node(victim)
    scheduler.drain_node(victim)  # idempotent
    platform.run_until(2.0)
    assert victim not in service.hosting_nodes()
    assert service.migrations >= 1
    # Placement never targets the draining node.
    assert all(victim not in c.nodes() for c in service.chunks)
    scheduler.restore_node(victim)


def test_migration_charges_time_through_the_fabric():
    platform = build(replication=2)
    service = platform.durable_memory
    victim = service.chunks[0].nodes()[0]
    before = platform.env.now
    service._on_drain(victim)
    platform.run_until(5.0)
    # Copying chunks over the interconnect takes simulated time.
    assert service.moved_bytes >= 16 * MiB
    assert platform.fabric.stats.bytes >= service.moved_bytes
    assert platform.env.now > before


# -- fault injection -----------------------------------------------------------

def test_injector_memservice_kill_hits_a_hosting_node():
    plan = FaultPlan(name="kill").memservice_kill(at_s=0.5)
    platform = build(replication=2, faults=plan)
    service = platform.durable_memory
    platform.run_until(1.0)
    assert [(kind, at) for at, kind, _ in platform.injector.injected] == [
        ("memservice_kill", 0.5)
    ]
    victim = platform.injector.injected[0][2]
    assert victim in HOSTS
    assert service.replicas_lost >= 1


def test_injector_memservice_kill_explicit_node_must_host_replicas():
    plan = (FaultPlan(name="kill")
            .memservice_kill(at_s=0.5, node="n0005"))  # not a host
    platform = build(replication=2, faults=plan)
    platform.run_until(1.0)
    assert platform.injector.injected == []
    assert len(platform.injector.skipped) == 1


def test_injector_memservice_kill_without_service_is_skipped():
    plan = FaultPlan(name="kill").memservice_kill(at_s=0.5)
    platform = Platform.build(ClusterSpec(nodes=2), seed=0, faults=plan)
    platform.run_until(1.0)
    assert len(platform.injector.skipped) == 1


# -- telemetry -----------------------------------------------------------------

def test_memservice_metrics_and_spans_are_recorded():
    platform = build(replication=2, repair_interval_s=0.2)
    service = platform.durable_memory
    client = platform.memory_client("n0000")
    victim = service.chunks[0].nodes()[0]

    def work():
        yield client.write(0, 48 * MiB)
        service.kill_node(victim, cause="test")
        yield client.read(0, 48 * MiB)
        return True

    drive(platform, work())
    platform.run_until(8.0)
    registry = platform.telemetry.metrics
    names = {m.name for m in registry}
    assert "repro_memservice_replicas_lost_total" in names
    assert "repro_memservice_repairs_total" in names
    assert "repro_memservice_under_replicated_count" in names
    spans = platform.telemetry.tracer.spans
    kinds = {s.name for s in spans}
    assert "memservice.node_lost" in kinds
    assert "memservice.repair" in kinds
    assert all(s.track == "memservice" for s in spans
               if s.name.startswith("memservice."))
