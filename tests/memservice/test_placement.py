"""ReplicaPlacement: deterministic, group-aware, drain-aware spreading."""

import pytest

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.memservice import ReplicaPlacement

MiB = 1024**2


def make_cluster(nodes=8, nodes_per_group=2):
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=nodes_per_group))
    cluster.add_nodes("n", nodes, DAINT_MC)
    return cluster


def names(n):
    return tuple(f"n{i:04d}" for i in range(n))


def test_rejects_empty_unknown_and_duplicate_hosts():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        ReplicaPlacement(cluster, ())
    with pytest.raises(KeyError):
        ReplicaPlacement(cluster, ("n9999",))
    with pytest.raises(ValueError):
        ReplicaPlacement(cluster, ("n0001", "n0001"))


def test_replicas_land_on_distinct_nodes_and_groups():
    cluster = make_cluster(nodes=8, nodes_per_group=2)
    placement = ReplicaPlacement(cluster, names(8))
    topology = cluster.topology
    for chunk in range(16):
        chosen = placement.replica_nodes(chunk, 3)
        assert len(chosen) == 3 and len(set(chosen)) == 3
        groups = {topology.group_of(cluster.node_index(n)) for n in chosen}
        assert len(groups) == 3  # 4 groups available: never two in one


def test_rotation_spreads_primaries_across_chunks():
    cluster = make_cluster(nodes=8, nodes_per_group=2)
    placement = ReplicaPlacement(cluster, names(8))
    primaries = [placement.replica_nodes(i, 1)[0] for i in range(8)]
    # Consecutive chunks do not hammer one node.
    assert len(set(primaries)) > 1
    # And the layout is a pure function of the chunk index.
    assert primaries == [placement.replica_nodes(i, 1)[0] for i in range(8)]


def test_under_placement_is_reported_not_raised():
    cluster = make_cluster(nodes=4)
    placement = ReplicaPlacement(cluster, ("n0001", "n0002"))
    assert len(placement.replica_nodes(0, 3)) == 2
    with pytest.raises(ValueError):
        placement.replica_nodes(0, 0)


def test_exclude_and_draining_nodes_are_skipped():
    cluster = make_cluster(nodes=6, nodes_per_group=2)
    hosts = names(6)
    placement = ReplicaPlacement(cluster, hosts)
    assert "n0002" not in placement.replica_nodes(0, 5, exclude=("n0002",))
    cluster.node("n0003").draining = True
    for chunk in range(6):
        assert "n0003" not in placement.replica_nodes(chunk, 5)
    assert placement.pick_target((), 1 * MiB) != "n0003"
    cluster.node("n0003").draining = False


def test_pick_target_respects_free_memory():
    cluster = make_cluster(nodes=4, nodes_per_group=2)
    placement = ReplicaPlacement(cluster, ("n0001", "n0002"))
    target = placement.pick_target((), 1 * MiB)
    assert target in ("n0001", "n0002")
    huge = cluster.node("n0001").free_memory + cluster.node("n0002").free_memory
    assert placement.pick_target((), huge) is None
    assert placement.pick_target(("n0001", "n0002"), 1) is None
