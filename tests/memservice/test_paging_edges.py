"""RemotePager edge cases: thrash, write-back ordering, partial last page."""

import pytest

from repro.memservice import RemotePager
from repro.sim import Environment

MiB = 1024**2


class SpyClient:
    """Stand-in MemoryClient recording the operation order."""

    class _Service:
        def __init__(self, size_bytes):
            self.size_bytes = size_bytes

    def __init__(self, env, size_bytes):
        self.env = env
        self.service = self._Service(size_bytes)
        self.ops = []

    def _op(self, kind, offset, size):
        def run():
            self.ops.append((kind, offset, size))
            yield self.env.timeout(1e-3)
            return size

        return self.env.process(run())

    def read(self, offset, size):
        return self._op("read", offset, size)

    def write(self, offset, size):
        return self._op("write", offset, size)


def drive(env, generator):
    done = {}

    def wrapper():
        done["value"] = yield from generator
    env.process(wrapper())
    env.run()
    return done["value"]


def test_single_resident_page_thrashes_without_leaking_residency():
    env = Environment()
    client = SpyClient(env, 8 * MiB)
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=1)

    def work():
        for page in (0, 1, 0, 1):
            hit = yield pager.touch(page)
            assert hit is False  # every access evicts the previous page
        hit = yield pager.touch(1)
        return hit

    assert drive(env, work()) is True  # the one resident page can still hit
    assert pager.faults == 4 and pager.hits == 1
    assert pager.resident_count == 1
    # Clean pages evict silently: reads only.
    assert all(kind == "read" for kind, _, _ in client.ops)


def test_dirty_victim_is_written_back_before_the_faulting_read():
    env = Environment()
    client = SpyClient(env, 8 * MiB)
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=1)

    def work():
        yield pager.touch(0, dirty=True)
        yield pager.touch(1)  # evicts dirty page 0
        return True

    drive(env, work())
    assert pager.writebacks == 1
    assert client.ops == [
        ("read", 0, 2 * MiB),           # fault page 0 in
        ("write", 0, 2 * MiB),          # write dirty victim back first...
        ("read", 2 * MiB, 2 * MiB),     # ...then fault page 1 in
    ]


def test_dirtiness_is_sticky_until_writeback():
    env = Environment()
    client = SpyClient(env, 8 * MiB)
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=2)

    def work():
        yield pager.touch(0, dirty=True)
        yield pager.touch(0, dirty=False)  # a clean re-touch must not launder
        flushed = yield pager.flush()
        return flushed

    assert drive(env, work()) == 1
    assert ("write", 0, 2 * MiB) in client.ops


def test_partial_trailing_page_is_not_addressable():
    env = Environment()
    # 5 MiB buffer / 2 MiB pages: only the two *full* pages are pageable.
    client = SpyClient(env, 5 * MiB)
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=4)
    assert pager.total_pages == 2

    def work():
        yield pager.touch(0)
        yield pager.touch(1)
        return True

    drive(env, work())
    # The last full page ends at 4 MiB, inside the buffer.
    assert client.ops[-1] == ("read", 2 * MiB, 2 * MiB)
    with pytest.raises(ValueError):
        pager.touch(2)  # the 1 MiB tail is not a full page
    with pytest.raises(ValueError):
        pager.touch(-1)


def test_buffer_smaller_than_one_page_is_rejected():
    env = Environment()
    client = SpyClient(env, 1 * MiB)
    with pytest.raises(ValueError):
        RemotePager(env, client, page_bytes=2 * MiB)
    with pytest.raises(ValueError):
        RemotePager(env, SpyClient(env, 8 * MiB), page_bytes=0)
    with pytest.raises(ValueError):
        RemotePager(env, SpyClient(env, 8 * MiB), resident_pages=0)
