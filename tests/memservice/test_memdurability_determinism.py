"""The durable memory service's determinism contract (ISSUE acceptance).

Same seed ⇒ byte-identical memdurability JSON across *fresh
interpreters*: the paging trace is pre-generated from the seed, the
storm is an explicit plan, placement/repair draw no randomness, and the
fabric runs with ``jitter=0.0``.
"""

import json
import os
import pathlib
import subprocess
import sys

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

_SWEEP_EXPORT = """
import sys
from repro.experiments import memdurability_sweep
result = memdurability_sweep.run(factors=(1, 2), window_s=8.0, seed=7,
                                 accesses=120)
with open(sys.argv[1], "w", encoding="utf-8") as fh:
    fh.write(result.to_json())
"""


def _sweep_bytes(path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _SWEEP_EXPORT, str(path)],
        check=True, env=env, timeout=240,
    )
    return path.read_bytes()


def test_same_seed_sweep_is_byte_identical(tmp_path):
    first = _sweep_bytes(tmp_path / "a.json")
    second = _sweep_bytes(tmp_path / "b.json")
    assert len(first) > 0
    assert first == second
    # The storm really ran, and durability really divided the factors.
    points = {p["replication"]: p for p in json.loads(first)["points"]}
    assert points[1]["faults_injected"] >= 3
    assert points[1]["data_loss_accesses"] > 0
    assert points[2]["data_loss_accesses"] == 0
    assert points[2]["replicas_lost"] > 0  # survived hits, not a calm run
