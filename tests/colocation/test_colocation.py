"""History DB, requirement models, and admission policy tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, DAINT_GPU, DAINT_MC, Node
from repro.colocation import (
    CoLocationPolicy,
    CoLocationRecord,
    Decision,
    HistoryDB,
    PolicyConfig,
    RequirementModel,
    fit_performance_model,
)
from repro.interference import ResourceDemand, sample_counters
from repro.rfaas import NodeLoadRegistry

GBs = 1e9
MiB = 1024**2
GiB = 1024**3


# ---- history -----------------------------------------------------------------

def test_history_record_and_means():
    db = HistoryDB()
    db.record(CoLocationRecord("lulesh", "cg.A", 1.02, 1.30))
    db.record(CoLocationRecord("lulesh", "cg.A", 1.04, 1.40))
    assert db.has("lulesh", "cg.A")
    assert not db.has("lulesh", "ep.W")
    assert db.expected_batch_slowdown("lulesh", "cg.A") == pytest.approx(1.03)
    assert db.expected_function_slowdown("lulesh", "cg.A") == pytest.approx(1.35)
    assert db.expected_batch_slowdown("milc", "cg.A") is None
    assert len(db) == 2


def test_history_worst_partners():
    db = HistoryDB()
    db.record(CoLocationRecord("milc", "cg.A", 1.20, 1.5))
    db.record(CoLocationRecord("milc", "ep.W", 1.01, 1.0))
    worst = db.worst_partners("milc")
    assert worst[0][0] == "cg.A"
    assert db.worst_partners("unknown") == []


def test_record_validation():
    with pytest.raises(ValueError):
        CoLocationRecord("a", "b", 0.5, 1.0)


# ---- requirement models ------------------------------------------------------------

def test_fit_recovers_linear_model():
    p = np.array([1, 2, 4, 8, 16], dtype=float)
    y = 3.0 * p
    model = fit_performance_model(p, y)
    assert model.exponent == pytest.approx(1.0)
    assert model.log_power == 0
    assert model(32) == pytest.approx(96.0, rel=1e-6)


def test_fit_recovers_nlogn_model():
    p = np.array([2, 4, 8, 16, 32], dtype=float)
    y = 2.0 * p * np.log2(p)
    model = fit_performance_model(p, y)
    assert model.exponent == pytest.approx(1.0)
    assert model.log_power == 1


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_performance_model([1.0], [1.0])
    with pytest.raises(ValueError):
        fit_performance_model([0.0, 1.0], [1.0, 2.0])


def test_requirement_model_stress_factors():
    rng = np.random.default_rng(0)
    model = RequirementModel("cg")
    params = [1.0, 2.0, 4.0, 8.0]
    groups = []
    for p in params:
        demand = ResourceDemand(
            cores=1, membw=3 * GBs * p, netbw=0.1 * GBs * p, frac_membw=0.5
        )
        groups.append(sample_counters(demand, rng, windows=20))
    model.fit(params, groups)
    assert model.fitted
    stress = model.stress_factors(16.0, dram_capacity=136 * GBs,
                                  net_capacity=10 * GBs, flops_capacity=1e12)
    # Extrapolation: 16x the base 3 GB/s ~= 48 GB/s -> ~0.35 of capacity.
    assert stress["dram"] == pytest.approx(48 * GBs / (136 * GBs), rel=0.2)
    assert model.dominant_resource(16.0, 136 * GBs, 10 * GBs, 1e12) in ("dram", "net", "flops")


def test_requirement_model_validation():
    model = RequirementModel("x")
    with pytest.raises(ValueError):
        model.fit([1.0], [[], []])
    with pytest.raises(KeyError):
        model.predict("dram", 2.0)


# ---- policy ----------------------------------------------------------------------

def make_policy(config=None):
    cluster = Cluster()
    cluster.add_nodes("n", 1, DAINT_MC)
    loads = NodeLoadRegistry(cluster)
    policy = CoLocationPolicy(loads, config=config)
    return cluster.node("n0000"), loads, policy


def light_fn(label="ep.W"):
    return ResourceDemand(cores=1, membw=0.25 * GBs, llc_bytes=1 * MiB,
                          frac_membw=0.02, label=label)


def heavy_fn(label="cg.A"):
    return ResourceDemand(cores=8, membw=90 * GBs, llc_bytes=200 * MiB,
                          frac_membw=0.9, label=label)


def test_policy_requires_consent():
    node, loads, policy = make_policy()
    d = policy.decide(node, light_fn(), "lulesh", consent=False)
    assert d == Decision.NO_CONSENT
    assert not d.admitted


def test_policy_checks_resources():
    node, loads, policy = make_policy()
    node.allocate("job", cores=36)
    assert policy.decide(node, light_fn(), "lulesh") == Decision.NO_RESOURCES


def test_policy_reserve_cores():
    node, loads, policy = make_policy(PolicyConfig(reserve_cores=2))
    node.allocate("job", cores=34)
    assert policy.decide(node, light_fn(), "lulesh") == Decision.NO_RESOURCES


def test_policy_hero_job_exempt():
    node, loads, policy = make_policy()
    d = policy.decide(node, light_fn(), "hero-app", batch_nodes=512)
    assert d == Decision.HERO_JOB


def test_policy_history_admit_and_reject():
    node, loads, policy = make_policy()
    policy.observe("lulesh", "ep.W", batch_slowdown=1.01, function_slowdown=1.05)
    assert policy.decide(node, light_fn("ep.W"), "lulesh").admitted
    policy.observe("milc", "cg.A", batch_slowdown=1.30, function_slowdown=1.5)
    assert policy.decide(node, heavy_fn("cg.A"), "milc") == Decision.HISTORY_REJECT


def test_policy_heuristic_rejects_bandwidth_storm():
    node, loads, policy = make_policy()
    # A memory-bound batch job occupies the node...
    batch = ResourceDemand(cores=16, membw=60 * GBs, llc_bytes=40 * MiB,
                           frac_membw=0.6, label="milc")
    loads.add(node.name, "batch", batch)
    node.allocate("job", cores=16)
    # ...a bandwidth-hungry function would push it past the threshold.
    d = policy.decide(node, heavy_fn(), "milc")
    assert d == Decision.HEURISTIC_REJECT
    # A compute-bound function is fine.
    assert policy.decide(node, light_fn(), "milc").admitted


def test_policy_gpu_availability_via_gres():
    cluster = Cluster()
    cluster.add_node(Node("g0", DAINT_GPU))
    loads = NodeLoadRegistry(cluster)
    policy = CoLocationPolicy(loads)
    node = cluster.node("g0")
    assert policy.decide(node, light_fn(), None, needs_gpus=1).admitted
    node.allocate("job", cores=1, gpus=1)
    assert policy.decide(node, light_fn(), None, needs_gpus=1) == Decision.NO_RESOURCES


def test_policy_decision_accounting():
    node, loads, policy = make_policy()
    policy.decide(node, light_fn(), "lulesh")
    policy.decide(node, light_fn(), "lulesh", consent=False)
    assert policy.decisions[Decision.ADMIT] == 1
    assert policy.decisions[Decision.NO_CONSENT] == 1


def test_policy_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(max_batch_slowdown=0.9)
    with pytest.raises(ValueError):
        PolicyConfig(hero_job_nodes=0)
