"""Sharded control plane: million-client load storm throughput/p99.

Companion to ``bench_managerha.py`` for the sharded control plane
(``src/repro/shard/``) and the open-loop workload engine
(``src/repro/loadgen/``).  The committed ``BENCH_loadstorm.json``
records three kinds of baseline and ``tools/perfgate.py --bench
loadstorm`` fails the build when any regresses:

* ``loadstorm_throughput`` — **simulated** completed-request throughput
  of one :func:`repro.experiments.loadstorm_sweep.scenario` point with
  four shards under an open-loop storm that saturates a single shard's
  serialization ceiling (metric ``requests_per_s``, floor, tight
  tolerance: this is the PR's acceptance bar — sharding the plane must
  keep buying throughput).  The recorded "before" is the same storm
  against one shard, so "speedup" records what sharding buys.
* ``loadstorm_p99`` — **simulated** p99 request latency at four shards
  (metric ``latency_ms``, ceiling): catches batching/rebalance
  regressions that push the open-loop queue into the tail.
* ``loadstorm_sweep_wall`` — wall clock of a reduced ``loadstorm``
  sweep through the serial path (metric ``wall_s``, loose tolerance):
  catches structural slowdowns in ring/batcher/ledger bookkeeping.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import loadstorm_sweep

pytestmark = pytest.mark.perf

DEFAULT_REPEATS = 3

#: The storm for the single-point scenarios: 2400 req/s is ~2x the
#: one-shard serialization ceiling, so the unsharded plane visibly
#: drowns while four shards (two nodes each) keep up.
BENCH_PARAMS = {
    "window_s": 4.0,
    "rate_per_s": 2400.0,
    "population": 400_000,
    "zipf_s": 1.1,
    "service_s": 0.05,
    "arrival": "poisson",
    "nodes": 8,
    "cores_per_node": 24,
    "max_batch": 32,
    "crash_at_frac": 0.0,
}

#: Reduced sweep for the wall-clock scenario.
WALL_SHARDS = (1, 2)
WALL_PARAMS = dict(window_s=2.0, rate_per_s=600.0, population=50_000,
                   nodes=4, cores_per_node=8)


def _simulated_point(shards: int) -> dict:
    return loadstorm_sweep.scenario({**BENCH_PARAMS, "shards": shards}, seed=0)


def measure_throughput(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats  # deterministic simulated time: repeats cannot change it
    point = _simulated_point(shards=4)
    return {
        "metric": "requests_per_s",
        "value": point["throughput_rps"],
        "admitted": point["admitted"],
        "modeled": True,
    }


def measure_p99(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats
    point = _simulated_point(shards=4)
    return {
        "metric": "latency_ms",
        "value": point["p99_ms"],
        "admitted": point["admitted"],
        "modeled": True,
    }


def measure_sweep_wall(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        loadstorm_sweep.run(shards=WALL_SHARDS, **WALL_PARAMS)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "wall_s",
        "value": best,
        "scenarios": len(WALL_SHARDS),
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_loadstorm.json's "scenarios" table.
SCENARIOS = {
    "loadstorm_throughput": measure_throughput,
    "loadstorm_p99": measure_p99,
    "loadstorm_sweep_wall": measure_sweep_wall,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_one_shard_drowns_in_the_storm(report):
    point = _simulated_point(shards=1)
    report(f"loadstorm shards=1: {point['throughput_rps']:.0f} req/s, "
           f"p99 {point['p99_ms']:.0f} ms (saturation expected)")
    assert point["throughput_rps"] < 1000
    assert point["conservation_ok"]  # drowning honestly still conserves


def test_four_shards_meet_the_acceptance_bar(report):
    one = _simulated_point(shards=1)
    four = _simulated_point(shards=4)
    gain = four["throughput_rps"] / one["throughput_rps"]
    report(f"loadstorm shards=4: {four['throughput_rps']:.0f} req/s "
           f"({gain:.1f}x over one shard), p99 {four['p99_ms']:.0f} ms")
    assert gain >= 2.0
    assert four["p99_ms"] < one["p99_ms"]
    assert four["conservation_ok"]


def test_sweep_wall(report):
    result = measure_sweep_wall(repeats=1)
    report(f"loadstorm sweep ({result['scenarios']} shard counts, "
           f"{WALL_PARAMS['window_s']:g}s windows): {result['value']:.2f}s wall")
    assert result["value"] > 0


if __name__ == "__main__":
    # Regenerate BENCH_loadstorm.json: "before" on the throughput row is
    # the one-shard point, so "speedup" records what sharding buys.
    import json
    import pathlib

    one = _simulated_point(shards=1)
    throughput = measure_throughput()
    p99 = measure_p99()
    wall = measure_sweep_wall()
    baseline = {
        "benchmark": "sharded control plane (open-loop million-client load storm)",
        "description": "completed-request throughput and p99 with four shards "
                       "vs one, plus serial loadstorm sweep wall clock",
        "scenarios": {
            "loadstorm_throughput": {
                "metric": "requests_per_s",
                "after": round(throughput["value"], 4),
                "before": round(one["throughput_rps"], 4),
                "speedup": round(throughput["value"] / one["throughput_rps"], 2),
                "modeled": True,
                "admitted": throughput["admitted"],
            },
            "loadstorm_p99": {
                "metric": "latency_ms",
                "after": round(p99["value"], 4),
                "before": round(one["p99_ms"], 4),
                "speedup": round(one["p99_ms"] / p99["value"], 2),
                "modeled": True,
                "admitted": p99["admitted"],
            },
            "loadstorm_sweep_wall": {
                "metric": "wall_s",
                "after": round(wall["value"], 4),
                "before": round(wall["value"], 4),
                "speedup": 1.0,
                "scenarios": wall["scenarios"],
            },
        },
        # The simulated throughput/latency are deterministic: any drift
        # is a shard-plane behaviour change, so gate them tightly.  Wall
        # time is noisy.
        "tolerance": {"requests_per_s": 0.02, "latency_ms": 0.1,
                      "wall_s": 0.5},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_loadstorm.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
