"""Fig. 7 — rFaaS vs libfabric invocation latency (median and p95)."""

from repro.experiments import fig07_latency


def test_fig07_latency(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig07_latency.run(samples=200, seed=0),
        rounds=1, iterations=1,
    )
    report(fig07_latency.format_report(result))
    small_hot = result.hot[0]
    small_fabric = result.fabric[0]
    assert small_hot.median_s < 10e-6                      # single-digit us
    assert small_hot.median_s < small_fabric.median_s + 2e-6
    assert result.warm[0].median_s > small_hot.median_s + 5e-6
