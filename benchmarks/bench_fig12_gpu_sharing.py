"""Fig. 12 — GPU co-location: batch GPU jobs + Rodinia GPU functions."""

from repro.experiments import fig12_gpu_sharing


def test_fig12_gpu_sharing(benchmark, report):
    result = benchmark.pedantic(fig12_gpu_sharing.run, rounds=1, iterations=1)
    report(fig12_gpu_sharing.format_report(result))
    slowdowns = [c.batch_slowdown for c in result.cells]
    over = [s for s in slowdowns if s > 1.05]
    assert over and len(over) <= len(slowdowns) // 4    # few outliers
    assert max(slowdowns) < 1.15                        # paper worst: 10.5%
    assert result.cost_discount == 0.25
