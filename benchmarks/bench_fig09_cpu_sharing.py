"""Fig. 9 — CPU sharing: LULESH batch job + NAS FaaS-like workloads."""

from repro.experiments import fig09_cpu_sharing


def test_fig09_cpu_sharing(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig09_cpu_sharing.run(), rounds=1, iterations=1
    )
    report(fig09_cpu_sharing.format_report(result))
    lulesh = [c for c in result.cells if c.batch_app == "lulesh"]
    # Paper: batch impact negligible; worst partner is CG.
    assert all(c.batch_slowdown < 1.10 for c in lulesh)
    assert all(c.batch_slowdown < 1.03 for c in lulesh if c.nas != "cg.A")
    assert all(c.faas_slowdown >= c.batch_slowdown - 1e-9 for c in lulesh)
