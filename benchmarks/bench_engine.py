"""Engine perf harness: events/sec and wall time on three scenarios.

This file is both a benchmark module (``pytest benchmarks/bench_engine.py
-m perf``) and a scenario library imported by ``tools/perfgate.py``, which
compares live measurements against the committed ``BENCH_engine.json``
baseline and fails on regressions beyond the configured tolerance.

Scenarios:

* ``event_loop`` — a pure engine microbench with no model code: timeout
  churn (half zero-delay), trigger/wait event chains, mostly-uncontended
  and contended resource handoffs, and process fan-out/fan-in.  Reported
  as events/sec (``Environment.event_count`` over the drain wall time).
* ``fig07_latency`` — the end-to-end invocation latency sweep (hot/warm
  executors over RDMA), wall time.
* ``chaos_sweep`` — the fault-injection sweep (telemetry active, so the
  traced path is what is measured), wall time.

All scenarios are deterministic; only the wall clock varies between
machines, which is why the perf gate compares against a per-repo
committed baseline with a generous tolerance instead of absolute numbers.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import chaos_sweep, fig07_latency
from repro.sim import Environment
from repro.sim.resources import Resource

pytestmark = pytest.mark.perf

#: Best-of repeats per measurement (first run also warms imports/JIT-less
#: caches like the regex and hop-latency caches).
DEFAULT_REPEATS = 3


def build_event_loop(env: Environment) -> None:
    """Populate ``env`` with the canonical microbench process mix.

    The mix mirrors the hot paths of the real simulator: zero-delay
    control events and short timeouts (invocation dispatch/execute
    chains), trigger/wait pairs (lease grants, transfer completions),
    resource slot handoffs (executor cores, NIC channels), and one
    process per invocation fan-out.
    """

    def churn(pid: int, iters: int):
        for i in range(iters):
            yield env.timeout(0.0 if (pid + i) % 2 == 0 else 1e-6 * ((pid + i) % 5 + 1))

    def triggered(rounds: int):
        for i in range(rounds):
            ev = env.event()

            def trigger(ev=ev, i=i):
                yield env.timeout(0.0)
                ev.succeed(i)

            env.process(trigger())
            value = yield ev
            assert value == i

    def slots(res: Resource, iters: int):
        for _ in range(iters):
            with res.request() as req:
                yield req
                yield env.timeout(0.0)

    def leaf():
        yield env.timeout(1e-6)
        return 1

    def parent(children: int):
        total = 0
        for _ in range(children):
            total += yield env.process(leaf())
        return total

    for pid in range(40):
        env.process(churn(pid, 2000))
    for _ in range(10):
        env.process(triggered(800))
    wide = Resource(env, capacity=32)
    for _ in range(8):
        env.process(slots(wide, 1500))
    narrow = Resource(env, capacity=2)
    for _ in range(4):
        env.process(slots(narrow, 500))
    for _ in range(50):
        env.process(parent(20))


def run_event_loop() -> tuple[int, float]:
    """One microbench run; returns (events processed, wall seconds)."""
    env = Environment()
    build_event_loop(env)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return env.event_count, wall


def run_fig07() -> None:
    fig07_latency.run(samples=40, seed=0)


def run_chaos() -> None:
    chaos_sweep.run(rates=(0.0, 8.0), window_s=10.0, seed=0)


def measure_event_loop(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        events, wall = run_event_loop()
        if best is None or wall < best[1]:
            best = (events, wall)
    events, wall = best
    return {
        "metric": "events_per_s",
        "value": events / wall,
        "events": events,
        "wall_s": wall,
    }


def _measure_wall(fn, repeats: int) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {"metric": "wall_s", "value": best, "wall_s": best}


#: name -> callable(repeats) -> {"metric", "value", ...}; the names match
#: the keys of BENCH_engine.json's "scenarios" table.
SCENARIOS = {
    "event_loop": measure_event_loop,
    "fig07_latency": lambda repeats=DEFAULT_REPEATS: _measure_wall(run_fig07, repeats),
    "chaos_sweep": lambda repeats=DEFAULT_REPEATS: _measure_wall(run_chaos, repeats),
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_event_loop_throughput(report):
    result = measure_event_loop()
    report(
        f"engine event_loop: {result['events']} events in "
        f"{result['wall_s']:.4f}s = {result['value']:,.0f} events/s"
    )
    assert result["events"] > 100_000
    assert result["value"] > 0


def test_fig07_wall(report):
    result = SCENARIOS["fig07_latency"]()
    report(f"engine fig07_latency: {result['value']:.4f}s wall")
    assert result["value"] > 0


def test_chaos_wall(report):
    result = SCENARIOS["chaos_sweep"]()
    report(f"engine chaos_sweep: {result['value']:.4f}s wall")
    assert result["value"] > 0
