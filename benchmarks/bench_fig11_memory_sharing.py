"""Fig. 11 — remote-memory functions perturbing co-located batch jobs."""

from repro.experiments import fig11_memory_sharing


def test_fig11_memory_sharing(benchmark, report):
    result = benchmark.pedantic(fig11_memory_sharing.run, rounds=1, iterations=1)
    report(fig11_memory_sharing.format_report(result))
    lulesh = [p for p in result.points if p.app == "lulesh"]
    milc = [p for p in result.points if p.app == "milc"]
    assert all(p.slowdown < 1.02 for p in lulesh)       # LULESH unaffected
    assert max(p.slowdown for p in milc) > max(p.slowdown for p in lulesh)
    assert max(p.traffic_bw for p in result.points) > 9e9  # ~10 GB/s injected
