"""Durable memory service: replication factors under a crash+drain storm.

Runs the :mod:`repro.experiments.memdurability_sweep` schedule — the
same seeded paging trace replayed at k=1/2/3 while a storm crashes,
drains, kills, and partitions hosting nodes — and records, per factor,
the access completion ratio and checksum-verified data loss.  Besides
the printed table, the comparison is written to
``BENCH_memdurability.json`` at the repo root so regressions in the
durability guarantee are machine-checkable.
"""

import json
from pathlib import Path

from repro.analysis import render_table
from repro.experiments import memdurability_sweep

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_memdurability.json"
FACTORS = (1, 2, 3)


def test_memdurability_replication_beats_crashes(benchmark, report):
    result = benchmark.pedantic(
        lambda: memdurability_sweep.run(factors=FACTORS, seed=0),
        rounds=1, iterations=1,
    )
    points = {p.replication: p for p in result.points}
    comparison = []
    rows = []
    for k in FACTORS:
        p = points[k]
        comparison.append({
            "replication": k,
            "completion_ratio": p.completion_ratio,
            "data_loss_accesses": p.data_loss_accesses,
            "failovers": p.failovers,
            "replicas_lost": p.replicas_lost,
            "migrations": p.migrations,
            "repairs": p.repairs,
            "moved_mib": p.moved_mib,
        })
        rows.append([
            p.label, f"{p.completion_ratio * 100:.1f}%", p.data_loss_accesses,
            p.failovers, p.replicas_lost, p.migrations, p.repairs,
            f"{p.moved_mib:.1f}",
        ])
    OUTPUT.write_text(json.dumps({
        "window_s": result.window_s,
        "seed": result.seed,
        "factors": comparison,
    }, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    report(render_table(
        ["factor", "completed", "lost", "failovers", "replicas lost",
         "migrated", "repaired", "moved (MiB)"],
        rows,
        title="Durable memory — replication under a crash+drain storm",
    ) + f"\n[comparison -> {OUTPUT.name}]")
    # The acceptance bar: unreplicated memory demonstrably loses data
    # under the storm, while k >= 2 completes >= 99 % with zero loss.
    assert points[1].data_loss_accesses > 0
    for k in FACTORS:
        if k >= 2:
            assert points[k].data_loss_accesses == 0
            assert points[k].completion_ratio >= 0.99
