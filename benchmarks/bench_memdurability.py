"""Durable memory service: replication factors under a crash+drain storm.

Runs the :mod:`repro.experiments.memdurability_sweep` schedule — the
same seeded paging trace replayed at k=1/2/3 while a storm crashes,
drains, kills, and partitions hosting nodes — and gates the durability
guarantee through ``tools/perfgate.py --bench memdurability`` against
the committed ``BENCH_memdurability.json``:

* ``memdur_completion`` — **simulated** access completion ratio at k=2
  (metric ``completion_ratio``, floor, tight tolerance: the PR's
  acceptance bar — replication completes the paging trace through the
  storm).  The recorded "before" is the unreplicated k=1 ratio, so
  "speedup" records what the second replica buys.
* ``memdur_sweep_wall`` — wall clock of a reduced sweep through the
  serial path (metric ``wall_s``, loose tolerance).

The pytest entry point still prints the per-factor table and asserts
the acceptance bar (k=1 demonstrably loses data; k>=2 completes >=99 %
with zero loss).
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.experiments import memdurability_sweep

DEFAULT_REPEATS = 3

FACTORS = (1, 2, 3)

#: Reduced sweep for the wall-clock scenario.
WALL_FACTORS = (1, 2)


def _simulated_points() -> dict:
    result = memdurability_sweep.run(factors=FACTORS, seed=0)
    return {p.replication: p for p in result.points}


def measure_completion(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats  # deterministic simulated time: repeats cannot change it
    points = _simulated_points()
    return {
        "metric": "completion_ratio",
        "value": points[2].completion_ratio,
        "modeled": True,
    }


def measure_sweep_wall(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        memdurability_sweep.run(factors=WALL_FACTORS, seed=0)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "wall_s",
        "value": best,
        "scenarios": len(WALL_FACTORS),
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_memdurability.json's "scenarios" table.
SCENARIOS = {
    "memdur_completion": measure_completion,
    "memdur_sweep_wall": measure_sweep_wall,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


def test_memdurability_replication_beats_crashes(benchmark, report):
    result = benchmark.pedantic(
        lambda: memdurability_sweep.run(factors=FACTORS, seed=0),
        rounds=1, iterations=1,
    )
    points = {p.replication: p for p in result.points}
    rows = []
    for k in FACTORS:
        p = points[k]
        rows.append([
            p.label, f"{p.completion_ratio * 100:.1f}%", p.data_loss_accesses,
            p.failovers, p.replicas_lost, p.migrations, p.repairs,
            f"{p.moved_mib:.1f}",
        ])
    report(render_table(
        ["factor", "completed", "lost", "failovers", "replicas lost",
         "migrated", "repaired", "moved (MiB)"],
        rows,
        title="Durable memory — replication under a crash+drain storm",
    ))
    # The acceptance bar: unreplicated memory demonstrably loses data
    # under the storm, while k >= 2 completes >= 99 % with zero loss.
    assert points[1].data_loss_accesses > 0
    for k in FACTORS:
        if k >= 2:
            assert points[k].data_loss_accesses == 0
            assert points[k].completion_ratio >= 0.99


if __name__ == "__main__":
    # Regenerate BENCH_memdurability.json: "before" on the completion
    # row is the unreplicated k=1 ratio, so "speedup" records what the
    # second replica buys.
    import json
    import pathlib

    points = _simulated_points()
    wall = measure_sweep_wall()
    baseline = {
        "benchmark": "durable memory service (replication under a crash+drain storm)",
        "description": "paging-trace completion ratio at k=2 vs unreplicated "
                       "k=1, plus serial memdurability sweep wall clock",
        "scenarios": {
            "memdur_completion": {
                "metric": "completion_ratio",
                "after": round(points[2].completion_ratio, 4),
                "before": round(points[1].completion_ratio, 4),
                "speedup": round(
                    points[2].completion_ratio / points[1].completion_ratio, 2),
                "modeled": True,
            },
            "memdur_sweep_wall": {
                "metric": "wall_s",
                "after": round(wall["value"], 4),
                "before": round(wall["value"], 4),
                "speedup": 1.0,
                "scenarios": wall["scenarios"],
            },
        },
        # The simulated ratio is deterministic: any drift is a
        # durability behaviour change, so gate it tightly.  Wall time
        # is noisy.
        "tolerance": {"completion_ratio": 0.02, "wall_s": 0.5},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_memdurability.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
