"""GPU control-plane harness: batching throughput + sweep wall time.

Companion to ``bench_sweep.py`` for the GPU disaggregation control plane
(``src/repro/gpuservice/``).  The committed ``BENCH_gpu.json`` records
two kinds of baseline and ``tools/perfgate.py --bench gpu`` fails the
build when either regresses:

* ``gpu_unbatched`` / ``gpu_batched32`` — **simulated-time** request
  throughput of one :func:`repro.experiments.gpu_scaling_sweep.scenario`
  point at ``max_batch_size`` 1 and 32 (metric ``requests_per_s``,
  higher is better).  These are deterministic model outputs, so their
  tolerance is tight: a drop means the batching cost model or the
  batcher's coalescing changed, not that the host was busy.
* ``gpu_sweep_wall`` — wall clock of a reduced ``gpu_scaling`` sweep
  through the serial path (metric ``wall_s``, lower is better, loose
  tolerance): catches structural slowdowns in the service's event
  handling (per-request span bookkeeping, batcher timer churn).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import gpu_scaling_sweep

pytestmark = pytest.mark.perf

DEFAULT_REPEATS = 3

#: Per-stream request count for the simulated-throughput points
#: (divisible by every batch size used below — no partial final batch).
BENCH_REQUESTS = 1024
BENCH_MAX_RATE = 800.0

#: Reduced sweep for the wall-clock scenario.
WALL_BATCH_SIZES = (1, 8, 64)
WALL_REQUESTS = 512


def _simulated_point(batch_size: int) -> dict:
    return gpu_scaling_sweep.scenario(
        {
            "batch_size": batch_size,
            "requests": BENCH_REQUESTS,
            "max_rate_rps": BENCH_MAX_RATE,
        },
        seed=0,
    )


def measure_unbatched(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats  # deterministic simulated time: repeats cannot change it
    point = _simulated_point(1)
    return {
        "metric": "requests_per_s",
        "value": point["throughput_rps"],
        "requests": point["completed"],
        "modeled": True,
    }


def measure_batched32(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats
    point = _simulated_point(32)
    return {
        "metric": "requests_per_s",
        "value": point["throughput_rps"],
        "requests": point["completed"],
        "modeled": True,
    }


def measure_sweep_wall(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        gpu_scaling_sweep.run(batch_sizes=WALL_BATCH_SIZES,
                              requests=WALL_REQUESTS)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "wall_s",
        "value": best,
        "scenarios": len(WALL_BATCH_SIZES),
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_gpu.json's "scenarios" table.
SCENARIOS = {
    "gpu_unbatched": measure_unbatched,
    "gpu_batched32": measure_batched32,
    "gpu_sweep_wall": measure_sweep_wall,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_unbatched_throughput(report):
    result = measure_unbatched()
    report(f"gpu unbatched: {result['value']:.1f} requests/s (simulated)")
    assert result["value"] > 0


def test_batching_amortizes_launches(report):
    single = measure_unbatched()
    batched = measure_batched32()
    gain = batched["value"] / single["value"]
    report(f"gpu batched32: {batched['value']:.1f} requests/s = "
           f"{gain:.2f}x over unbatched")
    assert gain >= 3.0  # B=32 amortizes 16 launches/request into ~1/2


def test_sweep_wall(report):
    result = measure_sweep_wall(repeats=1)
    report(f"gpu sweep ({result['scenarios']} batch sizes, "
           f"{WALL_REQUESTS}x2 requests each): {result['value']:.2f}s wall")
    assert result["value"] > 0


if __name__ == "__main__":
    # Regenerate BENCH_gpu.json: "before" on the batched row is the
    # unbatched throughput, so "speedup" records the coalescing gain.
    import json
    import pathlib

    single = measure_unbatched()
    batched = measure_batched32()
    wall = measure_sweep_wall()
    baseline = {
        "benchmark": "GPU control plane (invocation batching, 2 devices)",
        "description": "simulated requests/s at max_batch_size 1 vs 32, plus "
                       "serial gpu_scaling sweep wall clock",
        "scenarios": {
            "gpu_unbatched": {
                "metric": "requests_per_s",
                "after": round(single["value"], 1),
                "before": round(single["value"], 1),
                "speedup": 1.0,
                "modeled": True,
                "requests": single["requests"],
            },
            "gpu_batched32": {
                "metric": "requests_per_s",
                "after": round(batched["value"], 1),
                "before": round(single["value"], 1),
                "speedup": round(batched["value"] / single["value"], 2),
                "modeled": True,
                "requests": batched["requests"],
            },
            "gpu_sweep_wall": {
                "metric": "wall_s",
                "after": round(wall["value"], 4),
                "before": round(wall["value"], 4),
                "speedup": 1.0,
                "scenarios": wall["scenarios"],
            },
        },
        # The simulated throughputs are deterministic: any drift at all is
        # a cost-model change, so gate them tightly.  Wall time is noisy.
        "tolerance": {"requests_per_s": 0.05, "wall_s": 0.5},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_gpu.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
