"""Ablations of the design choices called out in DESIGN.md §5.

Each ablation switches one mechanism off and shows the paper's design
point winning:

* warm container pool (Sec. IV-B): pooled vs. swap-only vs. cold-always;
* co-location admission policy (Sec. III-E): naive vs. heuristic;
* executor polling mode (Sec. IV-A): hot vs. warm latency;
* lease reclamation (Sec. IV-E): graceful vs. immediate.
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import Cluster, DAINT_MC, Node
from repro.colocation import CoLocationPolicy, PolicyConfig
from repro.containers import Image, SARUS, WarmPool
from repro.interference import InterferenceModel, ResourceDemand
from repro.rfaas import NodeLoadRegistry
from repro.sim import Environment
from repro.workloads import milc_model, nas_model

MiB = 1024**2
GBs = 1e9


def test_ablation_warm_pool(benchmark, report):
    """Total startup cost of 50 invocations under three pool policies."""

    def scenario(mode: str) -> float:
        env = Environment()
        node = Node("n0", DAINT_MC)
        pool = WarmPool(env, node, SARUS)
        image = Image("fn", size_bytes=300 * MiB)
        total = 0.0
        for i in range(50):
            res = pool.acquire(image)
            total += res.startup_cost_s
            if mode == "cold-always":
                pool.discard(res.container)
            else:
                pool.release(res.container)
                if i % 10 == 9:
                    # Batch reclaims the idle memory periodically.
                    pool.reclaim(10**12, swap=(mode == "pooled+swap"))
        return total

    costs = benchmark.pedantic(
        lambda: {m: scenario(m) for m in ("pooled+swap", "pooled", "cold-always")},
        rounds=1, iterations=1,
    )
    report(render_table(
        ["pool policy", "total startup cost (s)"],
        [[m, c] for m, c in costs.items()],
        title="Ablation — warm container pool (50 invocations, reclaim every 10)",
    ))
    assert costs["pooled+swap"] < costs["pooled"] < costs["cold-always"]


def test_ablation_admission_policy(benchmark, report):
    """Batch slowdown under naive vs. heuristic admission."""

    def scenario(use_policy: bool) -> tuple[float, int]:
        cluster = Cluster()
        cluster.add_nodes("n", 1, DAINT_MC)
        node = cluster.node("n0000")
        loads = NodeLoadRegistry(cluster)
        model = InterferenceModel()
        batch = milc_model(16).demand(16)
        loads.add("n0000", "batch", batch)
        node.allocate("job", cores=16)
        policy = CoLocationPolicy(loads, config=PolicyConfig(max_batch_slowdown=1.05))
        candidates = [nas_model(k).demand(4) for k in ("cg.A", "mg.W", "ep.W", "bt.W")]
        admitted = 0
        for i, demand in enumerate(candidates):
            if node.free_cores < demand.cores:
                break
            if use_policy:
                decision = policy.decide(node, demand, "milc")
                if not decision.admitted:
                    continue
            loads.add("n0000", f"fn{i}", demand)
            node.allocate(f"fn{i}", cores=demand.cores, kind="function")
            admitted += 1
        batch_alone = model.slowdowns(DAINT_MC, [batch])[0]
        slowdown = loads.slowdowns("n0000")["batch"] / batch_alone
        return slowdown, admitted

    outcome = benchmark.pedantic(
        lambda: {"naive": scenario(False), "policy": scenario(True)},
        rounds=1, iterations=1,
    )
    report(render_table(
        ["admission", "MILC slowdown", "functions admitted"],
        [[k, f"{(v[0] - 1) * 100:.2f}%", v[1]] for k, v in outcome.items()],
        title="Ablation — co-location admission policy (MILC batch job)",
    ))
    naive_slow, policy_slow = outcome["naive"][0], outcome["policy"][0]
    assert policy_slow < naive_slow
    assert policy_slow < 1.06  # the threshold held
    assert outcome["policy"][1] >= 1  # still admits compatible functions


def test_ablation_executor_mode(benchmark, report):
    """Hot vs warm executor median RTT (small-message)."""
    from repro.experiments import fig07_latency

    result = benchmark.pedantic(
        lambda: fig07_latency.run(sizes=(64,), samples=150, seed=3),
        rounds=1, iterations=1,
    )
    hot, warm, fabric = result.hot[0], result.warm[0], result.fabric[0]
    report(render_table(
        ["path", "p50 (us)", "p95 (us)"],
        [["fabric", fabric.median_s * 1e6, fabric.p95_s * 1e6],
         ["hot", hot.median_s * 1e6, hot.p95_s * 1e6],
         ["warm", warm.median_s * 1e6, warm.p95_s * 1e6]],
        title="Ablation — executor polling mode (64 B payload)",
    ))
    assert hot.median_s < warm.median_s
    assert hot.median_s - fabric.median_s < 2e-6


def test_ablation_reclaim_style(benchmark, report):
    """Graceful vs immediate reclamation: invocation fates."""
    import sys
    sys.path.insert(0, "tests")
    from rfaas.conftest import Harness

    def scenario(immediate: bool) -> dict:
        h = Harness(nodes=3)
        h.register_node("n0001")
        h.register_node("n0002")
        h.register_function("slow", runtime_s=1.0)
        client = h.client()
        outcomes = []

        def invoker():
            for _ in range(3):
                result = yield client.invoke("slow")
                outcomes.append(result.node_name)

        def reclaimer():
            yield h.env.timeout(0.5)
            h.manager.remove_node("n0001", immediate=immediate)

        h.env.process(invoker())
        h.env.process(reclaimer())
        h.env.run()
        exec1 = None  # executor gone; rely on client stats
        return {
            "redirects": client.redirects,
            "finished": len(outcomes),
            "end_time": h.env.now,
        }

    outcome = benchmark.pedantic(
        lambda: {"graceful": scenario(False), "immediate": scenario(True)},
        rounds=1, iterations=1,
    )
    report(render_table(
        ["reclaim", "redirects", "invocations finished", "end time (s)"],
        [[k, v["redirects"], v["finished"], v["end_time"]] for k, v in outcome.items()],
        title="Ablation — lease reclamation style (3 sequential 1 s invocations)",
    ))
    # Immediate reclaim aborts the in-flight invocation -> a redirect and
    # lost progress; graceful lets it finish on the original node.
    assert outcome["immediate"]["redirects"] >= 1
    assert outcome["graceful"]["redirects"] == 0
    assert outcome["graceful"]["finished"] == outcome["immediate"]["finished"] == 3
