"""Fig. 10 — system utilization: co-located vs partial vs exclusive."""

from repro.experiments import fig10_utilization


def test_fig10_utilization(benchmark, report):
    result = benchmark.pedantic(fig10_utilization.run, rounds=1, iterations=1)
    report(fig10_utilization.format_report(result))
    for row in result.rows:
        assert row.colocated > row.partial > row.exclusive
    assert 0.25 < result.max_improvement < 0.8  # paper: up to ~52%
