"""Sweep fan-out harness: serial vs 8-worker chaos-sweep throughput.

Companion to ``bench_engine.py``/``bench_obs.py`` for the parallel sweep
fabric.  The committed ``BENCH_sweep.json`` records what
:func:`repro.sweep.run_sweep` buys on the chaos sweep — scenarios per
minute serially versus fanned across 8 workers — and
``tools/perfgate.py --bench sweep`` fails the build when that throughput
regresses structurally (a merge step that starts serializing, pickling
overhead swamping the scenarios).

Scenarios (metric ``scenarios_per_min``, higher is better):

* ``chaos_serial`` — the 8-rate chaos sweep through the serial path;
* ``chaos_jobs8`` — the same plan across 8 worker processes.  On hosts
  with fewer than 8 cores the 8-worker makespan is **modeled** — the
  measured pool startup overhead plus a greedy list-schedule of the
  individually measured scenario walls (exactly the pool's
  ``imap_unordered`` order) — and the result is labeled
  ``"modeled": true`` with the host core count.  With 8+ cores the pool
  is actually run.

The merged result is byte-identical either way (asserted by
``tests/sweep/test_parallel_determinism.py``); this harness only tracks
the wall-clock side of the contract.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.experiments import chaos_sweep
from repro.sweep import run_sweep

pytestmark = pytest.mark.perf

DEFAULT_REPEATS = 3

WORKERS = 8
BENCH_RATES = (0.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0)
BENCH_WINDOW_S = 30.0


def _plan():
    return chaos_sweep.plan_scenarios(rates=BENCH_RATES, window_s=BENCH_WINDOW_S,
                                      seed=0)


def _scenario_walls() -> list[float]:
    """Per-scenario serial wall times, in plan order."""
    walls = []
    for spec in _plan().scenarios:
        start = time.perf_counter()
        spec.execute()
        walls.append(time.perf_counter() - start)
    return walls


def _pool_overhead() -> float:
    """Wall cost of bringing an idle WORKERS-wide pool up and down."""
    start = time.perf_counter()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    with ctx.Pool(processes=WORKERS) as pool:
        pool.map(abs, range(WORKERS))
    return time.perf_counter() - start


def _greedy_makespan(walls: list[float], workers: int) -> float:
    """List-schedule ``walls`` in order over ``workers`` lanes.

    Mirrors ``Pool.imap_unordered`` with chunksize 1: each worker pulls
    the next task the moment it frees up.
    """
    lanes = [0.0] * workers
    for wall in walls:
        lane = min(range(workers), key=lanes.__getitem__)
        lanes[lane] += wall
    return max(lanes)


def measure_serial(repeats: int = DEFAULT_REPEATS) -> dict:
    n = len(BENCH_RATES)
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_sweep("chaos", jobs=1, rates=BENCH_RATES, window_s=BENCH_WINDOW_S)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "scenarios_per_min",
        "value": n / best * 60.0,
        "scenarios": n,
        "wall_s": best,
    }


def measure_jobs8(repeats: int = DEFAULT_REPEATS) -> dict:
    n = len(BENCH_RATES)
    cores = os.cpu_count() or 1
    if cores >= WORKERS:
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            run_sweep("chaos", jobs=WORKERS, rates=BENCH_RATES,
                      window_s=BENCH_WINDOW_S)
            wall = time.perf_counter() - start
            if best is None or wall < best:
                best = wall
        return {
            "metric": "scenarios_per_min",
            "value": n / best * 60.0,
            "scenarios": n,
            "wall_s": best,
            "workers": WORKERS,
            "modeled": False,
            "cores": cores,
        }
    # Fewer cores than workers: an actual 8-wide pool would timeshare one
    # CPU and measure the scheduler, not the fabric.  Model the makespan
    # from measured parts instead, and label it as such.
    best = None
    for _ in range(max(1, repeats)):
        wall = _pool_overhead() + _greedy_makespan(_scenario_walls(), WORKERS)
        if best is None or wall < best:
            best = wall
    return {
        "metric": "scenarios_per_min",
        "value": n / best * 60.0,
        "scenarios": n,
        "wall_s": best,
        "workers": WORKERS,
        "modeled": True,
        "cores": cores,
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_sweep.json's "scenarios" table.
SCENARIOS = {
    "chaos_serial": measure_serial,
    "chaos_jobs8": measure_jobs8,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_serial_throughput(report):
    result = measure_serial()
    report(f"sweep chaos_serial: {result['scenarios']} scenarios in "
           f"{result['wall_s']:.2f}s = {result['value']:.1f}/min")
    assert result["value"] > 0


def test_jobs8_throughput(report):
    result = measure_jobs8()
    kind = "modeled" if result["modeled"] else "measured"
    report(f"sweep chaos_jobs8 ({kind}, {result['cores']} cores): "
           f"{result['scenarios']} scenarios in {result['wall_s']:.2f}s "
           f"= {result['value']:.1f}/min")
    assert result["value"] > 0


def test_jobs8_beats_serial_3x(report):
    serial = measure_serial(repeats=1)
    parallel = measure_jobs8(repeats=1)
    speedup = parallel["value"] / serial["value"]
    report(f"sweep speedup at {WORKERS} workers: {speedup:.2f}x")
    assert speedup >= 3.0


if __name__ == "__main__":
    # Regenerate BENCH_sweep.json: "before" on the jobs8 row is the
    # serial throughput, so "speedup" records the fan-out gain.
    import json
    import pathlib

    serial = measure_serial()
    parallel = measure_jobs8()
    baseline = {
        "benchmark": "parallel sweep fabric (chaos sweep, 8 rates)",
        "description": "scenarios/minute: serial vs 8 workers through "
                       "repro.sweep.run_sweep; merged JSON byte-identical",
        "scenarios": {
            "chaos_serial": {
                "metric": "scenarios_per_min",
                "after": round(serial["value"], 1),
                "before": round(serial["value"], 1),
                "speedup": 1.0,
                "scenarios": serial["scenarios"],
            },
            "chaos_jobs8": {
                "metric": "scenarios_per_min",
                "after": round(parallel["value"], 1),
                "before": round(serial["value"], 1),
                "speedup": round(parallel["value"] / serial["value"], 2),
                "scenarios": parallel["scenarios"],
                "workers": parallel["workers"],
                "modeled": parallel["modeled"],
                "cores": parallel["cores"],
            },
        },
        "tolerance": {"scenarios_per_min": 0.35},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
