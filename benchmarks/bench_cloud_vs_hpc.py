"""Baseline comparison: classical cloud FaaS vs HPC FaaS (Table I / Sec. IV-A).

Identical no-op invocations on the cloud baseline (gateway + central
scheduling + storage detours over TCP) and the HPC platform (leases +
RDMA + hot executors).  The gap — three orders of magnitude at small
payloads — is the paper's motivation for specializing serverless to HPC.
"""

import numpy as np

from repro.analysis import render_table
from repro.cloudfaas import CloudFaaSPlatform
from repro.containers import Image
from repro.experiments import fig07_latency
from repro.sim import Environment

MiB = 1024**2
SIZES = (1024, 256 * 1024, 1 * MiB)


def _cloud_latencies(sizes, samples=100):
    env = Environment()
    platform = CloudFaaSPlatform(env, rng=np.random.default_rng(0))
    platform.register("noop", Image("noop", size_bytes=200 * MiB))
    medians = {}

    def bench():
        # Warm the sandbox first.
        yield platform.invoke("noop")
        for size in sizes:
            observed = []
            for _ in range(samples):
                record = yield platform.invoke("noop", payload_bytes=size)
                observed.append(record.total_s)
            medians[size] = float(np.median(observed))

    env.process(bench())
    env.run()
    return medians


def test_cloud_vs_hpc_invocation_latency(benchmark, report):
    def run():
        cloud = _cloud_latencies(SIZES)
        hpc = fig07_latency.run(sizes=SIZES, samples=100, seed=1)
        return cloud, hpc

    cloud, hpc = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for point_hot, point_warm in zip(hpc.hot, hpc.warm):
        size = point_hot.size_bytes
        rows.append([
            size,
            cloud[size] * 1e3,
            point_warm.median_s * 1e3,
            point_hot.median_s * 1e3,
            f"{cloud[size] / point_hot.median_s:,.0f}x",
        ])
    report(render_table(
        ["payload (B)", "cloud FaaS p50 (ms)", "HPC warm p50 (ms)",
         "HPC hot p50 (ms)", "cloud/hot gap"],
        rows,
        title="Baseline — classical cloud functions vs HPC functions (warm invocations)",
    ))
    # Paper claims: warm cloud invocations cost dozens of ms; HPC functions
    # need (and get) microseconds.
    small = SIZES[0]
    assert cloud[small] > 0.01
    assert hpc.hot[0].median_s < 10e-6
    assert cloud[small] / hpc.hot[0].median_s > 1000
    # Large payloads: the cloud's storage detour widens the gap further.
    assert cloud[SIZES[-1]] > cloud[small] * 2
