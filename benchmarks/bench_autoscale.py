"""Capacity control plane: reactive vs predictive warm pools under load.

Runs the :mod:`repro.experiments.autoscale_sweep` schedule (with its
default node-crash storm) at 1x/4x/16x load and records, per load, the
warm-pool hit rate and p99 latency of the reactive baseline against the
predictive autoscaler.  Besides the printed table, the comparison is
written to ``BENCH_autoscale.json`` at the repo root so regressions in
the predictive advantage are machine-checkable.
"""

import json
from pathlib import Path

from repro.analysis import render_table
from repro.experiments import autoscale_sweep

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"
LOADS = (1.0, 4.0, 16.0)


def _by_mode(result):
    pairs = {}
    for point in result.points:
        pairs.setdefault(point.load, {})[point.mode] = point
    return pairs


def test_autoscale_predictive_vs_reactive(benchmark, report):
    result = benchmark.pedantic(
        lambda: autoscale_sweep.run(loads=LOADS, seed=0),
        rounds=1, iterations=1,
    )
    pairs = _by_mode(result)
    comparison = []
    rows = []
    for load in LOADS:
        reactive, predictive = pairs[load]["reactive"], pairs[load]["predictive"]
        comparison.append({
            "load": load,
            "reactive": {
                "warm_start_rate": reactive.warm_start_rate,
                "p99_ms": reactive.p99_ms,
                "cold_starts": reactive.cold_starts,
            },
            "predictive": {
                "warm_start_rate": predictive.warm_start_rate,
                "p99_ms": predictive.p99_ms,
                "cold_starts": predictive.cold_starts,
                "prewarms": predictive.prewarms,
            },
            "warm_rate_gain": round(
                predictive.warm_start_rate - reactive.warm_start_rate, 6),
        })
        rows.append([
            f"{load:g}x",
            f"{reactive.warm_start_rate * 100:.1f}%",
            f"{predictive.warm_start_rate * 100:.1f}%",
            f"{reactive.p99_ms:.3f}",
            f"{predictive.p99_ms:.3f}",
            predictive.prewarms,
        ])
    OUTPUT.write_text(json.dumps({
        "window_s": result.window_s,
        "seed": result.seed,
        "loads": comparison,
    }, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    report(render_table(
        ["load", "reactive warm", "predictive warm",
         "reactive p99 (ms)", "predictive p99 (ms)", "prewarms"],
        rows,
        title="Warm-pool autoscaling — reactive vs predictive (crash storm)",
    ) + f"\n[comparison -> {OUTPUT.name}]")
    # The acceptance bar: predictive provisioning beats the reactive
    # baseline on warm-start rate once load reaches 4x.
    for entry in comparison:
        if entry["load"] >= 4.0:
            assert (entry["predictive"]["warm_start_rate"]
                    > entry["reactive"]["warm_start_rate"])
