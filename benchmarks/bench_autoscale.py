"""Capacity control plane: reactive vs predictive warm pools under load.

Runs the :mod:`repro.experiments.autoscale_sweep` schedule (with its
default node-crash storm) and gates the predictive autoscaler's
advantage through ``tools/perfgate.py --bench autoscale`` against the
committed ``BENCH_autoscale.json``:

* ``autoscale_warm_rate`` — **simulated** predictive warm-start rate at
  16x load (metric ``completion_ratio``, floor, tight tolerance).  The
  recorded "before" is the reactive baseline at the same load, so
  "speedup" records what the forecaster buys.
* ``autoscale_p99`` — **simulated** predictive p99 at 16x load (metric
  ``latency_ms``, ceiling).
* ``autoscale_sweep_wall`` — wall clock of a reduced sweep through the
  serial path (metric ``wall_s``, loose tolerance).

The pytest entry point still prints the per-load comparison table and
asserts the acceptance bar (predictive beats reactive on warm-start
rate once load reaches 4x).
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.experiments import autoscale_sweep

DEFAULT_REPEATS = 3

LOADS = (1.0, 4.0, 16.0)

#: Load multiplier for the single-point scenarios.
BENCH_LOAD = 16.0

#: Reduced sweep for the wall-clock scenario.
WALL_LOADS = (1.0, 4.0)


def _by_mode(result):
    pairs = {}
    for point in result.points:
        pairs.setdefault(point.load, {})[point.mode] = point
    return pairs


def _simulated_pair(load: float):
    """(reactive, predictive) points for one load multiplier."""
    result = autoscale_sweep.run(loads=(load,), seed=0)
    modes = _by_mode(result)[load]
    return modes["reactive"], modes["predictive"]


def measure_warm_rate(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats  # deterministic simulated time: repeats cannot change it
    _, predictive = _simulated_pair(BENCH_LOAD)
    return {
        "metric": "completion_ratio",
        "value": predictive.warm_start_rate,
        "modeled": True,
    }


def measure_p99(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats
    _, predictive = _simulated_pair(BENCH_LOAD)
    return {
        "metric": "latency_ms",
        "value": predictive.p99_ms,
        "modeled": True,
    }


def measure_sweep_wall(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        autoscale_sweep.run(loads=WALL_LOADS, seed=0)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "wall_s",
        "value": best,
        "scenarios": len(WALL_LOADS),
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_autoscale.json's "scenarios" table.
SCENARIOS = {
    "autoscale_warm_rate": measure_warm_rate,
    "autoscale_p99": measure_p99,
    "autoscale_sweep_wall": measure_sweep_wall,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


def test_autoscale_predictive_vs_reactive(benchmark, report):
    result = benchmark.pedantic(
        lambda: autoscale_sweep.run(loads=LOADS, seed=0),
        rounds=1, iterations=1,
    )
    pairs = _by_mode(result)
    rows = []
    for load in LOADS:
        reactive, predictive = pairs[load]["reactive"], pairs[load]["predictive"]
        rows.append([
            f"{load:g}x",
            f"{reactive.warm_start_rate * 100:.1f}%",
            f"{predictive.warm_start_rate * 100:.1f}%",
            f"{reactive.p99_ms:.3f}",
            f"{predictive.p99_ms:.3f}",
            predictive.prewarms,
        ])
    report(render_table(
        ["load", "reactive warm", "predictive warm",
         "reactive p99 (ms)", "predictive p99 (ms)", "prewarms"],
        rows,
        title="Warm-pool autoscaling — reactive vs predictive (crash storm)",
    ))
    # The acceptance bar: predictive provisioning beats the reactive
    # baseline on warm-start rate once load reaches 4x.
    for load in LOADS:
        if load >= 4.0:
            assert (pairs[load]["predictive"].warm_start_rate
                    > pairs[load]["reactive"].warm_start_rate)


if __name__ == "__main__":
    # Regenerate BENCH_autoscale.json: "before" rows are the reactive
    # baseline, so "speedup" records what the forecaster buys.
    import json
    import pathlib

    reactive, predictive = _simulated_pair(BENCH_LOAD)
    wall = measure_sweep_wall()
    baseline = {
        "benchmark": "warm-pool autoscaling (predictive vs reactive, crash storm)",
        "description": "predictive warm-start rate and p99 at 16x load vs the "
                       "reactive baseline, plus serial autoscale sweep wall clock",
        "scenarios": {
            "autoscale_warm_rate": {
                "metric": "completion_ratio",
                "after": round(predictive.warm_start_rate, 4),
                "before": round(reactive.warm_start_rate, 4),
                "speedup": round(
                    predictive.warm_start_rate / reactive.warm_start_rate, 2),
                "modeled": True,
            },
            "autoscale_p99": {
                "metric": "latency_ms",
                "after": round(predictive.p99_ms, 4),
                "before": round(reactive.p99_ms, 4),
                "speedup": round(reactive.p99_ms / predictive.p99_ms, 2),
                "modeled": True,
            },
            "autoscale_sweep_wall": {
                "metric": "wall_s",
                "after": round(wall["value"], 4),
                "before": round(wall["value"], 4),
                "speedup": 1.0,
                "scenarios": wall["scenarios"],
            },
        },
        # The simulated rate/latency are deterministic: any drift is a
        # capacity-plane behaviour change, so gate them tightly.  Wall
        # time is noisy.
        "tolerance": {"completion_ratio": 0.02, "latency_ms": 0.1,
                      "wall_s": 0.5},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
