"""Table III — relative throughput of an idle node running NAS functions."""

from repro.experiments import tab03_idle_node


def test_tab03_idle_node(benchmark, report):
    result = benchmark.pedantic(tab03_idle_node.run, rounds=1, iterations=1)
    report(tab03_idle_node.format_report(result))
    thr = result.throughput
    assert 24 < thr["ep.W"][32] < 31          # paper: 27.2
    assert thr["cg.A"][16] < 9                # paper: 6.0 (saturation)
    assert thr["cg.A"][32] > 1.4 * thr["cg.A"][16]  # second-socket jump
    assert 0.08 < result.overhead["cg.A"] < 0.2     # paper: ~13%
    # Cross-validation: the same numbers measured through the full
    # platform stack (leases, executors, slots) instead of the model.
    counts = (1, 4, 16)
    platform = tab03_idle_node.run_platform("cg.A", counts=counts, window_s=40.0)
    from repro.analysis import render_table

    report(render_table(
        ["streams", "platform-measured", "model-predicted"],
        [[n, platform[n], thr["cg.A"].get(n, float("nan"))] for n in counts],
        title="Table III cross-validation — cg.A through the live platform stack",
    ))
    for n in counts:
        assert abs(platform[n] - thr["cg.A"][n]) / thr["cg.A"][n] < 0.25
