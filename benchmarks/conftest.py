"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the corresponding report (run with ``-s`` to see them inline);
pytest-benchmark records the harness runtimes.  Keep parameters modest:
the goal is the paper's *shape*, reproduced in seconds, not hours.

Tests marked ``perf`` (the engine perf harness) time wall-clock
throughput and are skipped unless explicitly opted in with ``-m perf``
or ``REPRO_PERF=1``, so collecting the benchmark directory does not grow
the default suite's wall time.
"""

import os

import pytest


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="") or ""
    if "perf" in markexpr or os.environ.get("REPRO_PERF"):
        return
    skip_perf = pytest.mark.skip(
        reason="perf measurement; opt in with -m perf or REPRO_PERF=1"
    )
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)


@pytest.fixture
def report(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit
