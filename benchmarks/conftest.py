"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the corresponding report (run with ``-s`` to see them inline);
pytest-benchmark records the harness runtimes.  Keep parameters modest:
the goal is the paper's *shape*, reproduced in seconds, not hours.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit
