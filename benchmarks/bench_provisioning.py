"""Provisioning and drain latency (Sec. III-A's three requirements).

"It has to integrate a new node quickly, release it immediately when the
batch system needs it, and gracefully handle the node termination."
Measures, in simulated time:

* time from ``register_node`` to the first completed invocation (cold
  and prewarmed);
* drain latency when the batch system reclaims the node, for graceful
  (bounded by the time-limited functions still running) vs immediate.
"""

import sys

sys.path.insert(0, "tests")

import numpy as np

from rfaas.conftest import Harness

from repro.analysis import render_table


def time_to_first_invocation(prewarm: bool) -> float:
    h = Harness()
    h.register_function("fn", runtime_s=0.0)
    out = {}

    def proc():
        t0 = h.env.now
        registered = h.register_node("n0001")
        if prewarm:
            registered.executor.prewarm(h.image)
        client = h.client()
        result = yield client.invoke("fn", payload_bytes=1024)
        assert result.ok
        out["t"] = h.env.now - t0

    h.env.process(proc())
    h.env.run()
    return out["t"]


def drain_latency(immediate: bool, function_runtime: float = 2.0) -> float:
    h = Harness()
    h.register_node("n0001")
    h.register_node("n0002")
    h.register_function("fn", runtime_s=function_runtime)
    client = h.client()
    out = {}

    def invoker():
        yield client.invoke("fn")

    def reclaimer():
        # Reclaim mid-invocation; measure until in-flight work is gone.
        yield h.env.timeout(function_runtime / 2)
        executor = h.manager.node_info("n0001").executor
        t0 = h.env.now
        h.manager.remove_node("n0001", immediate=immediate)
        while executor.active_invocations:
            yield h.env.timeout(0.001)
        out["drain"] = h.env.now - t0

    h.env.process(invoker())
    h.env.process(reclaimer())
    h.env.run()
    return out["drain"]


def test_provisioning_and_drain(benchmark, report):
    def run():
        return {
            "first_inv_cold": time_to_first_invocation(prewarm=False),
            "first_inv_warm": time_to_first_invocation(prewarm=True),
            "drain_immediate": drain_latency(immediate=True),
            "drain_graceful": drain_latency(immediate=False),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(render_table(
        ["metric", "simulated time (s)"],
        [[k, v] for k, v in out.items()],
        title="Provisioning & drain latency (Sec. III-A requirements)",
    ))
    # A node is serving invocations well under a second after registering
    # (vs minutes of batch-queue integration).
    assert out["first_inv_cold"] < 1.0
    assert out["first_inv_warm"] < 0.05
    # Immediate reclaim is effectively instantaneous; graceful is bounded
    # by the time-limited function still in flight.
    assert out["drain_immediate"] < 0.01
    assert out["drain_immediate"] < out["drain_graceful"] <= 2.0 + 0.1
