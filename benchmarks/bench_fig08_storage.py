"""Fig. 8 — Lustre parallel filesystem vs MinIO object storage."""

from repro.experiments import fig08_storage

MiB = 1024**2


def test_fig08_storage(benchmark, report):
    result = benchmark.pedantic(fig08_storage.run, rounds=1, iterations=1)
    report(fig08_storage.format_report(result))
    small = [p for p in result.points if p.size_bytes <= 1 * MiB and p.readers == 1]
    assert all(p.minio_wins_latency for p in small)
    big = [p for p in result.points if p.size_bytes >= 256 * MiB and p.readers >= 16]
    assert all(p.lustre_throughput > p.minio_throughput for p in big)
