"""Fig. 13 — real offloading: Black-Scholes and Monte Carlo transport.

This benchmark executes *real* numpy kernels through the process-based
runtime.  On hosts with fewer free cores than workers the measured
speedup is physically capped; the Eq.-1 predicted speedup is asserted
instead (see the experiment module's docstring).
"""

from repro.experiments import fig13_offloading


def test_fig13_offloading(benchmark, report):
    results = benchmark.pedantic(
        lambda: fig13_offloading.run(
            workers=2, options=300_000, iterations=3, particles=(2_000, 8_000)
        ),
        rounds=1, iterations=1,
    )
    report(fig13_offloading.format_report(results))
    # The analytic saturation sweep for the measured Black-Scholes model.
    model = results[0].model
    sweep = fig13_offloading.saturation_sweep(model)
    report(fig13_offloading.format_saturation(model, sweep))
    # Speedup is non-decreasing in workers and eventually plateaus.
    speedups = [s for _, s, _ in sweep]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] - speedups[-2] < 0.5  # the knee flattened
    assert all(r.checks_passed for r in results)
    for result in results:
        assert result.model.n_local_min >= 1
        assert result.predicted_doubled_speedup >= 1.0
        serial = result.timing("serial").wall_s
        assert serial > 0
        if result.host_cores > result.workers:
            # Enough cores: the doubled variant must actually win.
            assert result.timing("doubled").wall_s < serial
