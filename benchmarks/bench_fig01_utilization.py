"""Fig. 1 — Piz Daint utilization: idle nodes, memory, idle-period durations."""

from repro.experiments import fig01_utilization


def test_fig01_utilization(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig01_utilization.run(nodes=64, hours=12.0, seed=0),
        rounds=1, iterations=1,
    )
    report(fig01_utilization.format_report(result))
    # Paper-shape guards.
    assert result.summary["median_allocated_fraction"] > 0.7
    assert result.sampled_idle.fraction_under_10min > 0.6
    assert result.memory_used_fraction_mean < 0.45
