"""Control-plane HA harness: completion through failover + sweep wall time.

Companion to ``bench_gpu.py`` for the replicated resource manager
(``src/repro/controlplane/``).  The committed ``BENCH_managerha.json``
records three kinds of baseline and ``tools/perfgate.py --bench
managerha`` fails the build when any regresses:

* ``managerha_completion`` — **simulated** completion ratio of one
  :func:`repro.experiments.manager_failover_sweep.scenario` point with
  one standby through the canonical crash + partition storm (metric
  ``completion_ratio``, higher is better, tight tolerance: this is the
  PR's acceptance bar — >= 99 % of invocations complete because a
  standby takes over).
* ``managerha_p99_fast_detect`` — **simulated** p99 invocation latency
  with an aggressive failure detector (``suspect_after=2``), gated as a
  ceiling (metric ``latency_ms``): catches accidental extra backoff
  rounds or detector slowdowns on the client recovery path.
* ``managerha_sweep_wall`` — wall clock of a reduced ``manager_failover``
  sweep through the serial path (metric ``wall_s``, loose tolerance):
  catches structural slowdowns in heartbeat/replication bookkeeping.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import manager_failover_sweep

pytestmark = pytest.mark.perf

DEFAULT_REPEATS = 3

#: Simulated window for the single-point scenarios.
BENCH_WINDOW_S = 12.0

#: Reduced sweep for the wall-clock scenario.
WALL_STANDBYS = (0, 1)
WALL_WINDOW_S = 8.0


def _simulated_point(standbys: int, suspect_after: int = 3) -> dict:
    return manager_failover_sweep.scenario(
        {
            "standbys": standbys,
            "window_s": BENCH_WINDOW_S,
            "runtime_s": 0.02,
            "payload_bytes": 1024,
            "streams": 3,
            "heartbeat_interval_s": 0.1,
            "suspect_after": suspect_after,
        },
        seed=0,
    )


def measure_completion(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats  # deterministic simulated time: repeats cannot change it
    point = _simulated_point(standbys=1)
    return {
        "metric": "completion_ratio",
        "value": point["completed"] / point["invocations"],
        "invocations": point["invocations"],
        "modeled": True,
    }


def measure_p99_fast_detect(repeats: int = DEFAULT_REPEATS) -> dict:
    del repeats
    point = _simulated_point(standbys=1, suspect_after=2)
    return {
        "metric": "latency_ms",
        "value": point["p99_ms"],
        "invocations": point["invocations"],
        "modeled": True,
    }


def measure_sweep_wall(repeats: int = DEFAULT_REPEATS) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        manager_failover_sweep.run(standbys=WALL_STANDBYS,
                                   window_s=WALL_WINDOW_S)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "wall_s",
        "value": best,
        "scenarios": len(WALL_STANDBYS),
    }


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_managerha.json's "scenarios" table.
SCENARIOS = {
    "managerha_completion": measure_completion,
    "managerha_p99_fast_detect": measure_p99_fast_detect,
    "managerha_sweep_wall": measure_sweep_wall,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_zero_standbys_lose_inflight_work(report):
    point = _simulated_point(standbys=0)
    ratio = point["completed"] / point["invocations"]
    report(f"managerha k=0: {ratio:.1%} completion (lost work expected)")
    assert ratio < 0.9  # the crash wipes lease state; the storm is rejected
    assert point["invariants_ok"]  # losing work honestly still conserves


def test_one_standby_meets_the_acceptance_bar(report):
    point = _simulated_point(standbys=1)
    ratio = point["completed"] / point["invocations"]
    report(f"managerha k=1: {ratio:.1%} completion, "
           f"{point['failovers']} failover(s), epoch {point['epochs']}")
    assert ratio >= 0.99
    assert point["failovers"] >= 1
    assert point["invariants_ok"]  # zero double grants, one primary/epoch


def test_sweep_wall(report):
    result = measure_sweep_wall(repeats=1)
    report(f"managerha sweep ({result['scenarios']} standby counts, "
           f"{WALL_WINDOW_S:g}s windows): {result['value']:.2f}s wall")
    assert result["value"] > 0


if __name__ == "__main__":
    # Regenerate BENCH_managerha.json: "before" on the completion row is
    # the k=0 ratio, so "speedup" records what the standby buys.
    import json
    import pathlib

    lost = _simulated_point(standbys=0)
    before_ratio = lost["completed"] / lost["invocations"]
    completion = measure_completion()
    p99 = measure_p99_fast_detect()
    wall = measure_sweep_wall()
    baseline = {
        "benchmark": "replicated control plane (manager crash + partition storm)",
        "description": "completion ratio and p99 with one standby vs none, "
                       "plus serial manager_failover sweep wall clock",
        "scenarios": {
            "managerha_completion": {
                "metric": "completion_ratio",
                "after": round(completion["value"], 4),
                "before": round(before_ratio, 4),
                "speedup": round(completion["value"] / before_ratio, 2),
                "modeled": True,
                "invocations": completion["invocations"],
            },
            "managerha_p99_fast_detect": {
                "metric": "latency_ms",
                "after": round(p99["value"], 4),
                "before": round(p99["value"], 4),
                "speedup": 1.0,
                "modeled": True,
                "invocations": p99["invocations"],
            },
            "managerha_sweep_wall": {
                "metric": "wall_s",
                "after": round(wall["value"], 4),
                "before": round(wall["value"], 4),
                "speedup": 1.0,
                "scenarios": wall["scenarios"],
            },
        },
        # The simulated ratio/latency are deterministic: any drift is a
        # control-plane behaviour change, so gate them tightly.  Wall
        # time is noisy.
        "tolerance": {"completion_ratio": 0.02, "latency_ms": 0.1,
                      "wall_s": 0.5},
    }
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_managerha.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(baseline["scenarios"], indent=2, sort_keys=True))
