"""Elastic MPI provisioning: FaaS leases vs the batch queue (Sec. IV-F).

"[MPI functions] can be allocated with lower provisioning latency than
through a batch system."  On a busy cluster, growing a running job by
submitting a new batch job means waiting for the queue; leasing a rank
from the serverless pool means using capacity that is already registered.
This bench quantifies both on the same loaded cluster.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import render_table
from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.mpifn import ElasticMpiGroup
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import NodeLoadRegistry, ResourceManager
from repro.sim import Environment
from repro.slurm import BatchScheduler, JobSpec

GiB = 1024**3


def scenario():
    """A 4-node cluster: 3 nodes busy with batch work, leftovers harvested."""
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", 4, DAINT_MC)
    scheduler = BatchScheduler(env, cluster)
    provider = replace(IBVERBS, params=IBVERBS.params.with_jitter(0.0))
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, provider, rng=np.random.default_rng(0), drc=drc)
    manager = ResourceManager(env, cluster, loads=NodeLoadRegistry(cluster), drc=drc,
                              rng=np.random.default_rng(1))

    # Batch jobs occupy 3 of 4 nodes for 10 minutes, using 32/36 cores.
    for _ in range(3):
        scheduler.submit(JobSpec(
            user="u", app="busy", nodes=1, cores_per_node=32,
            memory_per_node=16 * GiB, walltime=600.0, runtime=600.0, shared=True,
        ))
    # Harvested capacity: the shared jobs' leftovers + the idle node.
    for i in range(4):
        node = cluster.node(f"n{i:04d}")
        if node.free_cores >= 2:
            manager.register_node(f"n{i:04d}", cores=min(4, node.free_cores - 0),
                                  memory_bytes=4 * GiB)

    out = {}

    def measure():
        yield env.timeout(1.0)
        # (a) Grow via serverless leases: an elastic group adds 4 ranks.
        group = ElasticMpiGroup(env, manager, fabric)
        yield group.spawn(2)
        t0 = env.now
        size, _ = yield group.grow(4)
        out["faas_grow_s"] = env.now - t0
        out["faas_size"] = size
        group.shutdown()

        # (b) Grow via the batch queue: a 1-node job behind the running set.
        t0 = env.now
        job = scheduler.submit(JobSpec(
            user="u", app="grow-attempt", nodes=2, cores_per_node=4,
            memory_per_node=1 * GiB, walltime=60.0, runtime=60.0,
        ))
        while job.start_time is None:
            yield env.timeout(1.0)
        out["batch_wait_s"] = job.start_time - job.submit_time

    env.process(measure())
    env.run()
    return out


def test_elastic_mpi_vs_batch_queue(benchmark, report):
    out = benchmark.pedantic(scenario, rounds=1, iterations=1)
    report(render_table(
        ["provisioning path", "latency (s)"],
        [["serverless lease (grow 2 -> 6 ranks)", out["faas_grow_s"]],
         ["batch queue (2-node job on busy cluster)", out["batch_wait_s"]]],
        title="Elastic MPI — provisioning latency on a loaded cluster",
    ))
    assert out["faas_size"] == 6
    # Leases are granted from registered capacity instantly (simulated
    # bookkeeping time only); the batch job waits for running jobs to end.
    assert out["faas_grow_s"] < 1.0
    assert out["batch_wait_s"] > 60.0
    assert out["batch_wait_s"] > 100 * max(out["faas_grow_s"], 1e-3)
