"""Observability overhead harness: streaming-traced vs telemetry-off.

Companion to ``bench_engine.py`` for the observability plane.  The
committed ``BENCH_obs.json`` records what end-to-end causal tracing with
the streaming pipeline *costs* relative to running dark, and
``tools/perfgate.py --bench obs`` fails the build when that overhead
regresses structurally (an accidentally quadratic aggregator, a span
pipeline stage that starts retaining memory).

Scenarios:

* ``chaos_off`` — the chaos sweep with telemetry disabled (the
  untraced fast path), wall time;
* ``chaos_streamed`` — the same sweep traced end-to-end through a
  :class:`~repro.telemetry.streaming.SpanPipeline` writing JSONL to a
  temporary file (ring buffer, RED rollup, SLO monitor all active),
  wall time;
* ``pipeline_append`` — the pipeline in isolation: pre-built spans
  pushed through every stage, reported as spans/sec
  (``events_per_s``, so the gate treats it as a throughput floor).
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.experiments import chaos_sweep
from repro.telemetry import Span, SpanPipeline, StreamConfig, TelemetryCollector

pytestmark = pytest.mark.perf

DEFAULT_REPEATS = 3

#: Spans pushed through the isolated pipeline scenario.
PIPELINE_SPANS = 200_000


def run_chaos_off() -> None:
    chaos_sweep.run(rates=(0.0, 8.0), window_s=10.0, seed=0)


def run_chaos_streamed() -> None:
    fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="bench_obs_")
    os.close(fd)
    try:
        pipeline = SpanPipeline(stream_path=path)
        with TelemetryCollector(pipeline=pipeline):
            chaos_sweep.run(rates=(0.0, 8.0), window_s=10.0, seed=0)
        pipeline.close()
    finally:
        os.unlink(path)


def _make_spans(n: int) -> list[Span]:
    spans = []
    for i in range(n):
        span = Span(
            "rfaas.invocation" if i % 7 else "capacity.invocation",
            float(i) * 1e-3,
            track=f"n{i % 16:04d}/executor-{i % 4}",
            parent_id=i - 1 if i % 7 else None,
            attrs={"trace_id": i // 7, "tenant": f"tenant-{i % 8}"},
        )
        span.end = span.start + 1e-3 * (1 + i % 5)
        spans.append(span)
    return spans


def measure_pipeline_append(repeats: int = DEFAULT_REPEATS) -> dict:
    spans = _make_spans(PIPELINE_SPANS)
    best = None
    for _ in range(max(1, repeats)):
        pipeline = SpanPipeline(StreamConfig(ring_capacity=4096))
        start = time.perf_counter()
        append = pipeline.append
        for span in spans:
            append(span)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {
        "metric": "events_per_s",
        "value": PIPELINE_SPANS / best,
        "events": PIPELINE_SPANS,
        "wall_s": best,
    }


def _measure_wall(fn, repeats: int) -> dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return {"metric": "wall_s", "value": best, "wall_s": best}


#: name -> callable(repeats) -> {"metric", "value", ...}; keys match
#: BENCH_obs.json's "scenarios" table.
SCENARIOS = {
    "chaos_off": lambda repeats=DEFAULT_REPEATS: _measure_wall(run_chaos_off, repeats),
    "chaos_streamed": lambda repeats=DEFAULT_REPEATS: _measure_wall(run_chaos_streamed, repeats),
    "pipeline_append": measure_pipeline_append,
}


def measure_all(repeats: int = DEFAULT_REPEATS) -> dict[str, dict]:
    return {name: fn(repeats) for name, fn in SCENARIOS.items()}


# -- pytest entry points (opt-in via -m perf / REPRO_PERF=1) ----------------

def test_chaos_off_wall(report):
    result = SCENARIOS["chaos_off"]()
    report(f"obs chaos_off: {result['value']:.4f}s wall")
    assert result["value"] > 0


def test_chaos_streamed_wall(report):
    result = SCENARIOS["chaos_streamed"]()
    report(f"obs chaos_streamed: {result['value']:.4f}s wall")
    assert result["value"] > 0


def test_pipeline_throughput(report):
    result = measure_pipeline_append()
    report(
        f"obs pipeline_append: {result['events']} spans in "
        f"{result['wall_s']:.4f}s = {result['value']:,.0f} spans/s"
    )
    assert result["value"] > 0
