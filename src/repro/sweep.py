"""The parallel sweep fabric: fan scenarios out, merge them in order.

Sweeps execute a list of independent, deterministic scenarios — the
evaluation matrix of the paper (fault rates × load multiples ×
replication factors) is exactly this shape, and serial execution leaves
every core but one idle.  :func:`run_sweep` runs any registered sweep
(:mod:`repro.experiments.base`) across a process pool:

1. **Plan in the parent.**  ``sweep.plan(**kwargs)`` fixes the
   canonical scenario order *and every scenario's seed* before a single
   worker exists, following the :meth:`repro.api.Platform.build`
   rng-fan-out discipline: randomness is derived from explicit seeds at
   plan time, never from worker identity, scheduling, or wall clock.
2. **Fan out.**  Each :class:`~repro.experiments.base.ScenarioSpec`
   (a module-level callable + picklable params + seed) crosses the pool
   boundary; workers return ``(index, point dict)`` over the pool's
   result queue as they finish, in whatever order the OS schedules.
3. **Merge in canonical order.**  Points are slotted by plan index, so
   ``sweep.assemble(points, meta)`` sees exactly the sequence serial
   execution would have produced — the final JSON is **byte-identical**
   at every ``jobs`` count, asserted across fresh interpreters by
   ``tests/sweep/test_parallel_determinism.py``.

Failure contract: a scenario that raises in a worker surfaces the
*original* traceback in the parent as :class:`SweepScenarioError` and
fails the whole sweep — no hang, no silently dropped point.

Telemetry: with ``stream_spans`` set, every scenario streams its spans
through its own bounded :class:`~repro.telemetry.SpanPipeline` into a
private part file (``<path>.part-0003`` — named by plan index, not by
worker, so the naming is stable); the parent concatenates the parts in
canonical order into ``<path>`` and deletes them.  The merged stream is
identical for every ``jobs`` count.

The pool start method defaults to ``fork`` where the platform offers it
(cheap, and scenario determinism never depends on inherited state —
every scenario builds its own :class:`~repro.api.Platform` from its own
seed) and falls back to ``spawn`` elsewhere; pass ``start_method`` to
override.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional, Union

from .experiments.base import ScenarioSpec, Sweep, get_sweep, registered_sweeps

# Importing the experiment package registers every built-in sweep.
from . import experiments as _experiments  # noqa: F401  (registration side effect)

__all__ = ["SweepScenarioError", "run_sweep", "sweep_names", "stream_part_path"]


class SweepScenarioError(RuntimeError):
    """A scenario raised in a worker; carries the original traceback."""

    def __init__(self, label: str, details: str):
        super().__init__(
            f"sweep scenario {label!r} failed in a worker:\n{details.rstrip()}"
        )
        self.label = label
        self.details = details


def sweep_names() -> List[str]:
    """Registered sweep names, in registration order."""
    return list(registered_sweeps())


def stream_part_path(base_path: str, index: int) -> str:
    """The per-scenario span-stream part file (stable: named by index)."""
    return f"{base_path}.part-{index:04d}"


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _execute_task(task) -> tuple:
    """Run one scenario (in a worker or inline); never raises.

    Returns ``(index, ok, payload)`` where payload is the point dict on
    success or the formatted original traceback on failure — exceptions
    must not escape, or the pool would swallow the real stack.
    """
    index, spec, stream_base = task
    try:
        stats = None
        if stream_base:
            # Local import keeps the telemetry stack out of workers that
            # never stream.
            from .telemetry import (
                SpanPipeline,
                TelemetryCollector,
                reset_span_ids,
                reset_trace_ids,
            )

            # Span/trace ids restart at 1 per scenario so each part file
            # is a pure function of (params, seed), independent of
            # process reuse — the merged stream is identical at any jobs
            # count.
            reset_span_ids()
            reset_trace_ids()
            pipeline = SpanPipeline(stream_path=stream_part_path(stream_base, index))
            with TelemetryCollector(pipeline=pipeline):
                point = spec.execute()
            pipeline.close()
            stats = {
                "seen": pipeline.seen,
                "peak_retained": pipeline.peak_retained,
                "slo_breaches": len(pipeline.slo.breaches),
            }
        else:
            point = spec.execute()
        return index, True, point, stats
    except BaseException:  # noqa: BLE001 - the parent re-raises with this text
        return index, False, traceback.format_exc(), None


def _merge_stream_parts(base_path: str, count: int) -> tuple[int, int]:
    """Concatenate part files in canonical order; returns (spans, parts)."""
    spans = 0
    parts = 0
    with open(base_path, "w", encoding="utf-8") as merged:
        for index in range(count):
            part = stream_part_path(base_path, index)
            if not os.path.exists(part):
                continue
            parts += 1
            with open(part, "r", encoding="utf-8") as fh:
                for line in fh:
                    merged.write(line)
                    spans += 1
            os.remove(part)
    return spans, parts


def run_sweep(
    sweep: Union[str, Sweep],
    *,
    jobs: int = 1,
    stream_spans: Optional[str] = None,
    start_method: Optional[str] = None,
    stream_stats: Optional[Dict[str, int]] = None,
    **kwargs: Any,
) -> Any:
    """Run a registered sweep, fanning scenarios across ``jobs`` workers.

    ``sweep`` is a registry name (``"chaos"``, ``"autoscale"``,
    ``"memdurability"``) or a :class:`~repro.experiments.base.Sweep`;
    ``kwargs`` are the sweep's ``plan_scenarios`` arguments (the same
    names the legacy ``run(...)`` shims take).  ``jobs=1`` executes
    in-process over the identical plan/merge path, so the result —
    and, with ``stream_spans``, the merged span stream — is
    byte-identical at every jobs count.

    With ``stream_spans``, pass a ``stream_stats`` dict to receive the
    aggregated pipeline accounting (``seen`` spans, max
    ``peak_retained``, total ``slo_breaches``, merged ``parts``).

    Raises :class:`SweepScenarioError` (with the worker's original
    traceback) if any scenario fails; the pool is torn down, nothing
    hangs, and no point is silently dropped.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if isinstance(sweep, str):
        sweep = get_sweep(sweep)
    plan = sweep.plan(**kwargs)
    specs: tuple[ScenarioSpec, ...] = plan.scenarios
    tasks = [(index, spec, stream_spans) for index, spec in enumerate(specs)]
    points: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    scenario_stats: List[Dict[str, int]] = []

    def harvest(outcome) -> None:
        index, ok, payload, stats = outcome
        if not ok:
            raise SweepScenarioError(specs[index].label, payload)
        points[index] = payload
        if stats is not None:
            scenario_stats.append(stats)

    workers = min(jobs, len(specs))
    if workers <= 1:
        for outcome in map(_execute_task, tasks):
            harvest(outcome)
    else:
        ctx = multiprocessing.get_context(start_method or _default_start_method())
        # The context manager guarantees terminate() on error: a failing
        # scenario raises here instead of hanging the harvest loop.
        with ctx.Pool(processes=workers) as pool:
            for outcome in pool.imap_unordered(_execute_task, tasks):
                harvest(outcome)

    if stream_spans:
        _spans, parts = _merge_stream_parts(stream_spans, len(specs))
        if stream_stats is not None:
            stream_stats.update(
                seen=sum(s["seen"] for s in scenario_stats),
                peak_retained=max((s["peak_retained"] for s in scenario_stats),
                                  default=0),
                slo_breaches=sum(s["slo_breaches"] for s in scenario_stats),
                parts=parts,
            )
    return sweep.assemble(points, plan.meta)
