"""Live process-based runtime: real function execution on local workers."""

from .runtime import LocalRuntime, RuntimeStats, resolve_target
from .serialization import deserialize, payload_nbytes, serialize

__all__ = [
    "LocalRuntime",
    "RuntimeStats",
    "resolve_target",
    "deserialize",
    "payload_nbytes",
    "serialize",
]
