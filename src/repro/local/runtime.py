"""A real, process-based rFaaS-style runtime.

Where the simulated platform (:mod:`repro.rfaas`) provides cluster-scale
fidelity, this runtime actually executes registered Python functions in
worker *processes* — the live substrate for the offloading case studies
(Fig. 13) and the examples.  The rFaaS concepts map directly:

* **registration** — functions are registered as ``"module:attr"``
  import strings, the moral equivalent of shipping a code container;
* **cold start** — the first invocation pays worker-process spawn +
  interpreter boot + imports (measured and exposed in ``stats``);
* **warm executors** — worker processes persist between invocations;
* **leases** — a runtime instance holds ``workers`` CPU slots until
  ``shutdown`` (graceful: drains in-flight work) — batch reclamation in
  miniature.

Functions must be addressable as import strings because worker processes
start fresh interpreters (spawn context), exactly like a container pulling
the function's code: closures cannot be smuggled in, just as they cannot
be shipped to a remote executor.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Optional

__all__ = ["LocalRuntime", "RuntimeStats", "resolve_target"]


def resolve_target(target: str):
    """Import ``"module:attr"`` and return the callable."""
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ValueError(f"target must look like 'pkg.module:func', got {target!r}")
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, attr)
    except AttributeError:
        raise AttributeError(f"{module_name!r} has no attribute {attr!r}") from None
    if not callable(func):
        raise TypeError(f"{target!r} is not callable")
    return func


def _worker_call(target: str, args: tuple, kwargs: dict) -> Any:
    """Executed inside a worker process: resolve then run."""
    return resolve_target(target)(*args, **kwargs)


@dataclass
class RuntimeStats:
    cold_start_s: Optional[float] = None
    invocations: int = 0
    errors: int = 0


class LocalRuntime:
    """Warm pool of worker processes executing registered functions."""

    def __init__(self, workers: int = 2, start_method: str = "spawn"):
        if workers < 1:
            raise ValueError("need >= 1 worker")
        self.workers = workers
        self._ctx = get_context(start_method)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._functions: dict[str, str] = {}
        self.stats = RuntimeStats()

    # -- registration ---------------------------------------------------------
    def register(self, name: str, target: str) -> None:
        """Register ``name`` -> ``"module:attr"``; validated eagerly."""
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        resolve_target(target)  # fail fast on typos
        self._functions[name] = target

    def registered(self) -> list[str]:
        return sorted(self._functions)

    # -- pool lifecycle -----------------------------------------------------------
    @property
    def warm(self) -> bool:
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            t0 = time.perf_counter()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            # Force worker start so the cold-start measurement is honest.
            list(self._pool.map(int, range(self.workers)))
            self.stats.cold_start_s = time.perf_counter() - t0
        return self._pool

    def prewarm(self) -> float:
        """Start the workers ahead of time; returns the cold-start cost."""
        self._ensure_pool()
        return self.stats.cold_start_s or 0.0

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain (wait=True) or immediate teardown."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None

    def __enter__(self) -> "LocalRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- invocation -----------------------------------------------------------------
    def invoke(self, name: str, *args: Any, **kwargs: Any) -> Future:
        """Asynchronous invocation; returns a Future."""
        target = self._functions.get(name)
        if target is None:
            raise KeyError(f"function {name!r} not registered")
        pool = self._ensure_pool()
        self.stats.invocations += 1
        future = pool.submit(_worker_call, target, args, kwargs)

        def count_errors(f: Future) -> None:
            if f.exception() is not None:
                self.stats.errors += 1

        future.add_done_callback(count_errors)
        return future

    def invoke_sync(self, name: str, *args: Any, **kwargs: Any) -> Any:
        return self.invoke(name, *args, **kwargs).result()

    def map(self, name: str, payloads: list, **kwargs: Any) -> list:
        """Invoke over every payload; preserves order; propagates errors."""
        futures = [self.invoke(name, payload, **kwargs) for payload in payloads]
        return [f.result() for f in futures]
