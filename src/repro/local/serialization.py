"""Payload serialization for the live runtime.

Invocation payloads cross a process boundary; pickle protocol 5 keeps
numpy arrays zero-copy on the sending side (out-of-band buffers), which
matters because the offloading model's ``Data_inv`` term is exactly this
serialized size.
"""

from __future__ import annotations

import pickle
from typing import Any

__all__ = ["serialize", "deserialize", "payload_nbytes"]

_PROTOCOL = 5


def serialize(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=_PROTOCOL)


def deserialize(blob: bytes) -> Any:
    return pickle.loads(blob)


def payload_nbytes(obj: Any) -> int:
    """Serialized size of ``obj`` — the Data_inv of Eq. 1's bandwidth term."""
    return len(serialize(obj))
