"""repro — software resource disaggregation for HPC with serverless computing.

A full reproduction of Copik et al., "Software Resource Disaggregation
for HPC with Serverless Computing" (IPDPS 2024): an HPC-specialized FaaS
platform (rFaaS model) co-located with a SLURM-like batch system on a
simulated Cray-class cluster, plus a live process-based runtime for the
offloading case studies.

Package map (see DESIGN.md for the full inventory):

- ``repro.sim``          deterministic discrete-event engine
- ``repro.cluster``      nodes, hardware presets, dragonfly topology
- ``repro.slurm``        batch jobs, EASY-backfill scheduler, workloads
- ``repro.network``      LogGP model, fabric providers, RDMA transport, DRC
- ``repro.containers``   images, runtimes (Table II), warm pools
- ``repro.storage``      Lustre / object-store / tiered function I/O
- ``repro.rfaas``        the serverless platform: leases, executors, manager
- ``repro.memservice``   RMA memory functions, remote paging
- ``repro.gpu``          GPU device model and GPU functions
- ``repro.interference`` demand vectors and the contention model
- ``repro.colocation``   history DB, requirement models, admission policy
- ``repro.disagg``       the disaggregation controller, billing, metrics
- ``repro.offload``      Eq.-1 planner, task graphs, live dispatcher
- ``repro.local``        real multiprocessing-based function runtime
- ``repro.workloads``    app demand models + runnable numpy mini-kernels
- ``repro.experiments``  one module per paper table/figure
- ``repro.sweep``        parallel sweep fabric: fan scenarios out, merge in order
- ``repro.analysis``     utilization statistics, report tables
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "cluster",
    "slurm",
    "network",
    "containers",
    "storage",
    "rfaas",
    "memservice",
    "gpu",
    "interference",
    "colocation",
    "disagg",
    "offload",
    "local",
    "workloads",
    "experiments",
    "sweep",
    "analysis",
]
