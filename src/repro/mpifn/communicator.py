"""MPI-style communication between FaaS-allocated ranks (Sec. IV-F).

"An HPC function can also implement the same computation and
communication logic as an MPI process ... functions can represent
full-fledged computations with communication and synchronization."

This communicator runs over the simulated RDMA fabric: each rank lives on
a cluster node (where its function lease placed it) and exchanges
messages through per-rank mailboxes, with transfer timing provided by the
fabric's LogGP model and bandwidth contention by its per-node channels.
Collectives use binomial trees, the textbook algorithms MPI
implementations default to at these scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..network.transport import Connection, NetworkFabric
from ..sim.engine import Environment, Process
from ..sim.resources import FilterStore

__all__ = ["MpiMessage", "Communicator"]



@dataclass(frozen=True)
class MpiMessage:
    source: int
    dest: int
    tag: int
    size_bytes: int
    payload: Any = None


class Communicator:
    """A fixed set of ranks with point-to-point and collective ops."""

    def __init__(self, env: Environment, fabric: NetworkFabric,
                 rank_nodes: list[str], user: str = "mpifn"):
        if not rank_nodes:
            raise ValueError("need >= 1 rank")
        self.comm_id = env.next_id("communicator")
        self.env = env
        self.fabric = fabric
        self.rank_nodes = list(rank_nodes)
        self.user = user
        self._mailboxes = [FilterStore(env) for _ in rank_nodes]
        self._connections: dict[tuple[int, int], Connection] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    @property
    def size(self) -> int:
        return len(self.rank_nodes)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside communicator of size {self.size}")

    # -- connection management ------------------------------------------------
    def _connection(self, src: int, dst: int):
        """Process: lazily establish the (src, dst) queue pair."""
        key = (src, dst)
        conn = self._connections.get(key)
        if conn is None:
            conn = yield self.fabric.connect(
                self.rank_nodes[src], self.rank_nodes[dst], user=self.user
            )
            self._connections[key] = conn
        return conn

    # -- point-to-point ------------------------------------------------------------
    def send(self, source: int, dest: int, size_bytes: int,
             tag: int = 0, payload: Any = None) -> Process:
        """Eager-protocol send: completes when the payload lands."""
        self._check_rank(source)
        self._check_rank(dest)
        if size_bytes < 0:
            raise ValueError("negative message size")

        def run():
            if source != dest:
                conn = yield from self._connection(source, dest)
                yield conn.send(size_bytes)
            self.messages_sent += 1
            self.bytes_sent += size_bytes
            message = MpiMessage(source, dest, tag, size_bytes, payload)
            self._mailboxes[dest].put(message)
            return message

        return self.env.process(run(), name=f"mpi-send-{source}->{dest}")

    def recv(self, dest: int, source: Optional[int] = None,
             tag: Optional[int] = None) -> Process:
        """Blocking receive with MPI matching (ANY_SOURCE/ANY_TAG = None)."""
        self._check_rank(dest)

        def match(msg: MpiMessage) -> bool:
            return (source is None or msg.source == source) and (
                tag is None or msg.tag == tag
            )

        def run():
            message = yield self._mailboxes[dest].get(match)
            return message

        return self.env.process(run(), name=f"mpi-recv-{dest}")

    # -- collectives -----------------------------------------------------------------
    def _binomial_peers(self, rank: int, root: int) -> tuple[Optional[int], list[int]]:
        """Parent and children of ``rank`` in a binomial tree rooted at root.

        Standard construction on virtual ranks (shifted so the root is 0):
        scanning bits from the lowest, a rank's parent clears its lowest
        set bit; its children set each bit below that.
        """
        size = self.size
        virtual = (rank - root) % size
        parent: Optional[int] = None
        children: list[int] = []
        mask = 1
        while mask < size:
            if virtual & mask:
                parent = ((virtual - mask) + root) % size
                break
            child = virtual + mask
            if child < size:
                children.append((child + root) % size)
            mask <<= 1
        return parent, children

    def bcast(self, rank: int, root: int, size_bytes: int, value: Any = None) -> Process:
        """Per-rank participation in a binomial-tree broadcast.

        Every rank must call this; the returned process yields the
        broadcast value once it has arrived (and been forwarded).
        """
        self._check_rank(rank)
        self._check_rank(root)
        tag = -2 - self.comm_id  # reserved collective tag

        def run():
            parent, children = self._binomial_peers(rank, root)
            if rank == root:
                value_here = value
            else:
                message = yield self.recv(rank, source=parent, tag=tag)
                value_here = message.payload
            for child in children:
                yield self.send(rank, child, size_bytes, tag=tag, payload=value_here)
            return value_here

        return self.env.process(run(), name=f"mpi-bcast-{rank}")

    def reduce(self, rank: int, root: int, size_bytes: int, value: Any,
               op=lambda a, b: a + b) -> Process:
        """Binomial-tree reduction; the root's process yields the result."""
        self._check_rank(rank)
        self._check_rank(root)
        tag = -1000 - self.comm_id

        def run():
            parent, children = self._binomial_peers(rank, root)
            accumulated = value
            # Receive children in descending subtree order (mirrors bcast).
            for child in reversed(children):
                message = yield self.recv(rank, source=child, tag=tag)
                accumulated = op(accumulated, message.payload)
            if parent is not None:
                yield self.send(rank, parent, size_bytes, tag=tag, payload=accumulated)
                return None
            return accumulated

        return self.env.process(run(), name=f"mpi-reduce-{rank}")

    def allreduce(self, rank: int, size_bytes: int, value: Any,
                  op=lambda a, b: a + b) -> Process:
        """Reduce to rank 0 then broadcast (the small-communicator default)."""

        def run():
            reduced = yield self.reduce(rank, 0, size_bytes, value, op)
            result = yield self.bcast(rank, 0, size_bytes, value=reduced)
            return result

        return self.env.process(run(), name=f"mpi-allreduce-{rank}")

    def barrier(self, rank: int) -> Process:
        """Allreduce of a zero-byte token."""

        def run():
            yield self.allreduce(rank, 0, value=0, op=lambda a, b: 0)
            return None

        return self.env.process(run(), name=f"mpi-barrier-{rank}")
