"""MPI functions: elastic MPI ranks provisioned through the FaaS platform."""

from .communicator import Communicator, MpiMessage
from .elastic import BspReport, ElasticMpiGroup

__all__ = ["Communicator", "MpiMessage", "BspReport", "ElasticMpiGroup"]
