"""Elastic MPI over serverless functions (Sec. IV-F / Sec. VI).

"New MPI ranks can be scheduled as functions without going through the
batch system, implementing the infrastructure needed to support adaptive
MPI."  An :class:`ElasticMpiGroup` leases one core per rank from the
rFaaS resource manager, builds a :class:`Communicator` over the leased
nodes, and lets a bulk-synchronous application grow or shrink between
epochs — no restart, no batch queue.

The provisioning-latency comparison the paper implies is measurable here:
adding a rank costs one lease + connection setup (milliseconds), versus a
batch-queue wait (minutes on a loaded system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..containers.image import Image
from ..network.transport import NetworkFabric
from ..rfaas.lease import Lease
from ..rfaas.manager import NoCapacityError, ResourceManager
from ..sim.engine import Environment, Process
from .communicator import Communicator

__all__ = ["ElasticMpiGroup", "BspReport"]


@dataclass
class BspReport:
    """Outcome of a bulk-synchronous run with resizing."""

    epochs: int = 0
    epoch_times: list[float] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    grow_latencies: list[float] = field(default_factory=list)


class ElasticMpiGroup:
    """MPI ranks provisioned as serverless leases."""

    def __init__(
        self,
        env: Environment,
        manager: ResourceManager,
        fabric: NetworkFabric,
        name: str = "elastic-mpi",
        cores_per_rank: int = 1,
        memory_per_rank: int = 1 << 30,
    ):
        if cores_per_rank < 1:
            raise ValueError("cores_per_rank must be >= 1")
        self.env = env
        self.manager = manager
        self.fabric = fabric
        self.name = name
        self.cores_per_rank = cores_per_rank
        self.memory_per_rank = memory_per_rank
        self._leases: list[Lease] = []
        self.comm: Optional[Communicator] = None

    @property
    def size(self) -> int:
        return len(self._leases)

    # -- membership -----------------------------------------------------------
    def _lease_rank(self) -> Lease:
        lease, _ = self.manager.lease(
            client=f"{self.name}-rank{len(self._leases)}",
            cores=self.cores_per_rank,
            memory_bytes=self.memory_per_rank,
        )
        return lease

    def spawn(self, ranks: int) -> Process:
        """Process: lease ``ranks`` ranks and build the communicator."""
        if ranks < 1:
            raise ValueError("need >= 1 rank")
        if self._leases:
            raise RuntimeError("group already spawned; use grow()/shrink()")

        def run():
            for _ in range(ranks):
                self._leases.append(self._lease_rank())
            self._rebuild()
            # Connection warm-up between neighbours happens lazily; the
            # lease round-trips are the provisioning cost.
            yield self.env.timeout(0)
            return self.comm

        return self.env.process(run(), name=f"{self.name}-spawn")

    def grow(self, additional: int) -> Process:
        """Process: add ranks; yields the new size (may be partial on
        capacity exhaustion — the caller decides whether that is fatal)."""
        if additional < 1:
            raise ValueError("need >= 1 additional rank")

        def run():
            t0 = self.env.now
            added = 0
            for _ in range(additional):
                try:
                    self._leases.append(self._lease_rank())
                    added += 1
                except NoCapacityError:
                    break
            if added:
                self._rebuild()
            yield self.env.timeout(0)
            return self.size, self.env.now - t0

        return self.env.process(run(), name=f"{self.name}-grow")

    def shrink(self, count: int) -> int:
        """Release the highest ``count`` ranks immediately."""
        if not 0 < count < self.size:
            raise ValueError("shrink count must leave >= 1 rank")
        for _ in range(count):
            lease = self._leases.pop()
            self.manager.release_lease(lease)
        self._rebuild()
        return self.size

    def shutdown(self) -> None:
        for lease in self._leases:
            self.manager.release_lease(lease)
        self._leases.clear()
        self.comm = None

    def _rebuild(self) -> None:
        nodes = [lease.node_name for lease in self._leases]
        self.comm = Communicator(self.env, self.fabric, nodes, user=self.name)

    # -- bulk-synchronous driver ------------------------------------------------------
    def run_bsp(
        self,
        epoch_fn: Callable[[Communicator, int, int, dict], Any],
        epochs: int,
        resize: Optional[Callable[[int, "ElasticMpiGroup"], Optional[int]]] = None,
    ) -> Process:
        """Process: run ``epochs`` supersteps of ``epoch_fn`` on all ranks.

        ``epoch_fn(comm, rank, epoch, state)`` is a generator (a rank's
        program for one epoch); ``state`` is a per-rank dict surviving
        resizes of *surviving* ranks.  ``resize(epoch, group)`` may return
        a new target size between epochs — the malleable-job hook.
        """
        if epochs < 1:
            raise ValueError("need >= 1 epoch")
        if self.comm is None:
            raise RuntimeError("spawn() the group first")
        report = BspReport()
        states: dict[int, dict] = {}

        def run():
            for epoch in range(epochs):
                if resize is not None and epoch > 0:
                    target = resize(epoch, self)
                    if target is not None and target != self.size:
                        if target > self.size:
                            _, latency = yield self.grow(target - self.size)
                            report.grow_latencies.append(latency)
                        else:
                            self.shrink(self.size - target)
                comm = self.comm
                t0 = self.env.now
                rank_procs = [
                    self.env.process(
                        epoch_fn(comm, rank, epoch, states.setdefault(rank, {})),
                        name=f"{self.name}-r{rank}-e{epoch}",
                    )
                    for rank in range(comm.size)
                ]
                yield self.env.all_of(rank_procs)
                report.epochs += 1
                report.epoch_times.append(self.env.now - t0)
                report.sizes.append(comm.size)
            return report

        return self.env.process(run(), name=f"{self.name}-bsp")
