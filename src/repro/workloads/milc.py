"""MILC: the paper's canonical memory-bandwidth-bound batch job.

MILC (lattice QCD, su3_rmd) is "known to be memory-intensive and
extremely sensitive to both memory bandwidth and network performance"
(Sec. V-C, refs [93-99]).  In the co-location experiments it is the
workload that *does* feel perturbation, especially at larger problem
sizes where its working set and bandwidth demand grow — the model below
encodes exactly that trend.

The mini-kernel multiplies SU(3)-like complex 3x3 matrices over a 4-D
lattice, the dominant operation of the real code.
"""

from __future__ import annotations

import numpy as np

from .base import AppModel

__all__ = ["milc_model", "milc_kernel", "MILC_LATTICE_SIZES"]

GBs = 1e9
MiB = 1024**2

#: Per-rank 4-D lattice edge lengths used in the co-location studies.
MILC_LATTICE_SIZES = (8, 12, 16, 24)


def milc_model(lattice: int = 16, gpu: bool = False) -> AppModel:
    """Demand model for one MILC rank on an L^4 local lattice.

    Bandwidth demand per rank grows with the lattice because the working
    set leaves cache entirely; boundness rises accordingly.  This makes
    larger MILC runs *more* sensitive to co-located memory traffic, the
    Fig. 11b observation.
    """
    if lattice < 4:
        raise ValueError("lattice must be >= 4")
    sites = lattice**4
    # ~61 KB per site for gauge links + momenta at our fidelity cap.
    working_set = float(min(sites * 600, 40 * MiB))
    membw = float(np.interp(lattice, [8, 12, 16, 24], [2.2, 2.9, 3.4, 4.0])) * GBs
    frac_membw = float(np.interp(lattice, [8, 12, 16, 24], [0.42, 0.5, 0.56, 0.62]))
    runtime = sites * 1.0e-6
    return AppModel(
        name=f"milc-l{lattice}" + ("-gpu" if gpu else ""),
        runtime_s=runtime,
        membw_per_rank=membw,
        netbw_per_rank=0.09 * GBs,
        llc_per_rank=working_set,
        frac_membw=frac_membw,
        frac_netbw=0.12,
        gpu_fraction=0.8 if gpu else 0.0,
    )


def milc_kernel(lattice: int = 8, iterations: int = 2, seed: int = 0) -> float:
    """Runnable QCD surrogate: staple-like SU(3) matrix products."""
    if lattice < 2 or iterations < 1:
        raise ValueError("need lattice >= 2 and iterations >= 1")
    rng = np.random.default_rng(seed)
    sites = lattice**4
    # Gauge field: one complex 3x3 matrix per site and direction.
    links = rng.standard_normal((4, sites, 3, 3)) + 1j * rng.standard_normal((4, sites, 3, 3))
    links /= np.sqrt(3.0)
    accum = np.zeros((sites, 3, 3), dtype=complex)
    for _ in range(iterations):
        for mu in range(4):
            for nu in range(4):
                if mu == nu:
                    continue
                # Staple product U_mu(x) U_nu(x+mu) U_mu(x+nu)^dagger,
                # neighbour shifts approximated by a site roll.
                shifted = np.roll(links[nu], lattice**mu % sites, axis=0)
                staple = links[mu] @ shifted @ np.conj(np.swapaxes(links[mu], -1, -2))
                accum += staple
    return float(np.abs(accum).sum())
