"""Monte Carlo particle transport mini-app (OpenMC opr stand-in, Fig. 13b/c).

The paper's second offloading case study runs OpenMC's *opr* benchmark
(an Optimized Power Reactor model) with 1,000 and 10,000 particles.  The
real OpenMC and its 410 MB cross-section library are unavailable offline,
so this module implements a faithful miniature: particles random-walk
through a two-region (fuel/moderator) slab geometry with energy-dependent
cross sections, undergoing scattering, absorption and fission, while a
collision estimator tallies k-effective.  Like OpenMC, particle histories
are independent, making the app "extremely malleable" for offloading.

The transport loop is vectorized over the particle population (an
event-based MC formulation), so one call does real numpy work with the
same character as the original: random memory access into cross-section
tables plus branch-heavy particle logic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppModel

__all__ = [
    "ReactorModel",
    "TransportResult",
    "run_transport",
    "transport_chunk",
    "openmc_model",
]

GBs = 1e9
MiB = 1024**2


@dataclass(frozen=True)
class ReactorModel:
    """Two-region slab reactor with energy-dependent cross sections."""

    fuel_width_cm: float = 1.0
    moderator_width_cm: float = 2.0
    energy_groups: int = 64
    # Macroscopic cross sections (1/cm) per group are synthesized
    # deterministically from these anchors.
    fuel_sigma_t: float = 0.55
    moderator_sigma_t: float = 1.2
    fuel_fission_fraction: float = 0.35
    fuel_absorption_fraction: float = 0.55
    moderator_absorption_fraction: float = 0.05
    nu: float = 2.43  # neutrons per fission

    def __post_init__(self):
        if self.fuel_width_cm <= 0 or self.moderator_width_cm <= 0:
            raise ValueError("region widths must be positive")
        if self.energy_groups < 1:
            raise ValueError("need >= 1 energy group")

    @property
    def pitch(self) -> float:
        return self.fuel_width_cm + self.moderator_width_cm

    def cross_sections(self) -> dict[str, np.ndarray]:
        """Group-wise sigma_t per region, 1/v-flavoured energy dependence."""
        g = np.arange(self.energy_groups)
        shape = 1.0 + 1.5 * (g / max(self.energy_groups - 1, 1))  # thermal up
        return {
            "fuel_t": self.fuel_sigma_t * shape,
            "mod_t": self.moderator_sigma_t * shape,
        }


@dataclass(frozen=True)
class TransportResult:
    particles: int
    collisions: int
    absorptions: int
    fissions: int
    leakage: int
    k_estimate: float
    mean_distance_cm: float


def run_transport(
    particles: int,
    model: ReactorModel = ReactorModel(),
    seed: int = 0,
    max_collisions: int = 200,
) -> TransportResult:
    """Track a batch of particle histories to termination."""
    if particles < 1:
        raise ValueError("particles must be >= 1")
    if max_collisions < 1:
        raise ValueError("max_collisions must be >= 1")
    rng = np.random.default_rng(seed)
    xs = model.cross_sections()

    # Live particle state (event-based vectorized transport).
    position = rng.uniform(0.0, model.fuel_width_cm, particles)   # start in fuel
    direction = np.where(rng.random(particles) < 0.5, -1.0, 1.0)
    group = rng.integers(0, model.energy_groups, particles)
    alive = np.ones(particles, dtype=bool)

    collisions = absorptions = fissions = leakage = 0
    fission_neutrons = 0.0
    total_distance = 0.0

    for _ in range(max_collisions):
        if not alive.any():
            break
        idx = np.nonzero(alive)[0]
        pos = position[idx]
        in_fuel = pos % model.pitch < model.fuel_width_cm
        sigma = np.where(in_fuel, xs["fuel_t"][group[idx]], xs["mod_t"][group[idx]])
        # Sample flight distance, move along the slab axis.
        distance = -np.log(rng.random(idx.size)) / sigma
        total_distance += float(distance.sum())
        new_pos = pos + direction[idx] * distance
        # Leakage at the outer boundary (10 pitches of slab).
        slab = 10 * model.pitch
        leaked = (new_pos < 0.0) | (new_pos > slab)
        leakage += int(leaked.sum())
        alive[idx[leaked]] = False

        live = idx[~leaked]
        if live.size == 0:
            continue
        position[live] = new_pos[~leaked]
        collisions += live.size

        # Collision physics per region.
        in_fuel_live = position[live] % model.pitch < model.fuel_width_cm
        roll = rng.random(live.size)
        absorb_frac = np.where(
            in_fuel_live, model.fuel_absorption_fraction, model.moderator_absorption_fraction
        )
        fission_frac = np.where(in_fuel_live, model.fuel_fission_fraction, 0.0)
        absorbed = roll < absorb_frac
        fissioned = absorbed & (roll < fission_frac)
        fissions += int(fissioned.sum())
        absorptions += int(absorbed.sum())
        fission_neutrons += model.nu * float(fissioned.sum())
        alive[live[absorbed]] = False

        # Scattering: new direction, downscatter in the moderator.
        scattered = live[~absorbed]
        direction[scattered] = np.where(rng.random(scattered.size) < 0.5, -1.0, 1.0)
        in_mod_scat = position[scattered] % model.pitch >= model.fuel_width_cm
        group[scattered] = np.minimum(
            group[scattered] + in_mod_scat.astype(int), model.energy_groups - 1
        )

    return TransportResult(
        particles=particles,
        collisions=collisions,
        absorptions=absorptions,
        fissions=fissions,
        leakage=leakage,
        k_estimate=fission_neutrons / particles,
        mean_distance_cm=total_distance / particles,
    )


def transport_chunk(payload: dict) -> dict:
    """Pickle-friendly remote entry point: run a particle sub-batch."""
    result = run_transport(
        particles=int(payload["particles"]),
        seed=int(payload.get("seed", 0)),
        max_collisions=int(payload.get("max_collisions", 200)),
    )
    return {
        "particles": result.particles,
        "collisions": result.collisions,
        "fissions": result.fissions,
        "k_estimate": result.k_estimate,
    }


def openmc_model(particles: int = 10_000) -> AppModel:
    """Demand model: latency-bound random table lookups, light bandwidth."""
    if particles < 1:
        raise ValueError("particles must be >= 1")
    return AppModel(
        name=f"openmc-{particles}p",
        runtime_s=particles * 95e-6,   # ~0.1 ms/particle in the opr config
        membw_per_rank=1.1 * GBs,
        netbw_per_rank=0.0,
        llc_per_rank=12 * MiB,          # cross-section tables
        frac_membw=0.35,
    )
