"""Workload abstractions.

Every application in the paper's evaluation appears here in two forms:

* an :class:`AppModel` — a calibrated resource-demand profile used by the
  simulation-side experiments (co-location slowdowns, Table III, Figs. 9,
  11, 12); and
* where the experiment executes real code (Fig. 13, the local runtime
  examples), a vectorized numpy *mini-kernel* in the same module.

``AppModel`` demands scale linearly in ranks: ``ranks`` MPI processes on
one node consume ``ranks x`` the per-rank bandwidths and cache footprint.
That linearity is the standard first-order model for bulk-synchronous
codes and is all the paper's experiments require.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..interference.model import ResourceDemand

__all__ = ["AppModel"]


@dataclass(frozen=True)
class AppModel:
    """A calibrated per-rank resource profile for one app configuration."""

    name: str
    runtime_s: float            # reference runtime of this configuration
    membw_per_rank: float       # bytes/s DRAM traffic per rank
    netbw_per_rank: float = 0.0
    llc_per_rank: float = 0.0   # cache working set per rank (bytes)
    frac_membw: float = 0.0     # fraction of time memory-bound
    frac_netbw: float = 0.0     # fraction of time network-bound
    gpu_fraction: float = 0.0   # fraction of work on the GPU (0 = CPU-only)

    def __post_init__(self):
        if self.runtime_s <= 0:
            raise ValueError("runtime must be positive")
        if min(self.membw_per_rank, self.netbw_per_rank, self.llc_per_rank) < 0:
            raise ValueError("per-rank demands must be non-negative")
        if not 0 <= self.gpu_fraction <= 1:
            raise ValueError("gpu_fraction in [0, 1]")

    def demand(self, ranks: int = 1) -> ResourceDemand:
        """Node-level demand vector for ``ranks`` ranks on one node."""
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        return ResourceDemand(
            cores=ranks,
            membw=ranks * self.membw_per_rank,
            netbw=ranks * self.netbw_per_rank,
            llc_bytes=ranks * self.llc_per_rank,
            frac_membw=self.frac_membw,
            frac_netbw=self.frac_netbw,
            label=self.name,
        )

    def with_runtime(self, runtime_s: float) -> "AppModel":
        return replace(self, runtime_s=runtime_s)
