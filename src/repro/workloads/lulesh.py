"""LULESH: the paper's canonical compute-bound batch job.

LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
motivates software disaggregation twice in the paper: it must run on a
*cubic* number of MPI ranks, so node core counts rarely divide evenly
(Sec. III-B), and its CPU-only main version leaves GPUs idle (Sec. III-D).
Its demand profile is compute-dominated with modest memory traffic, which
is why co-location barely perturbs it (Figs. 9, 11, 12).

The mini-kernel is a Lagrangian-flavoured 3-D stencil update (gather
nodal forces, advance element energy) — enough to exercise a real
memory-access pattern in the live runtime.
"""

from __future__ import annotations

import numpy as np

from .base import AppModel

__all__ = [
    "lulesh_model",
    "valid_rank_counts",
    "is_valid_rank_count",
    "lulesh_kernel",
    "LULESH_PROBLEM_SIZES",
]

GBs = 1e9
MiB = 1024**2

#: Per-rank problem sizes (s^3 elements per rank) used in Fig. 9/11/12.
LULESH_PROBLEM_SIZES = (20, 30, 45, 60)


def valid_rank_counts(max_ranks: int) -> list[int]:
    """All legal LULESH rank counts up to ``max_ranks`` (perfect cubes)."""
    if max_ranks < 1:
        return []
    counts = []
    k = 1
    while k**3 <= max_ranks:
        counts.append(k**3)
        k += 1
    return counts


def is_valid_rank_count(ranks: int) -> bool:
    return ranks >= 1 and round(ranks ** (1 / 3)) ** 3 == ranks


def lulesh_model(problem_size: int = 30, gpu: bool = False) -> AppModel:
    """Demand model for one LULESH rank at edge length ``problem_size``.

    Larger problems shift time toward compute (better surface-to-volume),
    so memory-boundness *decreases* with size — consistent with the paper
    observing the only co-location outliers at the smallest size (Fig. 12).
    """
    if problem_size < 4:
        raise ValueError("problem_size must be >= 4")
    elements = problem_size**3
    # ~180 flops and ~115 bytes of traffic per element-iteration; the
    # constant factors only set the time scale, ratios set boundness.
    runtime = elements * 180 / 2.0e9
    frac_membw = float(np.clip(0.30 - 0.002 * (problem_size - 20), 0.1, 0.35))
    working_set = min(elements * 96, 24 * MiB)  # caps at cache-unfriendly size
    return AppModel(
        name=f"lulesh-s{problem_size}" + ("-gpu" if gpu else ""),
        runtime_s=runtime,
        membw_per_rank=1.3 * GBs,
        netbw_per_rank=0.04 * GBs,
        llc_per_rank=float(working_set),
        frac_membw=frac_membw,
        frac_netbw=0.05,
        gpu_fraction=0.85 if gpu else 0.0,
    )


def lulesh_kernel(n: int = 48, iterations: int = 10, seed: int = 0) -> float:
    """Runnable hydro surrogate: nodal-force gather + energy update."""
    if n < 4 or iterations < 1:
        raise ValueError("need n >= 4 and iterations >= 1")
    rng = np.random.default_rng(seed)
    energy = rng.random((n, n, n))
    velocity = np.zeros((n, n, n))
    for _ in range(iterations):
        # Gather: 6-neighbour average approximates the nodal force sum.
        force = (
            energy[:-2, 1:-1, 1:-1] + energy[2:, 1:-1, 1:-1]
            + energy[1:-1, :-2, 1:-1] + energy[1:-1, 2:, 1:-1]
            + energy[1:-1, 1:-1, :-2] + energy[1:-1, 1:-1, 2:]
            - 6.0 * energy[1:-1, 1:-1, 1:-1]
        )
        velocity[1:-1, 1:-1, 1:-1] += 0.1 * force
        energy[1:-1, 1:-1, 1:-1] += 0.1 * velocity[1:-1, 1:-1, 1:-1]
        # EOS-flavoured nonlinearity keeps it from being a pure stencil.
        np.clip(energy, 0.0, 10.0, out=energy)
    return float(energy.sum())
