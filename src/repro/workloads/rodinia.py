"""Rodinia GPU benchmarks (Fig. 12's GPU-function stand-ins).

The paper runs Rodinia kernels in Sarus containers bound to a single
spare CPU core; "these benchmarks simulate GPU functions as each only
takes a few hundred milliseconds".  A GPU function's node footprint is
exactly that: one core to drive the device, a sliver of host memory
bandwidth for staging, plus device-side occupancy handled by
``repro.gpu``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import AppModel

__all__ = ["RodiniaBenchmark", "RODINIA_BENCHMARKS", "rodinia_benchmark"]

GBs = 1e9
MiB = 1024**2


@dataclass(frozen=True)
class RodiniaBenchmark:
    """One Rodinia kernel: host-side demand + device-side requirements."""

    name: str
    runtime_s: float            # few hundred ms each (Sec. V-C)
    device_memory_bytes: int
    gpu_occupancy: float        # fraction of SMs busy while running
    host: AppModel              # the 1-core host driver profile

    def __post_init__(self):
        if not 0 < self.gpu_occupancy <= 1:
            raise ValueError("gpu_occupancy in (0, 1]")
        if self.device_memory_bytes <= 0:
            raise ValueError("device memory must be positive")


def _host(name: str, runtime: float, membw: float = 0.4 * GBs) -> AppModel:
    # A GPU driver process: one core, mostly waiting on the device,
    # staging data through pinned host buffers.
    return AppModel(
        name=f"rodinia-{name}-host",
        runtime_s=runtime,
        membw_per_rank=membw,
        netbw_per_rank=0.0,
        llc_per_rank=2 * MiB,
        frac_membw=0.15,
    )


RODINIA_BENCHMARKS: dict[str, RodiniaBenchmark] = {
    b.name: b
    for b in (
        RodiniaBenchmark("backprop", 0.25, 512 * MiB, 0.55, _host("backprop", 0.25)),
        RodiniaBenchmark("bfs", 0.31, 768 * MiB, 0.35, _host("bfs", 0.31, 0.8 * GBs)),
        RodiniaBenchmark("hotspot", 0.18, 256 * MiB, 0.7, _host("hotspot", 0.18)),
        RodiniaBenchmark("kmeans", 0.42, 1024 * MiB, 0.6, _host("kmeans", 0.42, 0.6 * GBs)),
        RodiniaBenchmark("lavamd", 0.38, 384 * MiB, 0.85, _host("lavamd", 0.38)),
        RodiniaBenchmark("needle", 0.29, 512 * MiB, 0.5, _host("needle", 0.29)),
        RodiniaBenchmark("pathfinder", 0.15, 256 * MiB, 0.45, _host("pathfinder", 0.15)),
        RodiniaBenchmark("srad", 0.33, 640 * MiB, 0.65, _host("srad", 0.33)),
    )
}


def rodinia_benchmark(name: str) -> RodiniaBenchmark:
    try:
        return RODINIA_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown Rodinia benchmark {name!r}; available: {sorted(RODINIA_BENCHMARKS)}"
        ) from None
