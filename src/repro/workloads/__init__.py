"""Workloads: demand models for simulation + runnable numpy mini-kernels."""

from .base import AppModel
from .blackscholes import (
    OptionBatch,
    blackscholes_model,
    generate_options,
    price_chunk,
    price_options,
    split_batch,
)
from .blackscholes_pde import PdeGrid, pde_chunk, solve_european_pde
from .lulesh import (
    LULESH_PROBLEM_SIZES,
    is_valid_rank_count,
    lulesh_kernel,
    lulesh_model,
    valid_rank_counts,
)
from .milc import MILC_LATTICE_SIZES, milc_kernel, milc_model
from .nas import NAS_KERNELS, NAS_MODELS, nas_kernel, nas_model, nas_model_for_class
from .openmc_like import (
    ReactorModel,
    TransportResult,
    openmc_model,
    run_transport,
    transport_chunk,
)
from .rodinia import RODINIA_BENCHMARKS, RodiniaBenchmark, rodinia_benchmark

__all__ = [
    "AppModel",
    "OptionBatch",
    "blackscholes_model",
    "generate_options",
    "price_chunk",
    "price_options",
    "split_batch",
    "PdeGrid",
    "pde_chunk",
    "solve_european_pde",
    "LULESH_PROBLEM_SIZES",
    "is_valid_rank_count",
    "lulesh_kernel",
    "lulesh_model",
    "valid_rank_counts",
    "MILC_LATTICE_SIZES",
    "milc_kernel",
    "milc_model",
    "NAS_KERNELS",
    "NAS_MODELS",
    "nas_kernel",
    "nas_model",
    "nas_model_for_class",
    "ReactorModel",
    "TransportResult",
    "openmc_model",
    "run_transport",
    "transport_chunk",
    "RODINIA_BENCHMARKS",
    "RodiniaBenchmark",
    "rodinia_benchmark",
]
