"""NAS Parallel Benchmarks: demand models and runnable mini-kernels.

The paper uses serial NAS benchmarks (runtimes 0.6–4.2 s) as the
FaaS-like workload for the idle-node study (Table III) and the CPU
co-location study (Fig. 9) because they cover the space of compute- and
memory-bound behaviours.  Demand calibrations below follow the published
characterizations: EP is embarrassingly parallel and compute-bound, CG is
the worst-case memory-bandwidth benchmark (irregular sparse matvec), BT
and LU are mixed stencil solvers, MG and FT memory-heavy, IS bandwidth-
plus-communication bound.

Each benchmark also has a *mini-kernel*: a genuinely executable numpy
routine with the same computational character, used by the real local
runtime (examples, Fig. 13 harness, integration tests).  Kernels return a
float checksum so callers can verify remote execution did real work.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import AppModel

__all__ = ["NAS_MODELS", "nas_model", "nas_model_for_class", "NAS_KERNELS", "nas_kernel"]

GBs = 1e9
MiB = 1024**2

#: Demand profiles for the (benchmark, class) pairs used in the paper.
#: Runtimes are the serial runtimes quoted in Sec. V-B (0.6–4.2 s band).
NAS_MODELS: dict[str, AppModel] = {
    "bt.W": AppModel(
        name="bt.W", runtime_s=4.2,
        membw_per_rank=3.8 * GBs, llc_per_rank=8 * MiB,
        frac_membw=0.32, netbw_per_rank=0.0,
    ),
    "cg.A": AppModel(
        name="cg.A", runtime_s=0.6,
        membw_per_rank=11.5 * GBs, llc_per_rank=26 * MiB,
        frac_membw=0.88,
    ),
    "ep.W": AppModel(
        name="ep.W", runtime_s=1.4,
        membw_per_rank=0.25 * GBs, llc_per_rank=1 * MiB,
        frac_membw=0.02,
    ),
    "lu.W": AppModel(
        name="lu.W", runtime_s=3.1,
        membw_per_rank=4.2 * GBs, llc_per_rank=6 * MiB,
        frac_membw=0.35,
    ),
    "mg.W": AppModel(
        name="mg.W", runtime_s=1.0,
        membw_per_rank=7.5 * GBs, llc_per_rank=14 * MiB,
        frac_membw=0.6,
    ),
    "ft.W": AppModel(
        name="ft.W", runtime_s=1.8,
        membw_per_rank=6.0 * GBs, llc_per_rank=18 * MiB,
        frac_membw=0.5,
    ),
    "is.W": AppModel(
        name="is.W", runtime_s=0.8,
        membw_per_rank=8.0 * GBs, llc_per_rank=16 * MiB,
        frac_membw=0.65,
    ),
    "sp.W": AppModel(
        name="sp.W", runtime_s=3.6,
        membw_per_rank=4.5 * GBs, llc_per_rank=7 * MiB,
        frac_membw=0.38,
    ),
}


def nas_model(key: str) -> AppModel:
    """Look up a NAS demand model, e.g. ``nas_model("cg.A")``."""
    try:
        return NAS_MODELS[key]
    except KeyError:
        raise KeyError(
            f"unknown NAS benchmark {key!r}; available: {sorted(NAS_MODELS)}"
        ) from None


#: Relative problem-size factors of the NAS classes (each step grows the
#: problem roughly 4-16x; runtime factors below are the common rule of
#: thumb for serial execution).
NAS_CLASS_RUNTIME_SCALE: dict[str, float] = {
    "S": 0.05, "W": 1.0, "A": 4.0, "B": 16.0, "C": 64.0,
}

MAX_LLC_FOOTPRINT = 64 * MiB  # beyond this, streaming: footprint saturates


def nas_model_for_class(bench: str, cls: str) -> AppModel:
    """Scale a calibrated model to another NAS class.

    ``bench`` is the benchmark mnemonic (``"cg"``); ``cls`` one of
    S/W/A/B/C.  Runtime scales with the class's work factor; the cache
    footprint grows with the working set until it saturates at streaming
    scale; bandwidth demand and boundness stay (first order) constant —
    they are properties of the algorithm, not the size.
    """
    cls = cls.upper()
    if cls not in NAS_CLASS_RUNTIME_SCALE:
        raise KeyError(f"unknown NAS class {cls!r}; use one of S/W/A/B/C")
    base = next((m for k, m in NAS_MODELS.items() if k.startswith(bench + ".")), None)
    if base is None:
        raise KeyError(f"unknown NAS benchmark {bench!r}")
    base_cls = base.name.split(".")[1]
    ratio = NAS_CLASS_RUNTIME_SCALE[cls] / NAS_CLASS_RUNTIME_SCALE[base_cls]
    from dataclasses import replace

    return replace(
        base,
        name=f"{bench}.{cls}",
        runtime_s=base.runtime_s * ratio,
        llc_per_rank=min(base.llc_per_rank * ratio**0.5, MAX_LLC_FOOTPRINT),
    )


# ---------------------------------------------------------------------------
# Runnable mini-kernels
# ---------------------------------------------------------------------------

def ep_kernel(scale: int = 20, seed: int = 0) -> float:
    """EP: embarrassingly parallel Gaussian-pair counting (Marsaglia).

    Generates 2^scale uniform pairs and counts acceptances per annulus,
    exactly the EP benchmark's structure.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    x = rng.uniform(-1.0, 1.0, size=n)
    y = rng.uniform(-1.0, 1.0, size=n)
    t = x * x + y * y
    mask = t <= 1.0
    factor = np.sqrt(-2.0 * np.log(t[mask]) / t[mask])
    gx, gy = x[mask] * factor, y[mask] * factor
    counts = np.histogram(np.maximum(np.abs(gx), np.abs(gy)), bins=10, range=(0, 10))[0]
    return float(counts.sum() + gx.sum() + gy.sum())


def cg_kernel(n: int = 4000, iterations: int = 25, seed: int = 0) -> float:
    """CG: conjugate-gradient solve on a random sparse SPD matrix."""
    if n < 2 or iterations < 1:
        raise ValueError("need n >= 2 and iterations >= 1")
    rng = np.random.default_rng(seed)
    # Sparse SPD matrix: tridiagonal + random off-diagonal couplings.
    import scipy.sparse as sp

    main = 4.0 + rng.random(n)
    off = -1.0 * np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    b = rng.random(n)
    x = np.zeros(n)
    r = b - A @ x
    p = r.copy()
    rs = float(r @ r)
    for _ in range(iterations):
        Ap = A @ p
        alpha = rs / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs) * p
        rs = rs_new
        if rs < 1e-20:
            break
    return float(np.linalg.norm(x))


def mg_kernel(levels: int = 5, iterations: int = 4, seed: int = 0) -> float:
    """MG: V-cycle multigrid relaxation of a 2-D Poisson problem."""
    if levels < 2 or iterations < 1:
        raise ValueError("need levels >= 2 and iterations >= 1")
    n = 2**levels + 1
    rng = np.random.default_rng(seed)
    u = np.zeros((n, n))
    f = rng.random((n, n))

    def smooth(u, f, sweeps=2):
        for _ in range(sweeps):
            u[1:-1, 1:-1] = 0.25 * (
                u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
                + f[1:-1, 1:-1]
            )
        return u

    def vcycle(u, f):
        if u.shape[0] <= 3:
            return smooth(u, f, sweeps=10)
        u = smooth(u, f)
        residual = np.zeros_like(u)
        residual[1:-1, 1:-1] = f[1:-1, 1:-1] - (
            4 * u[1:-1, 1:-1]
            - u[:-2, 1:-1] - u[2:, 1:-1] - u[1:-1, :-2] - u[1:-1, 2:]
        )
        coarse_f = residual[::2, ::2].copy()
        coarse_u = vcycle(np.zeros_like(coarse_f), coarse_f)
        fine_correction = np.kron(coarse_u, np.ones((2, 2)))[: u.shape[0], : u.shape[1]]
        u = u + fine_correction
        return smooth(u, f)

    for _ in range(iterations):
        u = vcycle(u, f)
    return float(np.abs(u).sum())


def ft_kernel(n: int = 128, iterations: int = 3, seed: int = 0) -> float:
    """FT: repeated 3-D FFT / inverse-FFT with evolution, like NAS FT."""
    if n < 4 or iterations < 1:
        raise ValueError("need n >= 4 and iterations >= 1")
    rng = np.random.default_rng(seed)
    data = rng.random((n, n, n)) + 1j * rng.random((n, n, n))
    freq = np.fft.fftn(data)
    checksum = 0.0
    for step in range(1, iterations + 1):
        evolved = freq * np.exp(-1e-6 * step * np.arange(n)[:, None, None] ** 2)
        back = np.fft.ifftn(evolved)
        checksum += float(np.abs(back[0, 0, 0]))
    return checksum


def is_kernel(scale: int = 20, seed: int = 0) -> float:
    """IS: integer bucket sort via key histogram + rank computation."""
    if scale < 4:
        raise ValueError("scale must be >= 4")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    max_key = 1 << (scale // 2)
    keys = rng.integers(0, max_key, size=n)
    counts = np.bincount(keys, minlength=max_key)
    ranks = np.cumsum(counts)
    return float(ranks[-1] + ranks[max_key // 2])


def bt_kernel(n: int = 64, iterations: int = 5, seed: int = 0) -> float:
    """BT/SP/LU surrogate: 3-D 7-point stencil sweep with line relaxation."""
    if n < 4 or iterations < 1:
        raise ValueError("need n >= 4 and iterations >= 1")
    rng = np.random.default_rng(seed)
    u = rng.random((n, n, n))
    for _ in range(iterations):
        u[1:-1, 1:-1, 1:-1] = (
            0.5 * u[1:-1, 1:-1, 1:-1]
            + (
                u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
                + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
                + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
            ) / 12.0
        )
    return float(u.sum())


NAS_KERNELS: dict[str, Callable[..., float]] = {
    "ep": ep_kernel,
    "cg": cg_kernel,
    "mg": mg_kernel,
    "ft": ft_kernel,
    "is": is_kernel,
    "bt": bt_kernel,
    "lu": bt_kernel,   # same stencil character at this fidelity
    "sp": bt_kernel,
}


def nas_kernel(name: str) -> Callable[..., float]:
    try:
        return NAS_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown NAS kernel {name!r}; available: {sorted(NAS_KERNELS)}") from None
