"""Black-Scholes option pricing (PARSEC blackscholes, Fig. 13a).

The paper's first offloading case study: "a solver for the Black-Scholes
equation ... generates many independent tasks with comparable runtime".
This module is the *real* workload for the live runtime: a vectorized
closed-form Black-Scholes pricer over batches of options, a batch
generator matching PARSEC's input format, and helpers to split work into
offloadable chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr  # standard normal CDF, vectorized

from .base import AppModel

__all__ = [
    "OptionBatch",
    "generate_options",
    "price_options",
    "price_chunk",
    "split_batch",
    "blackscholes_model",
]

GBs = 1e9
MiB = 1024**2


@dataclass(frozen=True)
class OptionBatch:
    """A structure-of-arrays batch of European options."""

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    expiry: np.ndarray
    is_call: np.ndarray

    def __post_init__(self):
        n = len(self.spot)
        for field in (self.strike, self.rate, self.volatility, self.expiry, self.is_call):
            if len(field) != n:
                raise ValueError("all arrays must have equal length")

    def __len__(self) -> int:
        return len(self.spot)

    @property
    def nbytes(self) -> int:
        return sum(
            a.nbytes
            for a in (self.spot, self.strike, self.rate, self.volatility, self.expiry, self.is_call)
        )

    def slice(self, start: int, stop: int) -> "OptionBatch":
        return OptionBatch(
            self.spot[start:stop], self.strike[start:stop], self.rate[start:stop],
            self.volatility[start:stop], self.expiry[start:stop], self.is_call[start:stop],
        )


def generate_options(count: int, seed: int = 0) -> OptionBatch:
    """Synthesize a PARSEC-like option portfolio."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    return OptionBatch(
        spot=rng.uniform(10.0, 200.0, count),
        strike=rng.uniform(10.0, 200.0, count),
        rate=rng.uniform(0.005, 0.06, count),
        volatility=rng.uniform(0.05, 0.6, count),
        expiry=rng.uniform(0.05, 2.0, count),
        is_call=rng.random(count) < 0.5,
    )


def price_options(batch: OptionBatch, iterations: int = 1) -> np.ndarray:
    """Closed-form Black-Scholes prices.

    ``iterations`` repeats the computation like PARSEC's ``-n`` flag (the
    paper uses 100 iterations) — it scales compute without scaling data,
    which is what makes offloading profitable (Eq. 1).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    sqrt_t = np.sqrt(batch.expiry)
    for _ in range(iterations):
        d1 = (
            np.log(batch.spot / batch.strike)
            + (batch.rate + 0.5 * batch.volatility**2) * batch.expiry
        ) / (batch.volatility * sqrt_t)
        d2 = d1 - batch.volatility * sqrt_t
        discounted_strike = batch.strike * np.exp(-batch.rate * batch.expiry)
        call = batch.spot * ndtr(d1) - discounted_strike * ndtr(d2)
        put = discounted_strike * ndtr(-d2) - batch.spot * ndtr(-d1)
        prices = np.where(batch.is_call, call, put)
    return prices


def price_chunk(arrays: dict, iterations: int = 1) -> np.ndarray:
    """Pickle-friendly entry point for remote executors.

    Remote invocation payloads travel as plain dict-of-arrays; this
    rebuilds the batch and prices it.
    """
    batch = OptionBatch(**arrays)
    return price_options(batch, iterations=iterations)


def split_batch(batch: OptionBatch, chunks: int) -> list[dict]:
    """Split into ``chunks`` near-equal dict payloads for dispatch."""
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    bounds = np.linspace(0, len(batch), chunks + 1, dtype=int)
    out = []
    for start, stop in zip(bounds[:-1], bounds[1:]):
        if stop > start:
            part = batch.slice(int(start), int(stop))
            out.append(
                dict(
                    spot=part.spot, strike=part.strike, rate=part.rate,
                    volatility=part.volatility, expiry=part.expiry, is_call=part.is_call,
                )
            )
    return out


def blackscholes_model(options: int = 10_000_000) -> AppModel:
    """Demand model: streaming, compute-heavy, fully parallel."""
    if options < 1:
        raise ValueError("options must be >= 1")
    return AppModel(
        name="blackscholes",
        runtime_s=options * 7.3e-9 * 100,  # 100 iterations like the paper
        membw_per_rank=2.0 * GBs,
        netbw_per_rank=0.0,
        llc_per_rank=4 * MiB,
        frac_membw=0.18,
    )
