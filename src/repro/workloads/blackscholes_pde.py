"""Finite-difference Black-Scholes solver (Crank–Nicolson).

The paper's Black-Scholes citation [Heinecke'12] is a *PDE solver*, not
the closed-form formula; this module provides that heavier, more
HPC-flavoured kernel: Crank–Nicolson time stepping of the Black-Scholes
PDE on a log-price grid, solved per step with the Thomas tridiagonal
algorithm.  It validates against the closed-form pricer (see tests) and
gives the offloading experiments a task whose compute/data ratio is
tunable via the grid resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PdeGrid", "solve_european_pde", "pde_chunk"]


@dataclass(frozen=True)
class PdeGrid:
    """Discretization of the Black-Scholes PDE."""

    space_points: int = 400       # grid points in price dimension
    time_steps: int = 400
    s_max_factor: float = 4.0     # domain: [0, s_max_factor * max(spot, strike)]

    def __post_init__(self):
        if self.space_points < 8 or self.time_steps < 4:
            raise ValueError("grid too coarse")
        if self.s_max_factor <= 1:
            raise ValueError("s_max_factor must exceed 1")


def _thomas(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
            rhs: np.ndarray) -> np.ndarray:
    """Thomas algorithm for a tridiagonal system (O(n), in-place safe)."""
    n = diag.size
    c_prime = np.empty(n)
    d_prime = np.empty(n)
    c_prime[0] = upper[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c_prime[i - 1]
        c_prime[i] = upper[i] / denom if i < n - 1 else 0.0
        d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom
    x = np.empty(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x


def solve_european_pde(
    spot: float,
    strike: float,
    rate: float,
    volatility: float,
    expiry: float,
    is_call: bool = True,
    grid: PdeGrid = PdeGrid(),
) -> float:
    """Price one European option by Crank–Nicolson on the BS PDE."""
    if min(spot, strike, volatility, expiry) <= 0:
        raise ValueError("spot/strike/volatility/expiry must be positive")
    if rate < 0:
        raise ValueError("rate must be non-negative")
    n = grid.space_points
    m = grid.time_steps
    s_max = grid.s_max_factor * max(spot, strike)
    ds = s_max / n
    dt = expiry / m
    s = np.linspace(0.0, s_max, n + 1)

    # Terminal payoff.
    if is_call:
        values = np.maximum(s - strike, 0.0)
    else:
        values = np.maximum(strike - s, 0.0)

    # Crank–Nicolson coefficients on interior nodes i = 1..n-1.
    i = np.arange(1, n)
    sigma2 = volatility**2
    alpha = 0.25 * dt * (sigma2 * i**2 - rate * i)
    beta = -0.5 * dt * (sigma2 * i**2 + rate)
    gamma = 0.25 * dt * (sigma2 * i**2 + rate * i)

    # (I - A) V_new = (I + A) V_old with A tridiag(alpha, beta, gamma).
    lower = np.concatenate(([0.0], -alpha[1:]))
    diag = 1.0 - beta
    upper = np.concatenate((-gamma[:-1], [0.0]))

    for step in range(m):
        tau = (step + 1) * dt  # time remaining after this step
        rhs = (
            alpha * values[:-2]
            + (1.0 + beta) * values[1:-1]
            + gamma * values[2:]
        )
        # Dirichlet boundaries folded into the RHS.
        if is_call:
            v0_new, vn_new = 0.0, s_max - strike * np.exp(-rate * tau)
        else:
            v0_new, vn_new = strike * np.exp(-rate * tau), 0.0
        rhs[0] += alpha[0] * v0_new
        rhs[-1] += gamma[-1] * vn_new
        interior = _thomas(lower, diag, upper, rhs)
        values = np.concatenate(([v0_new], interior, [vn_new]))

    return float(np.interp(spot, s, values))


def pde_chunk(payload: dict) -> list[float]:
    """Pickle-friendly remote entry point: price a batch of options.

    ``payload`` carries parallel lists of option parameters plus optional
    grid settings — the heavyweight sibling of
    :func:`repro.workloads.blackscholes.price_chunk`.
    """
    grid = PdeGrid(
        space_points=int(payload.get("space_points", 200)),
        time_steps=int(payload.get("time_steps", 200)),
    )
    out = []
    for spot, strike, rate, vol, expiry, is_call in zip(
        payload["spot"], payload["strike"], payload["rate"],
        payload["volatility"], payload["expiry"], payload["is_call"],
    ):
        out.append(
            solve_european_pde(float(spot), float(strike), float(rate),
                               float(vol), float(expiry), bool(is_call), grid)
        )
    return out
