"""GPU functions and the local-vs-remote GPU access comparison.

The paper's argument for co-located GPU functions over remote-GPU systems
(rCUDA-style, Sec. III-D): remote access adds the network round trip to
*every* command, and "applications such as machine learning inference can
consist of hundreds of kernels with synchronization in between".  A
co-located function pays data movement once and drives the device through
the local PCIe path using a single CPU core.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.logp import LogGPParams
from ..sim.engine import Environment, Process
from .device import GpuDevice, GpuMemoryError

__all__ = ["GpuFunctionSpec", "run_gpu_function", "remote_gpu_overhead", "inference_latency"]


@dataclass(frozen=True)
class GpuFunctionSpec:
    """A GPU function: a kernel sequence plus data movement."""

    name: str
    kernel_count: int
    kernel_time_s: float
    occupancy: float
    input_bytes: int
    device_memory_bytes: int
    keep_data_warm: bool = True

    def __post_init__(self):
        if self.kernel_count < 1:
            raise ValueError("need >= 1 kernel")
        if self.kernel_time_s < 0 or self.input_bytes < 0:
            raise ValueError("negative sizes")
        if self.device_memory_bytes < 1:
            raise ValueError("device memory must be positive")

    @property
    def device_time_s(self) -> float:
        return self.kernel_count * self.kernel_time_s


def run_gpu_function(
    env: Environment,
    device: GpuDevice,
    spec: GpuFunctionSpec,
    pcie_bandwidth: float = 12e9,
) -> Process:
    """Execute a GPU function on a co-located device.

    Pays host-to-device transfer (skipped when the dataset is already
    warm on the device), then runs the kernel sequence back-to-back —
    local launch latency is negligible against the Fig.-12 kernel sizes.
    Yields the wall time consumed.
    """

    def run():
        start = env.now
        if not device.has_warm(spec.name):
            yield env.timeout(spec.input_bytes / pcie_bandwidth)
            if spec.keep_data_warm:
                try:
                    device.keep_warm(spec.name, spec.device_memory_bytes)
                except GpuMemoryError:
                    pass  # caching is best-effort; hard allocations win
        for _ in range(spec.kernel_count):
            yield device.launch(spec.name, spec.kernel_time_s, spec.occupancy)
        return env.now - start

    return env.process(run(), name=f"gpufn-{spec.name}")


def remote_gpu_overhead(spec: GpuFunctionSpec, network: LogGPParams) -> float:
    """Extra latency of driving the same function through a remote GPU.

    Every kernel launch plus its synchronization crosses the network:
    one round trip per kernel (command + completion), as in API-remoting
    systems.  The input still crosses the wire once.
    """
    per_kernel = network.round_trip(256, 64)   # launch command + completion
    return spec.kernel_count * per_kernel


def inference_latency(
    spec: GpuFunctionSpec,
    network: LogGPParams,
    remote: bool,
    pcie_bandwidth: float = 12e9,
    data_warm: bool = False,
) -> float:
    """Analytic end-to-end latency for one invocation (no contention).

    ``remote=False`` is the paper's co-located GPU function; ``remote=True``
    the rCUDA-style alternative it argues against.
    """
    transfer = 0.0 if data_warm else spec.input_bytes / pcie_bandwidth
    if remote and not data_warm:
        transfer += spec.input_bytes * network.G
    total = transfer + spec.device_time_s
    if remote:
        total += remote_gpu_overhead(spec, network)
    return total
