"""GPU device model (Sec. III-D, Fig. 12).

A device executes kernels with a given SM *occupancy*; concurrent kernels
time-share the SMs, so when total requested occupancy exceeds 1.0 every
resident kernel dilates proportionally.  Device memory is explicitly
allocated, and a *warm data* registry lets GPU functions "keep warm data
in the device's memory until another application needs the device" —
warm datasets are evicted LRU under memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.specs import GpuSpec
from ..sim.engine import Environment, Process

__all__ = ["GpuDevice", "GpuMemoryError", "KernelLaunch"]



class GpuMemoryError(MemoryError):
    """Device memory exhausted (even after evicting warm data)."""


@dataclass
class KernelLaunch:
    launch_id: int
    owner: str
    runtime_s: float
    occupancy: float


class GpuDevice:
    """One accelerator: SM occupancy sharing + explicit memory."""

    def __init__(self, env: Environment, spec: GpuSpec, name: str = "gpu0"):
        self.env = env
        self.spec = spec
        self.name = name
        self._free_memory = spec.memory_bytes
        self._allocations: dict[str, int] = {}      # owner -> bytes (pinned)
        self._warm_data: dict[str, tuple[int, float]] = {}  # owner -> (bytes, last_used)
        self._resident: dict[int, KernelLaunch] = {}
        self.kernels_launched = 0
        self.warm_evictions = 0

    # -- memory -----------------------------------------------------------
    @property
    def free_memory(self) -> int:
        return self._free_memory

    @property
    def current_occupancy(self) -> float:
        return sum(k.occupancy for k in self._resident.values())

    def allocate_memory(self, owner: str, nbytes: int) -> None:
        """Hard allocation; evicts warm datasets under pressure.

        All-or-nothing: when even evicting *every* warm dataset could not
        make the allocation fit, it raises without touching device state —
        no warm data is sacrificed to an allocation that fails anyway.
        """
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        reclaimable = self._free_memory + sum(
            size for size, _ in self._warm_data.values()
        )
        if reclaimable < nbytes:
            raise GpuMemoryError(
                f"{self.name}: {nbytes} B requested, {self._free_memory} B free"
                f" ({reclaimable} B even after evicting all warm data)"
            )
        while self._free_memory < nbytes:
            self._evict_lru_warm()
        self._free_memory -= nbytes
        self._allocations[owner] = self._allocations.get(owner, 0) + nbytes

    def free_memory_of(self, owner: str) -> int:
        freed = self._allocations.pop(owner, 0)
        self._free_memory += freed
        return freed

    # -- warm data (soft allocations) --------------------------------------------
    def keep_warm(self, owner: str, nbytes: int) -> None:
        """Park a dataset on the device; reclaimable any time.

        Re-warming replaces the owner's previous dataset, but only once
        the new one is known to fit: a failed ``keep_warm`` leaves every
        warm entry — including the owner's old one — untouched.
        """
        if nbytes <= 0:
            raise ValueError("warm data must be positive")
        reclaimable = self._free_memory + sum(
            size for size, _ in self._warm_data.values()
        )
        if reclaimable < nbytes:
            raise GpuMemoryError(f"{self.name}: no room for warm data")
        self.drop_warm(owner)
        while self._free_memory < nbytes:
            self._evict_lru_warm()
        self._free_memory -= nbytes
        self._warm_data[owner] = (nbytes, self.env.now)

    def has_warm(self, owner: str) -> bool:
        if owner in self._warm_data:
            nbytes, _ = self._warm_data[owner]
            self._warm_data[owner] = (nbytes, self.env.now)
            return True
        return False

    def drop_warm(self, owner: str) -> None:
        entry = self._warm_data.pop(owner, None)
        if entry is not None:
            self._free_memory += entry[0]

    def _evict_lru_warm(self) -> None:
        # Tie-break equal last-used timestamps by owner name: eviction
        # order must not depend on dict insertion history.
        victim = min(self._warm_data, key=lambda o: (self._warm_data[o][1], o))
        self.drop_warm(victim)
        self.warm_evictions += 1

    # -- kernels ----------------------------------------------------------------
    def launch(self, owner: str, runtime_s: float, occupancy: float) -> Process:
        """Run a kernel; dilates while co-resident occupancy exceeds 1.

        Dilation is approximated with the occupancy mix at launch time —
        sufficient for the few-hundred-millisecond Rodinia kernels.
        """
        if runtime_s < 0:
            raise ValueError("negative kernel runtime")
        if not 0 < occupancy <= 1:
            raise ValueError("occupancy in (0, 1]")
        launch = KernelLaunch(self.env.next_id("gpu-launch"), owner, runtime_s, occupancy)

        def run():
            self._resident[launch.launch_id] = launch
            self.kernels_launched += 1
            total = self.current_occupancy
            dilation = max(1.0, total)
            try:
                yield self.env.timeout(runtime_s * dilation)
            finally:
                del self._resident[launch.launch_id]
            return runtime_s * dilation

        return self.env.process(run(), name=f"kernel-{owner}-{launch.launch_id}")
