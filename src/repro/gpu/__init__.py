"""GPU substrate: device model, GPU functions, remote-GPU comparison."""

from .device import GpuDevice, GpuMemoryError, KernelLaunch
from .gpu_function import (
    GpuFunctionSpec,
    inference_latency,
    remote_gpu_overhead,
    run_gpu_function,
)

__all__ = [
    "GpuDevice",
    "GpuMemoryError",
    "KernelLaunch",
    "GpuFunctionSpec",
    "inference_latency",
    "remote_gpu_overhead",
    "run_gpu_function",
]
