"""Replica state for the replicated resource manager.

A :class:`ManagerReplica` is one member of the control-plane group: it
holds a *materialized* copy of the lease/registration state, rebuilt
purely by applying :class:`LogRecord` entries in index order.  The
primary materializes its state from the same records it ships to the
standbys, so "what a standby would know after takeover" is never a
guess — it is exactly ``registrations`` + ``lease_records`` here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ReplicaRole", "LogRecord", "ManagerReplica"]


class ReplicaRole(enum.Enum):
    """Where a replica stands in the current epoch."""

    PRIMARY = "primary"    # serves all front-door mutations
    STANDBY = "standby"    # applies the primary's log, ready to take over
    DOWN = "down"          # crashed; holds no state until it rejoins
    FENCED = "fenced"      # ex-primary expelled by a takeover; must resync


@dataclass(frozen=True)
class LogRecord:
    """One fenced, replicated control-plane mutation.

    ``op`` is one of ``register`` / ``remove`` / ``grant`` / ``revoke``
    / ``release``; ``payload`` carries the op-specific fields (node
    name, lease id, sizes).  Records are totally ordered by ``index``
    and stamped with the ``epoch`` they were committed under — the
    certification invariants (:mod:`repro.faults.certify`) replay this
    log to prove no double-grant and epoch monotonicity.
    """

    index: int
    epoch: int
    op: str
    at_s: float
    payload: dict[str, Any]


@dataclass
class ManagerReplica:
    """One member of the replicated resource-manager group."""

    rank: int
    role: ReplicaRole = ReplicaRole.STANDBY
    epoch: int = 0
    applied_index: int = 0
    #: node_name -> register_node kwargs (enough to recreate the pool).
    registrations: dict[str, dict] = field(default_factory=dict)
    #: lease_id -> grant payload for leases this replica believes live.
    lease_records: dict[int, dict] = field(default_factory=dict)
    #: sim time of the last heartbeat received from the primary.
    last_heartbeat_s: float = 0.0

    @property
    def name(self) -> str:
        return f"rm-{self.rank}"

    @property
    def live(self) -> bool:
        return self.role in (ReplicaRole.PRIMARY, ReplicaRole.STANDBY)

    def apply(self, record: LogRecord) -> None:
        """Materialize one log record into this replica's state."""
        payload = record.payload
        if record.op == "register":
            self.registrations[payload["node"]] = dict(payload["registration"])
        elif record.op == "remove":
            self.registrations.pop(payload["node"], None)
            # Leases die with their node: drop the records too.
            dead = [lid for lid, rec in self.lease_records.items()
                    if rec["node"] == payload["node"]]
            for lid in dead:
                del self.lease_records[lid]
        elif record.op == "grant":
            self.lease_records[payload["lease_id"]] = dict(payload)
        elif record.op in ("revoke", "release"):
            self.lease_records.pop(payload["lease_id"], None)
        else:
            raise ValueError(f"unknown log op {record.op!r}")
        self.applied_index = record.index
        self.epoch = record.epoch

    def resync_from(self, source: "ManagerReplica") -> None:
        """Full state transfer from ``source`` (join / heal / step-down)."""
        self.registrations = {k: dict(v) for k, v in source.registrations.items()}
        self.lease_records = {k: dict(v) for k, v in source.lease_records.items()}
        self.applied_index = source.applied_index
        self.epoch = source.epoch
