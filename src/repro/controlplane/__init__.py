"""Highly-available control plane: a replicated resource manager.

The paper's architecture hangs everything off one global resource
manager — leases, registrations, credentials (Sec. IV-E).  That is a
single point of failure no platform serving real HPC tenants can
accept, so this package replicates it: one **primary** plus ``k``
**standbys**, with

* deterministic, seed-free **rank-based leader election** — the live
  standby with the lowest rank wins, no randomness anywhere;
* a sim-time **heartbeat failure detector** (deadline-style: suspect
  after ``suspect_after`` missed ``heartbeat_interval_s`` beats), whose
  timeout is the knob trading detection latency against false
  positives;
* **epoch-fenced replication** — every grant/revoke/register ships to
  the standbys as a log record, and every mutation is fenced on the
  issuing replica's epoch so a partitioned ex-primary can never grant
  after a takeover (no split brain);
* **takeover reconciliation** — the new primary revokes data-plane
  leases absent from its replicated records and applies releases
  buffered while the control plane was dark.

See ``docs/control_plane_ha.md`` for the failure matrix and the
certification invariants (:mod:`repro.faults.certify`).
"""

from .replica import LogRecord, ManagerReplica, ReplicaRole
from .ha import ElectionRecord, HAConfig, ReplicatedResourceManager

__all__ = [
    "ElectionRecord",
    "HAConfig",
    "LogRecord",
    "ManagerReplica",
    "ReplicaRole",
    "ReplicatedResourceManager",
]
