"""The replicated resource manager: election, fencing, reconciliation.

:class:`ReplicatedResourceManager` wraps one ordinary
:class:`~repro.rfaas.manager.ResourceManager` (the *data plane* of the
control plane — pools, allocations, credentials) behind a group of
1 + k :class:`~repro.controlplane.replica.ManagerReplica` members and
adds the three mechanisms that make a manager crash survivable:

**Election** is rank-based and seed-free: the live standby with the
lowest rank wins, always.  No randomness means identical failover
choices run to run — a hard requirement of the byte-identical sweep
protocol (``repro.sweep``) and cheap insurance against split votes.

**Failure detection** is a deadline detector driven by one sim-time
loop: the primary heartbeats every ``heartbeat_interval_s``; a standby
suspects the primary after ``suspect_after`` silent intervals.  The
product of the two is the availability knob — small timeouts detect a
crash in fractions of a second but declare a slow/partitioned primary
dead (false positive, forcing a needless epoch bump); large timeouts
never cry wolf but stretch the unavailability window every client
rides out with :class:`~repro.faults.recovery.RetryPolicy` backoff.
Takeover happens between ``suspect_after`` and ``suspect_after + 1``
intervals after the last heartbeat (detection is quantized to ticks).

**Epoch fencing** replaces quorum commit (with k=1, a majority of two
is two — the surviving replica could never commit after failover, which
defeats the point).  Every mutation is stamped with the group epoch and
shipped synchronously to the live, reachable standbys; every *issuer*
is checked against the current epoch first, so a partitioned ex-primary
whose term ended raises :class:`~repro.rfaas.errors.StaleEpochError`
before touching any state — no split brain, no double grant.

With **zero standbys** a primary crash is total control-plane loss:
outstanding leases can no longer be renewed or safely reused, so the
wrapper models lease-expiry fencing by orphaning the data plane
(every node removed immediately, terminating in-flight work) and the
restarted primary comes back *empty* — exactly the blast radius the
standbys exist to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..rfaas.errors import ManagerUnavailableError, StaleEpochError
from ..telemetry import telemetry_of
from .replica import LogRecord, ManagerReplica, ReplicaRole

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..rfaas.lease import Lease
    from ..rfaas.manager import ResourceManager
    from ..sim.engine import Environment

__all__ = ["HAConfig", "ElectionRecord", "ReplicatedResourceManager"]


@dataclass(frozen=True)
class HAConfig:
    """Shape of the replicated control plane."""

    #: Standby replicas behind the primary (k). 0 = a restartable but
    #: unreplicated manager: crashes lose all control-plane state.
    standbys: int = 1
    #: Primary heartbeat period (sim seconds).
    heartbeat_interval_s: float = 0.1
    #: Missed intervals before a standby suspects the primary.  The
    #: detection-latency / false-positive tradeoff knob: takeover fires
    #: only after ``suspect_after * heartbeat_interval_s`` of silence.
    suspect_after: int = 3

    def __post_init__(self):
        if self.standbys < 0:
            raise ValueError("standbys must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")

    @property
    def detection_timeout_s(self) -> float:
        """Silence that makes the detector declare the primary dead."""
        return self.heartbeat_interval_s * self.suspect_after


@dataclass(frozen=True)
class ElectionRecord:
    """One leadership change: who won which epoch, when, and why."""

    epoch: int
    rank: int
    at_s: float
    cause: str  # "bootstrap" | "crash" | "partition" | "restart"


class ReplicatedResourceManager:
    """1 primary + k standbys around one :class:`ResourceManager`.

    Duck-type compatible with the wrapped manager: reads are served
    from the (always-consistent) data plane regardless of control-plane
    health, mutations require a live, reachable, current-epoch primary
    and otherwise raise :class:`ManagerUnavailableError` (no primary in
    reach — transient, retryable) or :class:`StaleEpochError` (fenced
    issuer — the split-brain guard).
    """

    def __init__(self, env: "Environment", inner: "ResourceManager",
                 config: Optional[HAConfig] = None):
        self.env = env
        self.inner = inner
        self.config = config if config is not None else HAConfig()
        self.replicas = [ManagerReplica(rank=i, epoch=1)
                         for i in range(self.config.standbys + 1)]
        self.replicas[0].role = ReplicaRole.PRIMARY
        self.epoch = 1
        self._primary_rank: Optional[int] = 0
        #: Ranks currently unreachable from the rest of the group.
        self._partitioned: set[int] = set()
        #: Full fenced mutation history (certification evidence).
        self.commit_log: list[LogRecord] = []
        self.elections: list[ElectionRecord] = [
            ElectionRecord(epoch=1, rank=0, at_s=env.now, cause="bootstrap")
        ]
        #: Releases accepted while no primary was reachable; applied by
        #: the next primary during takeover reconciliation.
        self._pending_releases: list["Lease"] = []
        self._lost_at: Optional[float] = None
        self._stopped = False
        self._process = None

        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_heartbeats = metrics.counter(
            "repro_controlplane_heartbeats_total",
            help="heartbeat rounds delivered primary -> standbys",
        )
        self._m_failovers = metrics.counter(
            "repro_controlplane_failovers_total",
            help="standby takeovers (epoch bumps by election)",
        )
        self._m_epoch = metrics.gauge(
            "repro_controlplane_epoch_count", help="current control-plane epoch",
        )
        self._m_epoch.set(self.epoch)
        self._m_fenced = metrics.counter(
            "repro_controlplane_fenced_grants_total",
            help="mutations rejected because the issuer's epoch was stale",
        )
        self._m_unavailable = metrics.counter(
            "repro_controlplane_unavailable_total",
            help="front-door mutations rejected: no reachable primary",
        )
        self._m_reconciled = metrics.counter(
            "repro_controlplane_reconciled_leases_total",
            help="leases revoked or released by takeover reconciliation",
        )
        self._m_detection = metrics.histogram(
            "repro_controlplane_detection_seconds",
            help="primary loss -> takeover latency",
            buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        )
        self._m_crashes = metrics.counter(
            "repro_controlplane_crashes_total", help="primary crashes injected",
        )
        self._m_partitions = metrics.counter(
            "repro_controlplane_partitions_total",
            help="primary partitions injected",
        )
        self._m_stepdowns = metrics.counter(
            "repro_controlplane_stepdowns_total",
            help="fenced ex-primaries that rejoined as standbys after heal",
        )
        self._m_orphaned = metrics.counter(
            "repro_controlplane_orphaned_leases_total",
            help="active leases lost to total control-plane loss (k=0)",
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start the combined heartbeat + failure-detector loop."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="controlplane-detector")

    def stop(self) -> None:
        """Stop the loop (lets an open-ended ``env.run()`` drain)."""
        self._stopped = True

    # -- group introspection -----------------------------------------------------
    @property
    def primary(self) -> Optional[ManagerReplica]:
        if self._primary_rank is None:
            return None
        return self.replicas[self._primary_rank]

    @property
    def primary_rank(self) -> Optional[int]:
        return self._primary_rank

    @property
    def available(self) -> bool:
        """True when a front-door mutation would be accepted right now."""
        rank = self._primary_rank
        return rank is not None and rank not in self._partitioned

    def replica(self, rank: int) -> ManagerReplica:
        return self.replicas[rank]

    # -- heartbeats + detection --------------------------------------------------
    def _run(self):
        interval = self.config.heartbeat_interval_s
        while not self._stopped:
            yield self.env.timeout(interval)
            if self._stopped:
                return
            self._tick()

    def _tick(self) -> None:
        now = self.env.now
        rank = self._primary_rank
        if rank is not None and rank not in self._partitioned:
            # Healthy primary: deliver one heartbeat round.
            for replica in self.replicas:
                if replica.role is ReplicaRole.STANDBY:
                    replica.last_heartbeat_s = now
            self._m_heartbeats.inc()
            return
        self._maybe_failover(now)

    def _maybe_failover(self, now: float) -> None:
        candidates = [r for r in self.replicas if r.role is ReplicaRole.STANDBY]
        if not candidates:
            return
        # A standby suspects the primary after `suspect_after` silent
        # intervals; the *stalest* view drives detection, the *lowest
        # rank* wins the election (seed-free determinism).
        oldest = min(r.last_heartbeat_s for r in candidates)
        if now - oldest <= self.config.detection_timeout_s + 1e-9:
            return
        old_rank = self._primary_rank
        if old_rank is not None:
            # A partitioned primary that missed its own funeral: expel
            # it from the group until it heals and resyncs.
            self.replicas[old_rank].role = ReplicaRole.FENCED
        winner = candidates[0]
        self.epoch += 1
        winner.epoch = self.epoch
        winner.role = ReplicaRole.PRIMARY
        self._primary_rank = winner.rank
        cause = "partition" if old_rank is not None else "crash"
        self.elections.append(
            ElectionRecord(epoch=self.epoch, rank=winner.rank, at_s=now, cause=cause)
        )
        detection_s = now - (self._lost_at if self._lost_at is not None else oldest)
        self._lost_at = None
        self._m_failovers.inc()
        self._m_epoch.set(self.epoch)
        self._m_detection.observe(detection_s)
        self._tracer.instant(
            "controlplane.failover", track="controlplane",
            epoch=self.epoch, rank=winner.rank, cause=cause,
            detection_s=detection_s,
        )
        self._reconcile(winner)

    def _reconcile(self, primary: ManagerReplica) -> None:
        """Align the data plane with the new primary's replicated view."""
        known = set(primary.lease_records)
        stale = [lease for lease, _node in self.inner.active_leases()
                 if lease.lease_id not in known]
        for lease in stale:
            self.inner.revoke_lease(lease, reason="failover-reconcile")
        pending, self._pending_releases = self._pending_releases, []
        released = 0
        for lease in pending:
            if lease.lease_id in primary.lease_records:
                self.inner.release_lease(lease)
                self._commit("release", {"lease_id": lease.lease_id})
                released += 1
        if stale or pending:
            self._m_reconciled.inc(len(stale) + released)
            self._tracer.instant(
                "controlplane.reconcile", track="controlplane",
                epoch=self.epoch, revoked=len(stale), released=released,
            )

    # -- fault hooks (driven by repro.faults.Injector) ---------------------------
    def crash_primary(self, outage_s: float = 0.0) -> Optional[str]:
        """Kill the current primary; restart it after ``outage_s`` (0 = never).

        Returns the crashed replica's name, or None when there is no
        primary to kill (already down).
        """
        rank = self._primary_rank
        if rank is None:
            return None
        replica = self.replicas[rank]
        replica.role = ReplicaRole.DOWN
        # In-memory state dies with the process; a rejoin resyncs.
        replica.registrations = {}
        replica.lease_records = {}
        self._partitioned.discard(rank)
        self._primary_rank = None
        self._lost_at = self.env.now
        self._m_crashes.inc()
        self._tracer.instant(
            "controlplane.crash", track="controlplane",
            rank=rank, epoch=self.epoch, outage_s=outage_s,
        )
        if not any(r.role is ReplicaRole.STANDBY for r in self.replicas):
            self._orphan_data_plane()
        if outage_s > 0:
            self.env.process(self._restart(replica, outage_s),
                             name=f"controlplane-restart-{replica.name}")
        return replica.name

    def partition_primary(self, heal_after_s: float = 0.0) -> Optional[str]:
        """Cut the primary off from clients and standbys alike.

        The primary keeps running (and believes it leads) but its
        heartbeats stop arriving and front-door mutations cannot reach
        it; after the detection timeout a standby takes over and the
        ex-primary is fenced.  ``heal_after_s`` > 0 heals the partition
        later: a fenced ex-primary observes the higher epoch, steps
        down, and resyncs as a standby.  Returns the partitioned
        replica's name, or None if there is no reachable primary.
        """
        rank = self._primary_rank
        if rank is None or rank in self._partitioned:
            return None
        self._partitioned.add(rank)
        self._lost_at = self.env.now
        self._m_partitions.inc()
        self._tracer.instant(
            "controlplane.partition", track="controlplane",
            rank=rank, epoch=self.epoch, heal_after_s=heal_after_s,
        )
        if heal_after_s > 0:
            self.env.process(self._heal(rank, heal_after_s),
                             name=f"controlplane-heal-rm-{rank}")
        return self.replicas[rank].name

    def _restart(self, replica: ManagerReplica, outage_s: float):
        yield self.env.timeout(outage_s)
        if self._stopped or replica.role is not ReplicaRole.DOWN:
            return
        live = [r for r in self.replicas if r.live]
        if live:
            # Rejoin as a standby, state-transferred from the most
            # advanced live member (they are all synchronous copies).
            source = max(live, key=lambda r: r.applied_index)
            replica.resync_from(source)
            replica.role = ReplicaRole.STANDBY
            replica.last_heartbeat_s = self.env.now
            self._tracer.instant(
                "controlplane.resync", track="controlplane",
                rank=replica.rank, source=source.rank, epoch=self.epoch,
            )
            return
        # Total loss (k=0, or every standby died too): restart with
        # empty state under a fresh epoch.  The data plane was already
        # orphaned at crash time — this primary starts from scratch.
        self.epoch += 1
        replica.epoch = self.epoch
        replica.role = ReplicaRole.PRIMARY
        replica.registrations = {}
        replica.lease_records = {}
        replica.applied_index = len(self.commit_log)
        self._primary_rank = replica.rank
        self._lost_at = None
        self.elections.append(
            ElectionRecord(epoch=self.epoch, rank=replica.rank,
                           at_s=self.env.now, cause="restart")
        )
        self._m_epoch.set(self.epoch)
        self._tracer.instant(
            "controlplane.restart", track="controlplane",
            rank=replica.rank, epoch=self.epoch,
        )

    def _heal(self, rank: int, after_s: float):
        yield self.env.timeout(after_s)
        if self._stopped:
            return
        self._partitioned.discard(rank)
        replica = self.replicas[rank]
        if replica.role not in (ReplicaRole.PRIMARY, ReplicaRole.FENCED):
            return  # crashed meanwhile; the restart path owns it
        if self._primary_rank is not None and self._primary_rank != rank:
            # Somebody took over behind the partition: the ex-primary
            # sees the higher epoch, steps down, and resyncs.
            current = self.replicas[self._primary_rank]
            replica.resync_from(current)
            replica.role = ReplicaRole.STANDBY
            replica.last_heartbeat_s = self.env.now
            self._m_stepdowns.inc()
            self._tracer.instant(
                "controlplane.stepdown", track="controlplane",
                rank=rank, epoch=self.epoch,
            )
        else:
            # Healed inside the detection timeout: false alarm avoided,
            # the primary resumes heartbeating on the next tick.
            self._lost_at = None
            self._tracer.instant(
                "controlplane.heal", track="controlplane",
                rank=rank, epoch=self.epoch,
            )

    def _orphan_data_plane(self) -> None:
        """Lease-expiry fencing under total control-plane loss.

        With no replica left to renew or account for leases, the data
        plane cannot be safely reused: every registration is withdrawn
        immediately, terminating in-flight work — the k=0 blast radius
        the standbys exist to remove.
        """
        orphaned = len(self.inner.active_leases())
        for node_name in list(self.inner.registered_nodes()):
            self.inner.remove_node(node_name, immediate=True)
        self._m_orphaned.inc(orphaned)
        self._tracer.instant(
            "controlplane.orphan", track="controlplane",
            leases=orphaned, epoch=self.epoch,
        )

    # -- fencing + replication ---------------------------------------------------
    def _require_primary(self, op: str) -> ManagerReplica:
        rank = self._primary_rank
        if rank is None:
            self._m_unavailable.inc()
            raise ManagerUnavailableError(
                f"{op}: no live primary (takeover pending)",
                epoch=self.epoch, cause="crash",
            )
        if rank in self._partitioned:
            self._m_unavailable.inc()
            raise ManagerUnavailableError(
                f"{op}: primary rm-{rank} unreachable (partitioned)",
                epoch=self.epoch, cause="partition",
            )
        return self.replicas[rank]

    def _fence(self, issuer: ManagerReplica) -> None:
        if issuer.role is not ReplicaRole.PRIMARY or issuer.epoch != self.epoch:
            self._m_fenced.inc()
            self._tracer.instant(
                "controlplane.fenced", track="controlplane",
                rank=issuer.rank, stale_epoch=issuer.epoch,
                current_epoch=self.epoch,
            )
            raise StaleEpochError(
                f"replica {issuer.name} ({issuer.role.value}, epoch "
                f"{issuer.epoch}) is fenced out of epoch {self.epoch}",
                epoch=issuer.epoch, current_epoch=self.epoch,
            )

    def _commit(self, op: str, payload: dict) -> LogRecord:
        record = LogRecord(index=len(self.commit_log) + 1, epoch=self.epoch,
                           op=op, at_s=self.env.now, payload=payload)
        self.commit_log.append(record)
        for replica in self.replicas:
            if replica.live and replica.rank not in self._partitioned:
                replica.apply(record)
        return record

    # -- fenced mutations (the ResourceManager front door) -----------------------
    def register_node(self, node_name: str, *args, **kwargs):
        issuer = self._require_primary("register_node")
        self._fence(issuer)
        registered = self.inner.register_node(node_name, *args, **kwargs)
        self._commit("register", {
            "node": node_name,
            "registration": self.inner.registration_of(node_name),
        })
        return registered

    def remove_node(self, node_name: str, immediate: bool = False) -> bool:
        issuer = self._require_primary("remove_node")
        self._fence(issuer)
        removed = self.inner.remove_node(node_name, immediate=immediate)
        if removed:
            self._commit("remove", {"node": node_name, "immediate": immediate})
        return removed

    def lease(self, client: str, cores: int = 1, memory_bytes: int = 0,
              gpus: int = 0, image=None, exclude: tuple = ()):
        issuer = self._require_primary("lease")
        self._fence(issuer)
        lease, executor = self.inner.lease(
            client, cores=cores, memory_bytes=memory_bytes, gpus=gpus,
            image=image, exclude=exclude,
        )
        lease.epoch = self.epoch
        self._commit("grant", {
            "lease_id": lease.lease_id, "client": client,
            "node": lease.node_name, "cores": cores,
            "memory_bytes": memory_bytes, "gpus": gpus,
        })
        return lease, executor

    def revoke_lease(self, lease, reason: str = "revoked") -> bool:
        issuer = self._require_primary("revoke_lease")
        self._fence(issuer)
        revoked = self.inner.revoke_lease(lease, reason=reason)
        if revoked:
            self._commit("revoke", {"lease_id": lease.lease_id, "reason": reason})
        return revoked

    def release_lease(self, lease) -> None:
        rank = self._primary_rank
        if rank is None or rank in self._partitioned:
            # The client is done with the lease but nobody is listening:
            # buffer the release for takeover reconciliation instead of
            # failing a voluntary return.
            lease.release()
            if lease not in self._pending_releases:
                self._pending_releases.append(lease)
            return
        self._fence(self.replicas[rank])
        self.inner.release_lease(lease)
        self._commit("release", {"lease_id": lease.lease_id})

    def attempt_grant_via(self, rank: int, client: str, **kwargs):
        """Issue a grant *through a specific replica* (test/chaos hook).

        This is how certification proves fencing: a grant attempted via
        a DOWN replica raises :class:`ManagerUnavailableError`; via a
        fenced/stale replica raises :class:`StaleEpochError` before any
        state changes; via the current primary it is a normal grant.
        """
        replica = self.replicas[rank]
        if replica.role is ReplicaRole.DOWN:
            self._m_unavailable.inc()
            raise ManagerUnavailableError(
                f"replica {replica.name} is down", epoch=self.epoch, cause="crash",
            )
        self._fence(replica)
        lease, executor = self.inner.lease(client, **kwargs)
        lease.epoch = self.epoch
        self._commit("grant", {
            "lease_id": lease.lease_id, "client": client,
            "node": lease.node_name, "cores": lease.cores,
            "memory_bytes": lease.memory_bytes, "gpus": lease.gpus,
        })
        return lease, executor

    # -- unfenced reads (served regardless of control-plane health) --------------
    def registered_nodes(self):
        return self.inner.registered_nodes()

    def registration_of(self, node_name: str) -> dict:
        return self.inner.registration_of(node_name)

    def is_registered(self, node_name: str) -> bool:
        return self.inner.is_registered(node_name)

    def node_info(self, node_name: str):
        return self.inner.node_info(node_name)

    def credential_for(self, node_name: str):
        return self.inner.credential_for(node_name)

    def active_leases(self):
        return self.inner.active_leases()

    def total_registered_cores(self) -> int:
        return self.inner.total_registered_cores()

    def total_free_cores(self) -> int:
        return self.inner.total_free_cores()

    def migrate_warm_containers(self, src_node: str, dst_node: str,
                                transfer_bandwidth: float = 5e9):
        return self.inner.migrate_warm_containers(
            src_node, dst_node, transfer_bandwidth=transfer_bandwidth,
        )

    # -- data-plane attributes services hook into --------------------------------
    @property
    def on_remove_node(self) -> list:
        return self.inner.on_remove_node

    @property
    def cluster(self):
        return self.inner.cluster

    @property
    def loads(self):
        return self.inner.loads

    @property
    def drc(self):
        return self.inner.drc

    @property
    def runtime(self):
        return self.inner.runtime

    @property
    def rng(self):
        return self.inner.rng

    @property
    def log(self):
        return self.inner.log
