"""Batch job model.

A job requests ``nodes`` whole nodes (HPC batch granularity — the paper's
premise is precisely that this coarseness wastes resources).  On each node
it *uses* ``cores_per_node`` cores and ``memory_per_node`` bytes; the
remainder is wasted unless the user opts into sharing (SLURM ``shared``
flag / designated partition, Sec. III-E), in which case serverless
functions may claim it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["JobState", "JobSpec", "Job"]

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"          # a node under the job died


@dataclass(frozen=True)
class JobSpec:
    """Immutable job request, as submitted to the batch system."""

    user: str
    app: str
    nodes: int
    cores_per_node: int
    memory_per_node: int          # bytes actually used per node
    walltime: float               # requested limit (s)
    runtime: float                # actual runtime (s), <= walltime
    gpus_per_node: int = 0        # GRES gpu count
    shared: bool = False          # opt-in to co-location
    partition: str = "normal"

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("job needs >= 1 node")
        if self.cores_per_node < 1:
            raise ValueError("job needs >= 1 core per node")
        if self.memory_per_node < 0 or self.gpus_per_node < 0:
            raise ValueError("negative resource request")
        if self.walltime <= 0:
            raise ValueError("walltime must be positive")
        if not 0 < self.runtime <= self.walltime:
            raise ValueError("runtime must be in (0, walltime]")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


class Job:
    """A job instance moving through the batch system.

    ``job_id`` defaults to a module-global counter for bare construction
    (tests); the scheduler passes ``env.next_id`` so ids are scoped to
    one simulation, independent of interpreter history.
    """

    def __init__(self, spec: JobSpec, submit_time: float = 0.0,
                 job_id: Optional[int] = None):
        self.job_id = job_id if job_id is not None else next(_job_ids)
        self.spec = spec
        self.submit_time = submit_time
        self.state = JobState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.node_names: tuple[str, ...] = ()
        # Perturbation applied by co-located work (filled by interference model).
        self.slowdown: float = 1.0

    @property
    def expected_end(self) -> float:
        """Conservative end estimate from the walltime (used by backfill)."""
        if self.start_time is None:
            raise ValueError("job not started")
        return self.start_time + self.spec.walltime

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def actual_runtime(self) -> float:
        """Runtime including any co-location slowdown."""
        return self.spec.runtime * self.slowdown

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Job {self.job_id} {self.spec.app} {self.state.value}"
            f" nodes={self.spec.nodes} cores/node={self.spec.cores_per_node}>"
        )
