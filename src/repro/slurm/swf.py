"""Standard Workload Format (SWF) trace export/import.

SWF is the interchange format of the Parallel Workloads Archive — the
corpus behind the utilization studies the paper cites [Jones'99,
Patel'20].  Exporting the synthetic trace lets external schedulers and
analysis tools consume it; importing lets real archive traces drive this
simulator's Fig.-1-style analyses.

Field mapping (18 standard fields, -1 = unknown):

    1 job id | 2 submit | 3 wait | 4 runtime | 5 procs used
    6 avg cpu time | 7 memory used (KB/proc) | 8 procs requested
    9 time requested | 10 memory requested | 11 status
    12 user id | 13 group id | 14 app id | 15 queue | 16 partition
    17 preceding job | 18 think time
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, TextIO, Union

from .job import Job, JobSpec, JobState

__all__ = ["write_swf", "read_swf", "SwfRecord"]

_STATUS = {
    JobState.COMPLETED: 1,
    JobState.FAILED: 0,
    JobState.CANCELLED: 5,
}


class SwfRecord:
    """One parsed SWF line (only the fields this simulator uses)."""

    __slots__ = ("job_id", "submit_time", "wait_time", "runtime", "procs",
                 "requested_time", "status", "user_id", "app_id", "partition")

    def __init__(self, fields: list[float]):
        if len(fields) < 18:
            raise ValueError(f"SWF line has {len(fields)} fields, expected 18")
        self.job_id = int(fields[0])
        self.submit_time = float(fields[1])
        self.wait_time = float(fields[2])
        self.runtime = float(fields[3])
        self.procs = int(fields[4])
        self.requested_time = float(fields[8])
        self.status = int(fields[10])
        self.user_id = int(fields[11])
        self.app_id = int(fields[13])
        self.partition = int(fields[15])

    def to_spec(self, cores_per_node: int = 36, memory_per_node: int = 4 << 30) -> JobSpec:
        """Reconstruct a JobSpec (whole-node packing of the proc count)."""
        if self.procs < 1:
            raise ValueError(f"job {self.job_id}: no processors recorded")
        nodes = max(1, -(-self.procs // cores_per_node))
        per_node = min(self.procs, cores_per_node)
        runtime = max(self.runtime, 1e-3)
        walltime = self.requested_time if self.requested_time > 0 else runtime
        return JobSpec(
            user=f"user{self.user_id}",
            app=f"app{self.app_id}",
            nodes=nodes,
            cores_per_node=per_node,
            memory_per_node=memory_per_node,
            walltime=max(walltime, runtime),
            runtime=runtime,
        )


def write_swf(jobs: Iterable[Job], destination: Union[str, Path, TextIO],
              header_comment: str = "synthetic Piz-Daint-like trace (repro)") -> int:
    """Write completed/failed/cancelled jobs as an SWF trace; returns count."""
    own = isinstance(destination, (str, Path))
    out: TextIO = open(destination, "w") if own else destination
    count = 0
    try:
        out.write(f"; {header_comment}\n")
        out.write("; UnixStartTime: 0\n")
        for job in jobs:
            if job.start_time is None or job.end_time is None:
                continue
            spec = job.spec
            fields = [
                job.job_id,
                int(job.submit_time),
                int(job.start_time - job.submit_time),
                int(round(job.end_time - job.start_time)),
                spec.total_cores,
                -1,
                int(spec.memory_per_node / 1024 / max(spec.cores_per_node, 1)),
                spec.total_cores,
                int(spec.walltime),
                -1,
                _STATUS.get(job.state, -1),
                abs(hash(spec.user)) % 10_000,
                -1,
                abs(hash(spec.app)) % 1_000,
                -1,
                1,
                -1,
                -1,
            ]
            out.write(" ".join(str(f) for f in fields) + "\n")
            count += 1
    finally:
        if own:
            out.close()
    return count


def read_swf(source: Union[str, Path, TextIO],
             limit: Optional[int] = None) -> list[SwfRecord]:
    """Parse an SWF trace (comment lines start with ';')."""
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source) if own else source
    records: list[SwfRecord] = []
    try:
        for line in handle:
            if limit is not None and len(records) >= limit:
                break
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            records.append(SwfRecord([float(f) for f in line.split()]))
    finally:
        if own:
            handle.close()
    return records
