"""Partitions and GRES (generic resource) matching.

The paper uses unmodified SLURM features for opt-in disaggregation
(Sec. III-E): the ``shared`` flag or submission to a designated shared
partition marks a job's leftovers as harvestable, and GRES describes GPU
availability per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..cluster.node import Node
from .job import JobSpec

__all__ = ["Partition", "gres_available_gpus"]


@dataclass
class Partition:
    """A named subset of nodes with scheduling limits."""

    name: str
    node_names: list[str]
    max_walltime: float = 24 * 3600.0
    # A shared partition implies co-location consent for every job in it.
    shared_by_default: bool = False

    def __post_init__(self):
        if not self.node_names:
            raise ValueError(f"partition {self.name!r} has no nodes")
        if len(set(self.node_names)) != len(self.node_names):
            raise ValueError(f"partition {self.name!r} has duplicate nodes")
        if self.max_walltime <= 0:
            raise ValueError("max_walltime must be positive")

    def __len__(self) -> int:
        return len(self.node_names)

    def admits(self, spec: JobSpec) -> bool:
        """Whether the job may be queued in this partition at all."""
        return (
            spec.partition == self.name
            and spec.walltime <= self.max_walltime
            and spec.nodes <= len(self.node_names)
        )

    def job_allows_sharing(self, spec: JobSpec) -> bool:
        """Co-location consent: explicit flag or shared partition."""
        return spec.shared or self.shared_by_default


def gres_available_gpus(node: Node) -> int:
    """GRES query: GPUs on the node not allocated to any tenant.

    Whole free devices only — the paper rules out fractional GPU sharing
    for security/interference reasons (Sec. III-E); sub-devices would come
    from virtualization/partitioning below this layer.
    """
    return len(node.free_gpu_ids)
