"""FCFS + EASY-backfill batch scheduler.

Models the SLURM behaviour the paper's measurements depend on:

* whole-node granularity — a node belongs to at most one batch job;
* FIFO queue with EASY backfilling [Lifka'95]: the queue head gets a
  reservation at the *shadow time* (earliest instant enough nodes free,
  assuming running jobs use their full walltime); later jobs may jump
  ahead only if they cannot delay that reservation;
* jobs record what they actually *use* on each node (cores/memory/GPUs),
  so the gap between allocated and used resources — the raw material of
  software disaggregation — is directly measurable.

Hooks (``on_job_start`` / ``on_job_end`` / ``reclaim_hook``) let the
disaggregation controller react to node state changes without the
scheduler knowing anything about serverless.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..cluster.machine import Cluster
from ..cluster.node import Allocation, Node
from ..sim.engine import Environment, Interrupt, Process
from ..sim.trace import EventLog
from ..telemetry import SpanKind, telemetry_of
from .job import Job, JobSpec, JobState
from .partition import Partition

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Event-driven batch scheduler over a simulated cluster."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        partitions: Optional[Iterable[Partition]] = None,
        log: Optional[EventLog] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.partitions: dict[str, Partition] = {}
        if partitions is None:
            self.partitions["normal"] = Partition(
                name="normal", node_names=[n.name for n in cluster]
            )
        else:
            for part in partitions:
                if part.name in self.partitions:
                    raise ValueError(f"duplicate partition {part.name!r}")
                self.partitions[part.name] = part
        self.log = log if log is not None else EventLog()

        self.queue: list[Job] = []
        self.running: dict[int, Job] = {}
        self.completed: list[Job] = []
        self._node_owner: dict[str, Job] = {}
        self._job_allocs: dict[int, list[Allocation]] = {}
        self._job_procs: dict[int, Process] = {}

        # Integration hooks (Sec. IV-E): the disaggregation controller
        # subscribes to node availability changes.
        self.on_job_start: list[Callable[[Job], None]] = []
        self.on_job_end: list[Callable[[Job], None]] = []
        # Called just before batch claims nodes, so co-located functions
        # can be evicted. Receives the node names being claimed.
        self.reclaim_hook: Optional[Callable[[list[str]], None]] = None
        # Administrative drain observers: hook(node_name) fires when an
        # operator drains a node, giving co-located services (durable
        # memory) time to migrate state off before maintenance.
        self.on_drain: list[Callable[[str], None]] = []

        # Telemetry: queue-wait distribution, occupancy gauges, job spans.
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_submitted = metrics.counter(
            "repro_scheduler_submitted_total", help="jobs submitted",
        )
        self._m_queue_wait = metrics.histogram(
            "repro_scheduler_queue_wait_seconds",
            help="submit-to-start wait of started jobs",
        )
        self._m_free_nodes = metrics.gauge(
            "repro_scheduler_free_nodes_count",
            help="nodes with no batch owner (Fig. 1a idle sense)",
        )
        self._m_queue_depth = metrics.gauge(
            "repro_scheduler_queue_depth_count",
            help="jobs waiting in the FIFO queue",
        )
        self._job_spans: dict[int, object] = {}
        self._record_occupancy()

    def _record_occupancy(self) -> None:
        self._m_free_nodes.set(self.idle_node_count())
        self._m_queue_depth.set(len(self.queue))

    # -- public API ----------------------------------------------------------
    def submit(self, spec: JobSpec, submit_time: Optional[float] = None) -> Job:
        """Queue a job; scheduling is attempted immediately."""
        partition = self.partitions.get(spec.partition)
        if partition is None:
            raise KeyError(f"unknown partition {spec.partition!r}")
        if not partition.admits(spec):
            raise ValueError(
                f"job (nodes={spec.nodes}, walltime={spec.walltime}) "
                f"not admissible in partition {spec.partition!r}"
            )
        job = Job(spec, submit_time=self.env.now if submit_time is None else submit_time,
                  job_id=self.env.next_id("slurm-job"))
        self.queue.append(job)
        self.log.emit(self.env.now, "submit", job_id=job.job_id, app=spec.app, nodes=spec.nodes)
        self._m_submitted.inc()
        self._tracer.instant(
            "slurm.submit", track="scheduler",
            job_id=job.job_id, app=spec.app, nodes=spec.nodes,
        )
        self._record_occupancy()
        self._schedule_pass()
        return job

    def cancel(self, job: Job) -> None:
        if job.state == JobState.PENDING:
            self.queue.remove(job)
            job.state = JobState.CANCELLED
            self.log.emit(self.env.now, "cancel", job_id=job.job_id)
            self._record_occupancy()
        elif job.state == JobState.RUNNING:
            self._job_procs[job.job_id].interrupt(cause="cancel")
        else:
            raise ValueError(f"cannot cancel job in state {job.state}")

    def job_owning(self, node_name: str) -> Optional[Job]:
        return self._node_owner.get(node_name)

    def free_node_names(self, partition: Optional[str] = None) -> list[str]:
        """Nodes with no batch owner (the Fig.-1a 'idle' sense)."""
        if partition is None:
            names: Iterable[str] = (n.name for n in self.cluster)
        else:
            names = self.partitions[partition].node_names
        return [n for n in names if n not in self._node_owner and not self.cluster.node(n).draining]

    def idle_node_count(self) -> int:
        return len(self.free_node_names())

    def allocated_node_count(self) -> int:
        return len(self._node_owner)

    def used_core_fraction(self) -> float:
        """Cores actually used by batch jobs / total cores."""
        total = self.cluster.total_cores()
        used = sum(
            a.cores
            for allocs in self._job_allocs.values()
            for a in allocs
        )
        return used / total if total else 0.0

    def used_memory_fraction(self) -> float:
        total = self.cluster.total_memory()
        used = sum(
            a.memory_bytes
            for allocs in self._job_allocs.values()
            for a in allocs
        )
        return used / total if total else 0.0

    def sharing_consent(self, job: Job) -> bool:
        partition = self.partitions[job.spec.partition]
        return partition.job_allows_sharing(job.spec)

    # -- scheduling core ---------------------------------------------------------
    def _schedule_pass(self) -> None:
        """FCFS start + EASY backfill, run to fixpoint."""
        started = True
        while started:
            started = False
            if not self.queue:
                return
            # 1. Start queue-head jobs while they fit.
            while self.queue:
                head = self.queue[0]
                nodes = self._select_nodes(head.spec)
                if nodes is None:
                    break
                self.queue.pop(0)
                self._start_job(head, nodes)
                started = True
            if not self.queue:
                return
            # 2. EASY backfill behind the (blocked) head.
            head = self.queue[0]
            shadow_time, extra_nodes = self._shadow(head)
            for job in list(self.queue[1:]):
                nodes = self._select_nodes(job.spec)
                if nodes is None:
                    continue
                fits_before_shadow = self.env.now + job.spec.walltime <= shadow_time
                if fits_before_shadow or job.spec.nodes <= extra_nodes:
                    if not fits_before_shadow:
                        extra_nodes -= job.spec.nodes
                    self.queue.remove(job)
                    self._start_job(job, nodes)
                    started = True

    def _eligible_nodes(self, spec: JobSpec) -> list[Node]:
        partition = self.partitions[spec.partition]
        out = []
        for name in partition.node_names:
            if name in self._node_owner:
                continue
            node = self.cluster.node(name)
            if node.draining:
                continue
            if node.total_cores < spec.cores_per_node:
                continue
            if node.total_memory < spec.memory_per_node:
                continue
            if node.total_gpus < spec.gpus_per_node:
                continue
            out.append(node)
        return out

    def _select_nodes(self, spec: JobSpec) -> Optional[list[Node]]:
        eligible = self._eligible_nodes(spec)
        if len(eligible) < spec.nodes:
            return None
        return eligible[: spec.nodes]

    def _shadow(self, head: Job) -> tuple[float, int]:
        """EASY shadow time and spare-node budget for the blocked head.

        Walks running jobs in walltime-end order, accumulating the nodes
        they will release, until the head fits.  Nodes free beyond the
        head's need at that instant may be consumed by backfill jobs that
        run past the shadow time.
        """
        free_now = len(self._eligible_nodes(head.spec))
        needed = head.spec.nodes
        if free_now >= needed:
            return self.env.now, free_now - needed
        ends = sorted(
            (job.expected_end, len(job.node_names)) for job in self.running.values()
        )
        available = free_now
        for end_time, released in ends:
            available += released
            if available >= needed:
                return end_time, available - needed
        # Head can never run with current running set (should not happen
        # if admission checked partition size); fall back to +inf.
        return float("inf"), 0

    def _start_job(self, job: Job, nodes: list[Node]) -> None:
        node_names = [n.name for n in nodes]
        if self.reclaim_hook is not None:
            self.reclaim_hook(node_names)
        allocs = []
        for node in nodes:
            allocs.append(
                node.allocate(
                    owner=f"job-{job.job_id}",
                    cores=job.spec.cores_per_node,
                    memory_bytes=job.spec.memory_per_node,
                    gpus=job.spec.gpus_per_node,
                    kind="batch",
                )
            )
            self._node_owner[node.name] = job
        job.node_names = tuple(node_names)
        job.state = JobState.RUNNING
        job.start_time = self.env.now
        self.running[job.job_id] = job
        self._job_allocs[job.job_id] = allocs
        self._job_procs[job.job_id] = self.env.process(
            self._run_job(job), name=f"job-{job.job_id}"
        )
        self.log.emit(
            self.env.now, "start",
            job_id=job.job_id, app=job.spec.app, nodes=job.spec.nodes,
            wait=job.wait_time,
        )
        self._m_queue_wait.observe(job.wait_time)
        self._record_occupancy()
        self._job_spans[job.job_id] = self._tracer.begin(
            SpanKind.JOB, track="scheduler/jobs",
            job_id=job.job_id, app=job.spec.app, nodes=job.spec.nodes,
            wait_s=job.wait_time,
        )
        for hook in self.on_job_start:
            hook(job)

    def _run_job(self, job: Job):
        try:
            yield self.env.timeout(job.actual_runtime)
            job.state = JobState.COMPLETED
        except Interrupt as intr:
            job.state = (
                JobState.FAILED if intr.cause == "node-failure" else JobState.CANCELLED
            )
        self._finish(job)

    def drain_node(self, node_name: str) -> None:
        """Administratively drain a node ahead of maintenance.

        The node accepts no new allocations (its running job, if any,
        keeps it until completion) and the ``on_drain`` hooks fire so
        co-located services can evacuate hosted state *before* the
        memory goes away — unlike :meth:`fail_node`, nothing on the node
        is lost.  Reversed by :meth:`restore_node`.
        """
        node = self.cluster.node(node_name)
        if node.draining:
            return
        node.draining = True
        self.log.emit(self.env.now, "drain", node=node_name)
        self._tracer.instant("slurm.drain", track="scheduler", node=node_name)
        for hook in self.on_drain:
            hook(node_name)
        self._record_occupancy()

    def fail_node(self, node_name: str) -> Optional[Job]:
        """A node dies: its batch job fails, the node leaves service.

        Returns the killed job, if any.  The node stays out of scheduling
        (draining) until :meth:`restore_node`.
        """
        node = self.cluster.node(node_name)
        victim = self._node_owner.get(node_name)
        node.draining = True
        if victim is not None:
            self._job_procs[victim.job_id].interrupt(cause="node-failure")
        self.log.emit(self.env.now, "node_failure", node=node_name,
                      job_id=victim.job_id if victim else None)
        return victim

    def restore_node(self, node_name: str) -> None:
        """Bring a failed node back into service."""
        self.cluster.node(node_name).draining = False
        self.log.emit(self.env.now, "node_restore", node=node_name)
        self._schedule_pass()

    def _finish(self, job: Job) -> None:
        job.end_time = self.env.now
        for alloc in self._job_allocs.pop(job.job_id):
            self.cluster.node(alloc.node_name).release(alloc)
        for name in job.node_names:
            del self._node_owner[name]
        del self.running[job.job_id]
        del self._job_procs[job.job_id]
        self.completed.append(job)
        self.log.emit(self.env.now, "end", job_id=job.job_id, app=job.spec.app, state=job.state.value)
        span = self._job_spans.pop(job.job_id, None)
        if span is not None:
            self._tracer.finish(span, state=job.state.value)
        self._record_occupancy()
        for hook in self.on_job_end:
            hook(job)
        self._schedule_pass()
