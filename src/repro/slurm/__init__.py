"""SLURM-like batch system: jobs, partitions, scheduler, workload, sampling."""

from .job import Job, JobSpec, JobState
from .partition import Partition, gres_available_gpus
from .sampling import NodeStateTracker, UtilizationSampler
from .scheduler import BatchScheduler
from .swf import SwfRecord, read_swf, write_swf
from .workload import WorkloadConfig, WorkloadGenerator, drive_workload

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "Partition",
    "gres_available_gpus",
    "NodeStateTracker",
    "UtilizationSampler",
    "BatchScheduler",
    "SwfRecord",
    "read_swf",
    "write_swf",
    "WorkloadConfig",
    "WorkloadGenerator",
    "drive_workload",
]
