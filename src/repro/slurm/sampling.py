"""Cluster-state sampling, mimicking the paper's measurement methodology.

Fig. 1 was produced by "querying SLURM with a two-minute interval"; idle
period durations are therefore *estimates from discrete sampling*.  This
module provides both views:

* :class:`UtilizationSampler` — a simulation process polling aggregate
  state on a fixed interval (the paper's method);
* :class:`NodeStateTracker` — exact per-node busy/idle transitions from
  scheduler hooks, against which the sampled estimate can be validated.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.trace import TimeSeries
from .job import Job
from .scheduler import BatchScheduler

__all__ = ["UtilizationSampler", "NodeStateTracker"]


class UtilizationSampler:
    """Polls scheduler aggregates every ``interval`` seconds."""

    def __init__(self, env: Environment, scheduler: BatchScheduler, interval: float = 120.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.scheduler = scheduler
        self.interval = interval
        self.idle_nodes = TimeSeries("idle_nodes")
        self.allocated_nodes = TimeSeries("allocated_nodes")
        self.used_core_fraction = TimeSeries("used_core_fraction")
        self.used_memory_fraction = TimeSeries("used_memory_fraction")
        self.allocated_node_fraction = TimeSeries("allocated_node_fraction")
        self.queue_length = TimeSeries("queue_length")
        self.process = env.process(self._run(), name="utilization-sampler")

    def _run(self):
        total_nodes = len(self.scheduler.cluster)
        while True:
            sched = self.scheduler
            self.idle_nodes.record(self.env.now, sched.idle_node_count())
            self.allocated_nodes.record(self.env.now, sched.allocated_node_count())
            self.used_core_fraction.record(self.env.now, sched.used_core_fraction())
            self.used_memory_fraction.record(self.env.now, sched.used_memory_fraction())
            self.allocated_node_fraction.record(
                self.env.now, sched.allocated_node_count() / total_nodes if total_nodes else 0.0
            )
            self.queue_length.record(self.env.now, len(sched.queue))
            yield self.env.timeout(self.interval)


class NodeStateTracker:
    """Exact busy(1)/idle(0) time series per node, from scheduler hooks."""

    def __init__(self, env: Environment, scheduler: BatchScheduler):
        self.env = env
        self.scheduler = scheduler
        self.series: dict[str, TimeSeries] = {
            node.name: TimeSeries(node.name) for node in scheduler.cluster
        }
        for ts in self.series.values():
            ts.record(env.now, 0.0)
        scheduler.on_job_start.append(self._job_started)
        scheduler.on_job_end.append(self._job_ended)

    def _job_started(self, job: Job) -> None:
        for name in job.node_names:
            self.series[name].record(self.env.now, 1.0)

    def _job_ended(self, job: Job) -> None:
        for name in job.node_names:
            self.series[name].record(self.env.now, 0.0)

    def idle_intervals(self, node_name: str) -> list[tuple[float, float]]:
        return self.series[node_name].intervals_where(lambda v: v == 0.0)

    def all_idle_durations(self, skip_leading: bool = True) -> list[float]:
        """Durations of every idle period across all nodes.

        ``skip_leading`` drops each node's initial cold-start idle span,
        which reflects simulation warm-up rather than scheduler churn.
        """
        durations: list[float] = []
        for name in self.series:
            intervals = self.idle_intervals(name)
            if skip_leading and intervals and intervals[0][0] == 0.0:
                intervals = intervals[1:]
            durations.extend(end - start for start, end in intervals if end > start)
        return durations
