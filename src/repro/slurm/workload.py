"""Synthetic HPC workload generator calibrated to Piz-Daint-like statistics.

The paper motivates disaggregation with a measurement study of Piz Daint
(Fig. 1, Sec. II-A).  We cannot replay the proprietary trace, so this
generator synthesizes a statistically similar job stream:

* a small application catalog with Zipf-like popularity — systems serve
  ~100–650 distinct apps and ~25 cover two-thirds of core-hours
  [Jones'17, Antypas'13];
* heavy-tailed node counts (most jobs small, few hero jobs) [Patel'20];
* lognormal runtimes, walltime over-estimated by users;
* per-node memory use centered near 25% of node memory [Zivanovic'17];
* core counts that often mismatch the 36-core node (e.g. LULESH needs a
  cubic rank count), leaving idle cores;
* Poisson arrivals with the rate chosen from a target utilization.

With a high target utilization the emergent idle-node process reproduces
the paper's headline shape: idle periods are frequent but short (70–80 %
under 10 minutes, median 5–6.5 min).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ..sim.engine import Environment
from .job import JobSpec
from .scheduler import BatchScheduler

__all__ = ["WorkloadConfig", "WorkloadGenerator", "drive_workload"]

GiB = 1024**3

#: Default application catalog: (name, popularity weight, core-count choices).
#: Core choices reflect real constraints — LULESH cubic ranks, MILC even
#: lattice decompositions, full-node codes.
_DEFAULT_APPS: tuple[tuple[str, float, tuple[int, ...]], ...] = (
    ("lulesh", 4.0, (27, 8)),            # cubic rank counts
    ("milc", 4.0, (32, 24, 16)),
    ("vasp", 6.0, (36, 24)),
    ("cp2k", 5.0, (36, 18)),
    ("gromacs", 5.0, (36, 32)),
    ("namd", 3.0, (36, 24)),
    ("cosmo", 3.0, (36,)),
    ("quantum-espresso", 3.0, (36, 16)),
    ("lammps", 2.5, (36, 32)),
    ("openfoam", 2.0, (32, 16)),
    ("wrf", 2.0, (36, 24)),
    ("specfem", 1.5, (24,)),
    ("nekbone", 1.0, (32, 16)),
    ("paraview-batch", 0.8, (12,)),
    ("python-ml", 0.7, (12, 8)),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunable knobs of the generator, defaults calibrated for Fig. 1."""

    target_utilization: float = 0.93
    node_cores: int = 36
    node_memory: int = 128 * GiB
    # Node-count distribution: log2-geometric, P(nodes=2^k) ~ p*(1-p)^k.
    size_geom_p: float = 0.45
    max_nodes: int = 256
    # Runtime: lognormal (seconds).
    runtime_median_s: float = 1500.0
    runtime_sigma: float = 1.1
    min_runtime_s: float = 30.0
    max_runtime_s: float = 12 * 3600.0
    # Walltime request factor: runtime * U(1.1, overestimate).
    walltime_overestimate: float = 3.0
    max_walltime_s: float = 24 * 3600.0
    # Memory: Beta(a, b) fraction of node memory, mean a/(a+b) ~ 0.25.
    memory_beta_a: float = 1.3
    memory_beta_b: float = 3.9
    # Fraction of jobs opting into sharing (disaggregation is opt-in).
    shared_fraction: float = 0.5
    gpu_fraction: float = 0.0

    def __post_init__(self):
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization in (0, 1]")
        if not 0 < self.size_geom_p < 1:
            raise ValueError("size_geom_p in (0, 1)")


class WorkloadGenerator:
    """Draws an endless stream of (inter-arrival, JobSpec) pairs."""

    def __init__(
        self,
        rng: np.random.Generator,
        cluster_nodes: int,
        config: Optional[WorkloadConfig] = None,
        apps: tuple[tuple[str, float, tuple[int, ...]], ...] = _DEFAULT_APPS,
    ):
        if cluster_nodes < 1:
            raise ValueError("cluster_nodes must be >= 1")
        self.rng = rng
        self.cluster_nodes = cluster_nodes
        self.config = config or WorkloadConfig()
        self._app_names = [a[0] for a in apps]
        weights = np.array([a[1] for a in apps], dtype=float)
        self._app_probs = weights / weights.sum()
        self._app_cores = {a[0]: a[2] for a in apps}
        # lambda such that E[nodes] * E[runtime] * lambda = util * N.
        mean_nodes = self._mean_node_count()
        mean_runtime = self._mean_runtime()
        demand = self.config.target_utilization * cluster_nodes
        self.arrival_rate = demand / (mean_nodes * mean_runtime)

    # -- moments used for calibration -------------------------------------------
    def _node_count(self) -> int:
        cfg = self.config
        k = int(self.rng.geometric(cfg.size_geom_p)) - 1
        nodes = 2**k
        return int(min(nodes, cfg.max_nodes, self.cluster_nodes))

    def _mean_node_count(self, samples: int = 4096) -> float:
        probe = np.random.default_rng(12345)
        cfg = self.config
        ks = probe.geometric(cfg.size_geom_p, size=samples) - 1
        vals = np.minimum(2.0**ks, min(cfg.max_nodes, self.cluster_nodes))
        return float(vals.mean())

    def _runtime(self) -> float:
        cfg = self.config
        r = self.rng.lognormal(mean=np.log(cfg.runtime_median_s), sigma=cfg.runtime_sigma)
        return float(np.clip(r, cfg.min_runtime_s, cfg.max_runtime_s))

    def _mean_runtime(self, samples: int = 4096) -> float:
        probe = np.random.default_rng(54321)
        cfg = self.config
        r = probe.lognormal(np.log(cfg.runtime_median_s), cfg.runtime_sigma, size=samples)
        return float(np.clip(r, cfg.min_runtime_s, cfg.max_runtime_s).mean())

    # -- drawing -------------------------------------------------------------------
    def draw_spec(self) -> JobSpec:
        cfg = self.config
        app = str(self.rng.choice(self._app_names, p=self._app_probs))
        cores_choices = self._app_cores[app]
        cores = int(self.rng.choice(cores_choices))
        cores = min(cores, cfg.node_cores)
        runtime = self._runtime()
        walltime = min(
            runtime * float(self.rng.uniform(1.1, cfg.walltime_overestimate)),
            cfg.max_walltime_s,
        )
        mem_fraction = float(self.rng.beta(cfg.memory_beta_a, cfg.memory_beta_b))
        memory = int(mem_fraction * cfg.node_memory)
        return JobSpec(
            user=f"user{int(self.rng.integers(0, 200)):03d}",
            app=app,
            nodes=self._node_count(),
            cores_per_node=cores,
            memory_per_node=memory,
            walltime=walltime,
            runtime=runtime,
            gpus_per_node=1 if self.rng.random() < cfg.gpu_fraction else 0,
            shared=bool(self.rng.random() < cfg.shared_fraction),
        )

    def arrivals(self) -> Iterator[tuple[float, JobSpec]]:
        """Endless stream of (inter-arrival seconds, spec)."""
        while True:
            gap = float(self.rng.exponential(1.0 / self.arrival_rate))
            yield gap, self.draw_spec()


def drive_workload(
    env: Environment,
    scheduler: BatchScheduler,
    generator: WorkloadGenerator,
    duration: float,
):
    """Simulation process: submit generated jobs for ``duration`` seconds."""

    def proc():
        for gap, spec in generator.arrivals():
            if env.now + gap > duration:
                return
            yield env.timeout(gap)
            scheduler.submit(spec)

    return env.process(proc(), name="workload-driver")
