"""The LogP-based offloading model (Sec. IV-F, Eq. 1).

The guiding principle: *the application never waits for remote
invocations*.  With ``T_local`` the local runtime of one task, ``T_inv``
the runtime of one rFaaS invocation, and ``L`` the round-trip network
time, Eq. 1 states that offloading is profitable once the local backlog
exceeds

    N_local = ceil((T_inv + L) / T_local)

tasks: while the first remote invocation is in flight, the local workers
have at least that much of their own work to hide it behind.  The number
of tasks that can run remotely is capped by link bandwidth: the paper
sets the sustainable remote rate to ``B / Data_inv`` invocations per
second.  ``split`` balances a task batch so local and remote finish
together subject to that cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["OffloadModel", "OffloadPlan"]


@dataclass(frozen=True)
class OffloadPlan:
    n_local: int
    n_remote: int
    estimated_time_s: float

    @property
    def total(self) -> int:
        return self.n_local + self.n_remote


@dataclass(frozen=True)
class OffloadModel:
    """Calibrated parameters of one (application, platform) pair."""

    t_local: float          # seconds per task on one local worker
    t_inv: float            # seconds per task executed via rFaaS
    latency: float          # round-trip network time L (seconds)
    bandwidth: float        # link bandwidth B (bytes/s)
    data_per_task: int      # Data_inv: serialized payload bytes per task

    def __post_init__(self):
        if self.t_local <= 0 or self.t_inv <= 0:
            raise ValueError("task times must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0 or self.data_per_task <= 0:
            raise ValueError("bandwidth and payload must be positive")

    # -- Eq. 1 ---------------------------------------------------------------
    @property
    def n_local_min(self) -> int:
        """Minimum local backlog that hides one remote invocation."""
        return max(1, math.ceil((self.t_inv + self.latency) / self.t_local))

    def should_offload(self, n_tasks: int) -> bool:
        """Eq. 1: offloading pays only beyond the N_local threshold."""
        if n_tasks < 0:
            raise ValueError("negative task count")
        return n_tasks > self.n_local_min

    # -- bandwidth cap -----------------------------------------------------------
    @property
    def remote_rate(self) -> float:
        """Sustainable remote invocations/s: min of link and executor rate."""
        link_rate = self.bandwidth / self.data_per_task
        executor_rate = 1.0 / self.t_inv
        return min(link_rate, executor_rate)

    def max_remote_tasks(self, window_s: float) -> int:
        """Tasks the link can absorb in ``window_s`` without waiting."""
        if window_s < 0:
            raise ValueError("negative window")
        return int(self.remote_rate * window_s)

    # -- batch splitting ------------------------------------------------------------
    def split(self, n_tasks: int, local_workers: int = 1, remote_workers: int = 1) -> OffloadPlan:
        """Split ``n_tasks`` so local and remote streams finish together.

        Local throughput: ``local_workers / t_local``.  Remote throughput:
        ``remote_workers / t_inv``, capped by the link rate.  Below the
        Eq.-1 threshold everything stays local.
        """
        if n_tasks < 0:
            raise ValueError("negative task count")
        if local_workers < 1 or remote_workers < 1:
            raise ValueError("need >= 1 worker on each side")
        if n_tasks == 0:
            return OffloadPlan(0, 0, 0.0)
        if not self.should_offload(n_tasks):
            return OffloadPlan(n_tasks, 0, n_tasks * self.t_local / local_workers)

        local_rate = local_workers / self.t_local
        remote_rate = min(remote_workers / self.t_inv, self.bandwidth / self.data_per_task)
        # Balance: n_local / local_rate == latency + n_remote / remote_rate,
        # n_local + n_remote == n_tasks.
        n_local_f = (n_tasks / remote_rate + self.latency) / (
            1.0 / local_rate + 1.0 / remote_rate
        )
        n_local = min(n_tasks, max(self.n_local_min, math.ceil(n_local_f)))
        n_remote = n_tasks - n_local
        time_est = max(
            n_local / local_rate,
            self.latency + (n_remote / remote_rate if n_remote else 0.0),
        )
        return OffloadPlan(n_local, n_remote, time_est)

    def speedup(self, n_tasks: int, local_workers: int = 1, remote_workers: int = 1) -> float:
        """Estimated speedup of the split vs. purely local execution."""
        plan = self.split(n_tasks, local_workers, remote_workers)
        local_only = n_tasks * self.t_local / local_workers
        return local_only / plan.estimated_time_s if plan.estimated_time_s > 0 else 1.0
