"""Live offload dispatcher: Eq. 1 applied to real work (Fig. 13).

Splits a batch of payload chunks between the calling process ("OpenMP"
side) and the process-based runtime ("rFaaS executors"), following the
:class:`~repro.offload.model.OffloadModel` plan.  Remote chunks are
submitted *first* so their latency hides behind local compute — the
paper's never-wait principle — then local chunks run inline, and finally
remote results are gathered (by then, ideally already complete).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..local.runtime import LocalRuntime
from ..local.serialization import payload_nbytes
from ..telemetry import SpanKind, telemetry_of
from .model import OffloadModel, OffloadPlan

__all__ = ["DispatchReport", "OffloadDispatcher", "calibrate_model"]


@dataclass
class DispatchReport:
    """Outcome of one dispatched batch."""

    results: list                # in payload order
    plan: OffloadPlan
    wall_time_s: float
    local_time_s: float          # time spent computing local chunks
    gather_wait_s: float         # extra time waiting on remote futures

    @property
    def remote_hidden(self) -> bool:
        """True when remote work was fully hidden behind local compute."""
        return self.gather_wait_s < 0.05 * max(self.wall_time_s, 1e-9)


class OffloadDispatcher:
    """Runs payload batches with model-guided local/remote splitting."""

    def __init__(self, runtime: LocalRuntime, model: Optional[OffloadModel] = None,
                 telemetry: Optional[Any] = None):
        self.runtime = runtime
        self.model = model
        # Wall-clock telemetry scope (this runtime is live, not simulated).
        self.telemetry = telemetry if telemetry is not None else telemetry_of(None)

    def run(
        self,
        function: str,
        local_fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        **kwargs: Any,
    ) -> DispatchReport:
        """Execute every payload; remote overflow per the model's plan.

        ``function`` must be registered with the runtime and implement the
        same computation as ``local_fn`` (the paper's modified OpenMP
        loop body vs. its rFaaS twin).
        """
        n = len(payloads)
        t_start = time.perf_counter()
        if n == 0:
            return DispatchReport([], OffloadPlan(0, 0, 0.0), 0.0, 0.0, 0.0)
        if self.model is None:
            plan = OffloadPlan(n, 0, 0.0)
        else:
            plan = self.model.split(n, remote_workers=self.runtime.workers)

        tracer = self.telemetry.tracer
        # Submit the tail chunks remotely first (never-wait principle).
        # The remote span runs submit -> last gathered result, so its
        # duration is Eq. 1's T_inv + L as experienced by this batch;
        # the local span is the compute it must hide behind.
        remote_payloads = payloads[plan.n_local:]
        remote_span = tracer.begin(
            SpanKind.OFFLOAD_REMOTE, track="offload",
            function=function, chunks=len(remote_payloads),
        )
        futures = [
            self.runtime.invoke(function, payload, **kwargs)
            for payload in remote_payloads
        ]
        # Local chunks run inline.
        with tracer.span(SpanKind.OFFLOAD_LOCAL, track="offload",
                         function=function, chunks=plan.n_local):
            t_local0 = time.perf_counter()
            local_results = [local_fn(payload, **kwargs) for payload in payloads[: plan.n_local]]
            local_time = time.perf_counter() - t_local0
        # Gather.
        t_gather0 = time.perf_counter()
        remote_results = [f.result() for f in futures]
        gather_wait = time.perf_counter() - t_gather0
        tracer.finish(remote_span, gather_wait_s=gather_wait)
        wall = time.perf_counter() - t_start
        return DispatchReport(
            results=local_results + remote_results,
            plan=plan,
            wall_time_s=wall,
            local_time_s=local_time,
            gather_wait_s=gather_wait,
        )


def calibrate_model(
    runtime: LocalRuntime,
    function: str,
    local_fn: Callable[[Any], Any],
    probe_payload: Any,
    bandwidth: float = 2e9,
    latency: Optional[float] = None,
    repeats: int = 3,
    **kwargs: Any,
) -> OffloadModel:
    """Measure T_local and T_inv with probe invocations (Sec. IV-F).

    "We measure the runtime of one task T_local and then compare this to
    the runtime T_inv of one invocation using rFaaS, to which we add the
    round-trip network time L."  On the local runtime, L is the IPC
    round-trip, measured with a no-op-sized payload unless given.
    """
    if repeats < 1:
        raise ValueError("need >= 1 repeat")
    runtime.prewarm()
    # T_local.
    t0 = time.perf_counter()
    for _ in range(repeats):
        local_fn(probe_payload, **kwargs)
    t_local = (time.perf_counter() - t0) / repeats
    # T_inv (warm invocations).
    runtime.invoke_sync(function, probe_payload, **kwargs)
    t0 = time.perf_counter()
    for _ in range(repeats):
        runtime.invoke_sync(function, probe_payload, **kwargs)
    t_inv = (time.perf_counter() - t0) / repeats
    if latency is None:
        # Round-trip overhead estimate: difference beyond compute time,
        # floored to keep the model valid.
        latency = max(t_inv - t_local, 1e-5)
    return OffloadModel(
        t_local=max(t_local, 1e-9),
        t_inv=max(t_inv, 1e-9),
        latency=latency,
        bandwidth=bandwidth,
        data_per_task=max(payload_nbytes(probe_payload), 1),
    )
