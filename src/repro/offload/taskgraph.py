"""Task-graph offloading (Sec. IV-F, "task-based applications").

"The number of tasks that can be offloaded depends on the width of the
task dependency graph — the wider the graph, the more parallelism is
exposed."  The paper's example is the distributed prefix scan of electron
microscopy image registration, whose width varies strongly between the
up-sweep and down-sweep phases.

This module layers a DAG topologically, exposes per-level widths, and
runs a level-synchronous schedule where tasks overflowing the local
worker pool are offloaded when Eq. 1 says the overflow is worth it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

import networkx as nx

from .model import OffloadModel

__all__ = ["TaskGraph", "ScheduleResult", "prefix_scan_graph", "schedule_with_offloading"]


class TaskGraph:
    """A DAG of tasks with durations."""

    def __init__(self):
        self._g = nx.DiGraph()

    def add_task(self, task_id: Hashable, duration_s: float = 1.0,
                 deps: Iterable[Hashable] = ()) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if task_id in self._g:
            raise ValueError(f"duplicate task {task_id!r}")
        self._g.add_node(task_id, duration=duration_s)
        for dep in deps:
            if dep not in self._g:
                raise KeyError(f"dependency {dep!r} not defined yet")
            self._g.add_edge(dep, task_id)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_node(task_id)
            raise ValueError(f"adding {task_id!r} would create a cycle")

    def __len__(self) -> int:
        return len(self._g)

    def duration(self, task_id: Hashable) -> float:
        return self._g.nodes[task_id]["duration"]

    def levels(self) -> list[list[Hashable]]:
        """Topological layering: level = longest path depth from sources."""
        return [sorted(generation, key=str) for generation in nx.topological_generations(self._g)]

    def widths(self) -> list[int]:
        return [len(level) for level in self.levels()]

    @property
    def max_width(self) -> int:
        return max(self.widths(), default=0)

    def critical_path_length(self) -> float:
        """Lower bound on makespan with infinite workers (node-weighted)."""
        dist: dict[Hashable, float] = {}
        for node in nx.topological_sort(self._g):
            longest_pred = max(
                (dist[p] for p in self._g.predecessors(node)), default=0.0
            )
            dist[node] = longest_pred + self._g.nodes[node]["duration"]
        return max(dist.values(), default=0.0)


@dataclass(frozen=True)
class ScheduleResult:
    makespan_s: float
    offloaded_tasks: int
    local_tasks: int
    per_level_offloads: tuple[int, ...]


def schedule_with_offloading(
    graph: TaskGraph,
    local_workers: int,
    model: Optional[OffloadModel] = None,
) -> ScheduleResult:
    """Level-synchronous schedule with Eq.-1-guarded overflow offloading.

    Each level's tasks run on ``local_workers``; when a level is wider
    than the worker pool and the overflow passes the Eq.-1 threshold, the
    overflow runs remotely in parallel.  Levels synchronize (as the
    prefix-scan phases do), so the level time is the max of local and
    remote streams.
    """
    if local_workers < 1:
        raise ValueError("need >= 1 local worker")
    makespan = 0.0
    offloaded = 0
    local_done = 0
    per_level = []
    for level in graph.levels():
        durations = sorted((graph.duration(t) for t in level), reverse=True)
        n = len(durations)
        if model is not None and n > local_workers and model.should_offload(n):
            plan = model.split(n, local_workers=local_workers)
            n_local, n_remote = plan.n_local, plan.n_remote
        else:
            n_local, n_remote = n, 0
        # Local stream: greedy LPT bound (duration-aware list schedule).
        local_durs = durations[n_remote:]
        loads = [0.0] * min(local_workers, max(n_local, 1))
        for d in local_durs:
            loads[loads.index(min(loads))] += d
        local_time = max(loads) if local_durs else 0.0
        remote_time = 0.0
        if n_remote and model is not None:
            remote_time = model.latency + n_remote / model.remote_rate
            remote_time = max(remote_time, model.t_inv)
        makespan += max(local_time, remote_time)
        offloaded += n_remote
        local_done += n_local
        per_level.append(n_remote)
    return ScheduleResult(
        makespan_s=makespan,
        offloaded_tasks=offloaded,
        local_tasks=local_done,
        per_level_offloads=tuple(per_level),
    )


def prefix_scan_graph(n: int, task_duration_s: float = 1.0) -> TaskGraph:
    """Blelloch prefix-scan DAG over ``n`` leaves (n a power of two).

    Up-sweep halves the width each level; down-sweep doubles it back —
    the varying-width structure the paper highlights.
    """
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    graph = TaskGraph()
    # Leaves.
    for i in range(n):
        graph.add_task(("leaf", 0, i), task_duration_s)
    # Up-sweep: level k combines pairs from level k-1.
    width = n
    level = 0
    prev_kind = "leaf"
    while width > 1:
        level += 1
        width //= 2
        for i in range(width):
            deps = [(prev_kind, level - 1, 2 * i), (prev_kind, level - 1, 2 * i + 1)]
            graph.add_task(("up", level, i), task_duration_s, deps=deps)
        prev_kind = "up"
    # Down-sweep mirrors the structure, widening again.
    top_level = level
    graph.add_task(("down", 0, 0), task_duration_s, deps=[("up", top_level, 0)])
    width = 1
    for lvl in range(1, top_level + 1):
        width *= 2
        for i in range(width):
            deps = [("down", lvl - 1, i // 2)]
            up_lvl = top_level - lvl
            if up_lvl >= 1:
                deps.append(("up", up_lvl, i))
            graph.add_task(("down", lvl, i), task_duration_s, deps=deps)
    return graph
