"""LogP-based offloading: Eq. 1 planner, task graphs, live dispatcher."""

from .dispatcher import DispatchReport, OffloadDispatcher, calibrate_model
from .model import OffloadModel, OffloadPlan
from .taskgraph import (
    ScheduleResult,
    TaskGraph,
    prefix_scan_graph,
    schedule_with_offloading,
)

__all__ = [
    "DispatchReport",
    "OffloadDispatcher",
    "calibrate_model",
    "OffloadModel",
    "OffloadPlan",
    "ScheduleResult",
    "TaskGraph",
    "prefix_scan_graph",
    "schedule_with_offloading",
]
