"""Memory service functions (Sec. III-C, Fig. 11).

A memory service function "allocates a memory block and offers direct
access" via one-sided RMA, letting other jobs page into idle node memory.
The function itself consumes almost no CPU (one-sided RDMA bypasses the
host), but its traffic contends for the node's NIC and memory bandwidth —
the perturbation Fig. 11 measures.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.node import Allocation, Node
from ..network.transport import Connection, NetworkFabric
from ..rfaas.errors import MemoryServiceUnavailable
from ..rfaas.load import NodeLoadRegistry
from ..sim.engine import Environment, Process

__all__ = ["MemoryServiceFunction", "MemoryClient", "TrafficPattern"]


class MemoryServiceFunction:
    """A pinned RDMA-accessible buffer hosted in idle node memory."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        size_bytes: int,
        loads: Optional[NodeLoadRegistry] = None,
        mr_registration_s: float = 120e-6,
    ):
        if size_bytes <= 0:
            raise ValueError("buffer size must be positive")
        self.service_id = env.next_id("memservice")
        self.env = env
        self.node = node
        self.size_bytes = size_bytes
        self.loads = loads
        self.mr_registration_s = mr_registration_s
        self._alloc: Optional[Allocation] = None
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def active(self) -> bool:
        return self._alloc is not None

    def start(self) -> Process:
        """Allocate + pin the buffer; yields once the MR is registered."""
        if self.active:
            raise RuntimeError("service already started")
        self._alloc = self.node.allocate(
            owner=f"memservice-{self.service_id}",
            memory_bytes=self.size_bytes,
            kind="memservice",
        )

        def register():
            yield self.env.timeout(self.mr_registration_s)
            return self

        return self.env.process(register(), name=f"memservice-{self.service_id}-start")

    def stop(self) -> None:
        """Release the buffer (batch system reclaimed the memory).

        Idempotent: stopping an already-stopped (or never-started)
        service is a no-op, so reclaim paths that race — drain migration
        finishing just as a crash hits the same node — never double-free.
        """
        if self._alloc is not None:
            self.node.release(self._alloc)
            self._alloc = None

    def validate_access(self, offset: int, size: int) -> None:
        if not self.active:
            raise MemoryServiceUnavailable(
                f"memory service {self.service_id} on {self.node.name} not active",
                node_name=self.node.name,
            )
        if offset < 0 or size < 0 or offset + size > self.size_bytes:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside buffer of {self.size_bytes} B"
            )


class TrafficPattern:
    """Periodic RMA operations: ``op_bytes`` every ``interval_s``."""

    def __init__(self, op_bytes: int, interval_s: float, write: bool = False):
        if op_bytes <= 0:
            raise ValueError("op_bytes must be positive")
        if interval_s < 0:
            raise ValueError("interval must be non-negative")
        self.op_bytes = op_bytes
        self.interval_s = interval_s
        self.write = write

    def mean_bandwidth(self, op_duration_s: float) -> float:
        """Average offered load given the per-op completion time."""
        return self.op_bytes / max(self.interval_s + op_duration_s, 1e-12)


class MemoryClient:
    """A remote job using a memory service function over RDMA."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        service: MemoryServiceFunction,
        connection: Connection,
    ):
        self.env = env
        self.fabric = fabric
        self.service = service
        self.connection = connection

    def read(self, offset: int, size: int) -> Process:
        self.service.validate_access(offset, size)

        def run():
            got = yield self.connection.rdma_read(size)
            self.service.bytes_read += got
            return got

        return self.env.process(run(), name="rma-read")

    def write(self, offset: int, size: int) -> Process:
        self.service.validate_access(offset, size)

        def run():
            put = yield self.connection.rdma_write(size)
            self.service.bytes_written += put
            return put

        return self.env.process(run(), name="rma-write")

    def stream(self, pattern: TrafficPattern, duration_s: float) -> Process:
        """Run a periodic read/write stream for ``duration_s``.

        While streaming, the offered bandwidth is registered as background
        traffic on the *service* node so co-located tenants feel it (the
        Fig. 11 mechanism: memory service impacts both NIC and DRAM).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")

        def run():
            op = self.write if pattern.write else self.read
            # Estimate per-op time to derive offered bandwidth.
            probe_start = self.env.now
            yield op(0, pattern.op_bytes)
            op_time = self.env.now - probe_start
            bandwidth = pattern.mean_bandwidth(op_time)
            node_name = self.service.node.name
            if self.service.loads is not None:
                self.service.loads.add_background_traffic(
                    node_name, netbw=bandwidth, membw=bandwidth
                )
            ops = 1
            try:
                while self.env.now - probe_start < duration_s:
                    if pattern.interval_s > 0:
                        yield self.env.timeout(pattern.interval_s)
                    yield op(0, pattern.op_bytes)
                    ops += 1
            finally:
                if self.service.loads is not None:
                    self.service.loads.clear_background_traffic(node_name)
            return ops

        return self.env.process(run(), name="rma-stream")
