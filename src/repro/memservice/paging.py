"""Remote paging over memory service functions (Sec. III-C).

"Functions allocate a memory block and offer direct access, allowing HPC
applications for remote paging [22]."  This client keeps a bounded set of
pages resident locally and pages the rest in/out of a remote buffer: the
software layer that hardware memory disaggregation would otherwise
require (Sec. VII).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..sim.engine import Environment
from .memory_function import MemoryClient

__all__ = ["RemotePager"]


class RemotePager:
    """LRU paging of fixed-size pages against a remote memory buffer."""

    def __init__(
        self,
        env: Environment,
        client: MemoryClient,
        page_bytes: int = 2 << 20,
        resident_pages: int = 64,
    ):
        if page_bytes <= 0 or resident_pages <= 0:
            raise ValueError("page size and residency must be positive")
        total_pages = client.service.size_bytes // page_bytes
        if total_pages < 1:
            raise ValueError("remote buffer smaller than one page")
        self.env = env
        self.client = client
        self.page_bytes = page_bytes
        self.resident_limit = resident_pages
        self.total_pages = int(total_pages)
        self._resident: OrderedDict[int, bool] = OrderedDict()  # page -> dirty
        self.faults = 0
        self.hits = 0
        self.writebacks = 0

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.total_pages:
            raise ValueError(f"page {page} outside [0, {self.total_pages})")

    def touch(self, page: int, dirty: bool = False):
        """Process: access a page, faulting it in if non-resident.

        Yields True on a hit, False on a fault.
        """
        self._check_page(page)

        def run():
            if page in self._resident:
                self.hits += 1
                self._resident.move_to_end(page)
                self._resident[page] = self._resident[page] or dirty
                return True
            self.faults += 1
            # Evict LRU if full; dirty pages are written back first.
            if len(self._resident) >= self.resident_limit:
                victim, victim_dirty = next(iter(self._resident.items()))
                if victim_dirty:
                    self.writebacks += 1
                    yield self.client.write(victim * self.page_bytes, self.page_bytes)
                del self._resident[victim]
            yield self.client.read(page * self.page_bytes, self.page_bytes)
            self._resident[page] = dirty
            return False

        return self.env.process(run(), name=f"page-{page}")

    def flush(self):
        """Process: write back every dirty resident page."""

        def run():
            flushed = 0
            for page, dirty in list(self._resident.items()):
                if dirty:
                    yield self.client.write(page * self.page_bytes, self.page_bytes)
                    self._resident[page] = False
                    flushed += 1
            self.writebacks += flushed
            return flushed

        return self.env.process(run(), name="page-flush")
