"""Background anti-entropy for the replicated memory service.

After a crash destroys replicas (or a partition fences them behind the
committed epoch), chunks run below the configured replication factor
until something copies data back.  The repair loop is that something: a
periodic process that scans chunks in index order — deterministic, no
rng — and, for each deficit it finds,

1. *restores* missing replicas by cloning a surviving clean copy onto a
   placement-picked target node, and
2. *resyncs* live-but-fenced replicas in place (a node that missed
   writes while partitioned is re-filled and re-stamped with the
   committed version/epoch).

Copies ride the network fabric like any tenant transfer, so repair
traffic after a failure burst is visible in the same NIC contention the
paper's Fig. 11 measures.  A repair that loses its copy (the target or
source drops mid-transfer) is simply retried on a later tick.
"""

from __future__ import annotations

from ..sim.engine import Environment, Interrupt
from ..telemetry import telemetry_of

__all__ = ["RepairLoop"]


class RepairLoop:
    """Periodically restore the replication factor of degraded chunks."""

    def __init__(self, env: Environment, service, interval_s: float = 0.5):
        self.env = env
        self.service = service
        self.interval_s = interval_s
        self.ticks = 0
        self.repairs = 0
        self.resyncs = 0
        self._proc = None
        self._stopped = False
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_repairs = metrics.counter(
            "repro_memservice_repairs_total",
            help="replicas restored onto a new node by the repair loop",
        )
        self._m_resyncs = metrics.counter(
            "repro_memservice_resyncs_total",
            help="fenced/stale replicas rewritten in place by the repair loop",
        )

    def start(self):
        """Begin ticking (idempotent while the loop is alive)."""
        if self.interval_s <= 0:
            raise ValueError("repair interval must be positive")
        if self._proc is None or self._proc.triggered:
            self._stopped = False
            self._proc = self.env.process(self._loop(), name="memservice-repair")
        return self._proc

    def stop(self) -> None:
        """Stop ticking (idempotent)."""
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="repair-stop")

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    def _loop(self):
        try:
            while not self._stopped:
                yield self.env.timeout(self.interval_s)
                if self._stopped:
                    return
                self.ticks += 1
                yield from self._tick()
        except Interrupt:
            return

    def _tick(self):
        """One scan: repairs run sequentially so a tick's fabric load is
        bounded by one in-flight copy (anti-entropy should not stampede
        the network the tenants are using)."""
        service = self.service
        restored = resynced = 0
        for chunk in service.chunks:
            # Replace replicas destroyed by crashes.
            while len(chunk.replicas) < service.replication:
                ok = yield from service.restore_replica(chunk)
                if not ok:
                    break  # no source or no target; retry next tick
                restored += 1
            # Heal live replicas that missed writes while unreachable.
            for replica in list(chunk.replicas):
                if replica.live and not service.is_clean(chunk, replica):
                    ok = yield from service.resync_replica(chunk, replica)
                    if ok:
                        resynced += 1
        if restored or resynced:
            self.repairs += restored
            self.resyncs += resynced
            self._m_repairs.inc(restored)
            self._m_resyncs.inc(resynced)
            self._tracer.instant(
                "memservice.repair", track="memservice",
                restored=restored, resynced=resynced,
                under_replicated=len(service.under_replicated_chunks()),
            )
