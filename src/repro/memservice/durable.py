"""Durable memory service: replicated, migrating, self-repairing buffers.

The paper's memory-service functions (Sec. III-C, Fig. 11) pin RMA
buffers in *idle* node memory — memory the batch system may reclaim at
any moment, and that vanishes outright on a node crash.  A single
:class:`~repro.memservice.memory_function.MemoryServiceFunction` has no
story for either; this module supplies the durability layer that turns
leftover memory into a usable disaggregated-memory substrate:

* **Striping + replication** — a logical buffer is cut into fixed-size
  chunks, each placed as ``k`` replicas on distinct nodes (and distinct
  dragonfly groups when possible, via
  :class:`~repro.memservice.placement.ReplicaPlacement`).
* **Versioned, checksummed writes** — every committed chunk write
  carries a monotone version and a checksum over (chunk, version);
  replicas that miss a write fall behind and are *fenced* by an epoch
  token, so a partitioned stale primary can never serve torn reads.
  Writes commit when at least one replica acks; acks below the quorum
  (majority of the replica set) are counted as *degraded* and, under
  ``strict_quorum``, surfaced as
  :class:`~repro.rfaas.errors.MemoryServiceUnavailable`.
* **Drain-triggered live migration** — ``attach_manager`` /
  ``attach_scheduler`` subscribe to ``ResourceManager.remove_node`` and
  ``BatchScheduler.drain_node``; a graceful reclaim copies every chunk
  off the leaving node *before* its memory disappears, with the copy
  time charged through the network fabric.
* **Background repair** — :class:`~repro.memservice.repair.RepairLoop`
  detects under-replicated or fenced chunks after a crash and restores
  the replication factor from surviving clean replicas.
* **Checksum-verified read failover** — :class:`DurableMemoryClient`
  walks a chunk's replicas on failure (dead host, dropped transfer,
  checksum or epoch mismatch) and raises
  :class:`~repro.rfaas.errors.DataLossError` only when *every* replica
  of a chunk is gone or corrupt.

Everything is deterministic: placement is pure, repair order is chunk
order, and no component draws randomness — the ``memdurability_sweep``
JSON is byte-identical across fresh interpreters for one seed and plan.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from ..cluster.machine import Cluster
from ..network.transport import Connection, NetworkFabric, TransferDropped
from ..rfaas.errors import DataLossError, MemoryServiceUnavailable
from ..rfaas.load import NodeLoadRegistry
from ..sim.engine import Environment, Process
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext
from .memory_function import MemoryServiceFunction
from .placement import ReplicaPlacement
from .repair import RepairLoop

__all__ = ["DurableMemoryConfig", "ChunkReplica", "Chunk",
           "ReplicatedMemoryService", "DurableMemoryClient"]

MiB = 1024**2


@dataclass(frozen=True)
class DurableMemoryConfig:
    """Shape and policy of one replicated logical buffer."""

    #: Logical buffer size visible to clients.
    size_bytes: int = 256 * MiB
    #: Striping granularity; the last chunk may be partial.
    chunk_bytes: int = 16 * MiB
    #: Replicas per chunk (k). 1 reproduces the undurable seed service.
    replication: int = 2
    #: Background repair-loop tick; 0 disables the loop.
    repair_interval_s: float = 0.5
    #: Candidate host nodes (None = every cluster node).
    hosts: Optional[tuple[str, ...]] = None
    #: Memory-registration time per hosted chunk buffer.
    mr_registration_s: float = 120e-6
    #: Surface acks-below-majority writes as MemoryServiceUnavailable
    #: (the write still commits on the replicas that acked).
    strict_quorum: bool = False

    def __post_init__(self):
        if self.size_bytes <= 0 or self.chunk_bytes <= 0:
            raise ValueError("size_bytes and chunk_bytes must be positive")
        if self.replication < 1:
            raise ValueError("replication factor must be >= 1")
        if self.repair_interval_s < 0:
            raise ValueError("repair_interval_s must be non-negative")


class ChunkReplica:
    """One hosted copy of a chunk: a pinned buffer plus its freshness."""

    __slots__ = ("node_name", "service", "version", "epoch", "checksum")

    def __init__(self, node_name: str, service: MemoryServiceFunction,
                 version: int, epoch: int, checksum: int):
        self.node_name = node_name
        self.service = service
        self.version = version
        self.epoch = epoch
        self.checksum = checksum

    @property
    def live(self) -> bool:
        return self.service.active


class Chunk:
    """Authoritative state of one stripe: committed version + replicas."""

    __slots__ = ("index", "size_bytes", "version", "epoch", "replicas")

    def __init__(self, index: int, size_bytes: int):
        self.index = index
        self.size_bytes = size_bytes
        self.version = 0
        self.epoch = 0
        self.replicas: list[ChunkReplica] = []

    @property
    def quorum(self) -> int:
        """Majority of the current replica set (>= 1)."""
        return max(1, len(self.replicas) // 2 + 1)

    def nodes(self) -> list[str]:
        return [r.node_name for r in self.replicas]


def _checksum(chunk_index: int, version: int) -> int:
    """Simulated content checksum of (chunk, version)."""
    return zlib.crc32(f"chunk-{chunk_index}:v{version}".encode("utf-8"))


class ReplicatedMemoryService:
    """A logical buffer striped into k-way replicated, checksummed chunks."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        fabric: NetworkFabric,
        config: Optional[DurableMemoryConfig] = None,
        loads: Optional[NodeLoadRegistry] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.fabric = fabric
        self.config = config or DurableMemoryConfig()
        self.loads = loads
        self.service_id = env.next_id("memservice-durable")
        hosts = self.config.hosts
        if hosts is None:
            hosts = tuple(node.name for node in cluster)
        self.placement = ReplicaPlacement(cluster, hosts)
        size, cb = self.config.size_bytes, self.config.chunk_bytes
        self.chunks = [
            Chunk(i, min(cb, size - i * cb))
            for i in range((size + cb - 1) // cb)
        ]
        self.epoch = 0
        self._started = False
        self._stopped = False
        self._conns: dict[tuple[str, str], Connection] = {}
        self.repair = RepairLoop(env, self, interval_s=self.config.repair_interval_s)
        # DRC: one credential covers the service's internal copies and is
        # granted to every client user (the Sec. IV-A cross-job story).
        self._user = f"memservice-{self.service_id}"
        self.credential = None
        if fabric.provider.requires_credentials() and fabric.drc is not None:
            self.credential = fabric.drc.acquire(owner=self._user)
        # Plain counters (survive NULL telemetry) + metric instruments.
        self.bytes_read = 0
        self.bytes_written = 0
        self.replicas_lost = 0
        self.migrations = 0
        self.migration_failures = 0
        self.degraded_writes = 0
        self.moved_bytes = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_lost = metrics.counter(
            "repro_memservice_replicas_lost_total",
            help="chunk replicas destroyed by crash, kill, or reclaim",
        )
        self._m_migrations = metrics.counter(
            "repro_memservice_chunk_migrations_total",
            help="chunk replicas live-migrated off a draining node",
        )
        self._m_migration_failures = metrics.counter(
            "repro_memservice_migration_failures_total",
            help="chunk migrations that found no target or lost the copy",
        )
        self._m_degraded = metrics.counter(
            "repro_memservice_degraded_writes_total",
            help="committed chunk writes acked by fewer replicas than the quorum",
        )
        self._m_moved = metrics.counter(
            "repro_memservice_moved_bytes",
            help="bytes copied node-to-node by migration and repair",
        )
        self._m_under = metrics.gauge(
            "repro_memservice_under_replicated_count",
            help="chunks currently below the configured replication factor",
        )

    # -- lifecycle -----------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._started and not self._stopped

    @property
    def size_bytes(self) -> int:
        return self.config.size_bytes

    @property
    def replication(self) -> int:
        return self.config.replication

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def start(self) -> None:
        """Allocate every chunk's replica set; idempotent-unfriendly like
        the plain service (double start is a programming error)."""
        if self._started:
            raise RuntimeError("durable memory service already started")
        k = self.config.replication
        for chunk in self.chunks:
            nodes = self.placement.replica_nodes(chunk.index, k)
            if len(nodes) < k:
                raise ValueError(
                    f"cannot place {k} replicas of chunk {chunk.index} on "
                    f"{len(self.placement.hosts)} candidate host(s)"
                )
            for node_name in nodes:
                chunk.replicas.append(self._host_replica(chunk, node_name))
        self._started = True
        if self.config.repair_interval_s > 0:
            self.repair.start()
        self._record_under_replication()

    def stop(self) -> None:
        """Release every hosted buffer (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.repair.stop()
        for chunk in self.chunks:
            for replica in chunk.replicas:
                replica.service.stop()

    def _host_replica(self, chunk: Chunk, node_name: str) -> ChunkReplica:
        """Allocate + start one chunk buffer on ``node_name``."""
        service = MemoryServiceFunction(
            self.env, self.cluster.node(node_name), chunk.size_bytes,
            loads=self.loads, mr_registration_s=self.config.mr_registration_s,
        )
        service.start()
        return ChunkReplica(
            node_name, service, version=chunk.version, epoch=chunk.epoch,
            checksum=_checksum(chunk.index, chunk.version),
        )

    # -- access plumbing -----------------------------------------------------
    def validate_access(self, offset: int, size: int) -> None:
        if not self.active:
            raise MemoryServiceUnavailable(
                f"durable memory service {self.service_id} not active"
            )
        if offset < 0 or size < 0 or offset + size > self.size_bytes:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside buffer of "
                f"{self.size_bytes} B"
            )

    def chunk_span(self, offset: int, size: int) -> list[tuple[int, int]]:
        """(chunk index, bytes within chunk) pairs covering the access."""
        cb = self.config.chunk_bytes
        if size == 0:
            return [(min(offset // cb, self.num_chunks - 1), 0)]
        first = offset // cb
        last = (offset + size - 1) // cb
        out = []
        for index in range(first, last + 1):
            lo = max(offset, index * cb)
            hi = min(offset + size, (index + 1) * cb)
            out.append((index, hi - lo))
        return out

    def grant_access(self, user: str) -> None:
        """Grant ``user`` the DRC credential covering every replica host."""
        if self.credential is not None:
            self.fabric.drc.grant(self.credential.cred_id, self._user, user)

    @property
    def cred_id(self) -> Optional[int]:
        return self.credential.cred_id if self.credential is not None else None

    def hosting_nodes(self) -> list[str]:
        """Sorted nodes currently holding at least one live replica."""
        nodes = {
            r.node_name
            for chunk in self.chunks for r in chunk.replicas if r.live
        }
        return sorted(nodes)

    def is_clean(self, chunk: Chunk, replica: ChunkReplica) -> bool:
        """Replica holds the committed version and is not fenced."""
        return (
            replica.live
            and replica.epoch == chunk.epoch
            and replica.version == chunk.version
            and replica.checksum == _checksum(chunk.index, chunk.version)
        )

    def clean_replicas(self, chunk: Chunk) -> list[ChunkReplica]:
        return [r for r in chunk.replicas if self.is_clean(chunk, r)]

    def under_replicated_chunks(self) -> list[Chunk]:
        """Chunks with fewer clean replicas than the configured factor."""
        k = self.config.replication
        return [c for c in self.chunks if len(self.clean_replicas(c)) < k]

    def _record_under_replication(self) -> None:
        self._m_under.set(len(self.under_replicated_chunks()))

    # -- write bookkeeping (transfers ride the client's connections) ---------
    def propose_write(self, chunk_index: int) -> int:
        """The version a client write will commit if any replica acks."""
        return self.chunks[chunk_index].version + 1

    def commit_write(self, chunk_index: int, version: int,
                     acked: list[ChunkReplica], failed: list[ChunkReplica],
                     nbytes: int) -> bool:
        """Apply the outcome of one replicated chunk write.

        Commits ``version`` when at least one replica acked; replicas
        that failed the transfer are *fenced* by advancing the chunk
        epoch so their (now stale) contents can never satisfy a read.
        Returns True when the ack count reached the quorum.
        """
        chunk = self.chunks[chunk_index]
        if not acked:
            return False  # aborted: committed state unchanged everywhere
        chunk.version = version
        if failed:
            self.epoch += 1
            chunk.epoch = self.epoch
            self._tracer.instant(
                "memservice.fence", track="memservice",
                chunk=chunk_index, epoch=chunk.epoch,
                fenced=[r.node_name for r in failed],
            )
        checksum = _checksum(chunk_index, version)
        for replica in acked:
            replica.version = version
            replica.epoch = chunk.epoch
            replica.checksum = checksum
        self.bytes_written += nbytes * len(acked)
        met = len(acked) >= chunk.quorum
        if not met:
            self.degraded_writes += 1
            self._m_degraded.inc()
        if failed:
            self._record_under_replication()
        return met

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes

    # -- membership events ----------------------------------------------------
    def attach_manager(self, manager) -> None:
        """Subscribe to ``ResourceManager.remove_node`` reclaim events."""
        manager.on_remove_node.append(self._on_remove_node)

    def attach_scheduler(self, scheduler) -> None:
        """Subscribe to ``BatchScheduler.drain_node`` drain events."""
        scheduler.on_drain.append(self._on_drain)

    def _on_remove_node(self, node_name: str, immediate: bool) -> None:
        if not self.active:
            return
        if immediate:
            self.kill_node(node_name, cause="node_crash")
        else:
            self._on_drain(node_name)

    def _on_drain(self, node_name: str) -> None:
        if not self.active:
            return
        if any(r.node_name == node_name and r.live
               for c in self.chunks for r in c.replicas):
            self.env.process(
                self.evacuate(node_name),
                name=f"memservice-evacuate:{node_name}",
            )

    def kill_node(self, node_name: str, cause: str = "memservice_kill") -> int:
        """The node's hosted buffers vanish *now* (crash semantics).

        Every replica on the node is destroyed and dropped from its
        chunk's replica set; the repair loop restores the replication
        factor from survivors.  Returns the number of replicas lost.
        """
        lost = 0
        for chunk in self.chunks:
            for replica in [r for r in chunk.replicas if r.node_name == node_name]:
                replica.service.stop()
                chunk.replicas.remove(replica)
                lost += 1
        if lost:
            self.replicas_lost += lost
            self._m_lost.inc(lost)
            self._record_under_replication()
            self._tracer.instant(
                "memservice.node_lost", track="memservice",
                node=node_name, replicas=lost, cause=cause,
            )
        return lost

    def evacuate(self, node_name: str):
        """Process body: live-migrate every chunk replica off ``node_name``.

        Copy time is charged through the fabric (source egress + target
        ingress), so a drain under load contends with tenant traffic —
        exactly the Fig. 11 coupling.  Chunks that find no target stay
        put and are counted as migration failures (the batch system will
        destroy them when it takes the memory).
        """
        span = self._tracer.begin(
            "memservice.migrate", track="memservice", node=node_name,
        )
        moved = failed = 0
        for chunk in self.chunks:
            for replica in [r for r in chunk.replicas if r.node_name == node_name]:
                if not replica.live:
                    continue
                ok = yield from self._copy_replica(
                    chunk, source=replica,
                    exclude=chunk.nodes(), remove_source=True,
                )
                if ok:
                    moved += 1
                else:
                    failed += 1
        self.migrations += moved
        self.migration_failures += failed
        self._m_migrations.inc(moved)
        if failed:
            self._m_migration_failures.inc(failed)
        self._record_under_replication()
        self._tracer.finish(span, moved=moved, failed=failed)
        return moved

    # -- replica copies (shared by migration and repair) ----------------------
    def _copy_replica(self, chunk: Chunk, source: ChunkReplica,
                      exclude: list[str], remove_source: bool):
        """Generator: clone ``source`` onto a placement-picked target.

        On success the new replica joins the chunk (stamped with the
        source's version/epoch) and, when ``remove_source``, the source
        buffer is released.  Returns True on success.
        """
        target = self.placement.pick_target(
            exclude=set(exclude) | {source.node_name}, need_bytes=chunk.size_bytes,
        )
        if target is None:
            return False
        try:
            replica = self._host_replica(chunk, target)
        except Exception:
            return False
        try:
            moved = yield from self._transfer(
                source.node_name, target, chunk.size_bytes,
            )
        except TransferDropped:
            replica.service.stop()
            return False
        replica.version = source.version
        replica.epoch = source.epoch
        replica.checksum = source.checksum
        chunk.replicas.append(replica)
        self.moved_bytes += moved
        self._m_moved.inc(moved)
        if remove_source:
            source.service.stop()
            chunk.replicas.remove(source)
        return True

    def resync_replica(self, chunk: Chunk, replica: ChunkReplica):
        """Generator: overwrite a fenced/stale live replica in place."""
        sources = self.clean_replicas(chunk)
        if not sources or not replica.live:
            return False
        source = sources[0]
        try:
            moved = yield from self._transfer(
                source.node_name, replica.node_name, chunk.size_bytes,
            )
        except TransferDropped:
            return False
        replica.version = chunk.version
        replica.epoch = chunk.epoch
        replica.checksum = _checksum(chunk.index, chunk.version)
        self.moved_bytes += moved
        self._m_moved.inc(moved)
        self._record_under_replication()
        return True

    def restore_replica(self, chunk: Chunk):
        """Generator: add one replica from a surviving clean copy."""
        sources = self.clean_replicas(chunk)
        if not sources:
            return False
        ok = yield from self._copy_replica(
            chunk, source=sources[0], exclude=chunk.nodes(), remove_source=False,
        )
        if ok:
            self._record_under_replication()
        return ok

    def _transfer(self, src: str, dst: str, size_bytes: int):
        """Generator: one node-to-node copy over a cached connection."""
        conn = self._conns.get((src, dst))
        if conn is None:
            conn = yield self.fabric.connect(src, dst, user=self._user,
                                             cred_id=self.cred_id)
            self._conns[(src, dst)] = conn
        got = yield conn.rdma_write(size_bytes)
        return got

    def stats(self) -> dict:
        """Plain-number summary (robust to NULL telemetry)."""
        return {
            "chunks": self.num_chunks,
            "replication": self.replication,
            "epoch": self.epoch,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "replicas_lost": self.replicas_lost,
            "migrations": self.migrations,
            "migration_failures": self.migration_failures,
            "degraded_writes": self.degraded_writes,
            "moved_bytes": self.moved_bytes,
            "repairs": self.repair.repairs,
            "resyncs": self.repair.resyncs,
            "under_replicated": len(self.under_replicated_chunks()),
        }


class DurableMemoryClient:
    """Chunk-aware client with checksum-verified replica failover.

    API-compatible with :class:`~repro.memservice.memory_function.MemoryClient`
    for the paths :class:`~repro.memservice.paging.RemotePager` uses
    (``read``/``write`` processes plus ``.service.size_bytes``), so a
    pager rides the durable service unchanged.
    """

    def __init__(self, env: Environment, fabric: NetworkFabric,
                 service: ReplicatedMemoryService, client_node: str,
                 user: str = "app"):
        self.env = env
        self.fabric = fabric
        self.service = service
        self.client_node = client_node
        self.user = user
        service.grant_access(user)
        self._conns: dict[str, Connection] = {}
        self.failovers = 0
        self.checksum_failures = 0
        self.stale_reads_averted = 0
        self.data_losses = 0
        self.quorum_failures = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_failovers = metrics.counter(
            "repro_memservice_failovers_total",
            help="reads redirected to another replica after a failure",
        )
        self._m_checksum = metrics.counter(
            "repro_memservice_checksum_failures_total",
            help="replica reads rejected by checksum verification",
        )
        self._m_stale = metrics.counter(
            "repro_memservice_stale_reads_averted_total",
            help="reads that skipped an epoch-fenced (stale) replica",
        )
        self._m_loss = metrics.counter(
            "repro_memservice_data_loss_total",
            help="chunk accesses where every replica was gone or corrupt",
        )

    def _connection(self, node_name: str):
        conn = self._conns.get(node_name)
        if conn is None:
            conn = yield self.fabric.connect(
                self.client_node, node_name, user=self.user,
                cred_id=self.service.cred_id,
            )
            self._conns[node_name] = conn
        return conn

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()

    # -- reads ----------------------------------------------------------------
    def read(self, offset: int, size: int,
             ctx: Optional[TraceContext] = None) -> Process:
        self.service.validate_access(offset, size)

        def run():
            with self._tracer.span(
                "memservice.read", track="memservice", ctx=ctx,
                offset=offset, size=size,
            ):
                total = 0
                for index, nbytes in self.service.chunk_span(offset, size):
                    total += yield from self._read_chunk(index, nbytes)
                self.service.record_read(total)
                return total

        return self.env.process(run(), name="durable-read")

    def _read_chunk(self, index: int, nbytes: int):
        chunk = self.service.chunks[index]
        attempts = 0
        transient = False
        for replica in list(chunk.replicas):
            attempts += 1
            if not replica.live:
                self._note_failover()
                continue
            try:
                got = yield self._probe_read(replica, nbytes)
            except (TransferDropped, MemoryServiceUnavailable):
                # A clean replica we merely could not reach means the
                # data still exists — the failure is retryable, not loss.
                if self.service.is_clean(chunk, replica):
                    transient = True
                self._note_failover()
                continue
            if replica.epoch != chunk.epoch:
                # Fenced: the replica missed a write while unreachable.
                self.stale_reads_averted += 1
                self._m_stale.inc()
                self._note_failover()
                continue
            if (replica.version != chunk.version
                    or replica.checksum != _checksum(index, chunk.version)):
                self.checksum_failures += 1
                self._m_checksum.inc()
                self._note_failover()
                continue
            return got
        if transient:
            raise MemoryServiceUnavailable(
                f"chunk {index}: {attempts} replica(s) unreachable",
                cause="unreachable",
            )
        self.data_losses += 1
        self._m_loss.inc()
        self._tracer.instant(
            "memservice.data_loss", track="memservice",
            chunk=index, replicas_tried=attempts,
        )
        raise DataLossError(
            f"chunk {index}: all {attempts} replica(s) gone or corrupt",
            chunk=index, replicas_lost=attempts,
        )

    def _probe_read(self, replica: ChunkReplica, nbytes: int) -> Process:
        def run():
            replica.service.validate_access(0, nbytes)
            conn = yield from self._connection(replica.node_name)
            got = yield conn.rdma_read(nbytes)
            # The host may have died while the payload was in flight.
            replica.service.validate_access(0, 0)
            return got

        return self.env.process(run(), name=f"durable-read:{replica.node_name}")

    def _note_failover(self) -> None:
        self.failovers += 1
        self._m_failovers.inc()

    # -- writes ---------------------------------------------------------------
    def write(self, offset: int, size: int,
              ctx: Optional[TraceContext] = None) -> Process:
        self.service.validate_access(offset, size)

        def run():
            with self._tracer.span(
                "memservice.write", track="memservice", ctx=ctx,
                offset=offset, size=size,
            ):
                total = 0
                for index, nbytes in self.service.chunk_span(offset, size):
                    total += yield from self._write_chunk(index, nbytes)
                return total

        return self.env.process(run(), name="durable-write")

    def _write_chunk(self, index: int, nbytes: int):
        chunk = self.service.chunks[index]
        live = [r for r in chunk.replicas if r.live]
        if not live:
            self.data_losses += 1
            self._m_loss.inc()
            raise DataLossError(
                f"chunk {index}: no live replicas to write",
                chunk=index, replicas_lost=len(chunk.replicas),
            )
        version = self.service.propose_write(index)
        attempts = [
            self.env.process(self._attempt_write(replica, nbytes),
                             name=f"durable-write:{replica.node_name}")
            for replica in live
        ]
        yield self.env.all_of(attempts)
        acked = [r for r, proc in zip(live, attempts) if proc.value]
        failed = [r for r, proc in zip(live, attempts) if not proc.value]
        met = self.service.commit_write(index, version, acked, failed, nbytes)
        if not acked:
            self.quorum_failures += 1
            raise MemoryServiceUnavailable(
                f"chunk {index}: write reached no replica",
                cause="unreachable",
            )
        if not met and self.service.config.strict_quorum:
            self.quorum_failures += 1
            raise MemoryServiceUnavailable(
                f"chunk {index}: write acked by {len(acked)} replica(s), "
                f"quorum is {chunk.quorum}",
                cause="quorum",
            )
        return nbytes

    def _attempt_write(self, replica: ChunkReplica, nbytes: int):
        """Process body: one replica write; returns True on ack."""
        try:
            if not replica.live:
                return False
            conn = yield from self._connection(replica.node_name)
            yield conn.rdma_write(nbytes)
            return replica.live  # host may have died mid-transfer
        except (TransferDropped, MemoryServiceUnavailable):
            return False
