"""Memory service: RMA buffers in idle memory, remote paging, durability."""

from .durable import (
    Chunk,
    ChunkReplica,
    DurableMemoryClient,
    DurableMemoryConfig,
    ReplicatedMemoryService,
)
from .memory_function import MemoryClient, MemoryServiceFunction, TrafficPattern
from .paging import RemotePager
from .placement import ReplicaPlacement
from .repair import RepairLoop

__all__ = [
    "MemoryClient",
    "MemoryServiceFunction",
    "TrafficPattern",
    "RemotePager",
    "Chunk",
    "ChunkReplica",
    "DurableMemoryClient",
    "DurableMemoryConfig",
    "ReplicatedMemoryService",
    "ReplicaPlacement",
    "RepairLoop",
]
