"""Memory service: RMA buffers in idle memory, remote paging."""

from .memory_function import MemoryClient, MemoryServiceFunction, TrafficPattern
from .paging import RemotePager

__all__ = ["MemoryClient", "MemoryServiceFunction", "TrafficPattern", "RemotePager"]
