"""Topology-aware replica placement for the durable memory service.

Chunk replicas must land on *distinct nodes* (a node crash may only cost
one copy) and, when the cluster is wide enough, on distinct dragonfly
*groups* (a group-level outage — power, a router — may only cost one
copy either).  The spreading idiom is the same group round-robin the
warm-pool autoscaler uses for prewarmed containers: hosts are bucketed
by ``topology.group_of``, the buckets sorted, and placements drawn by
cycling groups before cycling nodes within a group.

Placement is pure and deterministic — no rng, no simulated time — so a
seeded run replays identical replica maps and the determinism contract
of ``memdurability_sweep`` holds across fresh interpreters.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..cluster.machine import Cluster

__all__ = ["ReplicaPlacement"]


class ReplicaPlacement:
    """Deterministic group-aware replica spreading over candidate hosts."""

    def __init__(self, cluster: Cluster, hosts: Sequence[str]):
        if not hosts:
            raise ValueError("need at least one candidate host")
        seen = set()
        for name in hosts:
            if name in seen:
                raise ValueError(f"duplicate host {name!r}")
            seen.add(name)
            cluster.node(name)  # validate eagerly
        self.cluster = cluster
        self.hosts = tuple(hosts)

    def _rotations(self, exclude: Iterable[str] = ()) -> list[list[str]]:
        """Sorted per-group host rotations, minus ``exclude`` and drainers."""
        excluded = set(exclude)
        groups: dict[int, list[str]] = {}
        for name in self.hosts:
            if name in excluded or self.cluster.node(name).draining:
                continue
            gid = self.cluster.topology.group_of(self.cluster.node_index(name))
            groups.setdefault(gid, []).append(name)
        return [sorted(names) for _, names in sorted(groups.items())]

    def _interleaved(self, start: int, exclude: Iterable[str] = ()) -> list[str]:
        """Every eligible host, groups cycled before nodes within a group.

        ``start`` rotates both the group order and each group's member
        order, so consecutive chunks spread their primaries across the
        whole host set instead of hammering the lexically-first node.
        """
        rotations = self._rotations(exclude)
        if not rotations:
            return []
        rotations = [r[start % len(r):] + r[: start % len(r)] for r in rotations]
        first = start % len(rotations)
        rotations = rotations[first:] + rotations[:first]
        out: list[str] = []
        i = 0
        while rotations:
            rotation = rotations[i]
            out.append(rotation.pop(0))
            if not rotation:
                rotations.pop(i)
                if not rotations:
                    break
                i %= len(rotations)
            else:
                i = (i + 1) % len(rotations)
        return out

    def replica_nodes(self, chunk_index: int, k: int,
                      exclude: Iterable[str] = ()) -> list[str]:
        """``k`` distinct hosts for one chunk, spread across groups.

        Returns fewer than ``k`` names when the candidate set is too
        small — the caller decides whether under-placement is an error
        (initial layout) or a repair deficit (degraded cluster).
        """
        if k < 1:
            raise ValueError("replication factor must be >= 1")
        return self._interleaved(chunk_index, exclude)[:k]

    def pick_target(self, exclude: Iterable[str], need_bytes: int) -> Optional[str]:
        """One host for a repaired/migrated replica, or None.

        The first host in group-interleaved order with ``need_bytes`` of
        node memory free — the same deterministic choice every run.
        """
        for candidate in self._interleaved(0, exclude):
            if self.cluster.node(candidate).free_memory >= need_bytes:
                return candidate
        return None
