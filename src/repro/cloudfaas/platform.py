"""Classical cloud FaaS baseline (the comparator of Secs. IV-A/IV-D).

The paper's motivation for HPC functions is the latency structure of
*classical cloud functions*: every invocation crosses a gateway, gets
centrally scheduled and rerouted to a sandbox over TCP, so "even a warm
invocation in an existing sandbox can introduce dozens of milliseconds
latency"; payloads beyond the inline limit must detour through object
storage because sandboxes cannot accept connections (NAT); idle
containers are purged after a keep-alive window, re-exposing cold starts.

This model reproduces that structure so benchmarks can quantify the gap
to the HPC-specialized platform on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..containers.image import Image
from ..containers.runtime import DOCKER, ContainerRuntime
from ..sim.engine import Environment, Process
from ..storage.objectstore import ObjectStoreModel

__all__ = ["CloudConfig", "CloudInvocation", "CloudFaaSPlatform"]



@dataclass(frozen=True)
class CloudConfig:
    """Latency/behaviour constants of a typical commercial platform."""

    # API gateway + auth + routing, one way (seconds).
    gateway_latency_s: float = 4e-3
    gateway_jitter_sigma: float = 0.35
    # Central scheduler decision + worker dispatch.
    scheduling_s: float = 6e-3
    # Payloads above this must round-trip through object storage.
    inline_payload_limit: int = 256 * 1024
    # Idle containers are purged after this keep-alive window.
    keepalive_s: float = 600.0
    runtime: ContainerRuntime = DOCKER

    def __post_init__(self):
        if self.gateway_latency_s < 0 or self.scheduling_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.inline_payload_limit < 0 or self.keepalive_s <= 0:
            raise ValueError("invalid limits")


@dataclass
class CloudInvocation:
    invocation_id: int
    function: str
    cold: bool
    gateway_s: float = 0.0
    scheduling_s: float = 0.0
    startup_s: float = 0.0
    storage_s: float = 0.0
    execution_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.gateway_s + self.scheduling_s + self.startup_s
                + self.storage_s + self.execution_s)


class CloudFaaSPlatform:
    """A centralized, storage-mediated serverless platform."""

    def __init__(
        self,
        env: Environment,
        config: Optional[CloudConfig] = None,
        storage: Optional[ObjectStoreModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.config = config or CloudConfig()
        self.storage = storage or ObjectStoreModel(
            request_latency_s=15e-3,      # cloud storage: tens of ms (Sec. IV-D)
            server_bandwidth=2.5e9,
        )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._functions: dict[str, Image] = {}
        self._last_used: dict[str, float] = {}
        self.cold_starts = 0
        self.warm_invocations = 0

    def register(self, name: str, image: Image) -> None:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        if not self.config.runtime.supports_image(image):
            raise ValueError(f"runtime {self.config.runtime.name} cannot run this image")
        self._functions[name] = image

    def _gateway_hop(self) -> float:
        base = self.config.gateway_latency_s
        return float(base * self.rng.lognormal(0.0, self.config.gateway_jitter_sigma))

    def invoke(self, function: str, payload_bytes: int = 0,
               runtime_s: float = 0.0, output_bytes: int = 1024) -> Process:
        """Process yielding a :class:`CloudInvocation` with its breakdown."""
        image = self._functions.get(function)
        if image is None:
            raise KeyError(f"function {function!r} not registered")
        if payload_bytes < 0 or output_bytes < 0 or runtime_s < 0:
            raise ValueError("negative sizes")
        record = CloudInvocation(self.env.next_id("cloud-invocation"), function, cold=False)

        def run():
            # 1. Client -> gateway -> scheduler.
            record.gateway_s = self._gateway_hop()
            yield self.env.timeout(record.gateway_s)
            record.scheduling_s = self.config.scheduling_s
            yield self.env.timeout(record.scheduling_s)
            # 2. Sandbox: warm within keep-alive, else cold start.
            last = self._last_used.get(function)
            if last is None or self.env.now - last > self.config.keepalive_s:
                record.cold = True
                record.startup_s = self.config.runtime.cold_start_time(image)
                self.cold_starts += 1
            else:
                record.startup_s = self.config.runtime.warm_attach_s
                self.warm_invocations += 1
            yield self.env.timeout(record.startup_s)
            # 3. Data: inline or the storage detour (write + read each way).
            storage_time = 0.0
            if payload_bytes > self.config.inline_payload_limit:
                storage_time += 2 * self.storage.single_read_time(payload_bytes)
            if output_bytes > self.config.inline_payload_limit:
                storage_time += 2 * self.storage.single_read_time(output_bytes)
            record.storage_s = storage_time
            if storage_time:
                yield self.env.timeout(storage_time)
            # 4. Execute, then the response crosses the gateway again.
            record.execution_s = runtime_s
            if runtime_s:
                yield self.env.timeout(runtime_s)
            back = self._gateway_hop()
            record.gateway_s += back
            yield self.env.timeout(back)
            self._last_used[function] = self.env.now
            return record

        return self.env.process(run(), name=f"cloud-invoke-{function}")
