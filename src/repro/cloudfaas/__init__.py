"""Classical cloud FaaS baseline: gateway, central scheduling, storage detours."""

from .platform import CloudConfig, CloudFaaSPlatform, CloudInvocation

__all__ = ["CloudConfig", "CloudFaaSPlatform", "CloudInvocation"]
