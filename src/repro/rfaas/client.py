"""rFaaS client library.

Handles the client side of the invocation protocol: leasing executor
resources, establishing the RDMA connection (with DRC credentials on
uGNI), sending payloads, and — crucially for ephemeral HPC capacity —
transparently re-leasing and redirecting when the platform cancels a
lease underneath the client (Sec. III-A).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..network.transport import Connection, NetworkFabric
from ..sim.engine import Environment
from .executor import Executor, TerminationError
from .lease import Lease
from .manager import NoCapacityError, ResourceManager
from .messages import InvocationRequest, InvocationResult, InvocationStatus
from .registry import FunctionDef, FunctionRegistry

__all__ = ["RFaaSClient"]

_client_ids = itertools.count(1)


class RFaaSClient:
    """A client application invoking functions from one cluster node."""

    def __init__(
        self,
        env: Environment,
        manager: ResourceManager,
        fabric: NetworkFabric,
        functions: FunctionRegistry,
        client_node: str,
        name: Optional[str] = None,
        max_redirects: int = 3,
    ):
        if max_redirects < 0:
            raise ValueError("max_redirects must be non-negative")
        self.env = env
        self.manager = manager
        self.fabric = fabric
        self.functions = functions
        self.client_node = client_node
        self.name = name or f"client-{next(_client_ids)}"
        self.max_redirects = max_redirects
        self._lease: Optional[Lease] = None
        self._executor: Optional[Executor] = None
        self._connection: Optional[Connection] = None
        self._leasing = None  # event guarding concurrent lease setup
        self.redirects = 0

    # -- lease/connection management --------------------------------------------
    @property
    def lease(self) -> Optional[Lease]:
        return self._lease

    def _lease_valid(self) -> bool:
        return self._lease is not None and self._lease.active

    def _on_cancel(self, lease: Lease) -> None:
        # Platform revoked our lease: forget it so the next invocation
        # re-leases elsewhere.  The connection object is left open —
        # in-flight responses of a *graceful* drain must still arrive;
        # the invocation path closes it once it notices the switch.
        if self._lease is lease:
            self._lease = None
            self._executor = None
            self._connection = None

    def _ensure_lease(self, fdef: FunctionDef, cores: int, exclude: tuple[str, ...] = ()):
        """Process: obtain a lease + connection if we lack one.

        Concurrent invocations share one lease: the first caller performs
        the setup while the others wait on a guard event.
        """
        while True:
            if self._lease_valid() and self._connection is not None:
                return
            if self._leasing is not None:
                yield self._leasing
                continue
            self._leasing = self.env.event()
            try:
                lease, executor = self.manager.lease(
                    client=self.name,
                    cores=cores,
                    memory_bytes=fdef.memory_bytes,
                    gpus=1 if fdef.needs_gpu else 0,
                    image=fdef.image,
                    exclude=exclude,
                )
                lease.on_cancel.append(self._on_cancel)
                credential = self.manager.credential_for(lease.node_name)
                connection = yield self.fabric.connect(
                    self.client_node, lease.node_name, user=self.name,
                    cred_id=credential.cred_id,
                )
                self._lease = lease
                self._executor = executor
                self._connection = connection
            finally:
                guard, self._leasing = self._leasing, None
                guard.succeed()
            return

    def close(self) -> None:
        if self._lease is not None and self._lease.active:
            self.manager.release_lease(self._lease)
        if self._connection is not None:
            self._connection.close()
        self._lease = None
        self._executor = None
        self._connection = None

    # -- invocation ---------------------------------------------------------------
    def invoke(self, function: str, payload_bytes: int = 0, cores: int = 1):
        """Process: one invocation; yields an :class:`InvocationResult`.

        On lease cancellation mid-flight the client redirects to a fresh
        lease (excluding the reclaimed node) up to ``max_redirects``
        times; exhaustion surfaces as a TERMINATED result.
        """
        fdef = self.functions.lookup(function)
        return self.env.process(
            self._invoke(fdef, payload_bytes, cores), name=f"{self.name}-invoke-{function}"
        )

    def _invoke(self, fdef: FunctionDef, payload_bytes: int, cores: int):
        request = InvocationRequest(function=fdef.name, payload_bytes=payload_bytes)
        exclude: tuple[str, ...] = ()
        resume_offset = 0.0
        for _attempt in range(self.max_redirects + 1):
            try:
                yield from self._ensure_lease(fdef, cores, exclude)
            except NoCapacityError:
                return InvocationResult(request=request, status=InvocationStatus.REJECTED)
            executor, connection = self._executor, self._connection
            if executor is None or connection is None:
                # The lease was cancelled between setup and use (e.g. an
                # immediate reclaim raced us); try again elsewhere.
                self.redirects += 1
                continue
            t_start = self.env.now
            try:
                yield connection.send(payload_bytes)
                network_out = self.env.now - t_start
                if resume_offset:
                    from dataclasses import replace as _replace

                    request = _replace(request, resume_offset_s=resume_offset)
                result: InvocationResult = yield executor.execute(fdef, request)
                if result.status == InvocationStatus.REJECTED:
                    # Executor started draining between lease and dispatch.
                    exclude = exclude + (executor.node.name,)
                    self.redirects += 1
                    continue
                t_back = self.env.now
                yield connection.recv_response(result.output_bytes)
                result.timings.network_out = network_out
                result.timings.network_back = self.env.now - t_back
                if self._connection is not connection:
                    # Lease was cancelled while we were in flight; the
                    # response has landed, so the old connection can go.
                    connection.close()
                return result
            except TerminationError as term:
                # Reclaimed mid-flight: redirect to a new lease, resuming
                # from the checkpoint if the function supports it.
                resume_offset = max(resume_offset, term.checkpoint_s)
                exclude = exclude + ((executor.node.name,) if executor else ())
                self.redirects += 1
                if self._lease is not None and not self._lease.active:
                    self._lease = None
                continue
        return InvocationResult(request=request, status=InvocationStatus.TERMINATED)
