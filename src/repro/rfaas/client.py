"""rFaaS client library.

Handles the client side of the invocation protocol: leasing executor
resources, establishing the RDMA connection (with DRC credentials on
uGNI), sending payloads, and — crucially for ephemeral HPC capacity —
transparently re-leasing and redirecting when the platform cancels a
lease underneath the client (Sec. III-A).

Recovery is governed by a :class:`~repro.faults.RetryPolicy`: attempt
budget, exponential backoff with seeded jitter, an optional
per-invocation deadline, and node-exclusion memory.  The default policy
is exactly the historical ``max_redirects=3`` behaviour — immediate
retries, no deadline — so plain callers see no difference; callers who
care *how* an invocation concluded use :meth:`RFaaSClient.invoke_detailed`
and get a :class:`~repro.faults.DegradedResult` back.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..faults.recovery import DegradedResult, RecoveryOutcome, RetryPolicy
from ..network.transport import Connection, NetworkFabric, TransferDropped
from ..sim.engine import Environment
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext
from ..telemetry.span import SpanKind
from .errors import (
    InvocationTimeout,
    LeaseRevokedError,
    ManagerUnavailableError,
    NoCapacityError,
    RFaaSError,
    TerminationError,
)
from .executor import Executor
from .lease import Lease
from .manager import ResourceManager
from .messages import InvocationRequest, InvocationResult, InvocationStatus
from .registry import FunctionDef, FunctionRegistry

__all__ = ["RFaaSClient"]

# Interrupt cause used when the client aborts its own execution because
# the RetryPolicy deadline elapsed (vs. a platform-side reclaim).
_TIMEOUT_CAUSE = "client-timeout"


class RFaaSClient:
    """A client application invoking functions from one cluster node."""

    def __init__(
        self,
        env: Environment,
        manager: ResourceManager,
        fabric: NetworkFabric,
        functions: FunctionRegistry,
        client_node: str,
        name: Optional[str] = None,
        max_redirects: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if retry_policy is None:
            retry_policy = RetryPolicy.from_redirects(max_redirects)
        self.env = env
        self.manager = manager
        self.fabric = fabric
        self.functions = functions
        self.client_node = client_node
        self.name = name or f"client-{env.next_id('rfaas-client')}"
        self.retry_policy = retry_policy
        self.max_redirects = retry_policy.max_redirects
        self.rng = rng
        self._lease: Optional[Lease] = None
        self._executor: Optional[Executor] = None
        self._connection: Optional[Connection] = None
        self._leasing = None  # event guarding concurrent lease setup
        self._closed = False
        # Concurrent invocations share one connection; a connection that
        # went stale (lease revoked / dropped / client closed) is only
        # closed once its last in-flight user drains off it.
        self._inflight: dict[Connection, int] = {}
        self._stale: set[Connection] = set()
        self.redirects = 0
        # Recovery telemetry (no-ops under the default null telemetry).
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics
        self._m_retries: dict = {}
        self._m_recovered = self._metrics.counter(
            "repro_faults_recovered_invocations_total",
            help="invocations that succeeded after at least one retry",
        )
        self._m_gave_up = self._metrics.counter(
            "repro_faults_abandoned_invocations_total",
            help="invocations that exhausted their retry budget",
        )
        self._m_timeouts = self._metrics.counter(
            "repro_faults_timeouts_total",
            help="invocations aborted by the client-side deadline",
        )
        self._m_recovery_s = self._metrics.histogram(
            "repro_faults_recovery_seconds",
            help="first failure to eventual success, per recovered invocation",
        )

    # -- lease/connection management --------------------------------------------
    @property
    def lease(self) -> Optional[Lease]:
        return self._lease

    @property
    def closed(self) -> bool:
        return self._closed

    def _lease_valid(self) -> bool:
        return self._lease is not None and self._lease.active

    def _on_cancel(self, lease: Lease) -> None:
        # Platform revoked our lease: forget it so the next invocation
        # re-leases elsewhere.  The connection object is left open —
        # in-flight responses of a *graceful* drain must still arrive;
        # the invocation path closes it once it notices the switch.
        if self._lease is lease:
            self._lease = None
            self._executor = None
            self._connection = None

    def _ensure_lease(self, fdef: FunctionDef, cores: int, exclude: tuple[str, ...] = ()):
        """Process: obtain a lease + connection if we lack one.

        Concurrent invocations share one lease: the first caller performs
        the setup while the others wait on a guard event.  Raises
        :class:`LeaseRevokedError` when the platform cancels the fresh
        lease while the connection is still being established, or when
        the client is closed mid-setup.
        """
        while True:
            if self._closed:
                raise LeaseRevokedError(f"client {self.name} is closed")
            if self._lease_valid() and self._connection is not None:
                return
            if self._leasing is not None:
                yield self._leasing
                continue
            self._leasing = self.env.event()
            try:
                lease, executor = self.manager.lease(
                    client=self.name,
                    cores=cores,
                    memory_bytes=fdef.memory_bytes,
                    gpus=1 if fdef.needs_gpu else 0,
                    image=fdef.image,
                    exclude=exclude,
                )
                lease.on_cancel.append(self._on_cancel)
                credential = self.manager.credential_for(lease.node_name)
                connection = yield self.fabric.connect(
                    self.client_node, lease.node_name, user=self.name,
                    cred_id=credential.cred_id,
                )
                if self._closed or not lease.active:
                    # Revoked (or closed) while the connection handshake
                    # was in flight: hand nothing back, redirect instead.
                    if lease.active:
                        self.manager.release_lease(lease)
                    connection.close()
                    raise LeaseRevokedError(
                        f"lease {lease.lease_id} revoked during connect",
                        node_name=lease.node_name,
                    )
                self._lease = lease
                self._executor = executor
                self._connection = connection
            finally:
                guard, self._leasing = self._leasing, None
                guard.succeed()
            return

    def release_lease(self) -> None:
        """Voluntarily give the current lease (and connection) back.

        Unlike :meth:`close` the client stays usable: the next invocation
        re-leases.  The capacity plane calls this when a tenant goes
        idle, so held-but-unused executor cores return to the pool
        instead of starving other tenants into the cloud.
        """
        if self._closed or self._lease is None:
            return
        if self._lease.active:
            self.manager.release_lease(self._lease)
        if self._connection is not None:
            self._retire(self._connection)
        self._lease = None
        self._executor = None
        self._connection = None

    def close(self) -> None:
        """Release the lease and connection; safe to call more than once.

        A concurrent in-flight ``_ensure_lease`` notices ``_closed`` when
        its connect completes and gives its fresh lease straight back.
        """
        if self._closed:
            return
        self._closed = True
        if self._lease is not None and self._lease.active:
            self.manager.release_lease(self._lease)
        if self._connection is not None:
            self._retire(self._connection)
        self._lease = None
        self._executor = None
        self._connection = None

    # -- invocation ---------------------------------------------------------------
    def invoke(self, function: str, payload_bytes: int = 0, cores: int = 1,
               ctx: Optional[TraceContext] = None):
        """Process: one invocation; yields an :class:`InvocationResult`.

        On lease cancellation mid-flight the client redirects to a fresh
        lease (excluding the reclaimed node) within the retry policy's
        attempt budget; exhaustion surfaces as a TERMINATED result.
        """
        fdef = self.functions.lookup(function)
        return self.env.process(
            self._invoke(fdef, payload_bytes, cores, ctx=ctx),
            name=f"{self.name}-invoke-{function}",
        )

    def invoke_detailed(self, function: str, payload_bytes: int = 0, cores: int = 1,
                        ctx: Optional[TraceContext] = None):
        """Process: one invocation; yields a :class:`DegradedResult`.

        Same recovery loop as :meth:`invoke`, but the value carries the
        full recovery story: outcome, attempts, retries, backoff and
        recovery time, and the last platform error observed.

        ``ctx`` joins the invocation to an existing causal trace (the
        capacity plane passes the context it minted at admission); a
        traced client with no ``ctx`` mints its own, so bare-client runs
        still get one tree per request.
        """
        fdef = self.functions.lookup(function)
        return self.env.process(
            self._invoke_detailed(fdef, payload_bytes, cores, ctx=ctx),
            name=f"{self.name}-invoke-{function}",
        )

    def _invoke(self, fdef: FunctionDef, payload_bytes: int, cores: int,
                ctx: Optional[TraceContext] = None):
        detailed = yield from self._invoke_detailed(fdef, payload_bytes, cores, ctx=ctx)
        return detailed.result

    def _invoke_detailed(self, fdef: FunctionDef, payload_bytes: int, cores: int,
                         ctx: Optional[TraceContext] = None):
        if self._closed:
            raise RFaaSError(f"client {self.name} is closed")
        policy = self.retry_policy
        # Trace identity: one rfaas.request root per call; every retry
        # attempt is a sibling span underneath it.  Nothing is minted
        # when telemetry is off, keeping the untraced path allocation-free.
        traced = self._tracer.enabled
        root_span = None
        req_ctx: Optional[TraceContext] = None
        if traced:
            if ctx is None:
                ctx = TraceContext.mint()
            root_span = self._tracer.begin(
                SpanKind.REQUEST, track=f"{self.name}/requests", ctx=ctx,
                function=fdef.name, client=self.name,
            )
            req_ctx = ctx.child(root_span.span_id)
        request = InvocationRequest(
            function=fdef.name, payload_bytes=payload_bytes,
            invocation_id=self.env.next_id("rfaas-invocation"),
        )
        exclude: tuple[str, ...] = ()
        resume_offset = 0.0
        t_begin = self.env.now
        deadline = None if policy.timeout_s is None else t_begin + policy.timeout_s
        first_failure: Optional[float] = None
        backoff_total = 0.0
        last_error: Optional[Exception] = None
        attempts = 0

        def finish(result: InvocationResult, outcome: RecoveryOutcome) -> DegradedResult:
            recovery = 0.0 if first_failure is None else self.env.now - first_failure
            degraded = DegradedResult(
                result=result, outcome=outcome, attempts=attempts,
                retries=max(0, attempts - 1), elapsed_s=self.env.now - t_begin,
                recovery_s=recovery, backoff_s=backoff_total, error=last_error,
            )
            if outcome is RecoveryOutcome.RECOVERED:
                self._m_recovered.inc()
                self._m_recovery_s.observe(recovery)
            elif outcome is RecoveryOutcome.GAVE_UP:
                self._m_gave_up.inc()
            elif outcome is RecoveryOutcome.TIMED_OUT:
                self._m_timeouts.inc()
            if outcome in (RecoveryOutcome.RECOVERED, RecoveryOutcome.GAVE_UP,
                           RecoveryOutcome.TIMED_OUT):
                self._tracer.instant(
                    f"recovery.{outcome.value}", track=f"{self.name}/recovery",
                    ctx=req_ctx, function=fdef.name, attempts=attempts,
                    recovery_s=recovery,
                )
            if root_span is not None:
                self._tracer.finish(
                    root_span, outcome=outcome.value, attempts=attempts,
                    status=result.status.value,
                )
            return degraded

        def timed_out() -> DegradedResult:
            nonlocal last_error
            last_error = InvocationTimeout(
                f"invocation of {fdef.name!r} exceeded {policy.timeout_s}s",
                elapsed_s=self.env.now - t_begin, attempts=attempts,
            )
            return finish(
                InvocationResult(request=request, status=InvocationStatus.TERMINATED),
                RecoveryOutcome.TIMED_OUT,
            )

        for attempt_index in range(policy.max_attempts):
            if attempt_index > 0:
                delay = policy.backoff(attempt_index, self.rng)
                if delay > 0:
                    yield self.env.timeout(delay)
                    backoff_total += delay
            if deadline is not None and self.env.now >= deadline:
                return timed_out()
            attempts += 1
            # Each attempt is one sibling span under the request root, so
            # a retry after a node crash stays inside the same trace.
            with self._tracer.span(
                SpanKind.ATTEMPT, track=f"{self.name}/requests",
                ctx=req_ctx, attempt=attempts,
            ) as attempt_span:
                if traced:
                    request = replace(
                        request, trace=req_ctx.child(attempt_span.span_id)
                    )
                try:
                    yield from self._ensure_lease(fdef, cores, exclude)
                except NoCapacityError as err:
                    last_error = err
                    attempt_span.set(outcome="rejected")
                    return finish(
                        InvocationResult(request=request, status=InvocationStatus.REJECTED),
                        RecoveryOutcome.REJECTED,
                    )
                except LeaseRevokedError as err:
                    last_error = err
                    if first_failure is None:
                        first_failure = self.env.now
                    if policy.exclude_failed_nodes and err.node_name is not None:
                        exclude = exclude + (err.node_name,)
                    self.redirects += 1
                    attempt_span.set(outcome="revoked")
                    self._note_retry("revoked", err.node_name, attempts)
                    if self._closed:
                        break
                    continue
                except ManagerUnavailableError as err:
                    # The control plane has no reachable primary right
                    # now; a standby takeover is coming, so back off and
                    # reconnect to whichever replica leads next attempt.
                    last_error = err
                    if first_failure is None:
                        first_failure = self.env.now
                    attempt_span.set(outcome="manager_down")
                    self._note_retry("manager_down", None, attempts)
                    if self._closed:
                        break
                    continue
                executor, connection = self._executor, self._connection
                if executor is None or connection is None:
                    # The lease was cancelled between setup and use (e.g. an
                    # immediate reclaim raced us); try again elsewhere.
                    if first_failure is None:
                        first_failure = self.env.now
                    self.redirects += 1
                    attempt_span.set(outcome="race")
                    self._note_retry("race", None, attempts)
                    continue
                t_start = self.env.now
                self._inflight[connection] = self._inflight.get(connection, 0) + 1
                try:
                    yield connection.send(payload_bytes)
                    network_out = self.env.now - t_start
                    if resume_offset:
                        request = replace(request, resume_offset_s=resume_offset)
                    if deadline is None:
                        result: InvocationResult = yield executor.execute(fdef, request)
                    else:
                        if deadline - self.env.now <= 0:
                            attempt_span.set(outcome="timeout")
                            return timed_out()
                        result = yield from self._execute_with_deadline(
                            executor, fdef, request, deadline
                        )
                    if result.status == InvocationStatus.REJECTED:
                        # Executor started draining between lease and dispatch.
                        if first_failure is None:
                            first_failure = self.env.now
                        if policy.exclude_failed_nodes:
                            exclude = exclude + (executor.node.name,)
                        self.redirects += 1
                        attempt_span.set(outcome="rejected")
                        self._note_retry("rejected", executor.node.name, attempts)
                        continue
                    t_back = self.env.now
                    yield connection.recv_response(result.output_bytes)
                    result.timings.network_out = network_out
                    result.timings.network_back = self.env.now - t_back
                    if self._connection is not connection:
                        # Lease was cancelled while we were in flight; the
                        # response has landed, so the old connection can go
                        # (once every other in-flight user drains off it).
                        self._stale.add(connection)
                    outcome = (RecoveryOutcome.OK if first_failure is None
                               else RecoveryOutcome.RECOVERED)
                    attempt_span.set(outcome="ok", node=result.node_name)
                    return finish(result, outcome)
                except TerminationError as term:
                    if term.cause == _TIMEOUT_CAUSE:
                        attempt_span.set(outcome="timeout")
                        return timed_out()
                    # Reclaimed mid-flight: redirect to a new lease, resuming
                    # from the checkpoint if the function supports it.
                    last_error = term
                    if first_failure is None:
                        first_failure = self.env.now
                    resume_offset = max(resume_offset, term.checkpoint_s)
                    if policy.exclude_failed_nodes:
                        exclude = exclude + (executor.node.name,)
                    self.redirects += 1
                    if self._lease is not None and not self._lease.active:
                        self._lease = None
                    attempt_span.set(outcome="termination")
                    self._note_retry("termination", executor.node.name, attempts)
                    continue
                except TransferDropped as drop:
                    # The path to the node is broken (partition / loss); the
                    # lease itself may be fine but is unreachable — give it
                    # back and redirect.
                    last_error = drop
                    if first_failure is None:
                        first_failure = self.env.now
                    self._abandon_connection(connection)
                    if policy.exclude_failed_nodes:
                        exclude = exclude + (executor.node.name,)
                    self.redirects += 1
                    attempt_span.set(outcome="dropped")
                    self._note_retry("dropped", executor.node.name, attempts)
                    continue
                finally:
                    self._release_inflight(connection)
        return finish(
            InvocationResult(request=request, status=InvocationStatus.TERMINATED),
            RecoveryOutcome.GAVE_UP,
        )

    def _execute_with_deadline(self, executor, fdef, request, deadline: float):
        """Race the execution against the policy deadline.

        On expiry the running execution is interrupted (the executor
        cleans up exactly as for a platform reclaim) and the resulting
        ``TerminationError`` carries :data:`_TIMEOUT_CAUSE` so the
        caller can tell the two apart.
        """
        exec_proc = executor.execute(fdef, request)
        timer = self.env.timeout(deadline - self.env.now)
        yield self.env.any_of([exec_proc, timer])
        if exec_proc.triggered and exec_proc.ok:
            return exec_proc.value
        if not exec_proc.triggered:
            exec_proc.interrupt(cause=_TIMEOUT_CAUSE)
        # Raises TerminationError: ours (timeout cause) or, on a tie,
        # the platform's own reclaim — both handled by the caller.
        result = yield exec_proc
        return result

    def _abandon_connection(self, connection: Connection) -> None:
        if self._connection is connection:
            if self._lease is not None and self._lease.active:
                self.manager.release_lease(self._lease)
            self._lease = None
            self._executor = None
            self._connection = None
        self._stale.add(connection)

    def _retire(self, connection: Connection) -> None:
        """Close ``connection`` now, or once its in-flight users drain."""
        if self._inflight.get(connection, 0) == 0:
            self._stale.discard(connection)
            connection.close()
        else:
            self._stale.add(connection)

    def _release_inflight(self, connection: Connection) -> None:
        remaining = self._inflight.get(connection, 0) - 1
        if remaining > 0:
            self._inflight[connection] = remaining
            return
        self._inflight.pop(connection, None)
        if connection in self._stale:
            self._stale.discard(connection)
            connection.close()

    def _note_retry(self, reason: str, node: Optional[str], attempt: int) -> None:
        counter = self._m_retries.get(reason)
        if counter is None:
            counter = self._metrics.counter(
                "repro_faults_retries_total", labels={"reason": reason},
                help="client retry attempts, by cause",
            )
            self._m_retries[reason] = counter
        counter.inc()
        self._tracer.instant(
            "recovery.retry", track=f"{self.name}/recovery",
            reason=reason, node=node, attempt=attempt,
        )
