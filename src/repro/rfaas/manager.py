"""The global rFaaS resource manager (Sec. IV-E, Fig. 6).

The manager is the integration point between the serverless platform and
the cluster:

* ``register_node`` — the single API call a batch-system integration
  makes when spare capacity appears ("B" in Fig. 6); resources are usable
  immediately, supporting capacity available only for minutes;
* ``remove_node`` — the batch manager retrieves resources ("12" in
  Fig. 6): graceful lets active invocations finish, immediate aborts them
  with *termination* replies;
* ``lease`` — clients obtain executor slices; computing, memory, and GPU
  resources are allocated and billed independently (software
  disaggregation's core property).

Placement prefers nodes that hold warm containers for the client's image,
implementing the warm-aware scheduling of Sec. IV-B.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..cluster.machine import Cluster
from ..cluster.node import Allocation, AllocationError
from ..containers.image import Image
from ..containers.runtime import SARUS, ContainerRuntime
from ..containers.warmpool import ContainerState, WarmPool
from ..network.drc import Credential, DrcManager
from ..sim.engine import Environment
from ..sim.trace import EventLog
from ..telemetry import telemetry_of
from .errors import NoCapacityError
from .executor import Executor, ExecutorMode
from .lease import Lease, LeaseState
from .load import NodeLoadRegistry

__all__ = ["ResourceManager", "RegisteredNode", "NoCapacityError"]


class RegisteredNode:
    """Book-keeping for one node's registered spare capacity."""

    def __init__(self, node_name: str, cores: int, memory_bytes: int, gpus: int,
                 executor: Executor, warm_pool: WarmPool, credential: Credential):
        self.node_name = node_name
        self.cores_total = cores
        self.memory_total = memory_bytes
        self.gpus_total = gpus
        self.cores_free = cores
        self.memory_free = memory_bytes
        self.gpus_free = gpus
        self.executor = executor
        self.warm_pool = warm_pool
        self.credential = credential
        self.leases: dict[int, tuple[Lease, Allocation]] = {}

    def fits(self, cores: int, memory_bytes: int, gpus: int) -> bool:
        return (
            cores <= self.cores_free
            and memory_bytes <= self.memory_free
            and gpus <= self.gpus_free
            and not self.executor.draining
        )


class ResourceManager:
    """Global serverless resource manager."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        loads: Optional[NodeLoadRegistry] = None,
        drc: Optional[DrcManager] = None,
        runtime: ContainerRuntime = SARUS,
        rng: Optional[np.random.Generator] = None,
        log: Optional[EventLog] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.loads = loads if loads is not None else NodeLoadRegistry(cluster)
        self.drc = drc if drc is not None else DrcManager()
        self.runtime = runtime
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.log = log if log is not None else EventLog()
        self._nodes: dict[str, RegisteredNode] = {}
        self._lease_owner: dict[int, str] = {}   # lease_id -> node_name
        # Reclaim observers: called as hook(node_name, immediate) when the
        # batch system retrieves a node.  Co-located services (the durable
        # memory service) subscribe so a graceful reclaim lets them migrate
        # state off before the memory disappears.
        self.on_remove_node: list = []
        # Telemetry: pool-level occupancy gauges and lease counters.
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_leases = metrics.counter(
            "repro_manager_leases_total", help="leases granted",
        )
        self._m_denied = metrics.counter(
            "repro_manager_lease_denied_total",
            help="lease requests denied for lack of capacity",
        )
        self._m_nodes = metrics.gauge(
            "repro_manager_registered_nodes_count",
            help="nodes currently registered as spare capacity",
        )
        self._m_free_cores = metrics.gauge(
            "repro_manager_free_cores_count",
            help="registered executor cores not held by a lease",
        )
        self._m_revoked = metrics.counter(
            "repro_manager_revoked_leases_total",
            help="leases cancelled by the platform (reclaim or fault injection)",
        )

    def _record_pool(self) -> None:
        self._m_nodes.set(len(self._nodes))
        self._m_free_cores.set(self.total_free_cores())

    # -- REST-ish integration API ------------------------------------------------
    def register_node(
        self,
        node_name: str,
        cores: int,
        memory_bytes: int,
        gpus: int = 0,
        mode: str = ExecutorMode.HOT,
        max_invocation_s: float = 30.0,
    ) -> RegisteredNode:
        """Add spare capacity to the pool; usable immediately."""
        if node_name in self._nodes:
            raise ValueError(f"node {node_name!r} already registered")
        if cores < 1:
            raise ValueError("must register >= 1 core to run the executor")
        node = self.cluster.node(node_name)
        if cores > node.free_cores or memory_bytes > node.free_memory or gpus > len(node.free_gpu_ids):
            raise AllocationError(
                f"registering more than node {node_name} has free "
                f"({cores} cores / {memory_bytes} B / {gpus} GPUs)"
            )
        warm_pool = WarmPool(self.env, node, self.runtime)
        executor = Executor(
            self.env, node, warm_pool, self.loads, cores=cores, mode=mode,
            rng=self.rng, max_invocation_s=max_invocation_s,
        )
        credential = self.drc.acquire(owner=f"executor-{node_name}")
        registered = RegisteredNode(
            node_name, cores, memory_bytes, gpus, executor, warm_pool, credential
        )
        self._nodes[node_name] = registered
        self.log.emit(self.env.now, "register_node", node=node_name, cores=cores,
                      memory=memory_bytes, gpus=gpus)
        self._record_pool()
        self._tracer.instant(
            "manager.register_node", track="manager",
            node=node_name, cores=cores, memory=memory_bytes, gpus=gpus,
        )
        return registered

    def migrate_warm_containers(self, src_node: str, dst_node: str,
                                transfer_bandwidth: float = 5e9):
        """Process: move the source pool's warm containers to another node.

        The paper's answer to memory reclamation without losing warm
        state (Sec. III-C): "function containers can be migrated to other
        nodes and swapped to the parallel filesystem."  Transfer cost is
        the containers' memory footprint over ``transfer_bandwidth``.
        Containers that do not fit on the destination fall back to the
        source pool's swap space.
        """
        src = self._nodes.get(src_node)
        dst = self._nodes.get(dst_node)
        if src is None or dst is None:
            raise KeyError("both nodes must be registered")
        if transfer_bandwidth <= 0:
            raise ValueError("transfer_bandwidth must be positive")

        def run():
            containers = src.warm_pool.export_warm()
            moved = 0
            total_bytes = 0
            for container in containers:
                try:
                    dst.warm_pool.import_container(container)
                except AllocationError:
                    # No room at the destination: swap to the PFS instead.
                    container.state = ContainerState.SWAPPED
                    src.warm_pool._swapped[container.container_id] = container
                    continue
                moved += 1
                total_bytes += container.image.runtime_memory_bytes
            if total_bytes:
                yield self.env.timeout(total_bytes / transfer_bandwidth)
            self.log.emit(self.env.now, "migrate", src=src_node, dst=dst_node,
                          containers=moved, bytes=total_bytes)
            return moved

        return self.env.process(run(), name=f"migrate-{src_node}->{dst_node}")

    def remove_node(self, node_name: str, immediate: bool = False) -> bool:
        """Batch manager retrieves the node's resources (Sec. IV-E).

        Idempotent: removing a node that is not (or no longer)
        registered is a no-op returning ``False`` — fault injection and
        failover reconciliation race against each other for the same
        victims, and the second remover must not blow up.  Returns
        ``True`` when this call actually removed the node.
        """
        registered = self._nodes.get(node_name)
        if registered is None:
            return False
        registered.executor.drain(immediate=immediate)
        for lease, _ in list(registered.leases.values()):
            lease.cancel()
            self._release(registered, lease)
        registered.warm_pool.drain()
        del self._nodes[node_name]
        self.log.emit(self.env.now, "remove_node", node=node_name, immediate=immediate)
        self._record_pool()
        self._tracer.instant(
            "manager.remove_node", track="manager",
            node=node_name, immediate=immediate,
        )
        # Tell co-located services: an immediate removal means the node
        # (and its memory) is gone *now*; a graceful one gives them this
        # instant to start evacuating hosted state.
        for hook in self.on_remove_node:
            hook(node_name, immediate)
        return True

    def registered_nodes(self) -> list[str]:
        return sorted(self._nodes)

    def registration_of(self, node_name: str) -> dict:
        """The ``register_node`` keyword arguments that would recreate
        ``node_name``'s registration — used by crash/recovery injection
        to re-register a node with identical capacity after it heals."""
        registered = self._nodes[node_name]
        return {
            "node_name": node_name,
            "cores": registered.cores_total,
            "memory_bytes": registered.memory_total,
            "gpus": registered.gpus_total,
            "mode": registered.executor.mode,
            "max_invocation_s": registered.executor.max_invocation_s,
        }

    def is_registered(self, node_name: str) -> bool:
        return node_name in self._nodes

    def node_info(self, node_name: str) -> RegisteredNode:
        return self._nodes[node_name]

    # -- leasing ---------------------------------------------------------------------
    def lease(
        self,
        client: str,
        cores: int = 1,
        memory_bytes: int = 0,
        gpus: int = 0,
        image: Optional[Image] = None,
        exclude: tuple[str, ...] = (),
    ) -> tuple[Lease, Executor]:
        """Grant a lease; prefers nodes with warm containers for ``image``."""
        candidates = [
            r for name, r in self._nodes.items()
            if name not in exclude and r.fits(cores, memory_bytes, gpus)
        ]
        if not candidates:
            self._m_denied.inc()
            raise NoCapacityError(
                f"no registered node fits {cores} cores / {memory_bytes} B / {gpus} GPUs"
            )
        if image is not None:
            warm = [
                r for r in candidates
                if image.name in r.executor._attached
                or any(c.image.name == image.name for c in r.warm_pool._warm.values())
            ]
            if warm:
                candidates = warm
        chosen = candidates[0]
        node = self.cluster.node(chosen.node_name)
        alloc = node.allocate(
            owner=f"lease-{client}",
            cores=cores,
            memory_bytes=memory_bytes,
            gpus=gpus,
            kind="function",
        )
        lease = Lease(
            client=client, node_name=chosen.node_name,
            cores=cores, memory_bytes=memory_bytes, gpus=gpus,
            lease_id=self.env.next_id("rfaas-lease"),
        )
        chosen.cores_free -= cores
        chosen.memory_free -= memory_bytes
        chosen.gpus_free -= gpus
        chosen.leases[lease.lease_id] = (lease, alloc)
        self._lease_owner[lease.lease_id] = chosen.node_name
        self.drc.grant(chosen.credential.cred_id, chosen.credential.owner, client)
        self.log.emit(self.env.now, "lease", lease_id=lease.lease_id, client=client,
                      node=chosen.node_name, cores=cores)
        self._m_leases.inc()
        self._record_pool()
        self._tracer.instant(
            "manager.lease", track="manager",
            lease_id=lease.lease_id, client=client, node=chosen.node_name,
            cores=cores,
        )
        return lease, chosen.executor

    def active_leases(self) -> list[tuple[Lease, str]]:
        """All active ``(lease, node_name)`` pairs, ordered by lease id.

        The deterministic ordering is what lets a seeded revocation
        storm (:mod:`repro.faults`) pick identical victims run to run.
        """
        out = []
        for lease_id in sorted(self._lease_owner):
            node_name = self._lease_owner[lease_id]
            registered = self._nodes.get(node_name)
            if registered is None:
                continue
            entry = registered.leases.get(lease_id)
            if entry is not None and entry[0].active:
                out.append((entry[0], node_name))
        return out

    def revoke_lease(self, lease: Lease, reason: str = "revoked") -> bool:
        """Platform-side cancellation of a single lease (Sec. III-A).

        Unlike :meth:`remove_node` the executor stays registered:
        in-flight invocations finish, but the client library is notified
        to redirect further requests to a new lease.

        Idempotent: revoking a lease that is already cancelled/released
        *and* fully unlinked from the pool is a no-op returning
        ``False`` (no double-counted metrics, no duplicate log events).
        Returns ``True`` when this call revoked or unlinked something.
        """
        node_name = self._lease_owner.get(lease.lease_id)
        if not lease.active and node_name is None:
            return False
        lease.cancel()
        self._m_revoked.inc()
        self.log.emit(self.env.now, "revoke_lease", lease_id=lease.lease_id,
                      reason=reason)
        self._tracer.instant(
            "manager.revoke_lease", track="manager",
            lease_id=lease.lease_id, reason=reason,
        )
        if node_name is None:
            return True
        registered = self._nodes.get(node_name)
        if registered is not None:
            self._release(registered, lease)
        return True

    def release_lease(self, lease: Lease) -> None:
        """Client returns a lease voluntarily."""
        node_name = self._lease_owner.get(lease.lease_id)
        if node_name is None:
            return  # already gone (e.g. node removed)
        registered = self._nodes.get(node_name)
        lease.release()
        if registered is not None:
            self._release(registered, lease)

    def _release(self, registered: RegisteredNode, lease: Lease) -> None:
        entry = registered.leases.pop(lease.lease_id, None)
        if entry is None:
            return
        _, alloc = entry
        self.cluster.node(registered.node_name).release(alloc)
        registered.cores_free += lease.cores
        registered.memory_free += lease.memory_bytes
        registered.gpus_free += lease.gpus
        self._lease_owner.pop(lease.lease_id, None)
        self._record_pool()
        self._tracer.instant(
            "manager.release_lease", track="manager",
            lease_id=lease.lease_id, node=registered.node_name,
        )

    def credential_for(self, node_name: str) -> Credential:
        return self._nodes[node_name].credential

    # -- aggregate stats -----------------------------------------------------------
    def total_registered_cores(self) -> int:
        return sum(r.cores_total for r in self._nodes.values())

    def total_free_cores(self) -> int:
        return sum(r.cores_free for r in self._nodes.values())
