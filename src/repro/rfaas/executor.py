"""The rFaaS executor: function execution on a leased slice of a node.

Two polling modes from Sec. V-A / Fig. 7:

* **hot** — the executor busy-polls its RDMA completion queue; an
  incoming invocation is picked up within a fraction of a microsecond,
  matching bare-metal libfabric round trips, at the cost of a core
  spinning;
* **warm** — the executor blocks on a completion event; the kernel wakeup
  adds tens of microseconds and more variance, but the core is free
  in the meantime.

Execution time is dilated by the node's current tenant mix through the
:class:`~repro.rfaas.load.NodeLoadRegistry` — this is where co-location
interference becomes visible to serverless users.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.node import Node
from ..containers.image import Image
from ..containers.warmpool import WarmContainer, WarmPool
from ..sim.engine import Environment, Interrupt, Process
from ..sim.resources import Resource
from ..storage.tiered import TieredFunctionStorage
from ..telemetry import SpanKind, telemetry_of
from .errors import TerminationError
from .load import NodeLoadRegistry
from .messages import InvocationRequest, InvocationResult, InvocationStatus, Timings
from .registry import FunctionDef

__all__ = ["Executor", "ExecutorMode", "TerminationError"]


class ExecutorMode:
    HOT = "hot"
    WARM = "warm"


# Dispatch-path constants (seconds), calibrated to Fig. 7's gap between
# hot and warm executors.
_HOT_DISPATCH_S = 0.3e-6
_WARM_WAKEUP_BASE_S = 8e-6
_WARM_WAKEUP_MEAN_S = 22e-6


class Executor:
    """One node's serverless executor, serving leased invocations."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        warm_pool: WarmPool,
        loads: NodeLoadRegistry,
        cores: int,
        mode: str = ExecutorMode.HOT,
        rng: Optional[np.random.Generator] = None,
        storage: Optional[TieredFunctionStorage] = None,
        max_invocation_s: float = 30.0,
    ):
        if cores < 1:
            raise ValueError("executor needs >= 1 core")
        if mode not in (ExecutorMode.HOT, ExecutorMode.WARM):
            raise ValueError(f"unknown executor mode {mode!r}")
        if max_invocation_s <= 0:
            raise ValueError("max_invocation_s must be positive")
        self.executor_id = env.next_id("rfaas-executor")
        self.env = env
        self.node = node
        self.warm_pool = warm_pool
        self.loads = loads
        self.cores = cores
        self.mode = mode
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Function storage tier (Sec. IV-D): the mounted parallel FS plus
        # the object-store warm cache; None disables I/O modeling.
        self.storage = storage if storage is not None else TieredFunctionStorage()
        # Functions must be time-limited (Sec. III-A): that is what lets
        # a temporarily-available node drain quickly for batch jobs.
        self.max_invocation_s = max_invocation_s
        self.slots = Resource(env, capacity=cores)
        self.draining = False
        # Fault-injection hook (repro.faults): a straggling executor
        # picks work up late by this factor; 1.0 = healthy.
        self.dispatch_multiplier = 1.0
        self._active: set[Process] = set()
        # Containers attached to this executor: after the first invocation
        # of an image, the function process stays resident, so subsequent
        # invocations skip sandbox acquisition entirely (true warm path).
        self._attached: dict[str, WarmContainer] = {}
        # Statistics.
        self.completed = 0
        self.rejected = 0
        self.terminated = 0
        # Telemetry: one track per executor so traces render the
        # invocation critical path as nested slices on its own lane.
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        self._track = f"{node.name}/executor-{self.executor_id}"
        labels = {"node": node.name, "mode": mode}
        metrics = telemetry.metrics
        self._m_invocations = metrics.counter(
            "repro_executor_invocations_total", labels=labels,
            help="invocations served, by final status",
        )
        self._m_rejected = metrics.counter(
            "repro_executor_rejected_total", labels=labels,
            help="invocations rejected (draining or over the time limit)",
        )
        self._m_terminated = metrics.counter(
            "repro_executor_terminated_total", labels=labels,
            help="invocations aborted by executor reclamation",
        )
        self._m_dispatch = metrics.histogram(
            "repro_executor_dispatch_seconds", labels=labels,
            help="dispatch pickup delay (hot busy-poll vs warm wakeup)",
        )
        self._m_execution = metrics.histogram(
            "repro_executor_execution_seconds", labels=labels,
            help="function body execution time under interference dilation",
        )

    # -- lifecycle ----------------------------------------------------------
    @property
    def active_invocations(self) -> int:
        return len(self._active)

    def drain(self, immediate: bool = False) -> None:
        """Stop accepting invocations; optionally abort in-flight ones.

        Graceful drain lets time-limited functions finish (Sec. III-A);
        immediate drain sends terminations (Sec. IV-E).
        """
        self.draining = True
        for container in self._attached.values():
            self.warm_pool.discard(container)
        self._attached.clear()
        if immediate:
            for proc in list(self._active):
                if proc.is_alive:
                    proc.interrupt(cause="reclaim")

    def prewarm(self, image: Image) -> None:
        """Start and park a container so the next invocation is warm."""
        result = self.warm_pool.acquire(image)
        self.warm_pool.release(result.container)

    # -- invocation path ------------------------------------------------------
    def execute(self, fdef: FunctionDef, request: InvocationRequest) -> Process:
        """Serve one invocation; the returned process yields the result.

        Rejection (draining / no registered function) is reported in-band
        via :class:`InvocationResult`; reclamation mid-flight raises
        :class:`TerminationError` out of the process, mirroring rFaaS's
        *termination* replies.
        """
        if self._tracer.enabled:
            return self.env.process(
                self._execute_traced(fdef, request),
                name=f"exec-{self.executor_id}-inv-{request.invocation_id}",
            )
        # Disabled-telemetry fast path: same control flow and rng draws,
        # but no span context managers, no metric calls, and a static
        # process name (the descriptive one is only a trace/debug aid).
        return self.env.process(self._execute_fast(fdef, request), name="exec")

    def _dispatch_delay(self) -> float:
        if self.mode == ExecutorMode.HOT:
            base = _HOT_DISPATCH_S
        else:
            base = _WARM_WAKEUP_BASE_S + float(self.rng.exponential(_WARM_WAKEUP_MEAN_S))
        return base * self.dispatch_multiplier

    def _execute_fast(self, fdef: FunctionDef, request: InvocationRequest):
        """Invocation path with telemetry compiled out.

        Must stay semantically identical to :meth:`_execute_traced` —
        the same yields, the same rng draws in the same order, the same
        results — so that traced and untraced runs produce identical
        timelines (asserted by tests/telemetry determinism tests).
        """
        if self.draining:
            self.rejected += 1
            return InvocationResult(
                request=request, status=InvocationStatus.REJECTED, node_name=self.node.name
            )
        me = self.env.active_process
        self._active.add(me)
        timings = Timings()
        load_key = f"inv-{request.invocation_id}"
        registered = False
        try:
            with self.slots.request() as slot:
                yield slot
                # 1. Dispatch pickup (polling mode dependent).
                timings.dispatch = self._dispatch_delay()
                yield self.env.timeout(timings.dispatch)
                # 2. Sandbox: attached process or warm-pool acquisition.
                container = self._attached.get(fdef.image.name)
                if container is not None:
                    kind = "attached"
                else:
                    acquired = self.warm_pool.acquire(fdef.image)
                    container = acquired.container
                    self._attached[fdef.image.name] = container
                    kind = acquired.kind
                    timings.startup = acquired.startup_cost_s
                    if timings.startup > 0:
                        yield self.env.timeout(timings.startup)
                # 3. Stage inputs through the function storage tier.
                if fdef.input_read_bytes:
                    concurrent = max(1, self.active_invocations)
                    timings.io = self.storage.read_time(
                        fdef.input_read_bytes, concurrent_readers=concurrent
                    )
                    yield self.env.timeout(timings.io)
                # 4. Execute under the node's current interference.
                self.loads.add(self.node.name, load_key, fdef.demand)
                registered = True
                slowdown = self.loads.slowdown_of(self.node.name, load_key)
                remaining = max(fdef.runtime_s - request.resume_offset_s, 0.0)
                timings.execution = remaining * slowdown
                execution_started = self.env.now
                execution_slowdown = slowdown
                if timings.execution > self.max_invocation_s:
                    self.rejected += 1
                    return InvocationResult(
                        request=request,
                        status=InvocationStatus.REJECTED,
                        node_name=self.node.name,
                    )
                if timings.execution > 0:
                    yield self.env.timeout(timings.execution)
                self.completed += 1
                return InvocationResult(
                    request=request,
                    status=InvocationStatus.OK,
                    output_bytes=fdef.output_bytes,
                    timings=timings,
                    node_name=self.node.name,
                    startup_kind=kind,
                )
        except Interrupt as intr:
            self.terminated += 1
            checkpoint = request.resume_offset_s
            if fdef.checkpointable and registered:
                elapsed = (self.env.now - execution_started) / execution_slowdown
                interval = fdef.checkpoint_interval_s
                checkpoint += (elapsed // interval) * interval
                checkpoint = min(checkpoint, fdef.runtime_s)
            raise TerminationError(
                f"invocation {request.invocation_id}: {intr.cause}",
                checkpoint_s=checkpoint,
                cause=intr.cause,
            ) from None
        finally:
            if registered:
                self.loads.remove(self.node.name, load_key)
            if self.draining:
                for attached in self._attached.values():
                    self.warm_pool.discard(attached)
                self._attached.clear()
            self._active.discard(me)

    def _execute_traced(self, fdef: FunctionDef, request: InvocationRequest):
        if self.draining:
            self.rejected += 1
            self._m_rejected.inc()
            return InvocationResult(
                request=request, status=InvocationStatus.REJECTED, node_name=self.node.name
            )
        me = self.env.active_process
        self._active.add(me)
        timings = Timings()
        load_key = f"inv-{request.invocation_id}"
        registered = False
        tracer = self._tracer
        track = self._track
        try:
            with tracer.span(
                SpanKind.INVOCATION, track=track, ctx=request.trace,
                function=fdef.name,
                invocation=request.invocation_id, mode=self.mode,
            ) as inv_span, self.slots.request() as slot:
                yield slot
                # 1. Dispatch pickup (polling mode dependent).
                with tracer.span(SpanKind.DISPATCH, track=track):
                    timings.dispatch = self._dispatch_delay()
                    yield self.env.timeout(timings.dispatch)
                self._m_dispatch.observe(timings.dispatch)
                # 2. Sandbox: an attached function process serves directly;
                #    otherwise the warm pool decides cold/warm/swap-in.
                with tracer.span(SpanKind.SANDBOX, track=track) as sandbox_span:
                    container = self._attached.get(fdef.image.name)
                    if container is not None:
                        kind = "attached"
                    else:
                        acquired = self.warm_pool.acquire(fdef.image)
                        container = acquired.container
                        self._attached[fdef.image.name] = container
                        kind = acquired.kind
                        timings.startup = acquired.startup_cost_s
                        if timings.startup > 0:
                            yield self.env.timeout(timings.startup)
                    sandbox_span.set(kind=kind)
                inv_span.set(sandbox=kind)
                # 3. Stage inputs through the function storage tier
                #    (mounted PFS / object cache, Sec. IV-D).
                if fdef.input_read_bytes:
                    with tracer.span(SpanKind.IO, track=track,
                                     bytes=fdef.input_read_bytes):
                        concurrent = max(1, self.active_invocations)
                        timings.io = self.storage.read_time(
                            fdef.input_read_bytes, concurrent_readers=concurrent
                        )
                        yield self.env.timeout(timings.io)
                # 4. Execute under the node's current interference,
                #    skipping work already checkpointed elsewhere.
                self.loads.add(self.node.name, load_key, fdef.demand)
                registered = True
                slowdown = self.loads.slowdown_of(self.node.name, load_key)
                remaining = max(fdef.runtime_s - request.resume_offset_s, 0.0)
                timings.execution = remaining * slowdown
                execution_started = self.env.now
                execution_slowdown = slowdown
                if timings.execution > self.max_invocation_s:
                    # Admission-time enforcement of the time limit: the
                    # platform never starts work it would have to kill.
                    self.rejected += 1
                    self._m_rejected.inc()
                    inv_span.set(status="rejected")
                    return InvocationResult(
                        request=request,
                        status=InvocationStatus.REJECTED,
                        node_name=self.node.name,
                    )
                with tracer.span(SpanKind.EXECUTION, track=track,
                                 slowdown=slowdown):
                    if timings.execution > 0:
                        yield self.env.timeout(timings.execution)
                self._m_execution.observe(timings.execution)
                self.completed += 1
                self._m_invocations.inc()
                inv_span.set(status="ok")
                return InvocationResult(
                    request=request,
                    status=InvocationStatus.OK,
                    output_bytes=fdef.output_bytes,
                    timings=timings,
                    node_name=self.node.name,
                    startup_kind=kind,
                )
        except Interrupt as intr:
            self.terminated += 1
            self._m_terminated.inc()
            checkpoint = request.resume_offset_s
            if fdef.checkpointable and registered:
                # Progress in nominal-runtime seconds, rounded down to the
                # last completed checkpoint.
                elapsed = (self.env.now - execution_started) / execution_slowdown
                interval = fdef.checkpoint_interval_s
                checkpoint += (elapsed // interval) * interval
                checkpoint = min(checkpoint, fdef.runtime_s)
            raise TerminationError(
                f"invocation {request.invocation_id}: {intr.cause}",
                checkpoint_s=checkpoint,
                cause=intr.cause,
            ) from None
        finally:
            if registered:
                self.loads.remove(self.node.name, load_key)
            if self.draining:
                for attached in self._attached.values():
                    self.warm_pool.discard(attached)
                self._attached.clear()
            self._active.discard(me)
