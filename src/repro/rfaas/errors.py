"""The rFaaS error taxonomy.

Every failure the platform reports to user code derives from
:class:`RFaaSError`, so callers can write one ``except`` arm for
"the platform failed me" and still discriminate when they care::

    RFaaSError(RuntimeError)
    ├── NoCapacityError       no registered node can satisfy a lease
    ├── TerminationError      invocation aborted: executor reclaimed
    │                         (carries ``checkpoint_s`` + ``cause``)
    ├── LeaseRevokedError     a lease was cancelled by the platform
    │                         before/while the client was using it
    │   └── GpuLeaseRevokedError
    │                         a fractional GPU lease (occupancy + device
    │                         memory share) was revoked — the device was
    │                         lost or reclaimed; queued/batched work
    │                         replays on a surviving device (carries
    │                         ``device`` + ``cause``)
    ├── InvocationTimeout     the client-side invocation deadline
    │                         (``RetryPolicy.timeout_s``) elapsed
    ├── AdmissionRejected     the capacity plane's admission gate said
    │                         no before any resources were touched
    │                         (carries ``reason`` + ``tenant``)
    ├── ManagerUnavailableError
    │                         the resource manager has no reachable
    │                         primary replica (it crashed, or the
    │                         client's side of a partition): no lease
    │                         can be granted *right now*, but a standby
    │                         takeover is coming — retryable with
    │                         backoff (carries ``epoch`` + ``cause``)
    ├── StaleEpochError       a fenced ex-primary tried to mutate
    │                         control-plane state after a failover
    │                         bumped the epoch past it; the operation
    │                         was rejected before touching anything
    │                         (carries ``epoch`` + ``current_epoch``)
    ├── MemoryServiceUnavailable
    │                         a memory-service buffer (or a replica
    │                         quorum) is gone: reclaimed, crashed, or
    │                         unreachable (carries ``node_name`` +
    │                         ``cause``) — retryable against another
    │                         replica when one exists
    └── DataLossError         every replica of a memory-service chunk is
                              gone or fails checksum verification; the
                              bytes are unrecoverable (carries ``chunk``
                              + ``replicas_lost``)

``NoCapacityError`` and ``TerminationError`` predate this module and are
re-exported from their historical homes (``repro.rfaas.manager`` and
``repro.rfaas.executor``) so existing imports keep working.

Semantics under recovery (see :mod:`repro.faults.recovery`): the client
treats ``TerminationError`` and ``LeaseRevokedError`` as *retryable* —
the work can redirect to a fresh lease on another node — while
``NoCapacityError`` and ``InvocationTimeout`` terminate the attempt loop
(there is nowhere else to go / no time left to go there).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "RFaaSError",
    "NoCapacityError",
    "TerminationError",
    "LeaseRevokedError",
    "GpuLeaseRevokedError",
    "InvocationTimeout",
    "AdmissionRejected",
    "ManagerUnavailableError",
    "StaleEpochError",
    "MemoryServiceUnavailable",
    "DataLossError",
]


class RFaaSError(RuntimeError):
    """Base class of every rFaaS platform error."""


class NoCapacityError(RFaaSError):
    """No registered node can satisfy the lease request."""


class TerminationError(RFaaSError):
    """Invocation aborted because the executor was reclaimed.

    ``checkpoint_s`` carries the nominal-runtime seconds already completed
    and checkpointed (0 for non-checkpointable functions): the client
    library resumes from there on its redirect target.  ``cause`` names
    what interrupted the invocation (e.g. ``"reclaim"``, or the fault
    kind injected by :class:`repro.faults.Injector`).
    """

    def __init__(self, message: str, checkpoint_s: float = 0.0, cause: Any = "reclaim"):
        super().__init__(message)
        self.checkpoint_s = checkpoint_s
        self.cause = cause


class LeaseRevokedError(RFaaSError):
    """The platform cancelled a lease the client was still setting up or
    using; the client library redirects to a fresh lease elsewhere."""

    def __init__(self, message: str, node_name: Optional[str] = None):
        super().__init__(message)
        self.node_name = node_name


class GpuLeaseRevokedError(LeaseRevokedError):
    """A fractional GPU lease was revoked by the platform.

    GPU leases grant MPS-style *shares* of one device — an SM occupancy
    fraction plus a device-memory reservation — so revocation means the
    device itself was lost or reclaimed, not just one client's slot.
    ``device`` names the accelerator (``node_name`` keeps naming its
    host); ``cause`` says why (``"gpu_device_loss"``, ``"reclaim"``).
    Like its parent, it is *retryable*: the GPU service replays queued
    and in-flight batched invocations on a surviving device.
    """

    def __init__(self, message: str, node_name: Optional[str] = None,
                 device: Optional[str] = None, cause: Any = "reclaim"):
        super().__init__(message, node_name=node_name)
        self.device = device
        self.cause = cause


class InvocationTimeout(RFaaSError):
    """The client-side per-invocation deadline elapsed across retries."""

    def __init__(self, message: str, elapsed_s: float = 0.0, attempts: int = 0):
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.attempts = attempts


class AdmissionRejected(RFaaSError):
    """The admission controller refused the invocation up front.

    Explicit backpressure from the capacity plane (:mod:`repro.capacity`):
    no lease was attempted and no resources were touched.  ``reason`` is
    ``"queue_full"`` (bounded admission queue at depth) or ``"timeout"``
    (queued past the configured wait bound); ``tenant`` names whose quota
    the request was charged against.
    """

    def __init__(self, message: str, reason: str = "queue_full",
                 tenant: Optional[str] = None):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class ManagerUnavailableError(RFaaSError):
    """The resource manager has no reachable primary replica.

    Raised by the replicated control plane (:mod:`repro.controlplane`)
    when a front-door operation — lease, register, revoke — arrives
    while the primary is crashed or on the wrong side of a partition
    and no standby has taken over yet.  The condition is *transient*
    by construction: the failure detector elects a standby within its
    detection timeout (or, with zero standbys, a restarted primary
    eventually rejoins), so the client library treats this as
    retryable with backoff.  ``epoch`` snapshots the control-plane
    epoch at rejection time; ``cause`` says why the primary was out of
    reach (``"crash"``, ``"partition"``).
    """

    def __init__(self, message: str, epoch: int = 0, cause: Any = "crash"):
        super().__init__(message)
        self.epoch = epoch
        self.cause = cause


class StaleEpochError(RFaaSError):
    """A fenced ex-primary attempted a mutation after losing its term.

    The split-brain guard of the replicated control plane: every
    mutation is fenced on the issuing replica's epoch, so an ex-primary
    that was partitioned away while a standby took over (bumping the
    epoch) gets its writes rejected *before* any state changes — it can
    observe, step down, and resync, but never double-grant.  ``epoch``
    is the stale issuer's term; ``current_epoch`` the cluster's.
    """

    def __init__(self, message: str, epoch: int = 0, current_epoch: int = 0):
        super().__init__(message)
        self.epoch = epoch
        self.current_epoch = current_epoch


class MemoryServiceUnavailable(RFaaSError):
    """A memory-service buffer cannot serve the access.

    Raised when the hosted buffer is inactive (the batch system reclaimed
    the memory, the host crashed, or the service was stopped) or when a
    replicated write cannot reach its quorum.  ``node_name`` names the
    host that failed (None when the failure is quorum-wide); ``cause``
    says why (``"inactive"``, ``"quorum"``, ``"partition"``, or the
    injected fault kind).  Distinguishing this from a plain
    ``RuntimeError`` lets clients treat reclaim as *retryable* — the
    durable client fails over to the next replica — while programmer
    errors (out-of-bounds offsets) stay ``ValueError``.
    """

    def __init__(self, message: str, node_name: Optional[str] = None,
                 cause: Any = "inactive"):
        super().__init__(message)
        self.node_name = node_name
        self.cause = cause


class DataLossError(RFaaSError):
    """Every replica of a memory-service chunk is gone or corrupt.

    The terminal failure of the durable memory service: after replica
    failover exhausted all copies of chunk ``chunk`` — each either
    destroyed with its host or rejected by checksum/epoch verification
    (``replicas_lost`` counts them) — the data is unrecoverable.  Only
    reachable when faults outpace the replication factor (e.g. k=1, or
    every replica's host lost inside one repair interval).
    """

    def __init__(self, message: str, chunk: int = -1, replicas_lost: int = 0):
        super().__init__(message)
        self.chunk = chunk
        self.replicas_lost = replicas_lost
