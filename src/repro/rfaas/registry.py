"""Function registry with registration-time profiling (Sec. III-E).

"When registering a new code container, the function can be profiled
using user-provided or synthetic input data."  Registration stores the
function's container image, resource demand (user-declared or recovered
from counter sampling), and a runtime estimate used by both the placement
policy and the LogP offloading planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..containers.image import Image
from ..interference.counters import CounterProfile, sample_counters
from ..interference.model import ResourceDemand

__all__ = ["FunctionDef", "FunctionRegistry"]


@dataclass(frozen=True)
class FunctionDef:
    """A registered serverless function."""

    name: str
    image: Image
    demand: ResourceDemand
    runtime_s: float              # estimated execution time per invocation
    output_bytes: int = 1024
    needs_gpu: bool = False
    # Memory the invocation itself needs beyond the container runtime.
    memory_bytes: int = 0
    # Input data staged through the function storage tier per invocation
    # (the mounted parallel FS / object-store cache of Sec. IV-D).
    input_read_bytes: int = 0
    # Functions "are very easy to checkpoint" (Sec. III): when enabled,
    # a terminated invocation resumes from its last checkpoint on the
    # redirect target instead of restarting.
    checkpointable: bool = False
    checkpoint_interval_s: float = 0.5

    def __post_init__(self):
        if self.runtime_s < 0:
            raise ValueError("runtime estimate must be non-negative")
        if self.output_bytes < 0 or self.memory_bytes < 0 or self.input_read_bytes < 0:
            raise ValueError("sizes must be non-negative")
        if self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")


class FunctionRegistry:
    """Named function definitions plus profiling support."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._functions: dict[str, FunctionDef] = {}
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def register(
        self,
        name: str,
        image: Image,
        runtime_s: float,
        demand: Optional[ResourceDemand] = None,
        output_bytes: int = 1024,
        needs_gpu: bool = False,
        memory_bytes: int = 0,
        input_read_bytes: int = 0,
        checkpointable: bool = False,
        checkpoint_interval_s: float = 0.5,
    ) -> FunctionDef:
        """Register a function; profiles the demand vector if not supplied.

        Users are incentivized to declare demand (lower prices, Sec.
        III-E); otherwise the platform runs a synthetic-input profiling
        pass — modeled here by sampling counters for a default profile
        and recovering the demand from them.
        """
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        if demand is None:
            demand = self._profile(cores=1)
        fdef = FunctionDef(
            name=name, image=image, demand=demand, runtime_s=runtime_s,
            output_bytes=output_bytes, needs_gpu=needs_gpu, memory_bytes=memory_bytes,
            input_read_bytes=input_read_bytes,
            checkpointable=checkpointable, checkpoint_interval_s=checkpoint_interval_s,
        )
        self._functions[name] = fdef
        return fdef

    def _profile(self, cores: int) -> ResourceDemand:
        # Synthetic-input profiling: assume a middle-of-the-road function
        # and measure it. The counters pipeline adds realistic noise.
        assumed = ResourceDemand(cores=cores, membw=2e9, llc_bytes=4 << 20, frac_membw=0.25)
        samples = sample_counters(assumed, self._rng, windows=20)
        return CounterProfile.from_samples(samples).to_demand(llc_bytes=assumed.llc_bytes)

    def lookup(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} not registered") from None

    def names(self) -> list[str]:
        return sorted(self._functions)
