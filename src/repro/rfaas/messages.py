"""Protocol messages and invocation records of the rFaaS platform."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.context import TraceContext

__all__ = ["InvocationStatus", "InvocationRequest", "InvocationResult", "Timings"]

_invocation_ids = itertools.count(1)


class InvocationStatus(enum.Enum):
    OK = "ok"
    TERMINATED = "terminated"        # executor reclaimed mid-flight
    REJECTED = "rejected"            # no capacity / draining executor
    FAILED = "failed"                # function raised


@dataclass(frozen=True)
class InvocationRequest:
    """One function invocation as it travels to an executor."""

    function: str
    payload_bytes: int
    # Module-global fallback for bare construction (tests); the client
    # passes env.next_id("rfaas-invocation") so ids are per-environment.
    invocation_id: int = field(default_factory=lambda: next(_invocation_ids))
    # Completed work (seconds of nominal runtime) restored from a
    # checkpoint after a termination; 0 = fresh start.
    resume_offset_s: float = 0.0
    # Causal trace identity carried across the client -> executor hop;
    # None when telemetry is off (the common case) or for bare sends.
    trace: Optional[TraceContext] = field(default=None, compare=False)

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if self.resume_offset_s < 0:
            raise ValueError("resume offset must be non-negative")


@dataclass
class Timings:
    """Latency breakdown of one invocation (all seconds)."""

    network_out: float = 0.0
    dispatch: float = 0.0       # executor wakeup / polling pickup
    startup: float = 0.0        # container acquire (cold/warm/swapped)
    io: float = 0.0             # input staging through function storage
    execution: float = 0.0
    network_back: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.network_out + self.dispatch + self.startup
            + self.io + self.execution + self.network_back
        )


@dataclass
class InvocationResult:
    request: InvocationRequest
    status: InvocationStatus
    output_bytes: int = 0
    timings: Timings = field(default_factory=Timings)
    node_name: Optional[str] = None
    startup_kind: Optional[str] = None   # "warm" | "swapped" | "cold"

    @property
    def ok(self) -> bool:
        return self.status == InvocationStatus.OK
