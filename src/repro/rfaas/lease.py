"""Leases: rFaaS's ephemeral resource allocation mechanism.

rFaaS "allows consecutive invocations to execute on the same resource
allocated with a temporary lease" (Sec. IV).  When the batch system wants
a node back, the executor "cancels existing leases, notifying the client
libraries to redirect further requests to a new lease" (Sec. III-A) —
that notification is the ``on_cancel`` callback here.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["LeaseState", "Lease"]

_lease_ids = itertools.count(1)


class LeaseState(enum.Enum):
    ACTIVE = "active"
    CANCELLED = "cancelled"     # platform reclaimed the resources
    RELEASED = "released"       # client returned the lease


@dataclass
class Lease:
    """A client's temporary claim on executor resources."""

    client: str
    node_name: str
    cores: int
    memory_bytes: int
    gpus: int = 0
    # Module-global fallback for bare construction (tests); the manager
    # passes env.next_id("rfaas-lease") so ids are per-environment.
    lease_id: int = field(default_factory=lambda: next(_lease_ids))
    # Control-plane term the grant was fenced under.  0 = granted by a
    # bare (unreplicated) ResourceManager; the replicated control plane
    # (repro.controlplane) stamps its current epoch so takeover
    # reconciliation can tell surviving grants from stale ones.
    epoch: int = 0
    state: LeaseState = LeaseState.ACTIVE
    on_cancel: list[Callable[["Lease"], None]] = field(default_factory=list)

    def __post_init__(self):
        if self.cores < 0 or self.memory_bytes < 0 or self.gpus < 0:
            raise ValueError("lease resources must be non-negative")
        if self.cores == 0 and self.memory_bytes == 0 and self.gpus == 0:
            raise ValueError("empty lease")

    @property
    def active(self) -> bool:
        return self.state == LeaseState.ACTIVE

    def cancel(self) -> None:
        """Platform-side revocation; notifies the client library."""
        if self.state != LeaseState.ACTIVE:
            return
        self.state = LeaseState.CANCELLED
        for callback in list(self.on_cancel):
            callback(self)

    def release(self) -> None:
        """Client-side voluntary return."""
        if self.state != LeaseState.ACTIVE:
            return
        self.state = LeaseState.RELEASED
