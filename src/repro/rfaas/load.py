"""Per-node load registry: who is consuming what, right now.

The interference model needs the full tenant mix of a node to compute a
slowdown.  Batch jobs, running invocations, and background RDMA streams
(memory-service traffic) all register their demand vectors here; the
executor queries the registry at invocation start to dilate execution
time.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.machine import Cluster
from ..interference.model import InterferenceModel, ResourceDemand

__all__ = ["NodeLoadRegistry"]


class NodeLoadRegistry:
    """Tracks active demand vectors and background traffic per node."""

    def __init__(self, cluster: Cluster, model: Optional[InterferenceModel] = None):
        self.cluster = cluster
        self.model = model if model is not None else InterferenceModel()
        self._demands: dict[str, dict[str, ResourceDemand]] = {}
        self._extra_netbw: dict[str, float] = {}
        self._extra_membw: dict[str, float] = {}

    # -- registration ---------------------------------------------------------
    def add(self, node_name: str, key: str, demand: ResourceDemand) -> None:
        if node_name not in self.cluster:
            raise KeyError(f"unknown node {node_name!r}")
        node_map = self._demands.setdefault(node_name, {})
        if key in node_map:
            raise ValueError(f"duplicate load key {key!r} on {node_name}")
        node_map[key] = demand

    def remove(self, node_name: str, key: str) -> None:
        node_map = self._demands.get(node_name, {})
        if key not in node_map:
            raise KeyError(f"load key {key!r} not on {node_name}")
        del node_map[key]

    def add_background_traffic(self, node_name: str, netbw: float = 0.0, membw: float = 0.0) -> None:
        """Register anonymous traffic (e.g. inbound RDMA streams)."""
        if node_name not in self.cluster:
            raise KeyError(f"unknown node {node_name!r}")
        self._extra_netbw[node_name] = self._extra_netbw.get(node_name, 0.0) + netbw
        self._extra_membw[node_name] = self._extra_membw.get(node_name, 0.0) + membw

    def clear_background_traffic(self, node_name: str) -> None:
        self._extra_netbw.pop(node_name, None)
        self._extra_membw.pop(node_name, None)

    # -- queries ------------------------------------------------------------------
    def demands(self, node_name: str) -> dict[str, ResourceDemand]:
        return dict(self._demands.get(node_name, {}))

    def tenant_count(self, node_name: str) -> int:
        return len(self._demands.get(node_name, {}))

    def slowdowns(self, node_name: str) -> dict[str, float]:
        """Current slowdown of every tenant on the node."""
        node_map = self._demands.get(node_name, {})
        if not node_map:
            return {}
        keys = list(node_map)
        spec = self.cluster.node(node_name).spec
        values = self.model.slowdowns(
            spec,
            [node_map[k] for k in keys],
            extra_netbw=self._extra_netbw.get(node_name, 0.0),
            extra_membw=self._extra_membw.get(node_name, 0.0),
        )
        return dict(zip(keys, values))

    def slowdown_of(self, node_name: str, key: str) -> float:
        slowdowns = self.slowdowns(node_name)
        if key not in slowdowns:
            raise KeyError(f"load key {key!r} not on {node_name}")
        return slowdowns[key]

    def preview_slowdown(self, node_name: str, demand: ResourceDemand) -> dict[str, float]:
        """What slowdowns *would* be if ``demand`` joined the node.

        Used by placement policy to refuse harmful co-locations before
        they happen.  Returns existing keys plus ``"<candidate>"``.
        """
        node_map = self._demands.get(node_name, {})
        keys = list(node_map) + ["<candidate>"]
        spec = self.cluster.node(node_name).spec
        values = self.model.slowdowns(
            spec,
            [node_map[k] for k in node_map] + [demand],
            extra_netbw=self._extra_netbw.get(node_name, 0.0),
            extra_membw=self._extra_membw.get(node_name, 0.0),
        )
        return dict(zip(keys, values))
