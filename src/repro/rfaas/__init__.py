"""HPC-specialized serverless platform (rFaaS model)."""

from .client import RFaaSClient
from .executor import Executor, ExecutorMode, TerminationError
from .lease import Lease, LeaseState
from .load import NodeLoadRegistry
from .manager import NoCapacityError, RegisteredNode, ResourceManager
from .messages import InvocationRequest, InvocationResult, InvocationStatus, Timings
from .registry import FunctionDef, FunctionRegistry

__all__ = [
    "RFaaSClient",
    "Executor",
    "ExecutorMode",
    "TerminationError",
    "Lease",
    "LeaseState",
    "NodeLoadRegistry",
    "NoCapacityError",
    "RegisteredNode",
    "ResourceManager",
    "InvocationRequest",
    "InvocationResult",
    "InvocationStatus",
    "Timings",
    "FunctionDef",
    "FunctionRegistry",
]
