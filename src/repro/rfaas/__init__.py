"""HPC-specialized serverless platform (rFaaS model)."""

from .client import RFaaSClient
from .errors import (
    AdmissionRejected,
    DataLossError,
    GpuLeaseRevokedError,
    InvocationTimeout,
    LeaseRevokedError,
    ManagerUnavailableError,
    MemoryServiceUnavailable,
    NoCapacityError,
    RFaaSError,
    StaleEpochError,
    TerminationError,
)
from .executor import Executor, ExecutorMode
from .lease import Lease, LeaseState
from .load import NodeLoadRegistry
from .manager import RegisteredNode, ResourceManager
from .messages import InvocationRequest, InvocationResult, InvocationStatus, Timings
from .registry import FunctionDef, FunctionRegistry

__all__ = [
    "RFaaSClient",
    "Executor",
    "ExecutorMode",
    "RFaaSError",
    "TerminationError",
    "LeaseRevokedError",
    "GpuLeaseRevokedError",
    "InvocationTimeout",
    "AdmissionRejected",
    "ManagerUnavailableError",
    "StaleEpochError",
    "MemoryServiceUnavailable",
    "DataLossError",
    "Lease",
    "LeaseState",
    "NodeLoadRegistry",
    "NoCapacityError",
    "RegisteredNode",
    "ResourceManager",
    "InvocationRequest",
    "InvocationResult",
    "InvocationStatus",
    "Timings",
    "FunctionDef",
    "FunctionRegistry",
]
