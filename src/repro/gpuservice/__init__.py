"""GPU disaggregation control plane: leases, batching, warm pools, recovery.

Brings the accelerator path up to parity with the CPU serverless path
(see ``docs/gpu.md``): fractional MPS-style leases
(:class:`GpuLeaseManager`), invocation batching into coalesced kernel
launches (:class:`GpuBatcher`), forecast-driven warm-context
autoscaling (:class:`GpuWarmPoolAutoscaler`), and device-loss recovery
(``FaultPlan.gpu_device_loss`` → lease revocation → batch replay on
surviving devices).  Built by ``Platform.build(gpu=...)``.
"""

from .autoscale import GpuWarmPoolAutoscaler
from .batcher import BatchPolicy, GpuBatcher
from .lease import GpuLease, GpuLeaseManager, GpuLeaseState
from .service import GpuRequest, GpuService, GpuServiceConfig

__all__ = [
    "BatchPolicy",
    "GpuBatcher",
    "GpuLease",
    "GpuLeaseManager",
    "GpuLeaseState",
    "GpuRequest",
    "GpuService",
    "GpuServiceConfig",
    "GpuWarmPoolAutoscaler",
]
