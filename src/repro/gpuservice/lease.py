"""Fractional GPU leases: MPS-style occupancy + device-memory shares.

The CPU path leases whole cores through :class:`~repro.rfaas.Lease`;
accelerators are too expensive to hand out whole, so the GPU control
plane leases *fractions* of a device — an SM occupancy share (the MPS
active-thread-percentage knob) plus a device-memory share.  A
:class:`GpuLease` is the unit of both placement (batches for a function
run on its leased device) and reclamation (device loss revokes the
lease with :class:`~repro.rfaas.GpuLeaseRevokedError`, and the service
replays the function's in-flight batches on a surviving device).

The :class:`GpuLeaseManager` is deterministic by construction: grants
pick the least-committed eligible device with the device name as the
tie-break, so no RNG stream is consumed — same registrations + same
grant order ⇒ the same placement, always.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..gpu.device import GpuDevice
from ..rfaas.errors import GpuLeaseRevokedError, NoCapacityError
from ..sim.engine import Environment
from ..telemetry import telemetry_of

__all__ = ["GpuLease", "GpuLeaseState", "GpuLeaseManager"]


class GpuLeaseState:
    """Lifecycle of a fractional lease."""

    ACTIVE = "active"
    RELEASED = "released"
    REVOKED = "revoked"


class GpuLease:
    """A fractional share of one device: SM occupancy + device memory."""

    __slots__ = (
        "lease_id", "function", "node", "device", "occupancy",
        "memory_bytes", "granted_at", "state", "revoked_cause", "_on_revoke",
    )

    def __init__(
        self,
        lease_id: int,
        function: str,
        node: str,
        device: str,
        occupancy: float,
        memory_bytes: int,
        granted_at: float,
    ):
        self.lease_id = lease_id
        self.function = function
        self.node = node
        self.device = device
        self.occupancy = occupancy
        self.memory_bytes = memory_bytes
        self.granted_at = granted_at
        self.state = GpuLeaseState.ACTIVE
        self.revoked_cause: Any = None
        self._on_revoke: list[Callable[["GpuLease"], None]] = []

    @property
    def is_active(self) -> bool:
        return self.state == GpuLeaseState.ACTIVE

    def on_revoke(self, callback: Callable[["GpuLease"], None]) -> None:
        """Register a callback fired (once) when the lease is revoked."""
        self._on_revoke.append(callback)

    def error(self) -> GpuLeaseRevokedError:
        """The error carried by work that was riding this lease."""
        return GpuLeaseRevokedError(
            f"gpu lease {self.lease_id} ({self.function} on {self.device}) "
            f"revoked: {self.revoked_cause}",
            node_name=self.node,
            device=self.device,
            cause=self.revoked_cause,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GpuLease {self.lease_id} {self.function}@{self.device} "
            f"occ={self.occupancy:.2f} {self.state}>"
        )


class GpuLeaseManager:
    """Grants and reclaims fractional shares of a registered device fleet."""

    def __init__(self, env: Environment, max_occupancy: float = 1.0):
        if max_occupancy <= 0:
            raise ValueError("max_occupancy must be positive")
        self.env = env
        self.max_occupancy = max_occupancy
        self._devices: dict[str, tuple[GpuDevice, str]] = {}  # name -> (dev, node)
        self._active: dict[str, list[GpuLease]] = {}          # device -> leases
        self.granted = 0
        self.revoked = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_granted = metrics.counter(
            "repro_gpu_leases_granted_total",
            help="fractional GPU leases granted",
        )
        self._m_revoked = metrics.counter(
            "repro_gpu_leases_revoked_total",
            help="fractional GPU leases revoked by the platform",
        )

    # -- fleet ----------------------------------------------------------------
    def add_device(self, device: GpuDevice, node: str) -> None:
        if device.name in self._devices:
            raise ValueError(f"duplicate device {device.name!r}")
        self._devices[device.name] = (device, node)
        self._active.setdefault(device.name, [])

    def remove_device(self, name: str, cause: Any = "reclaim") -> list[GpuLease]:
        """Drop a device from the fleet, revoking every lease on it."""
        self._devices.pop(name, None)
        victims = self._active.pop(name, [])
        for lease in list(victims):
            self._revoke(lease, cause)
        return victims

    def devices(self) -> list[str]:
        """Registered device names, sorted (the deterministic grant order)."""
        return sorted(self._devices)

    def device_of(self, name: str) -> GpuDevice:
        return self._devices[name][0]

    def node_of(self, name: str) -> str:
        return self._devices[name][1]

    # -- accounting -----------------------------------------------------------
    def committed_occupancy(self, name: str) -> float:
        return sum(l.occupancy for l in self._active.get(name, ()))

    def committed_memory(self, name: str) -> int:
        return sum(l.memory_bytes for l in self._active.get(name, ()))

    def leases_on(self, name: str) -> tuple[GpuLease, ...]:
        return tuple(self._active.get(name, ()))

    def active_leases(self) -> list[GpuLease]:
        return [l for name in sorted(self._active) for l in self._active[name]]

    # -- grant / release / revoke ---------------------------------------------
    def grant(
        self,
        function: str,
        occupancy: float,
        memory_bytes: int,
        node: Optional[str] = None,
    ) -> GpuLease:
        """Lease a fractional share on the least-committed eligible device.

        Eligibility = the occupancy share fits under ``max_occupancy``
        and the memory share fits in device memory alongside existing
        leases.  Ties break on device name; no randomness is consumed.
        """
        if not 0 < occupancy <= self.max_occupancy:
            raise ValueError("occupancy must be in (0, max_occupancy]")
        if memory_bytes < 1:
            raise ValueError("memory share must be positive")
        best: Optional[str] = None
        best_load = float("inf")
        for name in sorted(self._devices):
            device, host = self._devices[name]
            if node is not None and host != node:
                continue
            load = self.committed_occupancy(name)
            if load + occupancy > self.max_occupancy:
                continue
            if self.committed_memory(name) + memory_bytes > device.spec.memory_bytes:
                continue
            if load < best_load:
                best, best_load = name, load
        if best is None:
            raise NoCapacityError(
                f"no GPU device can host {function!r} "
                f"(occupancy={occupancy}, memory={memory_bytes})"
            )
        lease = GpuLease(
            lease_id=self.env.next_id("gpu-lease"),
            function=function,
            node=self._devices[best][1],
            device=best,
            occupancy=occupancy,
            memory_bytes=memory_bytes,
            granted_at=self.env.now,
        )
        self._active[best].append(lease)
        self.granted += 1
        self._m_granted.inc()
        self._tracer.instant(
            "gpu.lease.granted", track="gpu",
            lease=lease.lease_id, function=function, device=best,
            occupancy=occupancy,
        )
        return lease

    def release(self, lease: GpuLease) -> None:
        """Voluntary hand-back; no error, no callbacks."""
        if not lease.is_active:
            return
        lease.state = GpuLeaseState.RELEASED
        active = self._active.get(lease.device)
        if active and lease in active:
            active.remove(lease)

    def revoke(self, lease: GpuLease, cause: Any = "reclaim") -> None:
        """Platform-initiated reclamation of one lease."""
        if not lease.is_active:
            return
        active = self._active.get(lease.device)
        if active and lease in active:
            active.remove(lease)
        self._revoke(lease, cause)

    def _revoke(self, lease: GpuLease, cause: Any) -> None:
        lease.state = GpuLeaseState.REVOKED
        lease.revoked_cause = cause
        self.revoked += 1
        self._m_revoked.inc()
        self._tracer.instant(
            "gpu.lease.revoked", track="gpu",
            lease=lease.lease_id, function=lease.function,
            device=lease.device, cause=str(cause),
        )
        callbacks, lease._on_revoke = lease._on_revoke, []
        for callback in callbacks:
            callback(lease)
