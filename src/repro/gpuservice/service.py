"""The GPU disaggregation control plane (accelerator parity, Sec. III-D).

The CPU path got leases, warm pools, autoscaling, and fault recovery;
this module gives accelerators the same treatment:

* **fractional leases** — functions hold MPS-style occupancy +
  device-memory shares through :class:`~repro.gpuservice.GpuLeaseManager`;
* **invocation batching** — queued inference invocations coalesce into
  batched kernel launches (:class:`~repro.gpuservice.GpuBatcher`), the
  throughput trick of kernel-as-a-service backends: per-launch fixed
  costs amortize across the batch, so device time per request falls as
  ``T(B)/B`` with ``T(B) = setup + K·(launch + kernel·(1+(B−1)·m))``,
  ``m < 1`` the marginal cost of one more batch element;
* **warm device contexts** — a prewarmed (device, function) pair has
  its CUDA context initialized and its dataset resident
  (``GpuDevice.keep_warm``), so batches skip context setup and the
  host-to-device weight transfer; the
  :class:`~repro.gpuservice.GpuWarmPoolAutoscaler` prewarms ahead of
  forecast demand;
* **fault recovery** — ``FaultPlan.gpu_device_loss`` revokes the lost
  devices' leases (:class:`~repro.rfaas.GpuLeaseRevokedError`), and the
  service replays queued *and* in-flight batched invocations on
  surviving devices, billing the wasted attempts through
  :class:`~repro.disagg.billing.FunctionBill`.

Tracing: every submission opens a ``gpu.request`` root span; each
coalesced launch records one ``gpu.batch`` span with one
``gpu.batch.item`` child per request, stamped with the *request's*
``trace_id`` — so a request's causal trace spans submission →
(revocation → replay …) → completion even when it hops devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..capacity.autoscaler import AutoscalerConfig
from ..capacity.forecast import DemandForecaster
from ..cluster.machine import Cluster
from ..cluster.specs import GpuSpec, P100
from ..disagg.billing import FunctionBill
from ..faults.plan import FaultKind
from ..gpu.device import GpuDevice, GpuMemoryError
from ..gpu.gpu_function import GpuFunctionSpec
from ..rfaas.errors import GpuLeaseRevokedError, NoCapacityError
from ..sim.engine import Environment, Event, Interrupt, Process
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext
from ..telemetry.span import SpanKind
from .batcher import BatchPolicy, GpuBatcher
from .lease import GpuLease, GpuLeaseManager

__all__ = ["GpuServiceConfig", "GpuRequest", "GpuService"]


@dataclass(frozen=True)
class GpuServiceConfig:
    """Shape and cost model of the GPU fleet."""

    #: Host node names; empty = the first ``gpu_nodes`` cluster nodes.
    hosts: tuple[str, ...] = ()
    #: Number of hosting nodes when ``hosts`` is empty.
    gpu_nodes: int = 2
    #: Devices attached to each hosting node.
    devices_per_host: int = 1
    gpu_spec: GpuSpec = P100
    policy: BatchPolicy = BatchPolicy()
    #: Warm-pool autoscaling config; None = no control loop.
    autoscale: Optional[AutoscalerConfig] = None
    pcie_bandwidth: float = 12e9
    #: Cold cost of initializing a device context for a function.
    context_setup_s: float = 0.005
    #: Fixed cost of dispatching one batched launch.
    setup_s: float = 150e-6
    #: Per-kernel launch overhead inside a batch.
    launch_overhead_s: float = 20e-6
    #: Marginal kernel-time cost of one more batch element (< 1 is the
    #: whole point of batching).
    batch_marginal: float = 0.15
    #: Replay attempts per request before it fails with the lease error.
    max_replays: int = 3

    def __post_init__(self):
        if not self.hosts and self.gpu_nodes < 1:
            raise ValueError("need at least one GPU host")
        if self.devices_per_host < 1:
            raise ValueError("devices_per_host must be >= 1")
        if self.pcie_bandwidth <= 0:
            raise ValueError("pcie_bandwidth must be positive")
        if min(self.context_setup_s, self.setup_s, self.launch_overhead_s) < 0:
            raise ValueError("negative cost parameter")
        if not 0 <= self.batch_marginal <= 1:
            raise ValueError("batch_marginal must be in [0, 1]")
        if self.max_replays < 0:
            raise ValueError("max_replays must be non-negative")


class GpuRequest:
    """One submitted GPU invocation; resolve by yielding ``done``."""

    __slots__ = ("req_id", "function", "submitted_at", "ctx", "done",
                 "attempts", "span")

    def __init__(self, req_id: int, function: str, submitted_at: float,
                 ctx: TraceContext, done: Event, span):
        self.req_id = req_id
        self.function = function
        self.submitted_at = submitted_at
        self.ctx = ctx
        self.done = done
        self.attempts = 0
        self.span = span


class _Slot:
    """One attached device: identity, liveness, warm (function) contexts."""

    __slots__ = ("device", "node", "online", "warm", "inflight")

    def __init__(self, device: GpuDevice, node: str):
        self.device = device
        self.node = node
        self.online = True
        self.warm: set[str] = set()
        self.inflight: set[Process] = set()


class GpuService:
    """Leases, batches, prewarms, and heals a fleet of GPU devices."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        config: Optional[GpuServiceConfig] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.config = config or GpuServiceConfig()
        hosts = self.config.hosts
        if not hosts:
            names = [node.name for node in cluster.nodes()]
            if len(names) < self.config.gpu_nodes:
                raise ValueError(
                    f"cluster has {len(names)} nodes, config wants "
                    f"{self.config.gpu_nodes} GPU hosts"
                )
            hosts = tuple(names[: self.config.gpu_nodes])
        self.hosts = hosts
        self.leases = GpuLeaseManager(env)
        self._slots: dict[str, _Slot] = {}
        for host in hosts:
            for i in range(self.config.devices_per_host):
                name = f"{host}/gpu{i}"
                slot = _Slot(GpuDevice(env, self.config.gpu_spec, name=name), host)
                self._slots[name] = slot
                self.leases.add_device(slot.device, host)
        self.batcher = GpuBatcher(env, self.config.policy, self._on_flush)
        self.forecaster = DemandForecaster()
        self.autoscaler = None
        if self.config.autoscale is not None:
            from .autoscale import GpuWarmPoolAutoscaler
            self.autoscaler = GpuWarmPoolAutoscaler(
                env, self, cluster, self.forecaster, self.config.autoscale
            )
        self._functions: dict[str, GpuFunctionSpec] = {}
        self._lease_of: dict[str, GpuLease] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.replays = 0
        self.replay_cost = 0.0
        self.prewarms = 0
        self.devices_lost = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_requests = metrics.counter(
            "repro_gpu_requests_total", help="GPU invocations submitted")
        self._m_batches = metrics.counter(
            "repro_gpu_batches_total", help="coalesced batch launches")
        self._m_batch_size = metrics.histogram(
            "repro_gpu_batch_size_count",
            help="requests per coalesced launch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_batch_wait = metrics.histogram(
            "repro_gpu_batch_wait_seconds",
            help="time a request waited for its batch to form",
        )
        self._m_latency = metrics.histogram(
            "repro_gpu_request_latency_seconds",
            help="submit-to-completion latency per request",
        )
        self._m_replays = metrics.counter(
            "repro_gpu_replays_total",
            help="invocations replayed after a device loss",
        )
        self._m_replay_cost = metrics.counter(
            "repro_gpu_replay_cost_total",
            help="billed cost of attempts wasted by device loss",
        )
        self._m_prewarms = metrics.counter(
            "repro_gpu_prewarms_total",
            help="(device, function) contexts warmed ahead of demand",
        )
        self._m_transferred = metrics.counter(
            "repro_gpu_transferred_bytes",
            help="host-to-device bytes moved over PCIe",
        )
        self._m_online = metrics.gauge(
            "repro_gpu_devices_online_count", help="devices currently online")
        self._m_online.set(len(self._slots))

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "GpuService":
        """Start background loops (the autoscaler, when configured)."""
        if self.autoscaler is not None:
            self.autoscaler.start()
        return self

    def stop(self) -> None:
        """Stop loops and flush partial batches so the queue can drain."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self.batcher.flush_all()

    # -- registry -------------------------------------------------------------
    def register(self, spec: GpuFunctionSpec) -> GpuFunctionSpec:
        self._functions[spec.name] = spec
        return spec

    def function_spec(self, name: str) -> GpuFunctionSpec:
        return self._functions[name]

    # -- fleet views ----------------------------------------------------------
    def hosting_nodes(self) -> list[str]:
        """Nodes with at least one online device, sorted (injector contract)."""
        return sorted({s.node for s in self._slots.values() if s.online})

    def devices_online(self) -> list[str]:
        return sorted(n for n, s in self._slots.items() if s.online)

    def online_slots(self) -> list[tuple[str, str]]:
        """(device, node) pairs for online devices, sorted by device name."""
        return [(n, self._slots[n].node) for n in self.devices_online()]

    def is_warm(self, function: str, device: str) -> bool:
        slot = self._slots.get(device)
        return bool(slot and slot.online and function in slot.warm)

    def warm_devices_for(self, function: str) -> list[str]:
        return [n for n in self.devices_online()
                if function in self._slots[n].warm]

    # -- the hot path ---------------------------------------------------------
    def submit(self, function: str,
               ctx: Optional[TraceContext] = None) -> GpuRequest:
        """Queue one invocation; yield ``.done`` for its result dict."""
        if function not in self._functions:
            raise ValueError(f"unknown GPU function {function!r}")
        now = self.env.now
        self.forecaster.observe_arrival(now, function)
        if ctx is None:
            ctx = TraceContext.mint()
        span = self._tracer.begin(
            SpanKind.GPU_REQUEST, track="gpu", ctx=ctx, function=function,
        )
        request = GpuRequest(
            req_id=self.env.next_id("gpu-request"),
            function=function,
            submitted_at=now,
            ctx=ctx.child(span.span_id),
            done=self.env.event(),
            span=span,
        )
        self.submitted += 1
        self._m_requests.inc()
        self._dispatch(request)
        return request

    def _dispatch(self, request: GpuRequest) -> None:
        spec = self._functions[request.function]
        device = self._route(request.function, spec)
        self.batcher.enqueue(device, request.function, request)

    def _route(self, function: str, spec: GpuFunctionSpec) -> str:
        """The function's leased device, granting a fresh lease if needed."""
        lease = self._lease_of.get(function)
        if lease is not None and lease.is_active:
            return lease.device
        lease = self.leases.grant(
            function, spec.occupancy, spec.device_memory_bytes
        )
        self._lease_of[function] = lease
        return lease.device

    def _on_flush(self, device: str, function: str, batch: list,
                  trigger: str) -> None:
        slot = self._slots[device]
        slot.inflight = {p for p in slot.inflight if p.is_alive}
        process = self.env.process(
            self._run_batch(device, function, batch, trigger),
            name=f"gpu-batch:{device}:{function}",
        )
        slot.inflight.add(process)

    def _batch_device_time(self, spec: GpuFunctionSpec, size: int) -> float:
        """Kernel-sequence time of one coalesced launch of ``size`` requests."""
        per_kernel = self.config.launch_overhead_s + spec.kernel_time_s * (
            1.0 + (size - 1) * self.config.batch_marginal
        )
        return spec.kernel_count * per_kernel

    def _run_batch(self, device: str, function: str, batch: list,
                   trigger: str):
        slot = self._slots[device]
        spec = self._functions[function]
        size = len(batch)
        env = self.env
        span = self._tracer.begin(
            SpanKind.GPU_BATCH, track="gpu",
            device=device, function=function, size=size, trigger=trigger,
        )
        items = []
        for request in batch:
            self._m_batch_wait.observe(env.now - request.submitted_at)
            item = self._tracer.begin(
                SpanKind.GPU_BATCH_ITEM, track="gpu",
                ctx=TraceContext(request.ctx.trace_id, span.span_id),
                request=request.req_id, attempt=request.attempts,
            )
            items.append(item)
        try:
            if function not in slot.warm:
                # Cold: initialize the context and move the dataset over
                # PCIe, then park it warm so the next batch skips both.
                yield env.timeout(self.config.context_setup_s)
                yield env.timeout(
                    spec.device_memory_bytes / self.config.pcie_bandwidth
                )
                self._m_transferred.inc(spec.device_memory_bytes)
                try:
                    slot.device.keep_warm(function, spec.device_memory_bytes)
                except GpuMemoryError:
                    pass  # caching is best-effort; the batch still runs
                slot.warm.add(function)
            else:
                slot.device.has_warm(function)  # refresh the LRU stamp
            yield env.timeout(
                size * spec.input_bytes / self.config.pcie_bandwidth
            )
            self._m_transferred.inc(size * spec.input_bytes)
            yield env.timeout(self.config.setup_s)
            yield slot.device.launch(
                function, self._batch_device_time(spec, size), spec.occupancy
            )
        except Interrupt as interrupt:
            for item in items:
                self._tracer.finish(item, error=FaultKind.GPU_DEVICE_LOSS)
            self._tracer.finish(span, error=FaultKind.GPU_DEVICE_LOSS)
            self._replay(batch, lost_device=device, cause=interrupt.cause)
            return
        self.batches += 1
        self._m_batches.inc()
        self._m_batch_size.observe(size)
        self._tracer.finish(span, device_time_s=self._batch_device_time(spec, size))
        now = env.now
        for request, item in zip(batch, items):
            self._tracer.finish(item)
            latency = now - request.submitted_at
            self._m_latency.observe(latency)
            self._tracer.finish(
                request.span, latency_s=latency, batch_size=size,
                device=device, replays=request.attempts,
            )
            self.completed += 1
            request.done.succeed({
                "function": function,
                "latency_s": latency,
                "batch_size": size,
                "device": device,
                "replays": request.attempts,
            })

    # -- fault recovery -------------------------------------------------------
    def _replay(self, batch: list, lost_device: str, cause: Any) -> None:
        """Re-run an interrupted batch's requests on surviving devices."""
        for request in batch:
            request.attempts += 1
            self.replays += 1
            self._m_replays.inc()
            spec = self._functions[request.function]
            wasted = FunctionBill(
                cores=1, memory_bytes=spec.device_memory_bytes,
                duration_s=spec.device_time_s, gpus=1,
            ).cost()
            self.replay_cost += wasted
            self._m_replay_cost.inc(wasted)
            self._tracer.instant(
                "gpu.replay", track="gpu", ctx=request.ctx,
                request=request.req_id, from_device=lost_device,
                attempt=request.attempts,
            )
            if request.attempts > self.config.max_replays:
                self._fail(request, GpuLeaseRevokedError(
                    f"request {request.req_id} exhausted "
                    f"{self.config.max_replays} replays",
                    device=lost_device, cause=cause,
                ), error="replays_exhausted")
                continue
            self._redispatch(request)

    def _redispatch(self, request: GpuRequest) -> None:
        try:
            self._dispatch(request)
        except NoCapacityError as exc:
            self._fail(request, exc, error="no_gpu_capacity")

    def _fail(self, request: GpuRequest, exc: Exception, error: str) -> None:
        self.failed += 1
        self._tracer.finish(request.span, error=error)
        request.done.fail(exc)

    def lose_node(self, node: str,
                  cause: Any = FaultKind.GPU_DEVICE_LOSS) -> int:
        """Lose every online device on ``node`` (the injector hook).

        Leases on the lost devices are revoked, queued requests are
        re-routed immediately, and in-flight batch processes are
        interrupted — they replay their requests on surviving devices
        (or fail them with :class:`GpuLeaseRevokedError` when none
        remain).  Returns the number of devices lost.
        """
        lost = 0
        for name in sorted(self._slots):
            slot = self._slots[name]
            if slot.node != node or not slot.online:
                continue
            slot.online = False
            slot.warm.clear()
            lost += 1
            self.devices_lost += 1
            for lease in self.leases.leases_on(name):
                self._lease_of.pop(lease.function, None)
            self.leases.remove_device(name, cause=cause)
            for request in self.batcher.drain(device=name):
                self.replays += 1
                self._m_replays.inc()
                self._tracer.instant(
                    "gpu.replay", track="gpu", ctx=request.ctx,
                    request=request.req_id, from_device=name,
                    attempt=request.attempts,
                )
                self._redispatch(request)
            for process in list(slot.inflight):
                if process.is_alive:
                    process.interrupt(cause=cause)
            slot.inflight.clear()
        self._m_online.set(len(self.devices_online()))
        return lost

    def restore_node(self, node: str) -> int:
        """Bring the node's devices back *cold* (warm data is gone)."""
        restored = 0
        for name in sorted(self._slots):
            slot = self._slots[name]
            if slot.node != node or slot.online:
                continue
            slot.device = GpuDevice(self.env, self.config.gpu_spec, name=name)
            slot.online = True
            self.leases.add_device(slot.device, node)
            restored += 1
        if restored:
            self._m_online.set(len(self.devices_online()))
        return restored

    # -- prewarming (used by the autoscaler) ----------------------------------
    def prewarm(self, function: str, device: str):
        """Generator: warm one (device, function) context ahead of demand."""
        slot = self._slots.get(device)
        spec = self._functions.get(function)
        if slot is None or spec is None or not slot.online:
            return
        if function in slot.warm:
            return
        yield self.env.timeout(self.config.context_setup_s)
        yield self.env.timeout(
            spec.device_memory_bytes / self.config.pcie_bandwidth
        )
        if not slot.online or function in slot.warm:
            return  # lost, or raced with a cold batch, while transferring
        self._m_transferred.inc(spec.device_memory_bytes)
        try:
            slot.device.keep_warm(function, spec.device_memory_bytes)
        except GpuMemoryError:
            return
        slot.warm.add(function)
        self.prewarms += 1
        self._m_prewarms.inc()
        self._tracer.instant(
            "gpu.prewarm", track="gpu", device=device, function=function,
        )
