"""Invocation batching: coalesce queued GPU requests into one launch.

Inference-style GPU functions are dominated by per-launch fixed costs
(context setup, kernel launch overhead) and leave SMs underfilled at
batch size 1.  The batcher queues submitted invocations per
``(device, function)`` and flushes a *batch* — one coalesced kernel
sequence — when either trigger fires:

* **size** — the queue reaches ``max_batch_size`` (flush immediately);
* **time** — the oldest queued request has waited ``max_wait_s`` (flush
  whatever is queued, so a trickle of traffic is never stranded).

The race between the two triggers is resolved with a generation
counter per queue: every flush bumps the generation, and a pending
max-wait timer that wakes into a newer generation does nothing.  Timers
are therefore never interrupted — they simply expire into no-ops —
which keeps the event timeline identical whether a batch filled early
or not, a property the byte-determinism tests lean on.

With ``max_batch_size=1`` the batcher degenerates to a synchronous
fast path: every enqueue flushes immediately and no timer is ever
scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from ..sim.engine import Environment

__all__ = ["BatchPolicy", "GpuBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """When a queued batch is flushed to the device."""

    #: Flush as soon as this many requests are queued.
    max_batch_size: int = 8
    #: Flush whatever is queued once the oldest request waited this long.
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s <= 0:
            raise ValueError("max_wait_s must be positive")


class GpuBatcher:
    """Per-(device, function) request queues with size/time flush triggers.

    ``flush`` is called synchronously as ``flush(device, function,
    requests, trigger)`` whenever a batch forms; the owner (the GPU
    service) turns it into a batch-execution process.
    """

    def __init__(
        self,
        env: Environment,
        policy: BatchPolicy,
        flush: Callable[[str, str, list, str], None],
    ):
        self.env = env
        self.policy = policy
        self._flush_fn = flush
        self._queues: dict[Hashable, list] = {}
        self._gen: dict[Hashable, int] = {}
        self.flushes_on_size = 0
        self.flushes_on_timer = 0

    # -- queue state ----------------------------------------------------------
    def pending(self, key: Hashable) -> int:
        return len(self._queues.get(key, ()))

    def pending_total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def keys(self) -> list:
        return sorted(k for k, q in self._queues.items() if q)

    # -- enqueue / flush ------------------------------------------------------
    def enqueue(self, device: str, function: str, request: Any) -> None:
        """Queue one request; may flush synchronously (size trigger)."""
        key = (device, function)
        queue = self._queues.setdefault(key, [])
        queue.append(request)
        if len(queue) >= self.policy.max_batch_size:
            self._fire(key, trigger="size")
        elif len(queue) == 1:
            generation = self._gen.get(key, 0)
            self.env.process(
                self._timer(key, generation),
                name=f"gpu-batch-timer:{device}:{function}",
            )

    def _timer(self, key: Hashable, generation: int):
        yield self.env.timeout(self.policy.max_wait_s)
        # A newer generation means the queue flushed (size trigger or a
        # drain) while we slept; this timer belongs to a dead batch.
        if self._gen.get(key, 0) == generation and self._queues.get(key):
            self._fire(key, trigger="timer")

    def _fire(self, key: Hashable, trigger: str) -> None:
        batch = self._queues.pop(key, [])
        self._gen[key] = self._gen.get(key, 0) + 1
        if not batch:
            return
        if trigger == "size":
            self.flushes_on_size += 1
        else:
            self.flushes_on_timer += 1
        device, function = key
        self._flush_fn(device, function, batch, trigger)

    def flush_all(self) -> None:
        """Flush every non-empty queue now (the service-stop path)."""
        for key in self.keys():
            self._fire(key, trigger="timer")

    def drain(self, device: Optional[str] = None) -> list:
        """Remove and return queued requests without flushing them.

        Used on device loss: the requests queued behind a dead device
        must be re-routed, not launched.  Generations are bumped so
        pending timers expire into no-ops.
        """
        drained: list = []
        for key in self.keys():
            if device is not None and key[0] != device:
                continue
            drained.extend(self._queues.pop(key, ()))
            self._gen[key] = self._gen.get(key, 0) + 1
        return drained
