"""GPU warm-pool autoscaling: prewarm device contexts ahead of demand.

The CPU warm-pool autoscaler
(:class:`~repro.capacity.WarmPoolAutoscaler`) parks containers before
invocations arrive; its GPU counterpart parks *warm device contexts* —
a (device, function) pair with the CUDA context initialized and the
function's dataset resident in device memory — so the first batch after
a demand ramp skips both the context setup and the host-to-device
weight transfer.

The loop reuses the capacity plane's machinery wholesale: the same
:class:`~repro.capacity.DemandForecaster` (EWMA ⊔ window-percentile
arrival forecast) and the same :class:`~repro.capacity.AutoscalerConfig`
knobs (tick interval, horizon, percentile, headroom), and the same
topology-aware spreading — prewarmed contexts for one function land on
devices in *different* Dragonfly groups round-robin, so a group-wide
failure cannot take every warm context with it.

Sizing: a warm device absorbs up to ``max_batch_size`` requests per
batch, so the device target for a function is
``ceil(headroom · forecast_arrivals / max_batch_size)`` clamped to the
online fleet.
"""

from __future__ import annotations

import math
from typing import Optional

from ..capacity.autoscaler import AutoscalerConfig
from ..capacity.forecast import DemandForecaster
from ..cluster.machine import Cluster
from ..sim.engine import Environment, Interrupt
from ..telemetry import telemetry_of

__all__ = ["GpuWarmPoolAutoscaler"]


class GpuWarmPoolAutoscaler:
    """Periodic control loop prewarming (device, function) contexts."""

    def __init__(
        self,
        env: Environment,
        service,                      # GpuService (late import avoids a cycle)
        cluster: Cluster,
        forecaster: DemandForecaster,
        config: Optional[AutoscalerConfig] = None,
    ):
        self.env = env
        self.service = service
        self.cluster = cluster
        self.forecaster = forecaster
        self.config = config or AutoscalerConfig()
        self._proc = None
        self._stopped = False
        self._began = False
        self._pending: set[tuple[str, str]] = set()   # (function, device)
        self.ticks = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        self._m_target = telemetry.metrics.gauge(
            "repro_gpu_warm_target_count",
            help="warm (device, function) contexts the autoscaler aims for",
        )

    # -- lifecycle ------------------------------------------------------------
    def start(self):
        """Kick off the control loop (idempotent)."""
        if self._proc is None or self._proc.triggered:
            self._stopped = False
            self._began = False
            self._proc = self.env.process(self._loop(), name="gpu-autoscaler")
        return self._proc

    def stop(self) -> None:
        """Stop the loop so the event queue can drain.

        A loop that was started but never stepped (stop before the first
        simulation step) cannot be interrupted — throwing into a fresh
        generator bypasses its ``try`` — so it is left to exit on the
        ``_stopped`` flag the moment it first runs.
        """
        if self._stopped:
            return  # idempotent: a second interrupt would hit a dead loop
        self._stopped = True
        if self._began and self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="gpu-autoscaler-stop")

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    # -- sizing ---------------------------------------------------------------
    def _target_for(self, function: str, now: float, online: int) -> int:
        expected = self.forecaster.forecast_arrivals(
            now, self.config.horizon_s, q=self.config.percentile,
            function=function,
        )
        if expected <= 0:
            return 0
        per_device = max(1, self.service.config.policy.max_batch_size)
        return min(online, math.ceil(self.config.headroom * expected / per_device))

    def _spread(self, function: str, deficit: int) -> list[str]:
        """Candidate devices round-robin across topology groups.

        Devices already warm (or warming) for the function drop out;
        unknown hosts (not in the cluster) collapse into one group.
        """
        groups: dict[int, list[str]] = {}
        for device, node in self.service.online_slots():
            if self.service.is_warm(function, device):
                continue
            if (function, device) in self._pending:
                continue
            try:
                gid = self.cluster.topology.group_of(self.cluster.node_index(node))
            except KeyError:
                gid = -1
            groups.setdefault(gid, []).append(device)
        rotations = [names for _, names in sorted(groups.items())]
        placements: list[str] = []
        while len(placements) < deficit and rotations:
            progressed = False
            for rotation in rotations:
                if rotation:
                    placements.append(rotation.pop(0))
                    progressed = True
                if len(placements) >= deficit:
                    break
            if not progressed:
                break
        return placements

    # -- the loop -------------------------------------------------------------
    def _loop(self):
        self._began = True
        try:
            while not self._stopped:
                yield self.env.timeout(self.config.interval_s)
                if self._stopped:
                    return
                self.ticks += 1
                now = self.env.now
                online = len(self.service.devices_online())
                total_target = 0
                for function in self.forecaster.functions_seen():
                    if self.service._functions.get(function) is None:
                        continue
                    target = self._target_for(function, now, online)
                    total_target += target
                    warm = len(self.service.warm_devices_for(function)) + sum(
                        1 for fn, _ in self._pending if fn == function
                    )
                    if warm >= target:
                        continue
                    for device in self._spread(function, target - warm):
                        self._pending.add((function, device))
                        self.env.process(
                            self._prewarm(function, device),
                            name=f"gpu-prewarm:{device}:{function}",
                        )
                self._m_target.set(total_target)
        except Interrupt:
            return

    def _prewarm(self, function: str, device: str):
        try:
            yield from self.service.prewarm(function, device)
        finally:
            self._pending.discard((function, device))
