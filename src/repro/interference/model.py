"""Co-location interference model.

The paper's measurements (Table III, Figs. 9, 11, 12) are all shaped by
node-level contention between co-located workloads.  We model the three
mechanisms that dominate on dual-socket HPC nodes:

1. **Memory bandwidth saturation** — each socket has a DRAM bandwidth
   budget; when the co-located demand exceeds it, memory-bound phases
   dilate proportionally (this is why MILC suffers and LULESH does not,
   and why CG's throughput saturates near 6x per socket in Table III);
2. **LLC capacity pressure** — when the combined working sets overflow
   the shared last-level cache, miss rates rise and effective DRAM demand
   grows;
3. **Frequency scaling** — turbo headroom shrinks as more cores are
   active, so even embarrassingly parallel co-location (EP) lands at
   ~85 % efficiency rather than 100 %.

Workload instances are described by :class:`ResourceDemand` (cores plus
unconstrained bandwidth demands plus *boundness fractions*, an
Amdahl-style decomposition of execution time).  Slowdown of workload
``i`` under per-resource pressure ``p_r``:

    slowdown_i = f_cpu,i * p_cpu * freq_penalty
               + f_mem,i * max(1, p_mem)
               + f_net,i * max(1, p_net)

Cores are packed onto sockets in submission order (SLURM CPU binding);
a workload spanning sockets experiences the *worst* socket's pressure,
because bulk-synchronous ranks advance at the pace of the slowest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..cluster.specs import NodeSpec

__all__ = ["ResourceDemand", "InterferenceModel", "PlacementError"]


class PlacementError(ValueError):
    """More cores demanded than the node offers."""


@dataclass(frozen=True)
class ResourceDemand:
    """One workload instance's per-node resource appetite.

    ``membw``/``netbw`` are the bandwidths the instance would consume
    running alone (bytes/s); ``llc_bytes`` its cache working set;
    ``frac_membw``/``frac_netbw`` the fractions of runtime bound on
    memory and network (the remainder is core-bound compute).
    """

    cores: int
    membw: float = 0.0
    netbw: float = 0.0
    llc_bytes: float = 0.0
    frac_membw: float = 0.0
    frac_netbw: float = 0.0
    label: str = ""

    def __post_init__(self):
        if self.cores < 0:
            raise ValueError("cores must be non-negative")
        if min(self.membw, self.netbw, self.llc_bytes) < 0:
            raise ValueError("demands must be non-negative")
        if self.frac_membw < 0 or self.frac_netbw < 0:
            raise ValueError("boundness fractions must be non-negative")
        if self.frac_membw + self.frac_netbw > 1.0 + 1e-9:
            raise ValueError("boundness fractions must sum to <= 1")

    @property
    def frac_cpu(self) -> float:
        return max(0.0, 1.0 - self.frac_membw - self.frac_netbw)

    def scaled(self, instances: int) -> list["ResourceDemand"]:
        """``instances`` identical copies (e.g. N serial NAS functions)."""
        return [self] * instances


@dataclass(frozen=True)
class InterferenceModel:
    """Calibration constants for the contention mechanisms."""

    # Turbo/thermal frequency drop from 1 active core to all cores.
    turbo_drop: float = 0.15
    # How strongly LLC overflow inflates effective DRAM demand.
    llc_alpha: float = 0.3
    # Cap on the LLC inflation multiplier: once every tenant is streaming
    # from DRAM anyway, extra cache pressure changes little.
    llc_mult_cap: float = 1.3
    # Fixed co-residency overhead (OS noise, scheduler) applied whenever
    # more than one tenant shares a node.
    sharing_noise: float = 0.002

    def frequency_penalty(self, active_cores: int, total_cores: int) -> float:
        """Clock-slowdown multiplier (>= 1) at ``active_cores`` busy cores."""
        if total_cores <= 1 or active_cores <= 1:
            return 1.0
        frac = min(active_cores - 1, total_cores - 1) / (total_cores - 1)
        return 1.0 / (1.0 - self.turbo_drop * frac)

    # -- the core computation ----------------------------------------------------
    def slowdowns(
        self,
        spec: NodeSpec,
        demands: Sequence[ResourceDemand],
        extra_netbw: float = 0.0,
        extra_membw: float = 0.0,
    ) -> list[float]:
        """Per-workload slowdown factors (>= 1) for one node's tenant mix.

        ``extra_netbw``/``extra_membw`` inject background traffic that has
        no workload of its own — e.g. RDMA streams from a remote-memory
        function (Fig. 11).
        """
        if not demands:
            return []
        total_cores_demanded = sum(d.cores for d in demands)
        if total_cores_demanded > spec.cores:
            raise PlacementError(
                f"{total_cores_demanded} cores demanded on a {spec.cores}-core node"
            )

        sockets = max(1, spec.sockets)
        socket_cores = spec.cores / sockets
        socket_membw = spec.mem_bandwidth / sockets
        socket_llc = float(spec.llc_bytes)

        # 1. Pack cores onto sockets in order (SLURM-style block binding).
        #    shares[i][s] = fraction of instance i's cores on socket s.
        shares = [[0.0] * sockets for _ in demands]
        cursor = 0.0
        for i, demand in enumerate(demands):
            remaining = float(demand.cores)
            while remaining > 1e-12:
                socket = min(int(cursor // socket_cores), sockets - 1)
                room = (socket + 1) * socket_cores - cursor
                take = min(remaining, room) if socket < sockets - 1 else remaining
                if demand.cores > 0:
                    shares[i][socket] += take / demand.cores
                cursor += take
                remaining -= take

        # 2. Per-socket LLC pressure inflates effective memory demand.
        socket_mem_pressure = []
        for s in range(sockets):
            llc_sum = sum(d.llc_bytes * shares[i][s] for i, d in enumerate(demands))
            overflow = llc_sum / socket_llc if socket_llc > 0 else 0.0
            mult = 1.0
            if overflow > 1.0:
                mult = min(1.0 + self.llc_alpha * (overflow - 1.0), self.llc_mult_cap)
            membw_sum = sum(
                d.membw * shares[i][s] * mult for i, d in enumerate(demands)
            )
            membw_sum += extra_membw / sockets
            socket_mem_pressure.append(membw_sum / socket_membw if socket_membw else 0.0)

        # 3. Node-wide network pressure.
        net_total = sum(d.netbw for d in demands) + extra_netbw
        net_pressure = net_total / spec.net_bandwidth if spec.net_bandwidth else 0.0

        # 4. Frequency penalty from total active cores.
        freq = self.frequency_penalty(total_cores_demanded, spec.cores)

        # 5. Compose per-workload slowdowns.
        multi_tenant = len(demands) > 1 or extra_netbw > 0 or extra_membw > 0
        noise = self.sharing_noise if multi_tenant else 0.0
        out = []
        for i, demand in enumerate(demands):
            occupied = [s for s in range(sockets) if shares[i][s] > 1e-12]
            if occupied:
                mem_pressure = max(socket_mem_pressure[s] for s in occupied)
                cpu_pressure = max(
                    1.0,
                    max(
                        sum(d.cores * shares[j][s] for j, d in enumerate(demands))
                        / socket_cores
                        for s in occupied
                    ),
                )
            else:  # pure memory/network service with no cores
                mem_pressure = max(socket_mem_pressure) if socket_mem_pressure else 0.0
                cpu_pressure = 1.0
            slowdown = (
                demand.frac_cpu * cpu_pressure * freq
                + demand.frac_membw * max(1.0, mem_pressure)
                + demand.frac_netbw * max(1.0, net_pressure)
            )
            out.append(max(1.0, slowdown) + noise)
        return out

    def relative_throughput(
        self,
        spec: NodeSpec,
        demand: ResourceDemand,
        instances: int,
        extra_netbw: float = 0.0,
    ) -> float:
        """Aggregate throughput of N identical instances vs. one alone.

        This is exactly the Table III metric: node throughput relative to
        a single rFaaS executor.
        """
        if instances < 1:
            raise ValueError("need >= 1 instance")
        base = self.slowdowns(spec, [demand])[0]
        colocated = self.slowdowns(spec, demand.scaled(instances), extra_netbw=extra_netbw)
        return sum(base / s for s in colocated)

    def efficiency(self, spec: NodeSpec, demand: ResourceDemand, instances: int) -> float:
        """Per-instance efficiency: relative throughput / instance count."""
        return self.relative_throughput(spec, demand, instances) / instances
