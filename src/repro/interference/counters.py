"""Hardware/OS counter sampling (Sec. III-E, Fig. 4).

The co-location policies rely on "lightweight sampling of hardware and
operating system counters" gathering FLOPs, memory accesses and network
traffic.  In the simulation, counters are synthesized from a workload's
:class:`~repro.interference.model.ResourceDemand` (the inverse of what a
real profiler does) with sampling noise, and :class:`CounterProfile`
recovers a demand estimate from the samples — closing the loop the paper
describes: profile once, reuse for placement decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .model import ResourceDemand

__all__ = ["CounterSample", "sample_counters", "CounterProfile"]


@dataclass(frozen=True)
class CounterSample:
    """One sampling window's worth of counters."""

    duration_s: float
    flops: float
    dram_bytes: float
    net_bytes: float
    active_cores: int

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_bytes / self.duration_s

    @property
    def net_bandwidth(self) -> float:
        return self.net_bytes / self.duration_s


def sample_counters(
    demand: ResourceDemand,
    rng: np.random.Generator,
    windows: int = 10,
    window_s: float = 1.0,
    flops_per_core: float = 2.0e9,
    noise: float = 0.05,
) -> list[CounterSample]:
    """Synthesize counter windows for a workload running unperturbed."""
    if windows < 1 or window_s <= 0:
        raise ValueError("need >= 1 window of positive duration")
    samples = []
    for _ in range(windows):
        jitter = rng.normal(1.0, noise, size=3).clip(0.5, 1.5)
        samples.append(
            CounterSample(
                duration_s=window_s,
                flops=demand.frac_cpu * demand.cores * flops_per_core * window_s * jitter[0],
                dram_bytes=demand.membw * window_s * jitter[1],
                net_bytes=demand.netbw * window_s * jitter[2],
                active_cores=demand.cores,
            )
        )
    return samples


@dataclass(frozen=True)
class CounterProfile:
    """Aggregated view of counter samples -> estimated demand vector."""

    mean_dram_bandwidth: float
    mean_net_bandwidth: float
    mean_flops: float
    cores: int

    @classmethod
    def from_samples(cls, samples: Sequence[CounterSample]) -> "CounterProfile":
        if not samples:
            raise ValueError("no samples")
        return cls(
            mean_dram_bandwidth=float(np.mean([s.dram_bandwidth for s in samples])),
            mean_net_bandwidth=float(np.mean([s.net_bandwidth for s in samples])),
            mean_flops=float(np.mean([s.flops / s.duration_s for s in samples])),
            cores=samples[0].active_cores,
        )

    def to_demand(
        self,
        llc_bytes: float = 0.0,
        peak_membw_per_core: float = 8e9,
        peak_netbw: float = 10e9,
        label: str = "",
    ) -> ResourceDemand:
        """Estimate a demand vector; boundness from bandwidth saturation.

        A workload pulling close to the per-core DRAM bandwidth budget is
        treated as memory-bound for that fraction of time — the resource
        requirement modeling heuristic of [Calotoiu'18] reduced to its
        bandwidth component.
        """
        cores = max(self.cores, 1)
        frac_membw = min(self.mean_dram_bandwidth / (cores * peak_membw_per_core), 0.95)
        frac_netbw = min(self.mean_net_bandwidth / peak_netbw, max(0.0, 0.95 - frac_membw))
        return ResourceDemand(
            cores=self.cores,
            membw=self.mean_dram_bandwidth,
            netbw=self.mean_net_bandwidth,
            llc_bytes=llc_bytes,
            frac_membw=frac_membw,
            frac_netbw=frac_netbw,
            label=label,
        )
