"""Interference substrate: demand vectors, contention model, counters."""

from .counters import CounterProfile, CounterSample, sample_counters
from .model import InterferenceModel, PlacementError, ResourceDemand

__all__ = [
    "CounterProfile",
    "CounterSample",
    "sample_counters",
    "InterferenceModel",
    "PlacementError",
    "ResourceDemand",
]
