"""MinIO-like object storage model (Sec. IV-D, Fig. 8).

The paper deploys MinIO as a warm cache for small files: an in-memory
object server answers GETs with sub-millisecond latency but all traffic
funnels through a handful of server NICs, so aggregate throughput
saturates quickly as readers or file sizes grow — the opposite scaling
regime from Lustre.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObjectStoreModel"]


@dataclass(frozen=True)
class ObjectStoreModel:
    """Analytic performance model of a small object-storage deployment."""

    server_count: int = 2
    server_bandwidth: float = 10.0e9     # bytes/s NIC per server
    request_latency_s: float = 0.35e-3   # HTTP GET on the HPC network
    per_mib_cpu_s: float = 0.04e-3       # HTTP/erasure-coding CPU cost
    client_bandwidth: float = 5.0e9

    def __post_init__(self):
        if self.server_count < 1:
            raise ValueError("need >= 1 server")
        if min(self.server_bandwidth, self.client_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")

    def single_read_time(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ValueError("negative size")
        bandwidth = min(self.server_bandwidth, self.client_bandwidth)
        cpu = self.per_mib_cpu_s * size_bytes / (1 << 20)
        return self.request_latency_s + cpu + size_bytes / bandwidth

    def read_time(self, size_bytes: int, concurrent_readers: int = 1) -> float:
        """Per-reader latency; all readers share the server NICs."""
        if concurrent_readers < 1:
            raise ValueError("need >= 1 reader")
        if size_bytes < 0:
            raise ValueError("negative size")
        aggregate = self.server_count * self.server_bandwidth
        fair_share = aggregate / concurrent_readers
        bandwidth = min(self.client_bandwidth, fair_share)
        cpu = self.per_mib_cpu_s * size_bytes / (1 << 20)
        return self.request_latency_s + cpu + size_bytes / bandwidth

    def aggregate_throughput(self, size_bytes: int, concurrent_readers: int = 1) -> float:
        t = self.read_time(size_bytes, concurrent_readers)
        return concurrent_readers * size_bytes / t
