"""Lustre-like parallel filesystem model (Sec. IV-D, Fig. 8).

A read costs a metadata round trip to the MDS plus data movement striped
over OSTs.  Aggregate bandwidth grows with the OST count, so many
concurrent readers scale well; the per-operation latency floor (RPC to
MDS + first OST) is however milliseconds — higher than an in-memory
object store for small files.  These two properties produce the paper's
Fig. 8 crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LustreModel"]


@dataclass(frozen=True)
class LustreModel:
    """Analytic performance model of a striped parallel filesystem."""

    ost_count: int = 40
    ost_bandwidth: float = 2.0e9        # bytes/s per OST
    stripe_size: int = 1 << 20          # 1 MiB default Lustre stripe
    stripe_count: int = 4               # OSTs per file by default
    metadata_latency_s: float = 1.2e-3  # MDS RPC + layout fetch
    rpc_latency_s: float = 0.25e-3      # per-OST first-byte latency
    client_bandwidth: float = 5.0e9     # one client's network cap

    def __post_init__(self):
        if self.ost_count < 1 or self.stripe_count < 1:
            raise ValueError("ost_count and stripe_count must be >= 1")
        if min(self.ost_bandwidth, self.client_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")

    def effective_stripes(self, size_bytes: int) -> int:
        """How many OSTs a file of this size actually touches."""
        touched = max(1, -(-size_bytes // self.stripe_size))  # ceil div
        return min(touched, self.stripe_count, self.ost_count)

    def single_read_time(self, size_bytes: int) -> float:
        """Latency of one uncontended read of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("negative size")
        stripes = self.effective_stripes(max(size_bytes, 1))
        bandwidth = min(stripes * self.ost_bandwidth, self.client_bandwidth)
        return self.metadata_latency_s + self.rpc_latency_s + size_bytes / bandwidth

    def read_time(self, size_bytes: int, concurrent_readers: int = 1) -> float:
        """Per-reader latency with ``concurrent_readers`` identical readers.

        Readers share the aggregate OST bandwidth; per-client network
        limits still apply.  Metadata service is assumed provisioned for
        the load (Lustre MDS handles >10k ops/s).
        """
        if concurrent_readers < 1:
            raise ValueError("need >= 1 reader")
        if size_bytes < 0:
            raise ValueError("negative size")
        stripes = self.effective_stripes(max(size_bytes, 1))
        aggregate = self.ost_count * self.ost_bandwidth
        fair_share = aggregate / concurrent_readers
        per_reader = min(stripes * self.ost_bandwidth, self.client_bandwidth, fair_share)
        return self.metadata_latency_s + self.rpc_latency_s + size_bytes / per_reader

    def aggregate_throughput(self, size_bytes: int, concurrent_readers: int = 1) -> float:
        """Total delivered bytes/s across all readers."""
        t = self.read_time(size_bytes, concurrent_readers)
        return concurrent_readers * size_bytes / t
