"""Tiered function I/O: parallel FS + object-store warm cache (Sec. IV-D).

The paper's final I/O design mounts the user's Lustre partitions inside
the function container *and* keeps MinIO "as a warm cache for lower
latency on small files".  The tier selector routes each read to whichever
backend the Fig. 8 curves favour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lustre import LustreModel
from .objectstore import ObjectStoreModel

__all__ = ["TieredFunctionStorage"]


@dataclass
class TieredFunctionStorage:
    """Routes reads to the object-store cache or the parallel filesystem."""

    pfs: LustreModel = field(default_factory=LustreModel)
    cache: ObjectStoreModel = field(default_factory=ObjectStoreModel)
    # Objects at or below this size are served from the cache tier.
    cache_threshold_bytes: int = 4 << 20

    def __post_init__(self):
        if self.cache_threshold_bytes < 0:
            raise ValueError("threshold must be non-negative")

    def tier_for(self, size_bytes: int) -> str:
        return "cache" if size_bytes <= self.cache_threshold_bytes else "pfs"

    def read_time(self, size_bytes: int, concurrent_readers: int = 1) -> float:
        if self.tier_for(size_bytes) == "cache":
            return self.cache.read_time(size_bytes, concurrent_readers)
        return self.pfs.read_time(size_bytes, concurrent_readers)

    def crossover_size(self, concurrent_readers: int = 1, lo: int = 1024, hi: int = 1 << 30) -> int:
        """Smallest size at which the PFS beats the cache (bisection).

        Returns ``hi`` if the cache wins everywhere in [lo, hi].
        """
        if not self._pfs_wins(hi, concurrent_readers):
            return hi
        if self._pfs_wins(lo, concurrent_readers):
            return lo
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._pfs_wins(mid, concurrent_readers):
                hi = mid
            else:
                lo = mid
        return hi

    def _pfs_wins(self, size: int, readers: int) -> bool:
        return self.pfs.read_time(size, readers) < self.cache.read_time(size, readers)
