"""Storage substrate: parallel filesystem, object store, tiered function I/O."""

from .lustre import LustreModel
from .objectstore import ObjectStoreModel
from .tiered import TieredFunctionStorage

__all__ = ["LustreModel", "ObjectStoreModel", "TieredFunctionStorage"]
