"""Per-shard batched application of control-plane operations.

Each shard serializes its mutations through one :class:`ShardBatcher`
process — the sim-time model of a manager's single-threaded RPC loop.
Callers :meth:`submit` an operation and get an :class:`~repro.sim.engine.Event`
back immediately (open-loop callers never block each other); the
batcher drains its FIFO in batches of up to ``max_batch``, charging

    ``batch_overhead_s + per_op_s * len(batch)``

of sim time per flush.  Amortizing the per-batch overhead across many
queued ops is what makes a loaded shard *more* efficient per op than an
idle one — and the fixed ``per_op_s`` floor is what saturates a single
shard and motivates adding more (the throughput-vs-shards curve the
loadstorm sweep reports).

Conservation accounting is built in: every submitted op is eventually
*applied* (event succeeds with the result) or *failed* (event fails
with the underlying platform error) — ``ops_submitted == ops_applied +
ops_failed + depth()`` holds at every instant, and the sharded plane
sums these per-shard ledgers into its global no-silent-drops invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..sim.engine import Environment, Event

__all__ = ["BatchOp", "ShardBatcher"]


class BatchOp:
    """One queued control-plane mutation awaiting its batch slot."""

    __slots__ = ("kind", "payload", "event", "submitted_s")

    def __init__(self, kind: str, payload: dict, event: Event, submitted_s: float):
        self.kind = kind          # "grant" | "release" | "revoke"
        self.payload = payload
        self.event = event
        self.submitted_s = submitted_s


class ShardBatcher:
    """FIFO batcher in front of one shard's manager."""

    def __init__(
        self,
        env: Environment,
        index: int,
        apply: Callable[[BatchOp], Any],
        max_batch: int = 32,
        batch_overhead_s: float = 5e-4,
        per_op_s: float = 2e-4,
        on_flush: Optional[Callable[[int, int], None]] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_overhead_s < 0 or per_op_s < 0:
            raise ValueError("batch costs must be non-negative")
        self.env = env
        self.index = index
        self.max_batch = max_batch
        self.batch_overhead_s = batch_overhead_s
        self.per_op_s = per_op_s
        self._apply = apply
        self._on_flush = on_flush   # (shard_index, batch_size) per flush
        self._queue: deque[BatchOp] = deque()
        self._wake: Optional[Event] = None
        self._stopped = False
        self.ops_submitted = 0
        self.ops_applied = 0
        self.ops_failed = 0
        self.batches = 0
        self._process = env.process(self._run(), name=f"shard-{index}-batcher")

    def depth(self) -> int:
        return len(self._queue)

    def submit(self, kind: str, payload: dict) -> Event:
        """Enqueue one op; the returned event resolves when it applies."""
        if self._stopped:
            raise RuntimeError(f"shard-{self.index} batcher is stopped")
        op = BatchOp(kind, payload, self.env.event(), self.env.now)
        self._queue.append(op)
        self.ops_submitted += 1
        if self._wake is not None:
            wake, self._wake = self._wake, None
            wake.succeed()
        return op.event

    def stop(self) -> None:
        """Stop after draining what is already queued (no silent drops)."""
        self._stopped = True
        if self._wake is not None:
            wake, self._wake = self._wake, None
            wake.succeed()

    def _run(self):
        while True:
            if not self._queue:
                if self._stopped:
                    return
                self._wake = self.env.event()
                yield self._wake
                if not self._queue:   # stop() woke us with nothing to do
                    return
            batch = [self._queue.popleft()
                     for _ in range(min(self.max_batch, len(self._queue)))]
            # The serialization cost: fixed flush overhead amortized
            # over the ops that were waiting when the flush started.
            yield self.env.timeout(
                self.batch_overhead_s + self.per_op_s * len(batch)
            )
            self.batches += 1
            for op in batch:
                try:
                    value = self._apply(op)
                except Exception as exc:
                    self.ops_failed += 1
                    op.event.fail(exc)
                else:
                    self.ops_applied += 1
                    op.event.succeed(value)
            if self._on_flush is not None:
                self._on_flush(self.index, len(batch))
