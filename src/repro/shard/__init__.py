"""Horizontally sharded control plane for million-client lease churn.

The replicated manager of :mod:`repro.controlplane` survives crashes but
still serializes every tenant through one primary.  This package shards
it: a :class:`~repro.shard.ring.HashRing` consistent-hashes tenants onto
N manager shards, each shard batches its mutations through a
:class:`~repro.shard.batch.ShardBatcher` (amortized flush cost, explicit
serialization floor), and :class:`~repro.shard.plane.ShardedControlPlane`
ties them together with cross-shard node migration on drain,
shard-targeted crash injection, and a global no-silent-drops
conservation ledger.

See ``docs/sharding.md`` for the design and the loadstorm experiment
that drives it at 1M+ synthetic clients.
"""

from .batch import BatchOp, ShardBatcher
from .plane import Shard, ShardConfig, ShardedControlPlane
from .ring import HashRing

__all__ = [
    "BatchOp",
    "HashRing",
    "Shard",
    "ShardBatcher",
    "ShardConfig",
    "ShardedControlPlane",
]
