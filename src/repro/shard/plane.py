"""The sharded control plane: N manager shards behind one front door.

PR 9 made the resource manager *replicated*; it is still one
serialization point for every tenant.  :class:`ShardedControlPlane`
removes that by consistent-hashing tenants onto ``shards`` independent
:class:`~repro.rfaas.manager.ResourceManager` instances — each
optionally HA-wrapped in a
:class:`~repro.controlplane.ha.ReplicatedResourceManager` — so lease
churn scales horizontally with client count (the Function Delivery
Network premise, applied to the rFaaS lease model).

Mechanics:

* **Placement** — :class:`~repro.shard.ring.HashRing` maps a tenant to
  its home shard; every grant/release/revoke for that tenant funnels
  through that shard's :class:`~repro.shard.batch.ShardBatcher`, which
  charges the batched serialization cost in sim time.
* **Nodes** — registrations spread across shards (least registered
  cores first); each shard only ever places leases on its own nodes.
* **Cross-shard migration on drain** — when the batch system retrieves
  a node (:meth:`drain_node`), :meth:`rebalance` moves *idle* nodes
  from capacity-rich shards to starved ones, so one shard's reclaim
  does not strand its tenants while neighbours sit on free cores.
* **Shard-targeted faults** — :meth:`crash_shard` kills one shard: an
  HA-wrapped shard fails over via its replica group; a bare shard
  models lease-expiry fencing (every active lease cancelled) and
  rejects ops with :class:`ManagerUnavailableError` until it restarts.
  :meth:`crash_primary` aliases shard 0 so the fault injector's
  control-plane auto-detection works unchanged.
* **Conservation** — the no-silent-drops invariant, global across
  shards: every submitted op is applied or failed
  (``ops_submitted == ops_applied + ops_failed + queued``), and every
  lease ever granted ends exactly one of ACTIVE / RELEASED / CANCELLED
  (:meth:`conservation` / :meth:`conservation_ok`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..controlplane import HAConfig, ReplicatedResourceManager
from ..cluster.machine import Cluster
from ..rfaas.errors import (
    ManagerUnavailableError,
    NoCapacityError,
    StaleEpochError,
)
from ..rfaas.lease import Lease, LeaseState
from ..rfaas.manager import ResourceManager
from ..sim.engine import Environment, Event
from ..telemetry import telemetry_of
from .batch import BatchOp, ShardBatcher
from .ring import HashRing

__all__ = ["ShardConfig", "Shard", "ShardedControlPlane"]


@dataclass(frozen=True)
class ShardConfig:
    """Shape and cost model of the sharded control plane."""

    #: Manager shards (N >= 1). 1 reproduces the unsharded plane.
    shards: int = 4
    #: Virtual nodes per shard on the hash ring.
    vnodes: int = 64
    #: Max ops one batch flush applies.
    max_batch: int = 32
    #: Fixed sim-time cost per batch flush (amortized by batching).
    batch_overhead_s: float = 5e-4
    #: Per-op sim-time cost — the serialization floor that saturates a
    #: single shard and motivates horizontal scale.
    per_op_s: float = 2e-4
    #: HA-wrap every shard with this replica config (None = bare shards).
    ha: Optional[HAConfig] = None
    #: Period of the automatic rebalance loop; 0 disables it (rebalance
    #: then runs only on drain_node / explicit calls).
    rebalance_interval_s: float = 0.0

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_overhead_s < 0 or self.per_op_s < 0:
            raise ValueError("batch costs must be non-negative")
        if self.rebalance_interval_s < 0:
            raise ValueError("rebalance_interval_s must be >= 0")


class Shard:
    """One manager shard: its manager, batcher, and liveness state."""

    def __init__(self, index: int, manager, batcher: ShardBatcher):
        self.index = index
        #: ResourceManager, or ReplicatedResourceManager when HA-wrapped.
        self.manager = manager
        self.batcher = batcher
        #: Bare-shard outage flag (HA shards track liveness themselves).
        self.down = False

    @property
    def ha(self) -> Optional[ReplicatedResourceManager]:
        if isinstance(self.manager, ReplicatedResourceManager):
            return self.manager
        return None

    @property
    def available(self) -> bool:
        """Would a mutation be accepted right now?"""
        ha = self.ha
        if ha is not None:
            return ha.available
        return not self.down

    def idle_nodes(self) -> list[str]:
        """Registered nodes with no active lease (safe to migrate)."""
        out = []
        for name in self.manager.registered_nodes():
            info = self.manager.node_info(name)
            if not any(entry[0].active for entry in info.leases.values()):
                out.append(name)
        return out


class ShardedControlPlane:
    """N manager shards, one tenant-facing front door."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        config: Optional[ShardConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.config = config if config is not None else ShardConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.ring = HashRing(range(self.config.shards), vnodes=self.config.vnodes)
        self._node_shard: dict[str, int] = {}
        self._lease_shard: dict[int, int] = {}
        #: Every lease this plane ever granted (the conservation ledger).
        self._leases: dict[int, Lease] = {}
        self.migrations = 0
        self._stopped = False

        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_grants = [
            metrics.counter("repro_shard_grants_total",
                            labels={"shard": str(i)},
                            help="leases granted, per shard")
            for i in range(self.config.shards)
        ]
        self._m_batches = [
            metrics.counter("repro_shard_batches_total",
                            labels={"shard": str(i)},
                            help="batch flushes, per shard")
            for i in range(self.config.shards)
        ]
        self._g_depth = [
            metrics.gauge("repro_shard_queue_depth_count",
                          labels={"shard": str(i)},
                          help="ops queued at the shard batcher")
            for i in range(self.config.shards)
        ]
        self._h_batch_ops = metrics.histogram(
            "repro_shard_batch_ops_count",
            help="ops applied per batch flush",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._h_grant_latency = metrics.histogram(
            "repro_shard_grant_latency_seconds",
            help="submit -> grant-applied latency through the batcher",
            buckets=(0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0),
        )
        self._m_rejected = metrics.counter(
            "repro_shard_rejected_total",
            help="ops failed with NoCapacityError",
        )
        self._m_unavailable = metrics.counter(
            "repro_shard_unavailable_total",
            help="ops failed because the owning shard was down or fenced",
        )
        self._m_migrations = metrics.counter(
            "repro_shard_migrations_total",
            help="idle nodes migrated between shards",
        )
        self._m_crashes = metrics.counter(
            "repro_shard_crashes_total", help="shard crashes injected",
        )

        seeds = rng.integers(0, 2**31 - 1, size=self.config.shards)
        self.shards: list[Shard] = []
        for index in range(self.config.shards):
            inner = ResourceManager(
                env, cluster, rng=np.random.default_rng(int(seeds[index])),
            )
            manager = inner
            if self.config.ha is not None:
                manager = ReplicatedResourceManager(env, inner, self.config.ha)
                manager.start()
            shard = Shard(index, manager, None)
            shard.batcher = ShardBatcher(
                env, index,
                apply=lambda op, s=shard: self._apply(s, op),
                max_batch=self.config.max_batch,
                batch_overhead_s=self.config.batch_overhead_s,
                per_op_s=self.config.per_op_s,
                on_flush=self._flushed,
            )
            self.shards.append(shard)
        if self.config.rebalance_interval_s > 0:
            env.process(self._rebalance_loop(), name="shard-rebalancer")

    # -- lifecycle ---------------------------------------------------------------
    def stop(self) -> None:
        """Stop batchers and HA detectors (lets open-ended runs drain)."""
        self._stopped = True
        for shard in self.shards:
            shard.batcher.stop()
            ha = shard.ha
            if ha is not None:
                ha.stop()

    # -- placement ---------------------------------------------------------------
    def shard_of(self, tenant: str) -> int:
        """Home shard of ``tenant`` (consistent-hash placement)."""
        return self.ring.shard_for(tenant)

    # -- node pool ---------------------------------------------------------------
    def register_node(self, node_name: str, cores: int, memory_bytes: int,
                      gpus: int = 0, shard: Optional[int] = None, **kwargs):
        """Add spare capacity; spreads across shards least-cores-first."""
        if shard is None:
            shard = min(
                (s for s in self.shards if s.available),
                key=lambda s: (s.manager.total_registered_cores(), s.index),
            ).index
        registered = self.shards[shard].manager.register_node(
            node_name, cores, memory_bytes, gpus=gpus, **kwargs,
        )
        self._node_shard[node_name] = shard
        return registered

    def remove_node(self, node_name: str, immediate: bool = False) -> bool:
        index = self._node_shard.get(node_name)
        if index is None:
            return False
        removed = self.shards[index].manager.remove_node(
            node_name, immediate=immediate,
        )
        if removed:
            del self._node_shard[node_name]
        return removed

    def drain_node(self, node_name: str, immediate: bool = False) -> bool:
        """Batch-system reclaim + rebalance: the cross-shard answer to
        one shard losing capacity while neighbours have idle nodes."""
        removed = self.remove_node(node_name, immediate=immediate)
        if removed:
            self.rebalance()
        return removed

    # -- ResourceManager duck-type surface (Injector/recovery compatible) --------
    def registered_nodes(self) -> list[str]:
        return sorted(self._node_shard)

    def is_registered(self, node_name: str) -> bool:
        return node_name in self._node_shard

    def registration_of(self, node_name: str) -> dict:
        return self.shards[self._node_shard[node_name]].manager.registration_of(node_name)

    def node_info(self, node_name: str):
        return self.shards[self._node_shard[node_name]].manager.node_info(node_name)

    def active_leases(self) -> list[tuple[Lease, str]]:
        """All active ``(lease, node)`` pairs, globally ordered by lease
        id (ids come from one env-wide stream, so the order is total)."""
        out = []
        for lease_id in sorted(self._lease_shard):
            lease = self._leases.get(lease_id)
            if lease is not None and lease.active:
                out.append((lease, lease.node_name))
        return out

    def revoke_lease(self, lease: Lease, reason: str = "revoked") -> bool:
        """Direct (unbatched) revocation — the fault injector's path."""
        index = self._lease_shard.get(lease.lease_id)
        if index is None:
            return False
        return self.shards[index].manager.revoke_lease(lease, reason=reason)

    def release_lease(self, lease: Lease) -> None:
        index = self._lease_shard.get(lease.lease_id)
        if index is None:
            return
        self.shards[index].manager.release_lease(lease)

    def total_registered_cores(self) -> int:
        return sum(s.manager.total_registered_cores() for s in self.shards)

    def total_free_cores(self) -> int:
        return sum(s.manager.total_free_cores() for s in self.shards)

    # -- batched front door ------------------------------------------------------
    def request_grant(self, tenant: str, cores: int = 1, memory_bytes: int = 0,
                      gpus: int = 0, image=None) -> Event:
        """Queue a grant on the tenant's home shard; yields ``(lease,
        executor)`` or fails with the underlying platform error."""
        shard = self.shards[self.shard_of(tenant)]
        event = shard.batcher.submit("grant", {
            "tenant": tenant, "cores": cores,
            "memory_bytes": memory_bytes, "gpus": gpus, "image": image,
        })
        self._g_depth[shard.index].set(shard.batcher.depth())
        return event

    def request_release(self, lease: Lease) -> Event:
        shard = self.shards[self._lease_shard[lease.lease_id]]
        event = shard.batcher.submit("release", {"lease": lease})
        self._g_depth[shard.index].set(shard.batcher.depth())
        return event

    def request_revoke(self, lease: Lease, reason: str = "revoked") -> Event:
        shard = self.shards[self._lease_shard[lease.lease_id]]
        event = shard.batcher.submit("revoke", {"lease": lease, "reason": reason})
        self._g_depth[shard.index].set(shard.batcher.depth())
        return event

    def _apply(self, shard: Shard, op: BatchOp):
        """Apply one batched op against its shard's manager."""
        try:
            if shard.ha is None and shard.down:
                raise ManagerUnavailableError(
                    f"shard-{shard.index} is down", cause="crash",
                )
            if op.kind == "grant":
                payload = op.payload
                lease, executor = shard.manager.lease(
                    client=payload["tenant"], cores=payload["cores"],
                    memory_bytes=payload["memory_bytes"],
                    gpus=payload["gpus"], image=payload["image"],
                )
                self._leases[lease.lease_id] = lease
                self._lease_shard[lease.lease_id] = shard.index
                self._m_grants[shard.index].inc()
                self._h_grant_latency.observe(self.env.now - op.submitted_s)
                return lease, executor
            if op.kind == "release":
                shard.manager.release_lease(op.payload["lease"])
                return True
            if op.kind == "revoke":
                return shard.manager.revoke_lease(
                    op.payload["lease"], reason=op.payload["reason"],
                )
            raise ValueError(f"unknown op kind {op.kind!r}")
        except NoCapacityError:
            self._m_rejected.inc()
            raise
        except (ManagerUnavailableError, StaleEpochError):
            self._m_unavailable.inc()
            raise

    def _flushed(self, index: int, batch_size: int) -> None:
        self._m_batches[index].inc()
        self._h_batch_ops.observe(batch_size)
        self._g_depth[index].set(self.shards[index].batcher.depth())
        self._tracer.instant(
            "shard.batch", track="shard", shard=index, ops=batch_size,
        )

    # -- shard-targeted faults ---------------------------------------------------
    def crash_shard(self, index: int, outage_s: float = 0.0) -> Optional[str]:
        """Kill shard ``index``; restart it after ``outage_s`` (0 = never).

        HA-wrapped shards delegate to their replica group (standby
        takeover, epoch fencing).  Bare shards model lease-expiry
        fencing: every active lease is cancelled, and ops fail with
        :class:`ManagerUnavailableError` until the shard restarts.
        """
        shard = self.shards[index]
        ha = shard.ha
        if ha is not None:
            name = ha.crash_primary(outage_s=outage_s)
            if name is None:
                return None
            self._m_crashes.inc()
            self._tracer.instant(
                "shard.crash", track="shard", shard=index, ha=True,
                outage_s=outage_s,
            )
            return f"shard-{index}/{name}"
        if shard.down:
            return None
        shard.down = True
        self._m_crashes.inc()
        victims = 0
        for lease, _node in shard.manager.active_leases():
            shard.manager.revoke_lease(lease, reason="shard-crash")
            victims += 1
        self._tracer.instant(
            "shard.crash", track="shard", shard=index, ha=False,
            outage_s=outage_s, leases_fenced=victims,
        )
        if outage_s > 0:
            self.env.process(self._restart_shard(shard, outage_s),
                             name=f"shard-{index}-restart")
        return f"shard-{index}"

    def crash_primary(self, outage_s: float = 0.0) -> Optional[str]:
        """Injector compatibility: an untargeted ``manager_crash`` lands
        on shard 0 (the auto-detected control-plane hook)."""
        return self.crash_shard(0, outage_s=outage_s)

    def _restart_shard(self, shard: Shard, outage_s: float):
        yield self.env.timeout(outage_s)
        if self._stopped or not shard.down:
            return
        shard.down = False
        self._tracer.instant("shard.recover", track="shard", shard=shard.index)

    # -- cross-shard migration ---------------------------------------------------
    def migrate_node(self, node_name: str, to_shard: int) -> bool:
        """Move one *idle* node's registration to another shard.

        Only nodes without active leases move (moving a leased node
        would cancel tenant work — conservation forbids silent drops).
        The warm pool does not follow: this is a control-plane handoff,
        and the destination shard rebuilds warm state on first use.
        """
        source_index = self._node_shard.get(node_name)
        if source_index is None or source_index == to_shard:
            return False
        source = self.shards[source_index]
        destination = self.shards[to_shard]
        if not source.available or not destination.available:
            return False
        info = source.manager.node_info(node_name)
        if any(entry[0].active for entry in info.leases.values()):
            return False
        spec = source.manager.registration_of(node_name)
        source.manager.remove_node(node_name, immediate=False)
        destination.manager.register_node(**spec)
        self._node_shard[node_name] = to_shard
        self.migrations += 1
        self._m_migrations.inc()
        self._tracer.instant(
            "shard.migrate", track="shard", node=node_name,
            source=source_index, destination=to_shard,
        )
        return True

    def rebalance(self) -> int:
        """Move idle nodes from surplus shards to starved ones.

        A shard is *starved* when it is up but has zero free cores (or
        no nodes at all); a *donor* is an available shard that would
        keep free capacity after giving up one idle node.  Deterministic
        by construction: deepest-queue starved shard first, richest
        donor first, lowest index on ties.
        """
        moves = 0
        for _ in range(len(self._node_shard) + 1):
            starved = [
                s for s in self.shards
                if s.available and s.manager.total_free_cores() == 0
            ]
            if not starved:
                break
            starved.sort(key=lambda s: (-s.batcher.depth(), s.index))
            moved = False
            for target in starved:
                donors = []
                for donor in self.shards:
                    if donor.index == target.index or not donor.available:
                        continue
                    idle = donor.idle_nodes()
                    if not idle:
                        continue
                    node = idle[0]
                    node_cores = donor.manager.node_info(node).cores_total
                    if donor.manager.total_free_cores() > node_cores:
                        donors.append((donor.manager.total_free_cores(),
                                       -donor.index, donor, node))
                if not donors:
                    continue
                donors.sort(reverse=True)
                _, _, donor, node = donors[0]
                if self.migrate_node(node, target.index):
                    moves += 1
                    moved = True
                    break
            if not moved:
                break
        return moves

    def _rebalance_loop(self):
        interval = self.config.rebalance_interval_s
        while not self._stopped:
            yield self.env.timeout(interval)
            if self._stopped:
                return
            self.rebalance()

    # -- conservation ------------------------------------------------------------
    def conservation(self) -> dict:
        """The global ledger: ops and lease states across every shard."""
        submitted = sum(s.batcher.ops_submitted for s in self.shards)
        applied = sum(s.batcher.ops_applied for s in self.shards)
        failed = sum(s.batcher.ops_failed for s in self.shards)
        queued = sum(s.batcher.depth() for s in self.shards)
        states = {LeaseState.ACTIVE: 0, LeaseState.RELEASED: 0,
                  LeaseState.CANCELLED: 0}
        for lease in self._leases.values():
            states[lease.state] += 1
        return {
            "ops_submitted": submitted,
            "ops_applied": applied,
            "ops_failed": failed,
            "ops_queued": queued,
            "granted": len(self._leases),
            "active": states[LeaseState.ACTIVE],
            "released": states[LeaseState.RELEASED],
            "revoked": states[LeaseState.CANCELLED],
            "migrations": self.migrations,
        }

    def conservation_ok(self, drained: bool = True) -> bool:
        """No silent drops, globally.

        Always: every submitted op is applied, failed, or still queued,
        and every granted lease is in exactly one terminal-or-active
        state.  With ``drained=True`` (end of run): nothing queued and
        nothing still active — every grant was returned or revoked.
        """
        ledger = self.conservation()
        if ledger["ops_submitted"] != (
            ledger["ops_applied"] + ledger["ops_failed"] + ledger["ops_queued"]
        ):
            return False
        if ledger["granted"] != (
            ledger["active"] + ledger["released"] + ledger["revoked"]
        ):
            return False
        if drained and (ledger["ops_queued"] or ledger["active"]):
            return False
        return True
