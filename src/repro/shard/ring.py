"""Consistent hashing of tenants onto manager shards.

The ring answers one question — *which shard owns this tenant?* — with
two properties the sharded control plane needs:

* **interpreter-stable placement.**  Hashes come from ``zlib.crc32``,
  not the builtin ``hash`` (which is salted per process): the same
  tenant maps to the same shard in every worker of a parallel sweep,
  which the byte-identical serial-vs-parallel contract requires.
* **minimal movement.**  Each shard projects ``vnodes`` points onto the
  ring, so adding or removing one shard remaps only ~1/N of the tenant
  space instead of reshuffling everything (the classic consistent-
  hashing argument; ``tests/shard/test_ring.py`` asserts the bound).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Iterable, Iterator

__all__ = ["HashRing"]


def _point(shard: int, vnode: int) -> int:
    """Ring coordinate of one virtual node (stable across interpreters)."""
    return zlib.crc32(f"shard-{shard}#{vnode}".encode("ascii"))


def _key_point(key: str) -> int:
    return zlib.crc32(key.encode("utf-8"))


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Iterable[int] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set[int] = set()
        # Sorted (point, shard) pairs; ties break to the lower shard id,
        # which the tuple ordering gives us for free.
        self._ring: list[tuple[int, int]] = []
        for shard in shards:
            self.add(shard)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard: int) -> bool:
        return shard in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._members))

    def shards(self) -> list[int]:
        return sorted(self._members)

    def add(self, shard: int) -> None:
        """Project ``vnodes`` points for ``shard`` onto the ring."""
        if shard in self._members:
            raise ValueError(f"shard {shard} already on the ring")
        self._members.add(shard)
        for vnode in range(self.vnodes):
            bisect.insort(self._ring, (_point(shard, vnode), shard))

    def remove(self, shard: int) -> None:
        """Withdraw ``shard``; its arcs fall to the next shard clockwise."""
        if shard not in self._members:
            raise ValueError(f"shard {shard} not on the ring")
        self._members.discard(shard)
        self._ring = [entry for entry in self._ring if entry[1] != shard]

    def shard_for(self, key: str) -> int:
        """Owner of ``key``: the first vnode at or after the key's point."""
        if not self._ring:
            raise LookupError("empty ring")
        index = bisect.bisect_left(self._ring, (_key_point(key), -1))
        if index == len(self._ring):
            index = 0  # wrap past the highest point
        return self._ring[index][1]

    def spread(self, keys: Iterable[str]) -> dict[int, int]:
        """Key counts per shard — the balance diagnostic tests assert on."""
        counts = {shard: 0 for shard in self._members}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
