"""The capacity plane: one front door over forecast → admit → place → burst.

``CapacityPlane.invoke`` is the governed counterpart of
``RFaaSClient.invoke``; every invocation that enters it leaves in exactly
one of three ways (the *no silent drops* invariant):

* **hpc** — admitted and served on harvested capacity (possibly after
  the client's normal retry/redirect recovery);
* **cloud** — admitted but unplaceable on the harvested pool, executed
  on the :class:`~repro.cloudfaas.CloudFaaSPlatform` overflow with the
  cost delta accounted;
* **rejected** — explicit backpressure (:class:`AdmissionRejected`), or
  unplaceable with bursting disabled.

The plane also feeds every arrival into the demand forecaster (the
autoscaler's signal) and optionally returns a tenant's lease when its
last in-flight invocation finishes, so parked-but-idle executor cores
flow back to the pool instead of starving other tenants into the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..cloudfaas.platform import CloudFaaSPlatform
from ..faults.recovery import DegradedResult
from ..rfaas.client import RFaaSClient
from ..rfaas.errors import AdmissionRejected
from ..sim.engine import Environment
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext
from ..telemetry.span import SpanKind
from .admission import AdmissionConfig, AdmissionController
from .autoscaler import AutoscalerConfig, WarmPoolAutoscaler
from .burst import BurstConfig, BurstRecord, CloudBurstRouter
from .forecast import DemandForecaster, ForecastConfig

__all__ = ["CapacityConfig", "CapacityResult", "CapacityPlane"]


@dataclass(frozen=True)
class CapacityConfig:
    """Aggregate configuration of the capacity control plane."""

    forecast: ForecastConfig = field(default_factory=ForecastConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    burst: BurstConfig = field(default_factory=BurstConfig)
    #: Route admitted-but-unplaceable invocations to the cloud baseline.
    burst_enabled: bool = True
    #: Release a tenant's lease when its last in-flight invocation ends.
    release_idle_leases: bool = True


@dataclass
class CapacityResult:
    """How one governed invocation concluded."""

    function: str
    tenant: str
    route: str                          # "hpc" | "cloud" | "rejected"
    ok: bool
    latency_s: float
    queue_wait_s: float = 0.0
    hpc: Optional[DegradedResult] = None
    cloud: Optional[BurstRecord] = None
    cost: float = 0.0
    startup_kind: Optional[str] = None  # hpc route: attached/warm/swapped/cold
    error: Optional[Exception] = None


class CapacityPlane:
    """Forecast, admission, autoscaling, and overflow behind one call."""

    def __init__(
        self,
        env: Environment,
        manager,
        cluster,
        functions,
        cloud: Optional[CloudFaaSPlatform] = None,
        config: Optional[CapacityConfig] = None,
    ):
        self.env = env
        self.manager = manager
        self.functions = functions
        self.config = config or CapacityConfig()
        self.forecaster = DemandForecaster(self.config.forecast)
        self.admission = AdmissionController(env, self.config.admission)
        self.autoscaler = WarmPoolAutoscaler(
            env, manager, cluster, functions, self.forecaster,
            self.config.autoscaler,
        )
        self.router: Optional[CloudBurstRouter] = None
        if self.config.burst_enabled:
            if cloud is None:
                raise ValueError("burst_enabled requires a cloud platform")
            self.router = CloudBurstRouter(env, cloud, self.config.burst)
        self._inflight: dict[str, int] = {}
        self.invocations = 0
        self.completed = 0
        self.rejected = 0
        self.bursts = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics
        self._m_route: dict[str, Any] = {}
        self._m_latency: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start the autoscaler control loop."""
        self.autoscaler.start()

    def stop(self) -> None:
        """Stop background loops so ``env.run()`` can drain."""
        self.autoscaler.stop()

    # -- accounting helpers ----------------------------------------------------
    def _count_route(self, route: str, latency_s: float) -> None:
        counter = self._m_route.get(route)
        if counter is None:
            counter = self._metrics.counter(
                "repro_capacity_invocations_total", labels={"route": route},
                help="governed invocations, by final route",
            )
            self._m_route[route] = counter
        counter.inc()
        histogram = self._m_latency.get(route)
        if histogram is None:
            histogram = self._metrics.histogram(
                "repro_capacity_latency_seconds", labels={"route": route},
                help="end-to-end latency of governed invocations, by route",
            )
            self._m_latency[route] = histogram
        histogram.observe(latency_s)

    def _enter(self, tenant: str) -> None:
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1

    def _leave(self, tenant: str, client: RFaaSClient) -> None:
        remaining = self._inflight.get(tenant, 1) - 1
        if remaining > 0:
            self._inflight[tenant] = remaining
            return
        self._inflight.pop(tenant, None)
        if self.config.release_idle_leases and not client.closed:
            client.release_lease()

    # -- the governed invocation ------------------------------------------------
    def invoke(self, client: RFaaSClient, function: str,
               payload_bytes: int = 0, tenant: Optional[str] = None,
               priority: int = 1):
        """Process: one governed invocation; yields a :class:`CapacityResult`."""
        return self.env.process(
            self._invoke(client, function, payload_bytes,
                         tenant or client.name, priority),
            name=f"capacity-{function}",
        )

    def _invoke(self, client: RFaaSClient, function: str,
                payload_bytes: int, tenant: str, priority: int):
        fdef = self.functions.lookup(function)
        t_begin = self.env.now
        self.invocations += 1
        self.forecaster.observe_arrival(t_begin, function)
        # The plane is the front door: it mints the trace identity here,
        # and every hop downstream — admission, client attempts, executor
        # dispatch, cloud burst — joins the same causal tree.
        root_span = None
        ctx: Optional[TraceContext] = None
        if self._tracer.enabled:
            ctx = TraceContext.mint()
            root_span = self._tracer.begin(
                SpanKind.CAPACITY, track="capacity", ctx=ctx,
                function=function, tenant=tenant, priority=priority,
            )
            ctx = ctx.child(root_span.span_id)

        def conclude(route: str) -> None:
            if root_span is not None:
                self._tracer.finish(root_span, route=route)

        try:
            queue_wait = yield from self.admission.admit(tenant, priority, ctx=ctx)
        except AdmissionRejected as err:
            self.rejected += 1
            latency = self.env.now - t_begin
            self._count_route("rejected", latency)
            conclude("rejected")
            return CapacityResult(
                function=function, tenant=tenant, route="rejected", ok=False,
                latency_s=latency, error=err,
            )
        self._enter(tenant)
        try:
            degraded: DegradedResult = yield client.invoke_detailed(
                function, payload_bytes=payload_bytes, ctx=ctx
            )
        finally:
            self._leave(tenant, client)
        if degraded.ok:
            self.completed += 1
            latency = self.env.now - t_begin
            self._count_route("hpc", latency)
            conclude("hpc")
            return CapacityResult(
                function=function, tenant=tenant, route="hpc", ok=True,
                latency_s=latency, queue_wait_s=queue_wait, hpc=degraded,
                startup_kind=degraded.result.startup_kind,
            )
        # Admitted but unplaceable (no capacity / budget spent / deadline):
        # the platform still owes an answer — overflow to the cloud.
        if self.router is not None:
            record: BurstRecord = yield from self.router.burst(
                fdef, payload_bytes=payload_bytes, ctx=ctx
            )
            self.bursts += 1
            latency = self.env.now - t_begin
            self._count_route("cloud", latency)
            conclude("cloud")
            return CapacityResult(
                function=function, tenant=tenant, route="cloud", ok=True,
                latency_s=latency, queue_wait_s=queue_wait, hpc=degraded,
                cloud=record, cost=record.cost,
            )
        self.rejected += 1
        latency = self.env.now - t_begin
        self._count_route("rejected", latency)
        conclude("rejected")
        return CapacityResult(
            function=function, tenant=tenant, route="rejected", ok=False,
            latency_s=latency, queue_wait_s=queue_wait, hpc=degraded,
            error=degraded.error,
        )

    # -- aggregate view ----------------------------------------------------------
    def stats(self) -> dict:
        """Conservation-friendly aggregate counters (sorted keys)."""
        return {
            "bursts": self.bursts,
            "burst_cost": self.router.total_cost if self.router else 0.0,
            "completed": self.completed,
            "invocations": self.invocations,
            "prewarms": self.autoscaler.prewarms,
            "rejected": self.rejected,
        }
